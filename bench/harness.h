#ifndef AUTODC_BENCH_HARNESS_H_
#define AUTODC_BENCH_HARNESS_H_

// The compiled bench harness (successor of the header-only
// bench_util.h). Every bench_* binary is one BenchMain() call: the
// harness owns the argv contract, thread/seed setup, warmup/repeat
// timing, and the RESULT_JSON envelope, so a bench body is just the
// workload and a handful of Report() calls.
//
// Shared argv contract (every bench binary):
//   --repeats N    timing repetitions, min is reported   (default 5)
//   --warmup N     untimed warmup runs per timing        (default 1)
//   --threads N    pin the global pool to N threads      (default: leave
//                  the AUTODC_NUM_THREADS / hardware default in place)
//   --seed N       workload RNG seed                     (default: bench
//                  picks, usually 42)
//   --quick        shrink problem sizes (CI gate config)
//   --out DIR      write DIR/BENCH_<name>.json with every Report() row,
//                  the run envelope, and the final obs metrics snapshot
//   --help         print usage
//
// Every Report() prints one `RESULT_JSON {...}` envelope line:
//   {"bench":…,"name":…,"git_sha":…,"threads":…,"isa":…,"repeats":…,
//    "quick":…,"wall_ms":…,"metrics":{…}}
// The same rows, grouped, land in the --out file — the unit
// tools/bench_check diffs against bench/baselines/.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/common/json.h"

namespace autodc::bench {

// The RESULT_JSON writer lives in src/common/json.h so the obs snapshot
// exporter and the benches share one escaping/number-formatting path
// (NaN/Inf metric values emit as `null`, never as invalid JSON).
using ::autodc::JsonEscape;
using ::autodc::JsonObject;

/// Prints a header box naming the experiment.
void PrintHeader(const std::string& experiment, const std::string& claim);

/// Fixed-width row printer: first cell 28 chars, rest 12.
void PrintRow(const std::vector<std::string>& cells);

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(size_t v) { return std::to_string(v); }

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock seconds of `fn()`, minimum over `reps` runs (minimum is
/// the standard noise-robust statistic for bench loops).
template <typename Fn>
double TimeSeconds(Fn&& fn, size_t reps = 1) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double s = t.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Prints one `RESULT_JSON {...}` line; the prefix lets scripts grep the
/// machine-readable record out of the table output.
inline void PrintJsonLine(const JsonObject& o) {
  std::printf("RESULT_JSON %s\n", o.str().c_str());
}

/// Static description of one bench binary.
struct BenchSpec {
  std::string name;        ///< machine id; --out writes BENCH_<name>.json
  std::string experiment;  ///< header title line
  std::string claim;       ///< header body (the expected shape)
  uint64_t default_seed = 42;  ///< seed() when --seed is not given
};

/// One emitted result row: a named measurement with flat numeric
/// metrics — the unit bench_check compares.
struct BenchResult {
  std::string name;
  std::vector<std::pair<std::string, double>> metrics;
};

/// Per-run context handed to the bench body.
class Bench {
 public:
  size_t repeats() const { return repeats_; }
  size_t warmup() const { return warmup_; }
  /// Effective global-pool thread count for this run.
  size_t threads() const { return threads_; }
  uint64_t seed() const { return seed_; }
  bool quick() const { return quick_; }
  /// Problem-size switch: `full` normally, `quick_size` under --quick.
  size_t Size(size_t full, size_t quick_size) const {
    return quick_ ? quick_size : full;
  }

  /// Min-of-repeats wall milliseconds of `fn`, after warmup() untimed
  /// runs.
  template <typename Fn>
  double TimeMs(Fn&& fn) {
    for (size_t i = 0; i < warmup_; ++i) fn();
    return TimeSeconds(fn, repeats_) * 1e3;
  }

  /// Emits one RESULT_JSON envelope line and records the row for the
  /// --out file. Metric keys should be stable: bench_check joins
  /// baseline and current runs on (result name, metric name).
  void Report(const std::string& name,
              std::vector<std::pair<std::string, double>> metrics);

  const std::vector<BenchResult>& results() const { return results_; }

 private:
  friend int BenchMain(int argc, char** argv, const BenchSpec& spec,
                       const std::function<int(Bench&)>& body);
  explicit Bench(BenchSpec spec) : spec_(std::move(spec)) {}

  JsonObject Envelope() const;

  BenchSpec spec_;
  size_t repeats_ = 5;
  size_t warmup_ = 1;
  size_t threads_ = 1;
  uint64_t seed_ = 42;
  bool quick_ = false;
  std::string out_dir_;
  Timer run_timer_;
  std::vector<BenchResult> results_;
};

/// The git sha compiled into this binary (configure-time `git
/// rev-parse --short HEAD`, overridable at runtime via AUTODC_GIT_SHA).
std::string GitSha();

/// Parses argv, applies --threads, prints the header, runs `body`, and
/// writes the --out file. Returns body's exit code (2 on bad argv).
int BenchMain(int argc, char** argv, const BenchSpec& spec,
              const std::function<int(Bench&)>& body);

}  // namespace autodc::bench

#endif  // AUTODC_BENCH_HARNESS_H_
