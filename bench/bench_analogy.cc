// Experiment C8 (Sec. 2.2): vector arithmetic on learned embeddings —
// "adding the vector of female to king (approximately) yields queen".
// Shape: a majority of planted analogy quadruples resolve in the top-3.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/corpus.h"
#include "src/embedding/word2vec.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "analogy";
  spec.experiment = "Experiment C8 — semantic vector arithmetic (Sec. 2.2)";
  spec.claim =
      "a : b :: c : ?  solved by nearest neighbour to (b - a + c).\n"
      "Shape: most planted analogies resolve; top-1 and top-3 reported.";
  spec.default_seed = 7;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 32;
    wcfg.sgns.epochs = b.Size(8, 4);
    wcfg.sgns.seed = b.seed();
    embedding::EmbeddingStore words =
        embedding::TrainWordEmbeddings(corpus.sentences, wcfg);

    PrintRow({"analogy", "rank-1", "top-3", "best guess"});
    size_t top1 = 0, top3 = 0;
    for (const auto& q : corpus.analogies) {
      auto result = words.Analogy(q.a, q.b, q.c, 3);
      std::string label = q.a + ":" + q.b + "::" + q.c + ":" + q.d;
      if (!result.ok()) {
        PrintRow({label, "-", "-", "(missing)"});
        continue;
      }
      const auto& top = result.ValueOrDie();
      bool hit1 = !top.empty() && top[0].key == q.d;
      bool hit3 = false;
      for (const auto& n : top) {
        if (n.key == q.d) hit3 = true;
      }
      if (hit1) ++top1;
      if (hit3) ++top3;
      PrintRow({label, hit1 ? "yes" : "no", hit3 ? "yes" : "no",
                top.empty() ? "?" : top[0].key});
    }
    size_t n = corpus.analogies.size();
    std::printf("\nAccuracy: top-1 %zu/%zu, top-3 %zu/%zu\n", top1, n, top3,
                n);
    b.Report("accuracy",
             {{"top1", n ? static_cast<double>(top1) / n : 0.0},
              {"top3", n ? static_cast<double>(top3) / n : 0.0},
              {"analogies", static_cast<double>(n)}});
    return 0;
  });
}
