// Experiment C8 (Sec. 2.2): vector arithmetic on learned embeddings —
// "adding the vector of female to king (approximately) yields queen".
// Shape: a majority of planted analogy quadruples resolve in the top-3.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/datagen/corpus.h"
#include "src/embedding/word2vec.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main() {
  datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 32;
  wcfg.sgns.epochs = 8;
  wcfg.sgns.seed = 7;
  embedding::EmbeddingStore words =
      embedding::TrainWordEmbeddings(corpus.sentences, wcfg);

  PrintHeader(
      "Experiment C8 — semantic vector arithmetic (Sec. 2.2)",
      "a : b :: c : ?  solved by nearest neighbour to (b - a + c).\n"
      "Shape: most planted analogies resolve; top-1 and top-3 reported.");

  PrintRow({"analogy", "rank-1", "top-3", "best guess"});
  size_t top1 = 0, top3 = 0;
  for (const auto& q : corpus.analogies) {
    auto result = words.Analogy(q.a, q.b, q.c, 3);
    std::string label = q.a + ":" + q.b + "::" + q.c + ":" + q.d;
    if (!result.ok()) {
      PrintRow({label, "-", "-", "(missing)"});
      continue;
    }
    const auto& top = result.ValueOrDie();
    bool hit1 = !top.empty() && top[0].key == q.d;
    bool hit3 = false;
    for (const auto& n : top) {
      if (n.key == q.d) hit3 = true;
    }
    if (hit1) ++top1;
    if (hit3) ++top3;
    PrintRow({label, hit1 ? "yes" : "no", hit3 ? "yes" : "no",
              top.empty() ? "?" : top[0].key});
  }
  std::printf("\nAccuracy: top-1 %zu/%zu, top-3 %zu/%zu\n", top1,
              corpus.analogies.size(), top3, corpus.analogies.size());
  return 0;
}
