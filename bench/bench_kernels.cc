// Experiment K1: the SIMD kernel layer. Scalar-vs-AVX2 A/B for the
// level-1 kernels (dot, axpy, cosine) across vector lengths, the
// blocked matmul, a cosine top-k nearest-neighbour scan over an
// EmbeddingStore, and the TensorPool workspace on/off allocation bench.
// Shape: the AVX2 path is multiples faster on every dense kernel at
// n >= 4096, and workspace mode removes the per-step heap churn.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/embedding/embedding_store.h"
#include "src/nn/kernels.h"
#include "src/nn/tensor.h"
#include "src/nn/tensor_pool.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

std::vector<float> RandomVec(size_t n, Rng* rng) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->Uniform(-1.0, 1.0));
  return v;
}

// Keeps reduction results alive so -O2 cannot fold the bench loop away.
volatile double g_sink = 0.0;

// Seconds per call: minimum over repeats of (iters calls) / iters.
template <typename Fn>
double PerCallSeconds(Bench& b, Fn&& fn, size_t iters) {
  double s = TimeSeconds(
      [&] {
        for (size_t i = 0; i < iters; ++i) fn();
      },
      b.repeats());
  return s / static_cast<double>(iters);
}

// Runs `fn` under both kernel tables and emits one result row.
template <typename Fn>
void AbBench(Bench& b, const std::string& kernel, size_t n, size_t iters,
             double flops, Fn&& fn) {
  nn::kernels::SetForceScalar(true);
  double scalar_s = PerCallSeconds(b, fn, iters);
  nn::kernels::SetForceScalar(false);
  double simd_s = PerCallSeconds(b, fn, iters);
  double speedup = simd_s > 0.0 ? scalar_s / simd_s : 0.0;
  PrintRow({kernel + " n=" + FmtInt(n), Fmt(scalar_s * 1e9, 1),
            Fmt(simd_s * 1e9, 1), Fmt(speedup, 2) + "x",
            Fmt(flops / simd_s * 1e-9, 2)});
  b.Report(kernel + "_n" + FmtInt(n), {{"scalar_ns", scalar_s * 1e9},
                                       {"simd_ns", simd_s * 1e9},
                                       {"speedup", speedup},
                                       {"simd_gflops", flops / simd_s * 1e-9}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "kernels";
  spec.experiment = "Experiment K1 — SIMD kernel layer (scalar vs SIMD A/B)";
  spec.claim =
      "Same kernel, two tables: portable scalar vs AVX2+FMA. Shape:\n"
      "multiples of speedup on every dense kernel; the pooled workspace\n"
      "removes steady-state allocation from the training loop.";
  spec.default_seed = 7;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    Rng rng(b.seed());
    if (!nn::kernels::SimdActive()) {
      std::printf("note: SIMD table inactive (not compiled in, CPU lacks "
                  "AVX2+FMA, or AUTODC_FORCE_SCALAR is set); A/B compares "
                  "scalar with itself.\n");
    }

    PrintRow({"kernel", "scalar ns", "simd ns", "speedup", "GFLOP/s"});

    // Level-1 kernels across lengths (4096 is the acceptance point).
    std::vector<size_t> lengths = b.quick()
                                      ? std::vector<size_t>{1024, 4096}
                                      : std::vector<size_t>{256, 1024, 4096,
                                                            16384};
    for (size_t n : lengths) {
      std::vector<float> a = RandomVec(n, &rng);
      std::vector<float> c = RandomVec(n, &rng);
      size_t iters = (size_t{1} << (b.quick() ? 20 : 22)) / n;
      AbBench(b, "dot", n, iters, 2.0 * n, [&] {
        g_sink = nn::kernels::DotF32(a.data(), c.data(), n);
      });
      AbBench(b, "cosine", n, iters, 6.0 * n, [&] {
        g_sink = nn::kernels::CosineF32(a.data(), c.data(), n);
      });
      std::vector<float> y = RandomVec(n, &rng);
      AbBench(b, "axpy", n, iters, 2.0 * n, [&] {
        nn::kernels::AxpyF32(0.001f, a.data(), y.data(), n);
      });
    }

    // Low-precision kernels (DESIGN.md §11): the exact int8 integer dot
    // and fused quantized cosine vs their fp32 counterparts above, the
    // quantizer itself (the per-insert cost of a quantized store), and
    // the bf16 dot. Same A/B shape — both dispatch tables, same data.
    for (size_t n : lengths) {
      std::vector<float> a = RandomVec(n, &rng);
      std::vector<float> c = RandomVec(n, &rng);
      size_t iters = (size_t{1} << (b.quick() ? 20 : 22)) / n;
      nn::kernels::Int8Params pa =
          nn::kernels::ComputeInt8Params(a.data(), n, false);
      nn::kernels::Int8Params pc =
          nn::kernels::ComputeInt8Params(c.data(), n, false);
      std::vector<std::int8_t> qa(n), qc(n);
      nn::kernels::QuantizeI8F32(a.data(), n, pa, qa.data());
      nn::kernels::QuantizeI8F32(c.data(), n, pc, qc.data());
      std::vector<std::uint16_t> ha(n), hc(n);
      nn::kernels::F32ToBf16(a.data(), n, ha.data());
      nn::kernels::F32ToBf16(c.data(), n, hc.data());
      AbBench(b, "dot-i8", n, iters, 2.0 * n, [&] {
        g_sink = nn::kernels::DotI8I32(qa.data(), qc.data(), n);
      });
      AbBench(b, "cosine-i8", n, iters, 6.0 * n, [&] {
        g_sink = nn::kernels::CosineI8(qa.data(), pa, qc.data(), pc, n);
      });
      AbBench(b, "quantize-i8", n, iters, 2.0 * n, [&] {
        nn::kernels::QuantizeI8F32(a.data(), n, pa, qa.data());
        g_sink = qa[0];
      });
      AbBench(b, "dot-bf16", n, iters, 2.0 * n, [&] {
        g_sink = nn::kernels::DotBf16D(ha.data(), hc.data(), n);
      });
    }

    // Blocked matmul through the Tensor API (ParallelFor + panel
    // kernels).
    std::vector<size_t> mat_sizes =
        b.quick() ? std::vector<size_t>{64, 128}
                  : std::vector<size_t>{64, 128, 256};
    for (size_t n : mat_sizes) {
      nn::Tensor ta = nn::Tensor::RandomUniform({n, n}, 0.5f, &rng);
      nn::Tensor tb = nn::Tensor::RandomUniform({n, n}, 0.5f, &rng);
      size_t iters = n <= 128 ? 40 : 10;
      AbBench(b, "matmul", n, iters, 2.0 * n * n * n, [&] {
        nn::Tensor c = nn::MatMul(ta, tb);
        g_sink = c[0];
      });
    }

    // Cosine top-k over an embedding store (the discovery/ER hot scan).
    {
      const size_t kWords = b.Size(2000, 500), kDim = 256, kTopK = 10;
      embedding::EmbeddingStore store(kDim);
      for (size_t i = 0; i < kWords; ++i) {
        store.Add("w" + std::to_string(i), RandomVec(kDim, &rng));
      }
      std::vector<float> query = RandomVec(kDim, &rng);
      AbBench(b, "cosine-topk", kWords * kDim, 20, 2.0 * kWords * kDim, [&] {
        auto nn_hits = store.NearestToVector(query, kTopK);
        g_sink = nn_hits.empty() ? 0.0 : nn_hits.front().similarity;
      });
    }

    // Workspace on/off: the autograd-style alloc pattern (fresh
    // activation tensors every step). Same compute; only the buffer
    // source differs.
    {
      const size_t kBatch = 64, kHidden = 128, kSteps = b.Size(50, 20);
      nn::Tensor x = nn::Tensor::RandomUniform({kBatch, kHidden}, 0.5f, &rng);
      nn::Tensor w = nn::Tensor::RandomUniform({kHidden, kHidden}, 0.5f,
                                               &rng);
      auto step = [&] {
        nn::Tensor h = nn::MatMul(x, w);  // fresh {64,128} per step
        nn::Tensor g = nn::MatMulTransB(h, w);
        nn::Axpy(g, 0.0001f, &h);
        g_sink = h[0];
      };
      auto run = [&](bool pooled) {
        return TimeSeconds(
            [&] {
              for (size_t s = 0; s < kSteps; ++s) {
                if (pooled) {
                  nn::WorkspaceScope ws;
                  step();
                } else {
                  step();
                }
              }
            },
            b.repeats());
      };
      double heap_s = run(false);
      nn::TensorPool::Global().ResetStats();
      double pool_s = run(true);
      nn::TensorPool::Stats st = nn::TensorPool::Global().GetStats();
      double hit_rate =
          st.hits + st.misses == 0
              ? 0.0
              : static_cast<double>(st.hits) /
                    static_cast<double>(st.hits + st.misses);
      std::printf("\nworkspace A/B (%zu steps of matmul/matmul^T/axpy):\n",
                  kSteps);
      PrintRow({"allocator", "seconds", "", "", ""});
      PrintRow({"heap", Fmt(heap_s, 5), "", "", ""});
      PrintRow({"pooled", Fmt(pool_s, 5), "", "", ""});
      std::printf("pool stats: %zu hits, %zu misses, %zu releases "
                  "(hit rate %.1f%%)\n",
                  st.hits, st.misses, st.releases, 100.0 * hit_rate);
      b.Report("workspace", {{"heap_s", heap_s},
                             {"pooled_s", pool_s},
                             {"pool_hit_rate", hit_rate}});
    }

    return 0;
  });
}
