// Experiment C1 (Sec. 5.1, Seeping Semantics): the coherent-groups
// semantic matcher vs a purely syntactic matcher on the synthetic
// enterprise lake. Shape: the semantic matcher surfaces all planted
// links (isoform<->protein, pcr<->assay) ABOVE the spurious
// name-similar pair (biopsy_site<->site_components); the syntactic
// matcher ranks the spurious pair first. Also: the hybrid neural-IR
// table search hits the expected table for every planted query.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/enterprise.h"
#include "src/discovery/ekg.h"
#include "src/discovery/search.h"
#include "src/discovery/semantic_matcher.h"
#include "src/embedding/word2vec.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {
double FindScore(const std::vector<discovery::ColumnMatch>& matches,
                 const datagen::ColumnLink& link, size_t* rank) {
  size_t r = 0;
  for (const discovery::ColumnMatch& m : matches) {
    ++r;
    if ((m.table_a == link.table_a && m.column_a == link.column_a &&
         m.table_b == link.table_b && m.column_b == link.column_b) ||
        (m.table_a == link.table_b && m.column_a == link.column_b &&
         m.table_b == link.table_a && m.column_b == link.column_a)) {
      *rank = r;
      return m.score;
    }
  }
  *rank = 0;
  return -1.0;
}
}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "discovery";
  spec.experiment = "Experiment C1 — semantic link discovery (Sec. 5.1)";
  spec.claim =
      "Planted semantic links and the planted spurious (name-similar but\n"
      "semantically-unrelated) pair, scored and ranked by both matchers.\n"
      "Shape: semantic matcher ranks true links above the spurious one;\n"
      "the syntactic matcher is fooled.";
  spec.default_seed = 3;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::EnterpriseLake lake = datagen::GenerateEnterpriseLake();
    std::vector<const data::Table*> tables;
    for (const data::Table& t : lake.tables) tables.push_back(&t);

    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = b.Size(10, 5);
    wcfg.sgns.seed = b.seed();
    embedding::EmbeddingStore words =
        embedding::TrainWordEmbeddingsFromTables(tables, wcfg);

    discovery::SemanticColumnMatcher semantic(&words);
    auto sem_matches = semantic.MatchLake(tables);
    auto syn_matches = discovery::SyntacticColumnMatches(tables);

    PrintRow({"column pair", "sem score", "sem rank", "syn score",
              "syn rank"});
    size_t worst_true_sem_rank = 0;
    size_t best_spur_sem_rank = 0;
    auto report = [&](const datagen::ColumnLink& link, const char* tag,
                      bool is_true) {
      size_t sem_rank = 0, syn_rank = 0;
      double ss = FindScore(sem_matches, link, &sem_rank);
      double ys = FindScore(syn_matches, link, &syn_rank);
      if (is_true && sem_rank > worst_true_sem_rank) {
        worst_true_sem_rank = sem_rank;
      }
      if (!is_true && sem_rank != 0 &&
          (best_spur_sem_rank == 0 || sem_rank < best_spur_sem_rank)) {
        best_spur_sem_rank = sem_rank;
      }
      PrintRow({std::string(tag) + " " + link.column_a + "<->" +
                    link.column_b,
                Fmt(ss), FmtInt(sem_rank), Fmt(ys), FmtInt(syn_rank)});
    };
    for (const datagen::ColumnLink& link : lake.semantic_links) {
      report(link, "[true]", true);
    }
    for (const datagen::ColumnLink& link : lake.spurious_links) {
      report(link, "[spur]", false);
    }

    // Table search over the lake.
    std::printf("\nNeural-IR table search (query -> expected table):\n");
    discovery::TableSearchEngine engine(&words);
    engine.Index(tables);
    PrintRow({"query", "hit@1", "hit@2", "top result"});
    size_t hits1 = 0;
    for (const auto& q : lake.queries) {
      auto results = engine.Search(q.text);
      bool h1 = !results.empty() && results[0].table == q.expected_table;
      bool h2 = h1 || (results.size() > 1 && results[1].table ==
                                                 q.expected_table);
      if (h1) ++hits1;
      PrintRow({q.text, h1 ? "yes" : "no", h2 ? "yes" : "no",
                results.empty() ? "-" : results[0].table});
    }
    std::printf("hit@1: %zu/%zu\n", hits1, lake.queries.size());
    b.Report("search",
             {{"hit_rate", lake.queries.empty()
                               ? 0.0
                               : static_cast<double>(hits1) /
                                     static_cast<double>(lake.queries.size())},
              {"worst_true_sem_rank",
               static_cast<double>(worst_true_sem_rank)}});

    // EKG expansion demo.
    discovery::EnterpriseKnowledgeGraph ekg =
        discovery::EnterpriseKnowledgeGraph::Build(tables, sem_matches, 0.3);
    std::printf(
        "\nEKG: tables related to 'lab_results' (thematic expansion):\n");
    for (const auto& [table, weight] : ekg.RelatedTables("lab_results")) {
      std::printf("  %-20s %.3f\n", table.c_str(), weight);
    }
    return 0;
  });
}
