// Experiment F4 (Figure 4, Sec. 3.1): naive tuples-as-documents cell
// embeddings vs the heterogeneous-table-graph model with FD edges.
// Shape: on a normalized relation where semantically-linked values are
// far apart column-wise, the graph model (which walks co-occurrence AND
// constraint edges) separates related from unrelated cell pairs better
// than the naive word2vec adaptation, and FD-edge boosting helps.
#include <cstdio>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/data/table_graph.h"
#include "src/embedding/graph_embedding.h"
#include "src/embedding/word2vec.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

// Wide normalized-ish employee relation: EmployeeID -> DeptID -> DeptName,
// with several filler attributes between the semantically-linked columns
// so a small word2vec window can miss them (limitation 2 of Sec. 3.1).
struct Relation {
  data::Table table;
  std::vector<data::FunctionalDependency> fds;
  // Ground truth: (column a, value a, column b, value b, related?).
  struct Pair {
    size_t col_a;
    std::string val_a;
    size_t col_b;
    std::string val_b;
    bool related;
  };
  std::vector<Pair> pairs;
};

Relation MakeRelation(size_t rows, uint64_t seed) {
  Relation rel;
  rel.table = data::Table(data::Schema::OfStrings(
      {"emp_id", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "dept_id",
       "dept_name"}));
  Rng rng(seed);
  const char* depts[] = {"d1", "d2", "d3", "d4"};
  const char* names[] = {"engineering", "marketing", "finance", "legal"};
  const char* fillers[] = {"aa", "bb", "cc", "dd", "ee", "ff"};
  for (size_t r = 0; r < rows; ++r) {
    size_t d = static_cast<size_t>(rng.UniformInt(0, 3));
    data::Row row;
    row.push_back(data::Value("e" + std::to_string(r)));
    for (int f = 0; f < 7; ++f) {
      row.push_back(data::Value(
          std::string(fillers[rng.UniformInt(0, 5)]) + std::to_string(f)));
    }
    row.push_back(data::Value(depts[d]));
    row.push_back(data::Value(names[d]));
    rel.table.AppendRow(std::move(row));
  }
  rel.fds = {{{8}, 9}};  // dept_id -> dept_name
  for (size_t d = 0; d < 4; ++d) {
    rel.pairs.push_back({8, depts[d], 9, names[d], true});
    rel.pairs.push_back({8, depts[d], 9, names[(d + 1) % 4], false});
  }
  return rel;
}

struct Separation {
  double related = 0.0;
  double unrelated = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "table_graph";
  spec.experiment =
      "Experiment F4 — heterogeneous table graph (Figure 4, Sec. 3.1)";
  spec.claim =
      "Mean cosine similarity of FD-linked cell pairs (dept_id <->\n"
      "dept_name) vs mismatched pairs, under three cell-embedding models.\n"
      "Columns sit 1 apart here but 8 filler attributes separate dept_id\n"
      "from emp_id context; the naive model's window dilutes the signal.";
  spec.default_seed = 11;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    Relation rel = MakeRelation(b.Size(400, 200), b.seed());

    // Model 1: naive tuples-as-documents word2vec with small window.
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 8;
    wcfg.sgns.window = 2;  // the window-size limitation in action
    wcfg.sgns.seed = 5;
    embedding::EmbeddingStore naive =
        embedding::TrainCellEmbeddingsNaive({&rel.table}, wcfg);

    // Model 2: graph embeddings WITHOUT FD edges.
    data::TableGraph graph_plain = data::TableGraph::Build(rel.table, {});
    embedding::GraphEmbeddingConfig gcfg;
    gcfg.sgns.dim = 24;
    gcfg.sgns.epochs = 5;
    gcfg.sgns.seed = 5;
    gcfg.walks_per_node = 6;
    gcfg.walk_length = 8;
    embedding::EmbeddingStore graph_noconstraint =
        embedding::TrainTableGraphEmbeddings(graph_plain, rel.table.schema(),
                                             gcfg);

    // Model 3: graph embeddings WITH FD edges boosted.
    data::TableGraph graph_fd = data::TableGraph::Build(rel.table, rel.fds);
    gcfg.fd_edge_boost = 3.0;
    embedding::EmbeddingStore graph_constraint =
        embedding::TrainTableGraphEmbeddings(graph_fd, rel.table.schema(),
                                             gcfg);

    auto score = [&](const embedding::EmbeddingStore& store,
                     bool graph_keys) -> Separation {
      Separation s;
      size_t nr = 0, nu = 0;
      for (const Relation::Pair& p : rel.pairs) {
        std::string ka = graph_keys
                             ? embedding::GraphNodeKey(rel.table.schema(),
                                                       p.col_a, p.val_a)
                             : p.val_a;
        std::string kb = graph_keys
                             ? embedding::GraphNodeKey(rel.table.schema(),
                                                       p.col_b, p.val_b)
                             : p.val_b;
        auto sim = store.Similarity(ka, kb);
        if (!sim.ok()) continue;
        if (p.related) {
          s.related += sim.ValueOrDie();
          ++nr;
        } else {
          s.unrelated += sim.ValueOrDie();
          ++nu;
        }
      }
      if (nr > 0) s.related /= static_cast<double>(nr);
      if (nu > 0) s.unrelated /= static_cast<double>(nu);
      return s;
    };

    Separation s_naive = score(naive, false);
    Separation s_plain = score(graph_noconstraint, true);
    Separation s_fd = score(graph_constraint, true);

    PrintRow({"model", "related", "unrelated", "separation"});
    PrintRow({"naive word2vec (W=2)", Fmt(s_naive.related),
              Fmt(s_naive.unrelated),
              Fmt(s_naive.related - s_naive.unrelated)});
    PrintRow({"graph, co-occur only", Fmt(s_plain.related),
              Fmt(s_plain.unrelated),
              Fmt(s_plain.related - s_plain.unrelated)});
    PrintRow({"graph + FD edges (x3)", Fmt(s_fd.related),
              Fmt(s_fd.unrelated), Fmt(s_fd.related - s_fd.unrelated)});
    b.Report("separation",
             {{"naive", s_naive.related - s_naive.unrelated},
              {"graph_cooccur", s_plain.related - s_plain.unrelated},
              {"graph_fd", s_fd.related - s_fd.unrelated}});
    return 0;
  });
}
