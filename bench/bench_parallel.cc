// Experiment P1 (ROADMAP "fast as the hardware allows"): serial vs
// multi-threaded wall clock for the three hot paths the autodc::common
// parallel runtime accelerates — blocked matmul, Hogwild SGNS training,
// and LSH blocking + DeepER candidate scoring. Shape: near-linear matmul
// scaling, word2vec-style Hogwild scaling for SGNS, and large gains for
// the embarrassingly parallel ER stages. Emits one RESULT_JSON line per
// section plus a combined summary (speedups depend on the machine; the
// numbers in EXPERIMENTS.md are from the recorded run).
//
// Thread count: AUTODC_BENCH_THREADS env var, default 4.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/sgns.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/nn/tensor.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

size_t BenchThreads() {
  if (const char* env = std::getenv("AUTODC_BENCH_THREADS")) {
    long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<size_t>(v);
  }
  return 4;
}

JsonObject BenchMatMul(size_t threads) {
  constexpr size_t kN = 512;
  Rng rng(42);
  nn::Tensor a = nn::Tensor::RandomUniform({kN, kN}, 1.0f, &rng);
  nn::Tensor b = nn::Tensor::RandomUniform({kN, kN}, 1.0f, &rng);

  SetNumThreads(1);
  nn::Tensor ref;
  double serial = TimeSeconds([&]() { ref = nn::MatMul(a, b); }, 3);

  SetNumThreads(threads);
  nn::Tensor par;
  double parallel = TimeSeconds([&]() { par = nn::MatMul(a, b); }, 3);
  SetNumThreads(1);

  // Guard: the threaded kernel must agree with the serial one.
  double max_abs_diff = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    double d = std::fabs(static_cast<double>(ref[i]) - par[i]);
    if (d > max_abs_diff) max_abs_diff = d;
  }

  JsonObject o;
  o.Set("size", kN)
      .Set("serial_s", serial)
      .Set("parallel_s", parallel)
      .Set("speedup", serial / parallel)
      .Set("max_abs_diff", max_abs_diff);
  return o;
}

JsonObject BenchSgnsEpoch(size_t threads) {
  constexpr size_t kVocab = 2000;
  constexpr size_t kSeqs = 400;
  constexpr size_t kSeqLen = 60;
  Rng rng(7);
  std::vector<std::vector<size_t>> seqs(kSeqs);
  for (auto& seq : seqs) {
    seq.resize(kSeqLen);
    for (size_t& tok : seq) {
      tok = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kVocab) - 1));
    }
  }
  std::vector<double> weights(kVocab, 1.0);

  embedding::SgnsConfig cfg;
  cfg.dim = 64;
  cfg.window = 4;
  cfg.negatives = 5;
  cfg.epochs = 1;
  cfg.seed = 3;

  cfg.num_threads = 1;
  double serial = TimeSeconds([&]() {
    embedding::SgnsModel model(kVocab, cfg);
    model.Train(seqs, weights);
  });

  SetNumThreads(threads);
  cfg.num_threads = threads;
  double parallel = TimeSeconds([&]() {
    embedding::SgnsModel model(kVocab, cfg);
    model.Train(seqs, weights);
  });
  SetNumThreads(1);

  JsonObject o;
  o.Set("vocab", kVocab)
      .Set("tokens", kSeqs * kSeqLen)
      .Set("dim", cfg.dim)
      .Set("serial_s", serial)
      .Set("parallel_s", parallel)
      .Set("speedup", serial / parallel);
  return o;
}

JsonObject BenchBlockingAndScoring(size_t threads) {
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = 250;
  cfg.dirtiness = 0.4;
  cfg.seed = 17;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);

  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 3;
  wcfg.sgns.seed = 5;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);

  er::DeepErConfig dcfg;
  dcfg.epochs = 5;
  er::DeepEr model(&words, dcfg);
  model.FitWeights({&bench.left, &bench.right});
  Rng prng(7);
  std::vector<er::PairLabel> train = er::SampleTrainingPairs(
      bench.left.num_rows(), bench.right.num_rows(), bench.matches, 3, &prng);
  model.Train(bench.left, bench.right, train);

  std::vector<std::vector<float>> lv, rv;
  for (size_t i = 0; i < bench.left.num_rows(); ++i) {
    lv.push_back(model.EmbedTupleVector(bench.left.row(i)));
  }
  for (size_t i = 0; i < bench.right.num_rows(); ++i) {
    rv.push_back(model.EmbedTupleVector(bench.right.row(i)));
  }
  er::LshBlocker lsh(words.dim(), 6, 16, 21);

  SetNumThreads(1);
  std::vector<er::RowPair> cands;
  double block_serial = TimeSeconds([&]() { cands = lsh.Candidates(lv, rv); });
  double score_serial = TimeSeconds(
      [&]() { model.Match(bench.left, bench.right, cands, 0.5); });

  SetNumThreads(threads);
  std::vector<er::RowPair> cands_p;
  double block_parallel =
      TimeSeconds([&]() { cands_p = lsh.Candidates(lv, rv); });
  double score_parallel = TimeSeconds(
      [&]() { model.Match(bench.left, bench.right, cands_p, 0.5); });
  SetNumThreads(1);

  JsonObject o;
  o.Set("candidates", cands.size())
      .Set("candidates_parallel", cands_p.size())  // must match serial
      .Set("block_serial_s", block_serial)
      .Set("block_parallel_s", block_parallel)
      .Set("block_speedup", block_serial / block_parallel)
      .Set("score_serial_s", score_serial)
      .Set("score_parallel_s", score_parallel)
      .Set("score_speedup", score_serial / score_parallel);
  return o;
}

}  // namespace

int main() {
  size_t threads = BenchThreads();
  PrintHeader(
      "Experiment P1 — parallel runtime speedup (serial vs " +
          std::to_string(threads) + " threads)",
      "Wall clock of the three hottest paths with the autodc ThreadPool\n"
      "off (1 thread) and on. Expected shape: near-linear matmul scaling,\n"
      "Hogwild SGNS scaling as in word2vec, and embarrassing parallelism\n"
      "for LSH blocking + DeepER pair scoring.");

  JsonObject matmul = BenchMatMul(threads);
  JsonObject sgns = BenchSgnsEpoch(threads);
  JsonObject er = BenchBlockingAndScoring(threads);

  PrintRow({"section", "result"});
  PrintRow({"matmul 512^3", matmul.str()});
  PrintRow({"sgns 1 epoch", sgns.str()});
  PrintRow({"blocking+scoring", er.str()});

  JsonObject summary;
  summary.Set("bench", std::string("bench_parallel"))
      .Set("threads", threads)
      .SetRaw("matmul", matmul.str())
      .SetRaw("sgns_epoch", sgns.str())
      .SetRaw("er", er.str());
  PrintJsonLine(summary);
  return 0;
}
