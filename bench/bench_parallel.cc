// Experiment P1 (ROADMAP "fast as the hardware allows"): serial vs
// multi-threaded wall clock for the three hot paths the autodc::common
// parallel runtime accelerates — blocked matmul, Hogwild SGNS training,
// and LSH blocking + DeepER candidate scoring. Shape: near-linear matmul
// scaling, word2vec-style Hogwild scaling for SGNS, and large gains for
// the embarrassingly parallel ER stages. Emits one RESULT_JSON line per
// section (speedups depend on the machine; the numbers in EXPERIMENTS.md
// are from the recorded run).
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/sgns.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/nn/tensor.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

void BenchMatMul(Bench& b, size_t threads) {
  const size_t kN = b.Size(512, 256);
  Rng rng(b.seed());
  nn::Tensor a = nn::Tensor::RandomUniform({kN, kN}, 1.0f, &rng);
  nn::Tensor bb = nn::Tensor::RandomUniform({kN, kN}, 1.0f, &rng);

  SetNumThreads(1);
  nn::Tensor ref;
  double serial = TimeSeconds([&]() { ref = nn::MatMul(a, bb); }, b.repeats());

  SetNumThreads(threads);
  nn::Tensor par;
  double parallel =
      TimeSeconds([&]() { par = nn::MatMul(a, bb); }, b.repeats());
  SetNumThreads(1);

  // Guard: the threaded kernel must agree with the serial one.
  double max_abs_diff = 0.0;
  for (size_t i = 0; i < ref.size(); ++i) {
    double d = std::fabs(static_cast<double>(ref[i]) - par[i]);
    if (d > max_abs_diff) max_abs_diff = d;
  }

  PrintRow({"matmul " + FmtInt(kN) + "^3", Fmt(serial, 3), Fmt(parallel, 3),
            Fmt(serial / parallel, 2) + "x"});
  b.Report("matmul", {{"serial_s", serial},
                      {"parallel_s", parallel},
                      {"speedup", serial / parallel},
                      {"max_abs_err", max_abs_diff}});
}

void BenchSgnsEpoch(Bench& b, size_t threads) {
  const size_t kVocab = b.Size(2000, 800);
  const size_t kSeqs = b.Size(400, 150);
  constexpr size_t kSeqLen = 60;
  Rng rng(b.seed());
  std::vector<std::vector<size_t>> seqs(kSeqs);
  for (auto& seq : seqs) {
    seq.resize(kSeqLen);
    for (size_t& tok : seq) {
      tok = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(kVocab) - 1));
    }
  }
  std::vector<double> weights(kVocab, 1.0);

  embedding::SgnsConfig cfg;
  cfg.dim = 64;
  cfg.window = 4;
  cfg.negatives = 5;
  cfg.epochs = 1;
  cfg.seed = 3;

  cfg.num_threads = 1;
  double serial = TimeSeconds(
      [&]() {
        embedding::SgnsModel model(kVocab, cfg);
        model.Train(seqs, weights);
      },
      b.repeats());

  SetNumThreads(threads);
  cfg.num_threads = threads;
  double parallel = TimeSeconds(
      [&]() {
        embedding::SgnsModel model(kVocab, cfg);
        model.Train(seqs, weights);
      },
      b.repeats());
  SetNumThreads(1);

  PrintRow({"sgns 1 epoch", Fmt(serial, 3), Fmt(parallel, 3),
            Fmt(serial / parallel, 2) + "x"});
  b.Report("sgns_epoch", {{"serial_s", serial},
                          {"parallel_s", parallel},
                          {"speedup", serial / parallel}});
}

void BenchBlockingAndScoring(Bench& b, size_t threads) {
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = b.Size(250, 120);
  cfg.dirtiness = 0.4;
  cfg.seed = 17;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);

  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 3;
  wcfg.sgns.seed = 5;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);

  er::DeepErConfig dcfg;
  dcfg.epochs = 5;
  er::DeepEr model(&words, dcfg);
  model.FitWeights({&bench.left, &bench.right});
  Rng prng(b.seed());
  std::vector<er::PairLabel> train = er::SampleTrainingPairs(
      bench.left.num_rows(), bench.right.num_rows(), bench.matches, 3, &prng);
  model.Train(bench.left, bench.right, train);

  std::vector<std::vector<float>> lv, rv;
  for (size_t i = 0; i < bench.left.num_rows(); ++i) {
    lv.push_back(model.EmbedTupleVector(bench.left.row(i)));
  }
  for (size_t i = 0; i < bench.right.num_rows(); ++i) {
    rv.push_back(model.EmbedTupleVector(bench.right.row(i)));
  }
  er::LshBlocker lsh(words.dim(), 6, 16, 21);

  SetNumThreads(1);
  std::vector<er::RowPair> cands;
  double block_serial =
      TimeSeconds([&]() { cands = lsh.Candidates(lv, rv); }, b.repeats());
  double score_serial = TimeSeconds(
      [&]() { model.Match(bench.left, bench.right, cands, 0.5); }, b.repeats());

  SetNumThreads(threads);
  std::vector<er::RowPair> cands_p;
  double block_parallel =
      TimeSeconds([&]() { cands_p = lsh.Candidates(lv, rv); }, b.repeats());
  double score_parallel = TimeSeconds(
      [&]() { model.Match(bench.left, bench.right, cands_p, 0.5); },
      b.repeats());
  SetNumThreads(1);

  PrintRow({"lsh blocking", Fmt(block_serial, 3), Fmt(block_parallel, 3),
            Fmt(block_serial / block_parallel, 2) + "x"});
  PrintRow({"deeper scoring", Fmt(score_serial, 3), Fmt(score_parallel, 3),
            Fmt(score_serial / score_parallel, 2) + "x"});
  // candidates_parallel must equal candidates: the threaded blocker is
  // deterministic.
  b.Report("blocking",
           {{"candidates", static_cast<double>(cands.size())},
            {"candidates_parallel", static_cast<double>(cands_p.size())},
            {"serial_s", block_serial},
            {"parallel_s", block_parallel},
            {"speedup", block_serial / block_parallel}});
  b.Report("scoring", {{"serial_s", score_serial},
                       {"parallel_s", score_parallel},
                       {"speedup", score_serial / score_parallel}});
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "parallel";
  spec.experiment = "Experiment P1 — parallel runtime speedup";
  spec.claim =
      "Wall clock of the three hottest paths with the autodc ThreadPool\n"
      "off (1 thread) and on. Expected shape: near-linear matmul scaling,\n"
      "Hogwild SGNS scaling as in word2vec, and embarrassing parallelism\n"
      "for LSH blocking + DeepER pair scoring.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    // This bench A/Bs 1 thread against the pinned pool size, so the
    // --threads value (or the pool default) is the "parallel" arm.
    size_t threads = b.threads() > 1 ? b.threads() : 4;
    std::printf("parallel arm: %zu threads\n", threads);
    PrintRow({"section", "serial s", "parallel s", "speedup"});
    BenchMatMul(b, threads);
    BenchSgnsEpoch(b, threads);
    BenchBlockingAndScoring(b, threads);
    return 0;
  });
}
