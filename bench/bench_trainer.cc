// Experiment T1 (Sec. 6.1): the Trainer runtime's early stopping on the
// DeepER workload. DC models retrain constantly ("trained in minutes
// even on a CPU"), so epochs saved by a validation-monitored stop are
// wall-clock saved on every pipeline run. Shape to reproduce: early
// stopping cuts epochs/wall time substantially at equal (or better,
// thanks to best-weight restore) F1.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"

using namespace autodc;          // NOLINT
using namespace autodc::bench;   // NOLINT

namespace {

struct RunStats {
  size_t epochs_run = 0;
  double wall_s = 0.0;
  double final_loss = 0.0;
  double f1 = 0.0;
  bool stopped_early = false;
};

struct Workload {
  datagen::ErBenchmark bench;
  embedding::EmbeddingStore words;
  std::vector<er::PairLabel> train;
  std::vector<er::RowPair> all;
};

Workload MakeWorkload(uint64_t seed, size_t entities) {
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = entities;
  cfg.dirtiness = 0.4;
  cfg.synonym_rate = 0.4;
  cfg.seed = seed;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);

  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 6;
  wcfg.sgns.seed = seed;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);

  Rng rng(seed + 1);
  auto hard = er::AttributeBlocking(bench.left, bench.right, 0);
  auto train = er::SampleTrainingPairsWithHardNegatives(
      bench.left.num_rows(), bench.right.num_rows(), bench.matches, hard, 5,
      0.6, &rng);

  std::vector<er::RowPair> all;
  for (size_t l = 0; l < bench.left.num_rows(); ++l) {
    for (size_t r = 0; r < bench.right.num_rows(); ++r) all.push_back({l, r});
  }
  return Workload{std::move(bench), std::move(words), std::move(train),
                  std::move(all)};
}

RunStats RunDeepEr(const Workload& w, size_t epoch_budget, bool early_stop,
                   uint64_t seed) {
  er::DeepErConfig dcfg;
  dcfg.epochs = epoch_budget;
  dcfg.learning_rate = 1e-2f;
  dcfg.seed = seed;
  if (early_stop) {
    dcfg.validation_fraction = 0.2;
    dcfg.early_stopping_patience = 4;
    // Improvements below 1e-3 are plateau noise, not convergence.
    dcfg.early_stopping_min_delta = 1e-3;
  }
  er::DeepEr model(&w.words, dcfg);
  model.FitWeights({&w.bench.left, &w.bench.right});

  Timer t;
  model.Train(w.bench.left, w.bench.right, w.train);
  RunStats s;
  s.wall_s = t.Seconds();
  const nn::TrainResult& r = model.last_train_result();
  s.epochs_run = r.epochs_run;
  s.final_loss = r.final_train_loss;
  s.stopped_early = r.stopped_early;
  s.f1 = er::Evaluate(model.Match(w.bench.left, w.bench.right, w.all, 0.9),
                      w.bench.matches)
             .f1;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "trainer";
  spec.experiment = "Experiment T1 — Trainer runtime: early stopping on DeepER";
  spec.claim =
      "Epochs-to-converge and wall time of DeepER training with a fixed\n"
      "epoch budget vs validation-monitored early stopping (patience 4,\n"
      "min-delta 1e-3, 20% held out, best weights restored). Same\n"
      "workload, same seed.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const uint64_t seed = b.seed();
    const size_t budget = b.Size(60, 30);
    Workload w = MakeWorkload(seed, b.Size(150, 80));

    RunStats fixed = RunDeepEr(w, budget, /*early_stop=*/false, seed);
    RunStats early = RunDeepEr(w, budget, /*early_stop=*/true, seed);

    PrintRow({"variant", "epochs", "wall_s", "loss", "F1", "stopped"});
    PrintRow({"fixed-budget", FmtInt(fixed.epochs_run), Fmt(fixed.wall_s),
              Fmt(fixed.final_loss), Fmt(fixed.f1),
              fixed.stopped_early ? "yes" : "no"});
    PrintRow({"early-stopping", FmtInt(early.epochs_run), Fmt(early.wall_s),
              Fmt(early.final_loss), Fmt(early.f1),
              early.stopped_early ? "yes" : "no"});

    double speedup = early.wall_s > 0.0 ? fixed.wall_s / early.wall_s : 0.0;
    std::printf("\nEarly stopping ran %zu/%zu epochs (%.2fx wall speedup).\n",
                early.epochs_run, fixed.epochs_run, speedup);

    b.Report("fixed_budget",
             {{"epochs", static_cast<double>(fixed.epochs_run)},
              {"wall_s", fixed.wall_s},
              {"loss", fixed.final_loss},
              {"f1", fixed.f1}});
    b.Report("early_stopping",
             {{"epochs", static_cast<double>(early.epochs_run)},
              {"wall_s", early.wall_s},
              {"loss", early.final_loss},
              {"f1", early.f1},
              {"wall_speedup", speedup}});
    return 0;
  });
}
