// ANN retrieval bench (ROADMAP item 3): HNSW graph search vs the exact
// scan it replaces. Shape: on clustered embeddings the index answers
// top-10 queries an order of magnitude faster than the scan while
// keeping recall@10 >= 0.95; build time amortizes over a few thousand
// queries.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/harness.h"
#include "src/ann/hnsw.h"
#include "src/common/rng.h"
#include "src/nn/kernels.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

/// Exact top-k row ids for one query, (sim desc, id asc) ordered — the
/// recall reference and the timed baseline.
std::vector<size_t> ExactTopK(const float* q, const std::vector<float>& data,
                              const std::vector<double>& inv_norms, size_t n,
                              size_t dim, double q_inv, size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double dot =
        nn::kernels::DotF32D(q, data.data() + i * dim, dim);
    scored.emplace_back(dot * q_inv * inv_norms[i], i);
  }
  size_t take = std::min(k, n);
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "ann";
  spec.experiment = "HNSW retrieval vs exact scan (ROADMAP item 3)";
  spec.claim =
      "Graph search over clustered embeddings: >= 10x the exact scan's\n"
      "QPS at recall@10 >= 0.95; build cost amortizes within ~1k queries.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const size_t n = b.Size(100000, 8000);
    const size_t dim = b.Size(128, 64);
    const size_t num_queries = b.Size(100, 50);
    const size_t k = 10;
    const size_t num_clusters = b.Size(100, 32);

    // Clustered data — the regime embeddings live in (random uniform
    // vectors make every neighbour list noise and flatter recall).
    Rng rng(b.seed());
    std::vector<float> centers(num_clusters * dim);
    for (float& x : centers) x = static_cast<float>(rng.Normal());
    std::vector<float> data(n * dim);
    std::vector<double> inv_norms(n);
    for (size_t i = 0; i < n; ++i) {
      size_t c = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(num_clusters) - 1));
      float* row = data.data() + i * dim;
      for (size_t d = 0; d < dim; ++d) {
        row[d] = centers[c * dim + d] +
                 static_cast<float>(rng.Normal(0.0, 0.3));
      }
      double sq = nn::kernels::SumSqF32(row, dim);
      inv_norms[i] = sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0;
    }
    std::vector<float> queries(num_queries * dim);
    std::vector<double> q_invs(num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      size_t c = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(num_clusters) - 1));
      float* q = queries.data() + i * dim;
      for (size_t d = 0; d < dim; ++d) {
        q[d] = centers[c * dim + d] + static_cast<float>(rng.Normal(0.0, 0.3));
      }
      double sq = nn::kernels::SumSqF32(q, dim);
      q_invs[i] = sq > 0.0 ? 1.0 / std::sqrt(sq) : 0.0;
    }

    ann::HnswConfig cfg = ann::ConfigFromEnv();
    cfg.seed = b.seed();
    ann::HnswIndex index(dim, cfg);
    std::vector<const float*> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) rows.push_back(data.data() + i * dim);
    Timer build_timer;
    index.Build(rows);
    double build_ms = build_timer.Seconds() * 1e3;

    // Ground truth once (untimed), then timed exact + ANN query loops.
    std::vector<std::vector<size_t>> truth(num_queries);
    for (size_t i = 0; i < num_queries; ++i) {
      truth[i] = ExactTopK(queries.data() + i * dim, data, inv_norms, n, dim,
                           q_invs[i], k);
    }

    double exact_ms = b.TimeMs([&] {
      for (size_t i = 0; i < num_queries; ++i) {
        ExactTopK(queries.data() + i * dim, data, inv_norms, n, dim,
                  q_invs[i], k);
      }
    });
    // Untimed warmup walk so the first timed pass isn't paying the
    // graph's cold-cache cost (the int8 arm below gets the same).
    for (size_t i = 0; i < num_queries; ++i) {
      index.Search(queries.data() + i * dim, k);
    }
    std::vector<std::vector<ann::ScoredId>> ann_hits(num_queries);
    double ann_ms = b.TimeMs([&] {
      for (size_t i = 0; i < num_queries; ++i) {
        ann_hits[i] = index.Search(queries.data() + i * dim, k);
      }
    });

    double recall_sum = 0.0;
    for (size_t i = 0; i < num_queries; ++i) {
      size_t overlap = 0;
      for (const ann::ScoredId& hit : ann_hits[i]) {
        for (size_t t : truth[i]) {
          if (hit.id == t) {
            ++overlap;
            break;
          }
        }
      }
      recall_sum +=
          static_cast<double>(overlap) /
          static_cast<double>(std::min(k, truth[i].size()));
    }
    double recall = num_queries ? recall_sum / num_queries : 0.0;
    double qps_exact = exact_ms > 0.0 ? num_queries / (exact_ms / 1e3) : 0.0;
    double qps_ann = ann_ms > 0.0 ? num_queries / (ann_ms / 1e3) : 0.0;
    double speedup = ann_ms > 0.0 ? exact_ms / ann_ms : 0.0;

    // Low-precision arm (DESIGN.md §11): the same graph built over int8
    // rows. Distance evaluations run on quantized data (4x smaller, SIMD
    // integer dots); recall is still measured against the fp32 ground
    // truth, so quantization error shows up here, not in a side metric.
    ann::HnswConfig i8cfg = cfg;
    i8cfg.quant = nn::kernels::Quant::kInt8;
    ann::HnswIndex index_i8(dim, i8cfg);
    Timer build_i8_timer;
    index_i8.Build(rows);
    double build_i8_ms = build_i8_timer.Seconds() * 1e3;
    // Timed loop measures the system's actual retrieval contract
    // (EmbeddingStore::AnnNearest): over-fetch a small shortlist from
    // the quantized graph, then re-score it in fp32 and keep the top-k.
    // The rescore is k+8 dot products per query — noise next to the
    // graph walk — and it is what recovers fp32-level recall.
    const size_t kExtra = 8;
    for (size_t i = 0; i < num_queries; ++i) {
      index_i8.Search(queries.data() + i * dim, k + kExtra);
    }
    std::vector<std::vector<ann::ScoredId>> i8_hits(num_queries);
    double i8_ms = b.TimeMs([&] {
      for (size_t i = 0; i < num_queries; ++i) {
        const float* q = queries.data() + i * dim;
        std::vector<ann::ScoredId> hits = index_i8.Search(q, k + kExtra);
        for (ann::ScoredId& hit : hits) {
          double dot = nn::kernels::DotF32D(q, data.data() + hit.id * dim,
                                            dim);
          hit.similarity = dot * q_invs[i] * inv_norms[hit.id];
        }
        std::sort(hits.begin(), hits.end(),
                  [](const ann::ScoredId& a, const ann::ScoredId& b2) {
                    return a.similarity > b2.similarity ||
                           (a.similarity == b2.similarity && a.id < b2.id);
                  });
        if (hits.size() > k) hits.resize(k);
        i8_hits[i] = std::move(hits);
      }
    });
    double recall_i8_sum = 0.0;
    for (size_t i = 0; i < num_queries; ++i) {
      size_t overlap = 0;
      for (const ann::ScoredId& hit : i8_hits[i]) {
        for (size_t t : truth[i]) {
          if (hit.id == t) {
            ++overlap;
            break;
          }
        }
      }
      recall_i8_sum +=
          static_cast<double>(overlap) /
          static_cast<double>(std::min(k, truth[i].size()));
    }
    double recall_i8 = num_queries ? recall_i8_sum / num_queries : 0.0;
    double qps_int8 = i8_ms > 0.0 ? num_queries / (i8_ms / 1e3) : 0.0;
    double speedup_int8 = i8_ms > 0.0 ? ann_ms / i8_ms : 0.0;
    double fp32_bytes = static_cast<double>(index.resident_bytes());
    double int8_bytes = static_cast<double>(index_i8.resident_bytes());

    PrintRow({"metric", "value"});
    PrintRow({"n / dim", FmtInt(n) + " / " + FmtInt(dim)});
    PrintRow({"build_ms", Fmt(build_ms, 1)});
    PrintRow({"edges", FmtInt(index.num_edges())});
    PrintRow({"qps_exact", Fmt(qps_exact, 0)});
    PrintRow({"qps_ann", Fmt(qps_ann, 0)});
    PrintRow({"speedup", Fmt(speedup, 1)});
    PrintRow({"recall_at_10", Fmt(recall, 3)});
    PrintRow({"qps_ann_int8", Fmt(qps_int8, 0)});
    PrintRow({"speedup_int8_vs_fp32", Fmt(speedup_int8, 2)});
    PrintRow({"recall_at_10_int8", Fmt(recall_i8, 3)});
    PrintRow({"fp32_resident_mb", Fmt(fp32_bytes / 1e6, 1)});
    PrintRow({"int8_resident_mb", Fmt(int8_bytes / 1e6, 1)});
    index.PublishStats();

    b.Report("build", {{"build_ms", build_ms},
                       {"nodes", static_cast<double>(index.size())},
                       {"edges", static_cast<double>(index.num_edges())}});
    b.Report("search", {{"qps_exact", qps_exact},
                        {"qps_ann", qps_ann},
                        {"speedup", speedup},
                        {"recall_at_10", recall}});
    b.Report("int8", {{"build_ms", build_i8_ms},
                      {"qps_ann_int8", qps_int8},
                      {"speedup_int8", speedup_int8},
                      {"recall_at_10_int8", recall_i8},
                      {"fp32_resident_bytes", fp32_bytes},
                      {"int8_resident_bytes", int8_bytes}});
    return 0;
  });
}
