// Experiment C6 (Sec. 6.1, "skewed label distribution"): ER F1 under
// increasing negative:positive training skew, with the two mitigations
// the paper names — (a) imbalance-aware sampling (cap the negative
// ratio) and (b) cost-sensitive positive weighting. Shape: naive
// training on the natural skew collapses recall; either mitigation
// restores F1.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "imbalance";
  spec.experiment = "Experiment C6 — skewed labels in ER training (Sec. 6.1)";
  spec.claim =
      "F1 at threshold 0.5 as the negative:positive training ratio grows.\n"
      "Shape: naive training degrades with skew; positive re-weighting\n"
      "(cost-sensitive loss) recovers it. DeepER's sampling caps the\n"
      "ratio by construction.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = b.Size(120, 60);
    cfg.dirtiness = 0.4;
    cfg.synonym_rate = 0.3;
    cfg.seed = b.seed();
    datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 6;
    wcfg.sgns.seed = 5;
    embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
        {&bench.left, &bench.right}, wcfg);

    std::vector<er::RowPair> all;
    for (size_t l = 0; l < bench.left.num_rows(); ++l) {
      for (size_t r = 0; r < bench.right.num_rows(); ++r) {
        all.push_back({l, r});
      }
    }

    // Scarce positives make the skew bite: only 12 labeled matches.
    std::vector<er::RowPair> few_matches(
        bench.matches.begin(),
        bench.matches.begin() + std::min<size_t>(12, bench.matches.size()));

    PrintRow({"neg:pos ratio", "naive F1", "naive R", "weighted F1",
              "weighted R"});
    for (size_t ratio : {2, 10, 40}) {
      Rng rng(7);
      auto train = er::SampleTrainingPairs(bench.left.num_rows(),
                                           bench.right.num_rows(),
                                           few_matches, ratio, &rng);
      er::DeepErConfig naive_cfg;
      naive_cfg.epochs = b.Size(25, 12);
      naive_cfg.learning_rate = 1e-2f;
      er::DeepEr naive(&words, naive_cfg);
      naive.FitWeights({&bench.left, &bench.right});
      naive.Train(bench.left, bench.right, train);
      er::PrfScore s_naive = er::Evaluate(
          naive.Match(bench.left, bench.right, all, 0.5), bench.matches);

      er::DeepErConfig w_cfg = naive_cfg;
      w_cfg.positive_weight = static_cast<float>(ratio);
      er::DeepEr weighted(&words, w_cfg);
      weighted.FitWeights({&bench.left, &bench.right});
      weighted.Train(bench.left, bench.right, train);
      er::PrfScore s_w = er::Evaluate(
          weighted.Match(bench.left, bench.right, all, 0.5), bench.matches);

      PrintRow({FmtInt(ratio) + ":1", Fmt(s_naive.f1), Fmt(s_naive.recall),
                Fmt(s_w.f1), Fmt(s_w.recall)});
      b.Report("ratio_" + FmtInt(ratio), {{"naive_f1", s_naive.f1},
                                          {"naive_recall", s_naive.recall},
                                          {"weighted_f1", s_w.f1},
                                          {"weighted_recall", s_w.recall}});
    }
    return 0;
  });
}
