// Experiment C2 (Sec. 5.3, MIDA [25]): denoising-autoencoder multiple
// imputation vs mean/mode and kNN, as the missingness rate grows.
// Shape: DAE and kNN exploit cross-column structure (zip<->city,
// level->salary) and stay far above mean/mode; the DAE degrades
// gracefully as missingness rises.
#include <cstdio>

#include "bench/harness.h"
#include "src/cleaning/imputation.h"
#include "src/common/rng.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

data::Table StructuredTable(size_t n, uint64_t seed) {
  data::Table t(data::Schema({{"city", data::ValueType::kString},
                              {"zip", data::ValueType::kString},
                              {"level", data::ValueType::kInt},
                              {"salary", data::ValueType::kDouble}}));
  const char* cities[] = {"springfield", "riverton", "fairview", "salem"};
  const char* zips[] = {"11111", "22222", "33333", "44444"};
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    int k = static_cast<int>(rng.UniformInt(0, 3));
    int64_t level = rng.UniformInt(1, 5);
    double salary = 40000.0 + 10000.0 * static_cast<double>(level) +
                    rng.Normal(0, 1500);
    t.AppendRow({data::Value(cities[k]), data::Value(zips[k]),
                 data::Value(level), data::Value(salary)});
  }
  return t;
}

struct Scores {
  double cat_acc = 0.0;   // categorical accuracy
  double num_mae = 0.0;   // numeric mean absolute error
};

Scores Evaluate(cleaning::Imputer* imputer, double missing_rate,
                uint64_t seed, size_t rows) {
  data::Table clean = StructuredTable(rows, seed);
  data::Table dirty = clean;
  Rng rng(seed + 1);
  std::vector<std::pair<size_t, size_t>> hidden;
  for (size_t r = 0; r < clean.num_rows(); ++r) {
    for (size_t c = 0; c < clean.num_columns(); ++c) {
      if (rng.Bernoulli(missing_rate)) {
        dirty.Set(r, c, data::Value::Null());
        hidden.emplace_back(r, c);
      }
    }
  }
  imputer->Fit(dirty);
  Scores s;
  size_t cat_total = 0, cat_hit = 0, num_total = 0;
  double mae = 0.0;
  for (const auto& [r, c] : hidden) {
    data::Value v = imputer->Impute(dirty, r, c);
    if (c <= 1) {
      ++cat_total;
      if (v.ToString() == clean.at(r, c).ToString()) ++cat_hit;
    } else {
      bool ok = false;
      double x = v.ToNumeric(&ok);
      if (ok) {
        mae += std::fabs(x - clean.at(r, c).ToNumeric());
        ++num_total;
      } else {
        mae += 50000.0;  // failed numeric imputation penalized
        ++num_total;
      }
    }
  }
  s.cat_acc = cat_total > 0 ? static_cast<double>(cat_hit) / cat_total : 0.0;
  s.num_mae = num_total > 0 ? mae / num_total : 0.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "imputation";
  spec.experiment =
      "Experiment C2 — DAE multiple imputation vs baselines (Sec. 5.3)";
  spec.claim =
      "Hidden-cell recovery on a relation with cross-column structure\n"
      "(zip determines city; level determines salary). Categorical\n"
      "accuracy (higher better) and numeric MAE in $ (lower better).";
  spec.default_seed = 8;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const size_t rows = b.Size(400, 200);
    PrintRow({"missingness", "method", "cat acc", "num MAE"});
    for (double rate : {0.05, 0.15, 0.30}) {
      cleaning::MeanModeImputer mean;
      cleaning::KnnImputer knn(5);
      cleaning::DaeImputerConfig dcfg;
      dcfg.epochs = b.Size(80, 40);
      cleaning::DaeImputer dae(dcfg);
      Scores sm = Evaluate(&mean, rate, b.seed(), rows);
      Scores sk = Evaluate(&knn, rate, b.seed(), rows);
      Scores sd = Evaluate(&dae, rate, b.seed(), rows);
      PrintRow({Fmt(rate, 2), "mean/mode", Fmt(sm.cat_acc, 2),
                Fmt(sm.num_mae, 0)});
      PrintRow({"", "kNN (k=5)", Fmt(sk.cat_acc, 2), Fmt(sk.num_mae, 0)});
      PrintRow({"", "DAE (MIDA)", Fmt(sd.cat_acc, 2), Fmt(sd.num_mae, 0)});
      std::string tag = "rate_" + FmtInt(static_cast<size_t>(rate * 100));
      b.Report(tag, {{"mean_cat_accuracy", sm.cat_acc},
                     {"knn_cat_accuracy", sk.cat_acc},
                     {"dae_cat_accuracy", sd.cat_acc},
                     {"dae_num_mae", sd.num_mae}});
    }
    return 0;
  });
}
