// Experiment F5a (Figure 5 / Sec. 5.2): DeepER vs classical ER baselines
// across domains and dirtiness levels. Shape to reproduce: DeepER stays
// competitive with the feature-engineered matcher everywhere, and the
// fixed-threshold rule collapses as dirtiness (especially synonym noise)
// grows — with NO per-domain feature engineering for DeepER.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"
#include "src/er/features.h"

using namespace autodc;          // NOLINT
using namespace autodc::bench;   // NOLINT

namespace {

struct RunScores {
  er::PrfScore deeper;
  er::PrfScore feature;
  er::PrfScore rule;
};

RunScores RunOne(datagen::ErDomain domain, double dirtiness,
                 double synonym_rate, uint64_t seed, size_t entities,
                 size_t epochs) {
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = domain;
  cfg.num_entities = entities;
  cfg.dirtiness = dirtiness;
  cfg.synonym_rate = synonym_rate;
  cfg.seed = seed;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);

  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 6;
  wcfg.sgns.seed = seed;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);

  Rng rng(seed + 1);
  auto hard = er::AttributeBlocking(bench.left, bench.right, 0);
  auto train = er::SampleTrainingPairsWithHardNegatives(
      bench.left.num_rows(), bench.right.num_rows(), bench.matches, hard, 5,
      0.6, &rng);

  std::vector<er::RowPair> all;
  for (size_t l = 0; l < bench.left.num_rows(); ++l) {
    for (size_t r = 0; r < bench.right.num_rows(); ++r) all.push_back({l, r});
  }

  RunScores out;
  er::DeepErConfig dcfg;
  dcfg.epochs = epochs;
  dcfg.learning_rate = 1e-2f;
  dcfg.seed = seed;
  er::DeepEr deeper(&words, dcfg);
  deeper.FitWeights({&bench.left, &bench.right});
  deeper.Train(bench.left, bench.right, train);
  out.deeper = er::Evaluate(deeper.Match(bench.left, bench.right, all, 0.9),
                            bench.matches);

  er::FeatureMatcher feature(bench.left.schema(), {16}, 0.01f, epochs, seed);
  feature.Train(bench.left, bench.right, train);
  out.feature = er::Evaluate(feature.Match(bench.left, bench.right, all),
                             bench.matches);

  er::ThresholdMatcher rule(0.5);
  out.rule =
      er::Evaluate(rule.Match(bench.left, bench.right, all), bench.matches);
  return out;
}

const char* DomainName(datagen::ErDomain d) {
  switch (d) {
    case datagen::ErDomain::kProducts: return "products";
    case datagen::ErDomain::kPersons: return "persons";
    case datagen::ErDomain::kCitations: return "citations";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "deeper";
  spec.experiment = "Experiment F5a — DeepER framework (Figure 5, Sec. 5.2)";
  spec.claim =
      "F1 of DeepER (no feature engineering) vs feature-engineered ML and\n"
      "threshold-rule baselines, across domains and dirtiness. Expected\n"
      "shape: DeepER competitive throughout; rule baseline collapses as\n"
      "dirtiness/synonym noise grows.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    PrintRow({"domain/dirtiness", "DeepER-F1", "FeatML-F1", "Rule-F1",
              "DeepER-P", "DeepER-R"});
    std::vector<double> dirts =
        b.quick() ? std::vector<double>{0.2, 0.6}
                  : std::vector<double>{0.2, 0.4, 0.6};
    for (datagen::ErDomain domain :
         {datagen::ErDomain::kProducts, datagen::ErDomain::kPersons,
          datagen::ErDomain::kCitations}) {
      for (double dirt : dirts) {
        double synonyms = domain == datagen::ErDomain::kProducts ? dirt : 0.0;
        RunScores s = RunOne(domain, dirt, synonyms, b.seed(),
                             b.Size(150, 80), b.Size(40, 20));
        std::string label =
            std::string(DomainName(domain)) + " d=" + Fmt(dirt, 1);
        PrintRow({label, Fmt(s.deeper.f1), Fmt(s.feature.f1), Fmt(s.rule.f1),
                  Fmt(s.deeper.precision), Fmt(s.deeper.recall)});
        b.Report(std::string(DomainName(domain)) + "_d" +
                     FmtInt(static_cast<size_t>(dirt * 10)),
                 {{"deeper_f1", s.deeper.f1},
                  {"featml_f1", s.feature.f1},
                  {"rule_f1", s.rule.f1}});
      }
    }
    std::printf(
        "\nNote: FeatML uses %zu hand-designed per-attribute similarity\n"
        "features; DeepER uses only pre-trained embeddings (ease-of-use\n"
        "claim of Sec. 5.2).\n",
        er::HandcraftedFeatureDim(
            datagen::GenerateErBenchmark({}).left.schema()));
    return 0;
  });
}
