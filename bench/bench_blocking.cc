// Experiment F5b (Figure 5 / Sec. 5.2, efficiency): LSH blocking over
// distributed tuple representations vs classical single-attribute
// blocking. Shape: LSH sees all attributes, so it reaches recall levels
// attribute blocking cannot, and its recall/size frontier is tunable via
// (bits, tables).
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "blocking";
  spec.experiment =
      "Experiment F5b — LSH blocking vs attribute blocking (Sec. 5.2)";
  spec.claim =
      "Pair-completeness (recall of true matches) vs candidate-set size.\n"
      "Expected shape: attribute blocking caps out at low recall because\n"
      "it keys on ONE dirty attribute; LSH over tuple embeddings reaches\n"
      "high recall, trading candidate volume via (bits, tables).";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = b.Size(300, 120);
    cfg.dirtiness = 0.5;
    cfg.synonym_rate = 0.5;
    cfg.seed = b.seed();
    datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);

    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 6;
    wcfg.sgns.seed = 5;
    embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
        {&bench.left, &bench.right}, wcfg);

    er::DeepErConfig dcfg;
    er::DeepEr model(&words, dcfg);
    model.FitWeights({&bench.left, &bench.right});
    std::vector<std::vector<float>> lv, rv;
    for (size_t i = 0; i < bench.left.num_rows(); ++i) {
      lv.push_back(model.EmbedTupleVector(bench.left.row(i)));
    }
    for (size_t i = 0; i < bench.right.num_rows(); ++i) {
      rv.push_back(model.EmbedTupleVector(bench.right.row(i)));
    }

    PrintRow({"method", "recall", "candidates", "reduction"});
    size_t total = bench.left.num_rows() * bench.right.num_rows();
    std::printf("(cross product = %zu pairs, %zu true matches)\n", total,
                bench.matches.size());
    double best_attr_recall = 0.0;
    for (size_t col = 0; col < bench.left.num_columns(); ++col) {
      auto cands = er::AttributeBlocking(bench.left, bench.right, col);
      double recall = er::PairCompleteness(cands, bench.matches);
      best_attr_recall = std::max(best_attr_recall, recall);
      PrintRow({"attr[" + bench.left.schema().column(col).name + "]",
                Fmt(recall), FmtInt(cands.size()),
                Fmt(er::ReductionRatio(cands.size(), lv.size(), rv.size()))});
    }
    b.Report("attribute", {{"best_recall", best_attr_recall}});
    for (size_t bits : {4, 6, 8}) {
      for (size_t tables : {4, 8, 16}) {
        er::LshBlocker lsh(words.dim(), bits, tables, 21);
        auto cands = lsh.Candidates(lv, rv);
        double recall = er::PairCompleteness(cands, bench.matches);
        double reduction =
            er::ReductionRatio(cands.size(), lv.size(), rv.size());
        PrintRow({"lsh b=" + FmtInt(bits) + " t=" + FmtInt(tables),
                  Fmt(recall), FmtInt(cands.size()), Fmt(reduction)});
        // The gated corner points only: full grid rows stay table-only.
        if ((bits == 6 && tables == 16) || (bits == 8 && tables == 4)) {
          b.Report("lsh_b" + FmtInt(bits) + "_t" + FmtInt(tables),
                   {{"recall", recall},
                    {"candidates", static_cast<double>(cands.size())},
                    {"reduction", reduction}});
        }
      }
    }
    for (size_t k : {5, 10}) {
      er::AnnBlocker knn(k);
      auto cands = knn.Candidates(lv, rv);
      double recall = er::PairCompleteness(cands, bench.matches);
      double reduction = er::ReductionRatio(cands.size(), lv.size(), rv.size());
      PrintRow({"knn k=" + FmtInt(k), Fmt(recall), FmtInt(cands.size()),
                Fmt(reduction)});
      b.Report("knn_k" + FmtInt(k),
               {{"recall", recall},
                {"candidates", static_cast<double>(cands.size())},
                {"reduction", reduction}});
    }
    // Quantized kNN arm (DESIGN.md §11): same blocker over an int8
    // graph. Candidates are a recall set — no rescoring — so this gates
    // that quantized retrieval keeps pair-completeness.
    {
      ann::HnswConfig qcfg = ann::ConfigFromEnv();
      qcfg.quant = nn::kernels::Quant::kInt8;
      er::AnnBlocker knn(10, qcfg);
      auto cands = knn.Candidates(lv, rv);
      double recall = er::PairCompleteness(cands, bench.matches);
      double reduction = er::ReductionRatio(cands.size(), lv.size(), rv.size());
      PrintRow({"knn k=10 int8", Fmt(recall), FmtInt(cands.size()),
                Fmt(reduction)});
      b.Report("knn_k10_int8",
               {{"recall", recall},
                {"candidates", static_cast<double>(cands.size())},
                {"reduction", reduction}});
    }
    return 0;
  });
}
