// Experiment C5 (Sec. 6.2.2/6.2.4): taming DL's hunger for labels.
// Part 1 — data augmentation: ER F1 vs number of hand labels, with and
// without label-preserving augmentation. Shape: augmentation recovers
// most of the full-supervision F1 from a fraction of the labels.
// Part 2 — weak supervision: the generative label model vs majority
// vote over noisy labeling functions. Shape: the label model wins when
// LF quality is uneven.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"
#include "src/text/similarity.h"
#include "src/weak/augment.h"
#include "src/weak/labeling.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {
std::string RowText(const data::Row& row) {
  std::string out;
  for (const data::Value& v : row) {
    if (!v.is_null()) {
      out += v.ToString();
      out += " ";
    }
  }
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "weak_supervision";
  spec.experiment =
      "Experiment C5 — label-efficiency: augmentation (Sec. 6.2.2)";
  spec.claim =
      "ER F1 vs number of labeled matches, with and without label-\n"
      "preserving augmentation of the positives; then the generative\n"
      "label model vs majority vote over noisy labeling functions.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = b.Size(150, 80);
    cfg.dirtiness = 0.5;
    cfg.synonym_rate = 0.4;
    cfg.seed = b.seed();
    datagen::ErBenchmark bench = datagen::GenerateErBenchmark(cfg);
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 6;
    wcfg.sgns.seed = 5;
    embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
        {&bench.left, &bench.right}, wcfg);

    std::vector<er::RowPair> all;
    for (size_t l = 0; l < bench.left.num_rows(); ++l) {
      for (size_t r = 0; r < bench.right.num_rows(); ++r) {
        all.push_back({l, r});
      }
    }

    PrintRow({"#labeled matches", "plain F1", "augmented F1"});
    for (size_t labels :
         {size_t{5}, size_t{15}, size_t{40}, bench.matches.size()}) {
      size_t n = std::min(labels, bench.matches.size());
      std::vector<er::RowPair> some(bench.matches.begin(),
                                    bench.matches.begin() + n);
      Rng rng(7);
      auto train = er::SampleTrainingPairs(bench.left.num_rows(),
                                           bench.right.num_rows(), some, 5,
                                           &rng);
      // Plain.
      er::DeepErConfig dcfg;
      dcfg.epochs = b.Size(30, 15);
      dcfg.learning_rate = 1e-2f;
      er::DeepEr plain(&words, dcfg);
      plain.FitWeights({&bench.left, &bench.right});
      plain.Train(bench.left, bench.right, train);
      er::PrfScore s_plain = er::Evaluate(
          plain.Match(bench.left, bench.right, all, 0.9), bench.matches);
      // Augmented: perturb positives into extra synthetic matches.
      data::Table right_aug = bench.right;
      weak::AugmentConfig acfg;
      acfg.copies_per_positive = 2;
      acfg.cell_perturb_prob = 0.15;  // gentle: the rows are already dirty
      auto aug_train =
          weak::AugmentErTrainingPairs(bench.left, &right_aug, train, acfg);
      er::DeepEr augmented(&words, dcfg);
      augmented.FitWeights({&bench.left, &right_aug});
      augmented.Train(bench.left, right_aug, aug_train);
      er::PrfScore s_aug = er::Evaluate(
          augmented.Match(bench.left, bench.right, all, 0.9), bench.matches);
      PrintRow({FmtInt(n), Fmt(s_plain.f1), Fmt(s_aug.f1)});
      // Gate only the interesting low-label corner (and keep the label
      // count stable across quick/full runs).
      if (labels == 15) {
        b.Report("labels_15",
                 {{"plain_f1", s_plain.f1}, {"augmented_f1", s_aug.f1}});
      }
    }

    // ---- Part 2: weak supervision on candidate pairs -------------------
    PrintHeader(
        "Experiment C5b — weak supervision: label model vs majority vote",
        "Labeling functions over candidate pairs (name similarity, price\n"
        "gap, category equality, a deliberately-noisy heuristic). Shape:\n"
        "the EM label model learns LF accuracies and beats majority vote.");

    // Candidate pairs: blocked cross product (keeps it balanced enough).
    auto candidates = er::AttributeBlocking(bench.left, bench.right, 0);
    std::vector<int> truth;
    for (const er::RowPair& p : candidates) {
      truth.push_back(datagen::IsMatch(bench, p.first, p.second) ? 1 : 0);
    }

    std::vector<weak::LabelingFunction> lfs;
    lfs.push_back({"jaccard>0.55", [&](size_t i) {
                     double s = text::TokenJaccard(
                         RowText(bench.left.row(candidates[i].first)),
                         RowText(bench.right.row(candidates[i].second)));
                     if (s > 0.55) return 1;
                     if (s < 0.2) return 0;
                     return weak::kAbstain;
                   }});
    lfs.push_back({"price within 10%", [&](size_t i) {
                     const data::Value& a =
                         bench.left.at(candidates[i].first, 3);
                     const data::Value& b2 =
                         bench.right.at(candidates[i].second, 3);
                     if (a.is_null() || b2.is_null()) return weak::kAbstain;
                     double x = a.ToNumeric(), y = b2.ToNumeric();
                     double rel = std::fabs(x - y) / std::max({x, y, 1e-9});
                     return rel < 0.1 ? 1 : 0;
                   }});
    lfs.push_back({"model jw>0.8", [&](size_t i) {
                     const data::Value& a =
                         bench.left.at(candidates[i].first, 1);
                     const data::Value& b2 =
                         bench.right.at(candidates[i].second, 1);
                     if (a.is_null() || b2.is_null()) return weak::kAbstain;
                     return text::JaroWinklerSimilarity(a.ToString(),
                                                        b2.ToString()) > 0.8
                                ? 1
                                : 0;
                   }});
    // Deliberately poor LF: same category => match (brands share cats).
    lfs.push_back({"same category (noisy)", [&](size_t i) {
                     const data::Value& a =
                         bench.left.at(candidates[i].first, 2);
                     const data::Value& b2 =
                         bench.right.at(candidates[i].second, 2);
                     if (a.is_null() || b2.is_null()) return weak::kAbstain;
                     return a.ToString() == b2.ToString() ? 1 : 0;
                   }});

    auto votes = weak::ApplyLabelingFunctions(lfs, candidates.size());
    auto mv = weak::MajorityVote(votes);
    weak::LabelModel model;
    auto lm = model.FitPredict(votes);

    auto accuracy = [&](const std::vector<double>& probs) {
      size_t hit = 0;
      for (size_t i = 0; i < probs.size(); ++i) {
        if ((probs[i] >= 0.5 ? 1 : 0) == truth[i]) ++hit;
      }
      return static_cast<double>(hit) / probs.size();
    };
    double mv_acc = accuracy(mv);
    double lm_acc = accuracy(lm);
    PrintRow({"method", "label acc"});
    PrintRow({"majority vote", Fmt(mv_acc)});
    PrintRow({"generative label model", Fmt(lm_acc)});
    std::printf("\nlearned LF accuracies:\n");
    for (size_t j = 0; j < lfs.size(); ++j) {
      std::printf("  %-24s %.3f\n", lfs[j].name.c_str(),
                  model.accuracies()[j]);
    }
    b.Report("label_model", {{"majority_vote_accuracy", mv_acc},
                             {"label_model_accuracy", lm_acc}});
    return 0;
  });
}
