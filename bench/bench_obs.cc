// Experiment OBS — the observability layer's price and product.
//
// Two questions: (1) what does the instrumentation cost on a real
// workload, and (2) what does one snapshot of a full AutoCurator run
// look like? For (1) the bench A/B-runs the bench_pipeline workload
// (the F1 end-to-end curation of a dirty product lake) with recording
// paused (obs::SetEnabled(false)) vs live, plus nanosecond microbenches
// of the individual record paths. Acceptance: <2% wall-clock overhead.
// For (2) it resets the registry, runs one instrumented curation, and
// prints the text + JSON snapshot covering ThreadPool, kernels,
// TensorPool, Trainer, and pipeline-stage metrics.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/core/autocurator.h"
#include "src/datagen/er_benchmark.h"
#include "src/obs/export.h"
#include "src/obs/live.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

// The bench_pipeline (F1) lake: one dirty duplicated catalog plus two
// distractor tables.
std::vector<data::Table> BuildLake(size_t entities) {
  datagen::ErBenchmarkConfig pcfg;
  pcfg.domain = datagen::ErDomain::kProducts;
  pcfg.num_entities = entities;
  pcfg.overlap = 0.6;
  pcfg.dirtiness = 0.25;
  pcfg.synonym_rate = 0.0;
  pcfg.null_rate = 0.12;
  pcfg.seed = 9;
  datagen::ErBenchmark pbench = datagen::GenerateErBenchmark(pcfg);
  data::Table catalog(pbench.left.schema(), "product_catalog");
  for (size_t r = 0; r < pbench.left.num_rows(); ++r) {
    catalog.AppendRow(pbench.left.row(r));
  }
  for (size_t r = 0; r < pbench.right.num_rows(); ++r) {
    catalog.AppendRow(pbench.right.row(r));
  }

  datagen::ErBenchmarkConfig dcfg1;
  dcfg1.domain = datagen::ErDomain::kPersons;
  dcfg1.num_entities = 60;
  dcfg1.seed = 10;
  data::Table people = datagen::GenerateErBenchmark(dcfg1).left;
  people.set_name("employee_directory");

  datagen::ErBenchmarkConfig dcfg2;
  dcfg2.domain = datagen::ErDomain::kCitations;
  dcfg2.num_entities = 60;
  dcfg2.seed = 11;
  data::Table papers = datagen::GenerateErBenchmark(dcfg2).left;
  papers.set_name("publication_list");

  return {people, catalog, papers};
}

double RunCuration(const std::vector<data::Table>& lake) {
  core::AutoCuratorConfig cfg;
  cfg.task_query = "product brand model price catalog";
  cfg.max_tables = 1;
  cfg.seed = 4;
  core::AutoCurator curator(cfg);
  Timer timer;
  auto result = curator.Curate(lake);
  double seconds = timer.Seconds();
  if (!result.ok()) {
    std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  return seconds;
}

double MinSeconds(const std::vector<data::Table>& lake, size_t reps) {
  double best = 1e100;
  for (size_t i = 0; i < reps; ++i) best = std::min(best, RunCuration(lake));
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "obs";
  spec.experiment = "Experiment OBS — observability overhead and snapshot";
  spec.claim =
      "A/B of the F1 end-to-end curation workload with metric recording\n"
      "paused vs live (same binary, runtime switch), microbenches of the\n"
      "record paths, then one instrumented run's full snapshot.\n"
      "Acceptance: <2% wall-clock overhead with recording live.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    std::vector<data::Table> lake = BuildLake(b.Size(120, 60));

    // Warm up caches, the thread pool, and metric registrations once.
    obs::SetEnabled(true);
    RunCuration(lake);

    obs::SetEnabled(false);
    double off_s = MinSeconds(lake, b.repeats());
    obs::SetEnabled(true);
    double on_s = MinSeconds(lake, b.repeats());
    double overhead_pct = (on_s - off_s) / off_s * 100.0;

    // ---- Microbenches of the individual record paths.
    auto& reg = obs::MetricsRegistry::Global();
    obs::Counter* counter = reg.GetCounter("bench.micro.counter");
    obs::Gauge* gauge = reg.GetGauge("bench.micro.gauge");
    obs::Histogram* hist = reg.GetHistogram("bench.micro.hist");
    const size_t kMicroOps = b.Size(2'000'000, 500'000);
    Timer t1;
    for (size_t i = 0; i < kMicroOps; ++i) counter->Inc();
    double counter_ns = t1.Seconds() / static_cast<double>(kMicroOps) * 1e9;
    Timer t2;
    for (size_t i = 0; i < kMicroOps; ++i) gauge->Set(static_cast<double>(i));
    double gauge_ns = t2.Seconds() / static_cast<double>(kMicroOps) * 1e9;
    Timer t3;
    for (size_t i = 0; i < kMicroOps; ++i) {
      hist->Record(static_cast<double>(i & 1023));
    }
    double hist_ns = t3.Seconds() / static_cast<double>(kMicroOps) * 1e9;
    const size_t kSpanOps = b.Size(200'000, 50'000);
    Timer t4;
    for (size_t i = 0; i < kSpanOps; ++i) {
      obs::Span s("bench.micro.span");
    }
    double span_ns = t4.Seconds() / static_cast<double>(kSpanOps) * 1e9;
    obs::ClearSpans();

    // Labeled hot path: resolve an existing child through the family's
    // shared lock, then the same sharded inc — what the serve layer
    // pays per completed request for its per-tenant breakdown.
    obs::LabeledCounter* labeled =
        reg.GetLabeledCounter("bench.micro.labeled", "tenant");
    labeled->WithLabel("acme")->Inc();  // materialize outside the loop
    Timer t5;
    for (size_t i = 0; i < kMicroOps; ++i) labeled->WithLabel("acme")->Inc();
    double labeled_ns = t5.Seconds() / static_cast<double>(kMicroOps) * 1e9;

    // One sliding-quantile tick diffs every bucket of a busy histogram
    // — the entire per-tick cost of live p50/p99 gauges (the request
    // hot path pays nothing).
    obs::SlidingQuantile sq(hist, 8);
    const size_t kTickOps = b.Size(100'000, 20'000);
    Timer t6;
    for (size_t i = 0; i < kTickOps; ++i) {
      hist->Record(static_cast<double>(i & 1023));
      sq.Tick();
    }
    double sq_tick_ns = t6.Seconds() / static_cast<double>(kTickOps) * 1e9;
    double sq_p99 = sq.Quantile(0.99);  // keep the window live
    if (sq_p99 != sq_p99) sq_p99 = 0.0;

    PrintRow({"measurement", "value", "target"});
    PrintRow({"workload off (s)", Fmt(off_s, 2), "-"});
    PrintRow({"workload on (s)", Fmt(on_s, 2), "-"});
    PrintRow({"overhead (%)", Fmt(overhead_pct, 2), "< 2.00"});
    PrintRow({"counter inc (ns)", Fmt(counter_ns, 1), "-"});
    PrintRow({"gauge set (ns)", Fmt(gauge_ns, 1), "-"});
    PrintRow({"histogram record (ns)", Fmt(hist_ns, 1), "-"});
    PrintRow({"span (ns)", Fmt(span_ns, 1), "-"});
    PrintRow({"labeled counter inc (ns)", Fmt(labeled_ns, 1), "-"});
    PrintRow({"sliding quantile tick (ns)", Fmt(sq_tick_ns, 1), "-"});

    // ---- One clean instrumented run -> the full snapshot.
    reg.ResetValues();
    obs::ClearSpans();
    RunCuration(lake);
    obs::MetricsSnapshot snap = reg.Snapshot();
    std::vector<obs::SpanRecord> spans = obs::TakeSpans();
    std::printf("\n%s",
                obs::FormatText(snap, spans, /*max_spans=*/25).c_str());
    std::printf("METRICS_JSON %s\n\n", obs::FormatJson(snap).c_str());

    b.Report("overhead", {{"workload_off_s", off_s},
                          {"workload_on_s", on_s},
                          {"overhead_pct", overhead_pct}});
    b.Report("micro", {{"counter_inc_ns", counter_ns},
                       {"gauge_set_ns", gauge_ns},
                       {"hist_record_ns", hist_ns},
                       {"span_ns", span_ns},
                       {"num_metrics",
                        static_cast<double>(reg.num_metrics())}});
    b.Report("live", {{"labeled_inc_ns", labeled_ns},
                      {"sq_tick_ns", sq_tick_ns},
                      {"sq_window_p99", sq_p99}});
    return 0;
  });
}
