#ifndef AUTODC_BENCH_BENCH_UTIL_H_
#define AUTODC_BENCH_BENCH_UTIL_H_

// Shared table-printing helpers for the experiment harnesses. Every
// bench binary prints the paper-shaped rows for one experiment id from
// DESIGN.md's index.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace autodc::bench {

/// Prints a header box naming the experiment.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer: first cell 28 chars, rest 12.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(size_t v) { return std::to_string(v); }

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock seconds of `fn()`, minimum over `reps` runs (minimum is
/// the standard noise-robust statistic for bench loops).
template <typename Fn>
double TimeSeconds(Fn&& fn, size_t reps = 1) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double s = t.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// JSON string escaping per RFC 8259: backslash, quote, and all control
/// characters (U+0000..U+001F) must be escaped. Applied to keys and
/// string values alike — a key with a tab or newline in it used to
/// produce an unparseable RESULT_JSON line.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Tiny JSON object builder so every bench can emit one machine-readable
/// result line next to its human-readable table. Values are inserted in
/// call order; nested objects go in via SetRaw(child.str()).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return SetRaw(key, buf);
  }
  JsonObject& Set(const std::string& key, size_t v) {
    return SetRaw(key, std::to_string(v));
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return SetRaw(key, "\"" + JsonEscape(v) + "\"");
  }
  /// Inserts `raw` verbatim — for numbers formatted elsewhere or nested
  /// JsonObject::str() payloads. The key is still escaped.
  JsonObject& SetRaw(const std::string& key, const std::string& raw) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + JsonEscape(key) + "\":" + raw;
    return *this;
  }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

/// Prints one `RESULT_JSON {...}` line; the prefix lets scripts grep the
/// machine-readable record out of the table output.
inline void PrintJsonLine(const JsonObject& o) {
  std::printf("RESULT_JSON %s\n", o.str().c_str());
}

}  // namespace autodc::bench

#endif  // AUTODC_BENCH_BENCH_UTIL_H_
