#ifndef AUTODC_BENCH_BENCH_UTIL_H_
#define AUTODC_BENCH_BENCH_UTIL_H_

// Shared table-printing helpers for the experiment harnesses. Every
// bench binary prints the paper-shaped rows for one experiment id from
// DESIGN.md's index.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/json.h"

namespace autodc::bench {

// The RESULT_JSON writer lives in src/common/json.h so the obs snapshot
// exporter and the benches share one escaping/number-formatting path
// (NaN/Inf metric values emit as `null`, never as invalid JSON).
using ::autodc::JsonEscape;
using ::autodc::JsonObject;

/// Prints a header box naming the experiment.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer: first cell 28 chars, rest 12.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(size_t v) { return std::to_string(v); }

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  void Reset() { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Wall-clock seconds of `fn()`, minimum over `reps` runs (minimum is
/// the standard noise-robust statistic for bench loops).
template <typename Fn>
double TimeSeconds(Fn&& fn, size_t reps = 1) {
  double best = 0.0;
  for (size_t r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double s = t.Seconds();
    if (r == 0 || s < best) best = s;
  }
  return best;
}

/// Prints one `RESULT_JSON {...}` line; the prefix lets scripts grep the
/// machine-readable record out of the table output.
inline void PrintJsonLine(const JsonObject& o) {
  std::printf("RESULT_JSON %s\n", o.str().c_str());
}

}  // namespace autodc::bench

#endif  // AUTODC_BENCH_BENCH_UTIL_H_
