#ifndef AUTODC_BENCH_BENCH_UTIL_H_
#define AUTODC_BENCH_BENCH_UTIL_H_

// Shared table-printing helpers for the experiment harnesses. Every
// bench binary prints the paper-shaped rows for one experiment id from
// DESIGN.md's index.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace autodc::bench {

/// Prints a header box naming the experiment.
inline void PrintHeader(const std::string& experiment,
                        const std::string& claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer: first cell 28 chars, rest 12.
inline void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string FmtInt(size_t v) { return std::to_string(v); }

/// Wall-clock timer.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace autodc::bench

#endif  // AUTODC_BENCH_BENCH_UTIL_H_
