// Curation server bench (DESIGN.md §13): closed-loop load generator
// against the batched serving path vs the unbatched sequential oracle.
// Shape: with ONE worker thread and several pipelined clients, micro-
// batching coalesces concurrent score requests into single batched
// forwards and sustains >= 4x the sequential QPS — the speedup is
// Gemm amortization, not parallelism. Responses stay byte-identical
// to the sequential path and nothing is rejected at this load.
#include <algorithm>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/data/table.h"
#include "src/obs/live.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/request.h"
#include "src/serve/server.h"
#include "src/serve/session.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

using data::Row;
using data::Schema;
using data::Table;
using data::Value;
using data::ValueType;
using serve::CurationServer;
using serve::RequestKind;
using serve::ServeConfig;
using serve::ServeRequest;
using serve::ServeResponse;

/// The serving dataset: mixed numeric/categorical with nulls and a
/// planted outlier, same shape the serve tests use.
Table ServingTable(size_t rows) {
  Schema schema({{"id", ValueType::kInt},
                 {"price", ValueType::kDouble},
                 {"qty", ValueType::kInt},
                 {"category", ValueType::kString}});
  Table t(schema, "serving");
  const char* cats[] = {"tools", "toys", "food", "books"};
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.push_back(Value(static_cast<int64_t>(r)));
    if (r % 13 == 5) {
      row.push_back(Value::Null());
    } else if (r == 7) {
      row.push_back(Value(1e6));  // planted outlier
    } else {
      row.push_back(Value(10.0 + 0.25 * static_cast<double>(r % 40)));
    }
    row.push_back(Value(static_cast<int64_t>(r % 9)));
    row.push_back(Value(std::string(cats[r % 4])));
    if (!t.AppendRow(std::move(row)).ok()) break;
  }
  return t;
}

/// The timed workload: score-pair requests (the coalescable kind) with
/// deterministic pseudo-random row pairs.
std::vector<ServeRequest> ScoreRequests(uint64_t session, size_t rows,
                                        size_t count) {
  std::vector<ServeRequest> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ServeRequest r;
    r.session = session;
    r.tenant = "bench";
    r.kind = RequestKind::kScorePair;
    r.row_a = (i * 2654435761u) % rows;
    r.row_b = (i * 40503u + 13) % rows;
    reqs.push_back(std::move(r));
  }
  return reqs;
}

/// A request mix covering every kind — the byte-identity sweep.
std::vector<ServeRequest> MixedRequests(uint64_t session, size_t rows,
                                        size_t count) {
  std::vector<ServeRequest> reqs;
  reqs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    ServeRequest r;
    r.session = session;
    r.tenant = "bench";
    switch (i % 4) {
      case 0:
      case 1:
        r.kind = RequestKind::kScorePair;
        r.row_a = i % rows;
        r.row_b = (i * 7 + 3) % rows;
        break;
      case 2:
        r.kind = RequestKind::kOutlierCheck;
        r.row_a = i % rows;
        r.col = 1;
        break;
      default:
        r.kind = RequestKind::kNearestRows;
        r.row_a = i % rows;
        r.k = 3;
        break;
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "serve";
  spec.experiment = "Batched curation serving vs sequential (DESIGN.md s13)";
  spec.claim =
      "One worker + pipelined clients: micro-batching coalesces score\n"
      "requests into batched forwards for >= 4x sequential QPS on a\n"
      "single core, byte-identical responses, zero rejects at this load.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const size_t rows = b.Size(512, 192);
    const size_t total_requests = b.Size(16384, 4096);
    const size_t num_clients = 4;
    const size_t window = 128;  // requests per SubmitMany call

    ServeConfig cfg;
    cfg.threads = 1;  // the speedup must come from batching, not cores
    cfg.queue_cap = 4096;
    cfg.batch_max = 128;
    cfg.batch_wait_us = 200;
    // Each client is its own tenant with room for its whole pipeline: a
    // client wakes from Wait() slightly before the worker decrements its
    // previous window, so the cap must absorb two windows in flight.
    cfg.tenant_inflight_cap = 4 * window;
    cfg.session.seed = b.seed();
    // The deep-and-narrow head from DESIGN.md §13: per-call dispatch
    // overhead dominates per-row compute, the regime micro-batching is
    // built to amortize.
    cfg.session.scorer_hidden = {24, 24, 24, 24};

    Table table = ServingTable(rows);
    CurationServer server(cfg);
    Timer build_timer;
    auto opened = server.OpenSessionFromTable(table);
    if (!opened.ok()) {
      std::fprintf(stderr, "OpenSessionFromTable: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    double build_ms = build_timer.Seconds() * 1e3;
    uint64_t session = opened.ValueOrDie();

    std::vector<ServeRequest> reqs = ScoreRequests(session, rows, total_requests);

    // Sequential arm: the unbatched inline path, one thread, no queue —
    // the oracle QPS a non-serving caller would get.
    double seq_ms = b.TimeMs([&] {
      for (const ServeRequest& r : reqs) server.ExecuteSequential(r);
    });

    // Pre-slice each client's share into windows (request construction
    // is not serving cost), tagging each client as its own tenant.
    std::vector<std::vector<std::vector<ServeRequest>>> client_windows(
        num_clients);
    for (size_t start = 0, w = 0; start < reqs.size(); start += window, ++w) {
      size_t c = w % num_clients;
      size_t end = std::min(start + window, reqs.size());
      std::vector<ServeRequest> win(reqs.begin() + start, reqs.begin() + end);
      for (ServeRequest& r : win) r.tenant = "client-" + std::to_string(c);
      client_windows[c].push_back(std::move(win));
    }

    // Served arm: closed-loop clients each submit their windows back to
    // back (one completion handle per window, one wakeup per window —
    // not per request). Window wait times double as the client-observed
    // latency distribution.
    std::vector<double> window_ms;
    std::mutex window_mu;
    auto run_clients = [&](std::vector<double>* latencies) {
      std::vector<std::thread> clients;
      clients.reserve(num_clients);
      for (size_t c = 0; c < num_clients; ++c) {
        clients.emplace_back([&, c, latencies] {
          std::vector<double> local;
          local.reserve(client_windows[c].size());
          for (const std::vector<ServeRequest>& win : client_windows[c]) {
            Timer t;
            auto pending = server.SubmitMany(win);
            pending->Wait();
            local.push_back(t.Seconds() * 1e3);
          }
          if (latencies != nullptr) {
            std::lock_guard<std::mutex> lock(window_mu);
            latencies->insert(latencies->end(), local.begin(), local.end());
          }
        });
      }
      for (std::thread& t : clients) t.join();
    };
    double serve_ms = b.TimeMs([&] { run_clients(&window_ms); });

    CurationServer::Stats stats = server.stats();
    double submitted = static_cast<double>(stats.admitted +
                                           stats.rejected_queue_full +
                                           stats.rejected_tenant_cap);
    double reject_rate =
        submitted > 0.0
            ? static_cast<double>(stats.rejected_queue_full +
                                  stats.rejected_tenant_cap) /
                  submitted
            : 0.0;

    // Observed arm: the same closed-loop load with the live monitor
    // ticking at 250ms — sliding-window quantile gauges, SLO checks,
    // per-tenant labeled rollups, and an atomically rewritten snapshot
    // file, all riding on the exporter thread. Acceptance: <= 2% QPS
    // overhead vs the unmonitored served arm.
    const std::string snap_path = "bench_serve.live.json";
    obs::LiveMonitorConfig mon;
    mon.interval_ms = 250;
    mon.window_ticks = 8;
    mon.snapshot_path = snap_path;
    mon.slo.p99_us = 1e9;  // engaged but never tripping
    bool monitor_started = obs::StartLiveMonitor(mon);
    uint64_t ticks_before = obs::LiveMonitorTicks();
    // Seed tick: attaches the window estimators to the serve histograms
    // (which exist after the served arm) so the post-run tick below
    // absorbs this arm's recordings as window deltas.
    obs::LiveMonitorTickForTest();
    double observed_ms = b.TimeMs([&] { run_clients(nullptr); });
    // At least one tick so the run exercised a real snapshot write.
    obs::LiveMonitorTickForTest();
    uint64_t monitor_ticks = obs::LiveMonitorTicks() - ticks_before;
    if (monitor_started) obs::StopLiveMonitor();
    double live_p99_us = 0.0;
    if (const obs::Gauge* g =
            obs::MetricsRegistry::Global().FindGauge("serve.latency_p99")) {
      live_p99_us = g->Value();
    }
    std::remove(snap_path.c_str());

    // Byte-identity sweep over a mixed request set: every served
    // response must compare equal (bit-for-bit on scores) to the
    // sequential oracle for the same request.
    std::vector<ServeRequest> mixed =
        MixedRequests(session, rows, b.Size(1024, 512));
    std::vector<ServeResponse> expected;
    expected.reserve(mixed.size());
    for (const ServeRequest& r : mixed) {
      expected.push_back(server.ExecuteSequential(r));
    }
    size_t identical = 0;
    for (size_t start = 0; start < mixed.size(); start += window) {
      size_t end = std::min(start + window, mixed.size());
      std::vector<ServeRequest> win(mixed.begin() + start,
                                    mixed.begin() + end);
      auto pending = server.SubmitMany(win);  // keeps Wait()'s vector alive
      const std::vector<ServeResponse>& got = pending->Wait();
      for (size_t i = 0; i < got.size(); ++i) {
        if (got[i] == expected[start + i]) ++identical;
      }
    }
    double correctness =
        mixed.empty() ? 1.0
                      : static_cast<double>(identical) /
                            static_cast<double>(mixed.size());

    // Traced arm: a fresh server with every request traced
    // (admission → batch → execute under one trace id). The worker
    // span buffer is sized so a full run drops nothing; the submitting
    // thread raises its own cap to match.
    obs::ClearSpans();
    ServeConfig traced_cfg = cfg;
    traced_cfg.trace_sample = 1.0;
    size_t spans_dropped = 0;
    size_t serve_spans = 0;
    double traced_ms = 0.0;
    {
      CurationServer traced(traced_cfg);
      auto topen = traced.OpenSessionFromTable(table);
      if (!topen.ok()) {
        std::fprintf(stderr, "traced OpenSessionFromTable: %s\n",
                     topen.status().ToString().c_str());
        return 1;
      }
      std::vector<ServeRequest> treqs =
          ScoreRequests(topen.ValueOrDie(), rows, total_requests);
      // The session build just recorded its own library spans against
      // the submitting thread's default-capacity buffer; they are not
      // the subject here and their overflow is not a serving drop.
      obs::ClearSpans();
      // One timed pass (not TimeMs): repeats would re-fill the span
      // buffers and turn the zero-drop check into a buffer-size check.
      obs::SetThreadSpanBufferCap(traced_cfg.worker_span_buffer);
      Timer traced_timer;
      for (size_t start = 0; start < treqs.size(); start += window) {
        size_t end = std::min(start + window, treqs.size());
        std::vector<ServeRequest> win(treqs.begin() + start,
                                      treqs.begin() + end);
        traced.SubmitMany(win)->Wait();
      }
      traced_ms = traced_timer.Seconds() * 1e3;
      obs::SetThreadSpanBufferCap(0);
      traced.Stop();  // workers join; their buffers hold the worker side
      spans_dropped = static_cast<size_t>(obs::SpansDropped());
      for (const obs::SpanRecord& s : obs::TakeSpans()) {
        if (s.name.rfind("serve.", 0) == 0) ++serve_spans;
      }
      obs::ClearSpans();
    }

    double n = static_cast<double>(total_requests);
    double qps_seq = seq_ms > 0.0 ? n / (seq_ms / 1e3) : 0.0;
    double qps_serve = serve_ms > 0.0 ? n / (serve_ms / 1e3) : 0.0;
    double qps_observed = observed_ms > 0.0 ? n / (observed_ms / 1e3) : 0.0;
    double qps_traced = traced_ms > 0.0 ? n / (traced_ms / 1e3) : 0.0;
    double monitor_overhead_pct =
        qps_serve > 0.0 ? (qps_serve - qps_observed) / qps_serve * 100.0 : 0.0;
    double speedup = serve_ms > 0.0 ? seq_ms / serve_ms : 0.0;
    double p50 = Percentile(window_ms, 0.50);
    double p99 = Percentile(window_ms, 0.99);
    double mean_batch = stats.MeanBatch();

    PrintRow({"metric", "value"});
    PrintRow({"rows / requests", FmtInt(rows) + " / " + FmtInt(total_requests)});
    PrintRow({"session_build_ms", Fmt(build_ms, 1)});
    PrintRow({"qps_sequential", Fmt(qps_seq, 0)});
    PrintRow({"qps_serve", Fmt(qps_serve, 0)});
    PrintRow({"qps_observed", Fmt(qps_observed, 0)});
    PrintRow({"monitor_overhead_pct", Fmt(monitor_overhead_pct, 2)});
    PrintRow({"monitor_ticks", FmtInt(monitor_ticks)});
    PrintRow({"live_p99_us", Fmt(live_p99_us, 1)});
    PrintRow({"qps_traced", Fmt(qps_traced, 0)});
    PrintRow({"serve_spans", FmtInt(serve_spans)});
    PrintRow({"spans_dropped", FmtInt(spans_dropped)});
    PrintRow({"speedup", Fmt(speedup, 2)});
    PrintRow({"mean_batch", Fmt(mean_batch, 2)});
    PrintRow({"window_p50_ms", Fmt(p50, 3)});
    PrintRow({"window_p99_ms", Fmt(p99, 3)});
    PrintRow({"reject_rate", Fmt(reject_rate, 4)});
    PrintRow({"correctness", Fmt(correctness, 4)});

    b.Report("build", {{"session_build_ms", build_ms},
                       {"rows", static_cast<double>(rows)}});
    b.Report("throughput", {{"qps_sequential", qps_seq},
                            {"qps_serve", qps_serve},
                            {"speedup", speedup},
                            {"mean_batch", mean_batch}});
    b.Report("latency", {{"window_p50_ms", p50}, {"window_p99_ms", p99}});
    b.Report("admission",
             {{"reject_rate", reject_rate}, {"correctness", correctness}});
    b.Report("observability",
             {{"qps_observed", qps_observed},
              {"monitor_overhead_pct", monitor_overhead_pct},
              {"qps_traced", qps_traced},
              {"spans_dropped", static_cast<double>(spans_dropped)}});
    server.Stop();
    return 0;
  });
}
