#ifndef AUTODC_BENCH_CHECK_H_
#define AUTODC_BENCH_CHECK_H_

// The comparison half of the bench regression harness: joins a
// committed baseline document (bench/baselines/BENCH_<name>.json) with
// a fresh results document (a --out file from the same bench) on
// (result name, metric name) and classifies each metric as within
// tolerance or regressed. tools/bench_check is a thin CLI over
// CheckDirs(); tests drive CompareDocs() directly.
//
// Tolerances are fractional bands. Lookup order for metric `m` of
// result `r`: the baseline file's "tolerances" object at key "r.m",
// then "m", then "default"; then the caller's default (CLI --tolerance,
// which overrides the file's "default" when given). Direction is
// derived from the metric name (DirectionForMetric): wall-clock-ish
// names regress only when they grow, quality-ish names only when they
// shrink, everything else is two-sided.

#include <string>
#include <vector>

#include "src/common/json_parse.h"

namespace autodc::bench {

enum class MetricDirection {
  kLowerIsBetter,   ///< times, bytes, losses, error rates
  kHigherIsBetter,  ///< speedups, throughput, F1/recall/accuracy
  kTwoSided,        ///< anything else: drift either way is a failure
};

/// Classifies a metric name by suffix/stem conventions used across the
/// bench tree (_ns/_us/_ms/_s/_bytes/loss/error → lower; speedup/
/// gflops/_per_s/f1/recall/precision/accuracy/hit_rate → higher).
MetricDirection DirectionForMetric(const std::string& name);

struct CheckOptions {
  double default_tolerance = 0.35;
  /// True when the caller set default_tolerance explicitly (CLI
  /// --tolerance); it then overrides the baseline file's "default".
  bool tolerance_is_override = false;
};

/// One compared metric (or a structural problem with one).
struct MetricCheckRow {
  std::string label;   ///< bench/file label, e.g. "kernels"
  std::string result;  ///< result row name, e.g. "dot_n4096"
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double tolerance = 0.0;
  MetricDirection direction = MetricDirection::kTwoSided;
  bool ok = true;
  std::string note;  ///< human explanation when !ok (or "skipped: ...")
};

struct CheckReport {
  std::vector<MetricCheckRow> rows;
  /// File-level problems: unreadable/malformed docs, missing results
  /// files. Any entry fails the check.
  std::vector<std::string> errors;

  size_t failures() const {
    size_t n = 0;
    for (const MetricCheckRow& r : rows) {
      if (!r.ok) ++n;
    }
    return n;
  }
  bool ok() const { return failures() == 0 && errors.empty(); }
};

/// Compares one parsed baseline doc against one parsed results doc.
/// Every baseline metric must be present and within band in `results`;
/// extra metrics/results in `results` are ignored (new benches don't
/// fail old baselines). Appends rows/errors to `report`.
void CompareDocs(const std::string& label, const JsonValue& baseline,
                 const JsonValue& results, const CheckOptions& options,
                 CheckReport* report);

/// Directory driver: for every BENCH_*.json under `baseline_dir`,
/// parses it and its namesake under `results_dir` and compares. A
/// baseline without a results file, or either side failing to parse,
/// is a file-level error.
CheckReport CheckDirs(const std::string& baseline_dir,
                      const std::string& results_dir,
                      const CheckOptions& options);

/// Human rendering: one line per failed metric (plus a summary); with
/// `verbose` every compared metric gets a line.
std::string FormatCheckReport(const CheckReport& report, bool verbose);

}  // namespace autodc::bench

#endif  // AUTODC_BENCH_CHECK_H_
