// Experiment C4 (Sec. 6.1, "Deep Learning is Computing Heavy"): wall-
// clock cost of the DC models on a single CPU core, via google-benchmark.
// Shape: the paper's counterpoint holds — a DeepER-style light-weight
// model "can be trained in a matter of minutes even on a CPU" (here:
// seconds at benchmark scale), and prediction is comparable to classical
// ML inference.
#include <benchmark/benchmark.h>

#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/deeper.h"
#include "src/cleaning/imputation.h"
#include "src/nn/autoencoder.h"

using namespace autodc;  // NOLINT

namespace {

struct Fixture {
  datagen::ErBenchmark bench;
  embedding::EmbeddingStore words;
  std::vector<er::PairLabel> train;

  Fixture() {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = 100;
    cfg.dirtiness = 0.4;
    cfg.seed = 17;
    bench = datagen::GenerateErBenchmark(cfg);
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 4;
    wcfg.sgns.seed = 5;
    words = embedding::TrainWordEmbeddingsFromTables(
        {&bench.left, &bench.right}, wcfg);
    Rng rng(7);
    train = er::SampleTrainingPairs(bench.left.num_rows(),
                                    bench.right.num_rows(), bench.matches, 5,
                                    &rng);
  }
};

Fixture& GetFixture() {
  static Fixture* f = new Fixture();
  return *f;
}

void BM_Word2VecPretraining(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = static_cast<size_t>(state.range(0));
    wcfg.sgns.seed = 5;
    auto store = embedding::TrainWordEmbeddingsFromTables(
        {&f.bench.left, &f.bench.right}, wcfg);
    benchmark::DoNotOptimize(store.size());
  }
}
BENCHMARK(BM_Word2VecPretraining)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_DeepErTrainAverage(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    er::DeepErConfig cfg;
    cfg.epochs = static_cast<size_t>(state.range(0));
    er::DeepEr model(&f.words, cfg);
    model.FitWeights({&f.bench.left, &f.bench.right});
    benchmark::DoNotOptimize(
        model.Train(f.bench.left, f.bench.right, f.train));
  }
}
BENCHMARK(BM_DeepErTrainAverage)->Arg(10)->Arg(25)->Unit(benchmark::kMillisecond);

void BM_DeepErTrainLstm(benchmark::State& state) {
  Fixture& f = GetFixture();
  std::vector<er::PairLabel> small(f.train.begin(),
                                   f.train.begin() +
                                       std::min<size_t>(60, f.train.size()));
  for (auto _ : state) {
    er::DeepErConfig cfg;
    cfg.composition = er::TupleComposition::kLstm;
    cfg.lstm_hidden = 8;
    cfg.epochs = 2;
    cfg.max_tokens_per_tuple = 12;
    er::DeepEr model(&f.words, cfg);
    benchmark::DoNotOptimize(
        model.Train(f.bench.left, f.bench.right, small));
  }
}
BENCHMARK(BM_DeepErTrainLstm)->Unit(benchmark::kMillisecond);

void BM_DeepErPredict(benchmark::State& state) {
  Fixture& f = GetFixture();
  static er::DeepEr* model = []() {
    Fixture& f2 = GetFixture();
    er::DeepErConfig cfg;
    cfg.epochs = 10;
    auto* m = new er::DeepEr(&f2.words, cfg);
    m->FitWeights({&f2.bench.left, &f2.bench.right});
    m->Train(f2.bench.left, f2.bench.right, f2.train);
    return m;
  }();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.train[i % f.train.size()];
    benchmark::DoNotOptimize(model->PredictProba(
        f.bench.left.row(p.left), f.bench.right.row(p.right)));
    ++i;
  }
}
BENCHMARK(BM_DeepErPredict)->Unit(benchmark::kMicrosecond);

void BM_ClassicalFeaturePredict(benchmark::State& state) {
  Fixture& f = GetFixture();
  static er::FeatureMatcher* model = []() {
    Fixture& f2 = GetFixture();
    auto* m = new er::FeatureMatcher(f2.bench.left.schema(), {16}, 0.01f, 10,
                                     3);
    m->Train(f2.bench.left, f2.bench.right, f2.train);
    return m;
  }();
  size_t i = 0;
  for (auto _ : state) {
    const auto& p = f.train[i % f.train.size()];
    benchmark::DoNotOptimize(model->PredictProba(
        f.bench.left.row(p.left), f.bench.right.row(p.right)));
    ++i;
  }
}
BENCHMARK(BM_ClassicalFeaturePredict)->Unit(benchmark::kMicrosecond);

void BM_DaeImputerTrain(benchmark::State& state) {
  Fixture& f = GetFixture();
  for (auto _ : state) {
    cleaning::DaeImputerConfig cfg;
    cfg.epochs = 20;
    cleaning::DaeImputer imputer(cfg);
    imputer.Fit(f.bench.left);
    benchmark::DoNotOptimize(&imputer);
  }
}
BENCHMARK(BM_DaeImputerTrain)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
