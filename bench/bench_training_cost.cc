// Experiment C4 (Sec. 6.1, "Deep Learning is Computing Heavy"): wall-
// clock cost of the DC models on a single CPU core. Shape: the paper's
// counterpoint holds — a DeepER-style light-weight model "can be trained
// in a matter of minutes even on a CPU" (here: seconds at benchmark
// scale), and prediction is comparable to classical ML inference.
#include <algorithm>
#include <cstdio>

#include "bench/harness.h"
#include "src/cleaning/imputation.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/deeper.h"
#include "src/nn/autoencoder.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

struct Fixture {
  datagen::ErBenchmark bench;
  embedding::EmbeddingStore words;
  std::vector<er::PairLabel> train;

  Fixture(uint64_t seed, size_t entities) {
    datagen::ErBenchmarkConfig cfg;
    cfg.domain = datagen::ErDomain::kProducts;
    cfg.num_entities = entities;
    cfg.dirtiness = 0.4;
    cfg.seed = seed;
    bench = datagen::GenerateErBenchmark(cfg);
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 24;
    wcfg.sgns.epochs = 4;
    wcfg.sgns.seed = 5;
    words = embedding::TrainWordEmbeddingsFromTables(
        {&bench.left, &bench.right}, wcfg);
    Rng rng(7);
    train = er::SampleTrainingPairs(bench.left.num_rows(),
                                    bench.right.num_rows(), bench.matches, 5,
                                    &rng);
  }
};

// Keeps results alive so -O2 cannot fold the timed loops away.
volatile double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "training_cost";
  spec.experiment = "Experiment C4 — training/inference cost on CPU (Sec. 6.1)";
  spec.claim =
      "Wall clock of the DC models' train and predict paths. Shape: the\n"
      "light-weight DeepER-style models train in seconds at benchmark\n"
      "scale; prediction is comparable to classical ML inference.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    Fixture f(b.seed(), b.Size(100, 50));

    PrintRow({"path", "wall ms"});

    double w2v_ms = b.TimeMs([&] {
      embedding::Word2VecConfig wcfg;
      wcfg.sgns.dim = 24;
      wcfg.sgns.epochs = 4;
      wcfg.sgns.seed = 5;
      auto store = embedding::TrainWordEmbeddingsFromTables(
          {&f.bench.left, &f.bench.right}, wcfg);
      g_sink = static_cast<double>(store.size());
    });
    PrintRow({"word2vec pretrain (4 ep)", Fmt(w2v_ms, 2)});

    double deeper_train_ms = b.TimeMs([&] {
      er::DeepErConfig cfg;
      cfg.epochs = 25;
      er::DeepEr model(&f.words, cfg);
      model.FitWeights({&f.bench.left, &f.bench.right});
      model.Train(f.bench.left, f.bench.right, f.train);
      g_sink = model.last_train_result().final_train_loss;
    });
    PrintRow({"deeper train (25 ep, avg)", Fmt(deeper_train_ms, 2)});

    std::vector<er::PairLabel> small(
        f.train.begin(),
        f.train.begin() + std::min<size_t>(60, f.train.size()));
    double lstm_train_ms = b.TimeMs([&] {
      er::DeepErConfig cfg;
      cfg.composition = er::TupleComposition::kLstm;
      cfg.lstm_hidden = 8;
      cfg.epochs = 2;
      cfg.max_tokens_per_tuple = 12;
      er::DeepEr model(&f.words, cfg);
      model.Train(f.bench.left, f.bench.right, small);
      g_sink = model.last_train_result().final_train_loss;
    });
    PrintRow({"deeper train (lstm, 2 ep)", Fmt(lstm_train_ms, 2)});

    er::DeepErConfig pcfg;
    pcfg.epochs = 10;
    er::DeepEr deeper_model(&f.words, pcfg);
    deeper_model.FitWeights({&f.bench.left, &f.bench.right});
    deeper_model.Train(f.bench.left, f.bench.right, f.train);
    const size_t kPredicts = 200;
    double deeper_predict_ms = b.TimeMs([&] {
      for (size_t i = 0; i < kPredicts; ++i) {
        const auto& p = f.train[i % f.train.size()];
        g_sink = deeper_model.PredictProba(f.bench.left.row(p.left),
                                           f.bench.right.row(p.right));
      }
    });
    double deeper_predict_us = deeper_predict_ms / kPredicts * 1e3;
    PrintRow({"deeper predict (us)", Fmt(deeper_predict_us, 2)});

    er::FeatureMatcher feat_model(f.bench.left.schema(), {16}, 0.01f, 10, 3);
    feat_model.Train(f.bench.left, f.bench.right, f.train);
    double feat_predict_ms = b.TimeMs([&] {
      for (size_t i = 0; i < kPredicts; ++i) {
        const auto& p = f.train[i % f.train.size()];
        g_sink = feat_model.PredictProba(f.bench.left.row(p.left),
                                         f.bench.right.row(p.right));
      }
    });
    double feat_predict_us = feat_predict_ms / kPredicts * 1e3;
    PrintRow({"classical predict (us)", Fmt(feat_predict_us, 2)});

    double dae_train_ms = b.TimeMs([&] {
      cleaning::DaeImputerConfig cfg;
      cfg.epochs = 20;
      cleaning::DaeImputer imputer(cfg);
      imputer.Fit(f.bench.left);
      g_sink = 1.0;
    });
    PrintRow({"dae imputer fit (20 ep)", Fmt(dae_train_ms, 2)});

    b.Report("train", {{"word2vec_ms", w2v_ms},
                       {"deeper_avg_ms", deeper_train_ms},
                       {"deeper_lstm_ms", lstm_train_ms},
                       {"dae_fit_ms", dae_train_ms}});
    b.Report("predict", {{"deeper_us", deeper_predict_us},
                         {"classical_us", feat_predict_us}});
    return 0;
  });
}
