// Experiment F2 (Figure 2, Sec. 2.1): the DL architecture zoo. Each
// architecture is trained on the task family it was designed for plus a
// mismatched task. Shape: architecture/task fit matters — the LSTM wins
// on order-sensitive sequences, the CNN on local-pattern inputs, the DAE
// on corrupted reconstruction, the VAE yields a structured latent space,
// and the GAN converges toward discriminator accuracy ~0.5.
#include <cstdio>

#include "bench/harness.h"
#include "src/nn/autoencoder.h"
#include "src/nn/classifier.h"
#include "src/nn/gan.h"
#include "src/nn/optimizer.h"
#include "src/nn/rnn.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

// ---- Task A: order-sensitive sequence classification (parity of -1s).
// The MLP sees the same multiset for both classes -> chance; the LSTM
// tracks order/state.
struct SeqExample {
  std::vector<float> seq;
  int label;
};

std::vector<SeqExample> MakeParityData(size_t n, size_t len, Rng* rng) {
  std::vector<SeqExample> data;
  for (size_t i = 0; i < n; ++i) {
    SeqExample e;
    int parity = 0;
    for (size_t t = 0; t < len; ++t) {
      bool neg = rng->Bernoulli(0.5);
      if (neg) parity ^= 1;
      e.seq.push_back(neg ? -1.0f : 1.0f);
    }
    e.label = parity;
    data.push_back(std::move(e));
  }
  return data;
}

double LstmParityAccuracy(const std::vector<SeqExample>& train,
                          const std::vector<SeqExample>& test, Rng* rng) {
  nn::LstmEncoder enc(1, 8, false, rng);
  nn::Linear head(8, 1, rng);
  std::vector<nn::VarPtr> params = enc.Parameters();
  for (const nn::VarPtr& p : head.Parameters()) params.push_back(p);
  nn::Adam opt(params, 0.02f);
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (const SeqExample& e : train) {
      std::vector<nn::VarPtr> seq;
      for (float x : e.seq) {
        seq.push_back(nn::Constant(nn::Tensor({1}, {x})));
      }
      nn::VarPtr logit = head.Forward(enc.Encode(seq), true);
      nn::Tensor target({1, 1});
      target.at(0, 0) = static_cast<float>(e.label);
      nn::VarPtr loss = nn::BceWithLogitsLoss(logit, target);
      nn::Backward(loss);
      opt.ClipGradients(1.0f);
      opt.Step();
    }
  }
  size_t correct = 0;
  for (const SeqExample& e : test) {
    std::vector<nn::VarPtr> seq;
    for (float x : e.seq) seq.push_back(nn::Constant(nn::Tensor({1}, {x})));
    nn::VarPtr logit = head.Forward(enc.Encode(seq), false);
    if ((logit->value[0] > 0.0f ? 1 : 0) == e.label) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

double MlpParityAccuracy(const std::vector<SeqExample>& train,
                         const std::vector<SeqExample>& test, Rng* rng) {
  nn::ClassifierConfig cfg;
  cfg.input_dim = train[0].seq.size();
  cfg.hidden = {16};
  cfg.learning_rate = 0.02f;
  nn::BinaryClassifier clf(cfg, rng);
  nn::Batch x;
  std::vector<int> y;
  for (const SeqExample& e : train) {
    x.push_back(e.seq);
    y.push_back(e.label);
  }
  clf.Train(x, y, 30);
  size_t correct = 0;
  for (const SeqExample& e : test) {
    if (clf.Predict(e.seq) == e.label) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

// ---- Task B: local-pattern detection. A "motif" [1,-1,1] appears at a
// random position in a noise sequence (label 1) or not (label 0). The
// CNN's shared kernel finds it anywhere; the MLP must learn every
// position separately.
std::vector<SeqExample> MakeMotifData(size_t n, size_t len, Rng* rng) {
  std::vector<SeqExample> data;
  for (size_t i = 0; i < n; ++i) {
    SeqExample e;
    e.seq.assign(len, 0.0f);
    for (float& x : e.seq) x = static_cast<float>(rng->Normal(0, 0.3));
    e.label = rng->Bernoulli(0.5) ? 1 : 0;
    if (e.label == 1) {
      size_t pos = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(len) - 3));
      e.seq[pos] = 1.0f;
      e.seq[pos + 1] = -1.0f;
      e.seq[pos + 2] = 1.0f;
    }
    data.push_back(std::move(e));
  }
  return data;
}

double CnnMotifAccuracy(const std::vector<SeqExample>& train,
                        const std::vector<SeqExample>& test, Rng* rng) {
  nn::Conv1D conv(1, 4, 3, rng);
  nn::Linear head(4, 1, rng);
  std::vector<nn::VarPtr> params = conv.Parameters();
  for (const nn::VarPtr& p : head.Parameters()) params.push_back(p);
  nn::Adam opt(params, 0.02f);
  auto forward = [&](const SeqExample& e, bool train_mode) {
    nn::Tensor in({e.seq.size(), 1});
    for (size_t t = 0; t < e.seq.size(); ++t) in.at(t, 0) = e.seq[t];
    nn::VarPtr feat =
        nn::GlobalMaxPoolRows(conv.Forward(nn::Constant(in), train_mode));
    return head.Forward(feat, train_mode);
  };
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (const SeqExample& e : train) {
      nn::VarPtr logit = forward(e, true);
      nn::Tensor target({1, 1});
      target.at(0, 0) = static_cast<float>(e.label);
      nn::VarPtr loss = nn::BceWithLogitsLoss(logit, target);
      nn::Backward(loss);
      opt.ClipGradients(1.0f);
      opt.Step();
    }
  }
  size_t correct = 0;
  for (const SeqExample& e : test) {
    if ((forward(e, false)->value[0] > 0.0f ? 1 : 0) == e.label) ++correct;
  }
  return static_cast<double>(correct) / test.size();
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "architectures";
  spec.experiment = "Experiment F2 — DL architecture zoo (Figure 2)";
  spec.claim =
      "Each architecture on its matched vs mismatched task. Shape:\n"
      "architecture/task fit decides accuracy — the paper's motivation\n"
      "for DC-specific architectures (Sec. 3.2).";
  spec.default_seed = 1;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    Rng rng(b.seed());
    // Task A: parity, with a LENGTH-GENERALIZATION split: train on
    // length-4 sequences, test on length-4 AND length-8. The recurrent
    // model learns the 2-state automaton and transfers; the MLP's input
    // width is welded to the training length — it cannot even consume
    // longer sequences (the "RNN processes input one step at a time"
    // point of Sec. 2.1).
    auto parity_train = MakeParityData(b.Size(800, 400), 4, &rng);
    auto parity_test4 = MakeParityData(200, 4, &rng);
    auto parity_test8 = MakeParityData(200, 8, &rng);
    Rng m1(2), m2(2);
    double lstm_parity4 = LstmParityAccuracy(parity_train, parity_test4, &m1);
    Rng m1b(2);
    double lstm_parity8 =
        LstmParityAccuracy(parity_train, parity_test8, &m1b);
    double mlp_parity4 = MlpParityAccuracy(parity_train, parity_test4, &m2);

    // Task B: motif.
    auto motif_train = MakeMotifData(100, 12, &rng);  // small: sample eff.
    auto motif_test = MakeMotifData(150, 12, &rng);
    Rng m3(3), m4(3);
    double cnn_motif = CnnMotifAccuracy(motif_train, motif_test, &m3);
    double mlp_motif = MlpParityAccuracy(motif_train, motif_test, &m4);

    PrintRow({"task", "LSTM", "CNN", "MLP"});
    PrintRow({"parity len=4 (trained)", Fmt(lstm_parity4, 2), "-",
              Fmt(mlp_parity4, 2)});
    PrintRow({"parity len=8 (transfer)", Fmt(lstm_parity8, 2), "-",
              "n/a"});
    PrintRow({"local motif", "-", Fmt(cnn_motif, 2), Fmt(mlp_motif, 2)});
    b.Report("parity", {{"lstm_accuracy", lstm_parity4},
                        {"lstm_transfer_accuracy", lstm_parity8},
                        {"mlp_accuracy", mlp_parity4}});
    b.Report("motif", {{"cnn_accuracy", cnn_motif},
                       {"mlp_accuracy", mlp_motif}});

    // Autoencoder family on corrupted reconstruction.
    std::printf("\nAutoencoder family — reconstruct a corrupted cell from a\n"
                "2-D manifold in 6-D space (error in restoring the zeroed\n"
                "coordinate; lower is better):\n");
    Rng data_rng(4);
    nn::Batch data;
    for (int i = 0; i < 250; ++i) {
      float u = static_cast<float>(data_rng.Uniform(-1, 1));
      float v = static_cast<float>(data_rng.Uniform(-1, 1));
      data.push_back({u, v, u + v, u - v, 0.5f * u, 0.5f * v});
    }
    PrintRow({"variant", "restore err", "", "", ""});
    std::vector<std::pair<std::string, double>> ae_metrics;
    for (auto kind :
         {nn::AutoencoderKind::kPlain, nn::AutoencoderKind::kSparse,
          nn::AutoencoderKind::kDenoising, nn::AutoencoderKind::kVariational}) {
      Rng ar(5);
      nn::AutoencoderConfig acfg;
      acfg.input_dim = 6;
      acfg.hidden_dim = 4;
      acfg.activation = nn::Activation::kTanh;
      acfg.kl_weight = 0.02f;
      nn::Autoencoder ae(kind, acfg, &ar);
      ae.Train(data, b.Size(50, 25));
      double err = 0.0;
      for (int i = 0; i < 50; ++i) {
        std::vector<float> corrupted = data[static_cast<size_t>(i)];
        float truth = corrupted[2];
        corrupted[2] = 0.0f;
        err += std::fabs(ae.Reconstruct(corrupted)[2] - truth);
      }
      const char* name = kind == nn::AutoencoderKind::kPlain ? "AE"
                         : kind == nn::AutoencoderKind::kSparse ? "Sparse AE"
                         : kind == nn::AutoencoderKind::kDenoising
                             ? "Denoising AE"
                             : "Variational AE";
      PrintRow({name, Fmt(err / 50.0), "", "", ""});
      const char* key = kind == nn::AutoencoderKind::kPlain ? "plain_err"
                        : kind == nn::AutoencoderKind::kSparse ? "sparse_err"
                        : kind == nn::AutoencoderKind::kDenoising
                            ? "denoising_err"
                            : "vae_err";
      ae_metrics.emplace_back(key, err / 50.0);
    }
    b.Report("autoencoders", ae_metrics);

    // GAN: discriminator accuracy drifting toward 0.5 = equilibrium.
    std::printf("\nGAN (Figure 2(i)) — discriminator accuracy per epoch\n"
                "(1.0 = generator fooled nobody; ~0.5 = equilibrium):\n");
    Rng grng(6);
    nn::Batch real;
    for (int i = 0; i < 200; ++i) {
      real.push_back({static_cast<float>(0.5 + grng.Uniform(-0.1, 0.1)),
                      static_cast<float>(-0.5 + grng.Uniform(-0.1, 0.1))});
    }
    nn::GanConfig gcfg;
    gcfg.latent_dim = 4;
    gcfg.data_dim = 2;
    gcfg.hidden_dim = 16;
    nn::Gan gan(gcfg, &grng);
    PrintRow({"epoch", "D accuracy", "", "", ""});
    double final_d_acc = 1.0;
    for (int block = 0; block < 5; ++block) {
      nn::Gan::StepStats stats = gan.Train(real, 8);
      final_d_acc = stats.d_accuracy;
      PrintRow({FmtInt(static_cast<size_t>((block + 1) * 8)),
                Fmt(stats.d_accuracy, 2), "", "", ""});
    }
    b.Report("gan", {{"final_d_accuracy", final_d_acc}});
    return 0;
  });
}
