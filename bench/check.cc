#include "bench/check.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace autodc::bench {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace

MetricDirection DirectionForMetric(const std::string& name) {
  static const char* kLowerSuffixes[] = {"_ns", "_us", "_ms",      "_s",
                                         "_seconds", "_bytes", "_err",
                                         "_error",   "_pct"};
  static const char* kHigherSuffixes[] = {"speedup",  "gflops",   "_per_s",
                                          "f1",       "recall",   "precision",
                                          "accuracy", "hit_rate", "top1",
                                          "top3"};
  for (const char* s : kLowerSuffixes) {
    if (EndsWith(name, s)) return MetricDirection::kLowerIsBetter;
  }
  if (name == "wall_ms" || Contains(name, "loss") ||
      Contains(name, "overhead") || Contains(name, "dropped") ||
      Contains(name, "reject")) {
    return MetricDirection::kLowerIsBetter;
  }
  // Name-derived, position-independent: "recall_at_10", "qps_ann",
  // "throughput_int8" or "hit_rate_top5" should gate as higher-is-better
  // even though no suffix matches.
  if (Contains(name, "recall") || Contains(name, "qps") ||
      Contains(name, "speedup") || Contains(name, "throughput") ||
      Contains(name, "hit_rate")) {
    return MetricDirection::kHigherIsBetter;
  }
  for (const char* s : kHigherSuffixes) {
    if (EndsWith(name, s)) return MetricDirection::kHigherIsBetter;
  }
  return MetricDirection::kTwoSided;
}

namespace {

double ToleranceFor(const JsonValue& baseline_doc, const std::string& result,
                    const std::string& metric, const CheckOptions& options) {
  const JsonValue* tolerances = baseline_doc.Find("tolerances");
  if (tolerances != nullptr && tolerances->is_object()) {
    if (const JsonValue* t = tolerances->Find(result + "." + metric)) {
      if (t->is_number()) return t->number_value;
    }
    if (const JsonValue* t = tolerances->Find(metric)) {
      if (t->is_number()) return t->number_value;
    }
    if (!options.tolerance_is_override) {
      if (const JsonValue* t = tolerances->Find("default")) {
        if (t->is_number()) return t->number_value;
      }
    }
  }
  return options.default_tolerance;
}

/// results[] array → map from row name to its metrics object.
const JsonValue* FindResultRow(const JsonValue& doc, const std::string& name) {
  const JsonValue* rows = doc.Find("results");
  if (rows == nullptr || !rows->is_array()) return nullptr;
  for (const JsonValue& row : rows->array) {
    const JsonValue* row_name = row.Find("name");
    if (row_name != nullptr && row_name->is_string() &&
        row_name->string_value == name) {
      return &row;
    }
  }
  return nullptr;
}

std::string Pct(double frac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", frac * 100.0);
  return buf;
}

MetricCheckRow CompareMetric(const std::string& label,
                             const std::string& result,
                             const std::string& metric, double base,
                             double cur, double tol) {
  MetricCheckRow row;
  row.label = label;
  row.result = result;
  row.metric = metric;
  row.baseline = base;
  row.current = cur;
  row.tolerance = tol;
  row.direction = DirectionForMetric(metric);
  double delta = base != 0.0 ? (cur - base) / std::fabs(base) : 0.0;
  switch (row.direction) {
    case MetricDirection::kLowerIsBetter:
      if (base == 0.0 ? cur > tol : delta > tol) {
        row.ok = false;
        row.note = "regressed +" + Pct(delta) + " (tol " + Pct(tol) + ")";
      }
      break;
    case MetricDirection::kHigherIsBetter:
      if (base == 0.0 ? cur < -tol : delta < -tol) {
        row.ok = false;
        row.note = "regressed " + Pct(delta) + " (tol " + Pct(tol) + ")";
      }
      break;
    case MetricDirection::kTwoSided:
      if (base == 0.0 ? std::fabs(cur) > tol : std::fabs(delta) > tol) {
        row.ok = false;
        row.note = "drifted " + Pct(delta) + " (two-sided tol " + Pct(tol) +
                   ")";
      }
      break;
  }
  return row;
}

}  // namespace

void CompareDocs(const std::string& label, const JsonValue& baseline,
                 const JsonValue& results, const CheckOptions& options,
                 CheckReport* report) {
  const JsonValue* base_rows = baseline.Find("results");
  if (base_rows == nullptr || !base_rows->is_array()) {
    report->errors.push_back(label + ": baseline has no results[] array");
    return;
  }
  for (const JsonValue& base_row : base_rows->array) {
    const JsonValue* name = base_row.Find("name");
    const JsonValue* base_metrics = base_row.Find("metrics");
    if (name == nullptr || !name->is_string() || base_metrics == nullptr ||
        !base_metrics->is_object()) {
      report->errors.push_back(label +
                               ": malformed baseline result row (needs "
                               "\"name\" and \"metrics\")");
      continue;
    }
    const std::string& result_name = name->string_value;
    const JsonValue* cur_row = FindResultRow(results, result_name);
    if (cur_row == nullptr) {
      MetricCheckRow row;
      row.label = label;
      row.result = result_name;
      row.ok = false;
      row.note = "result row missing from current run";
      report->rows.push_back(row);
      continue;
    }
    const JsonValue* cur_metrics = cur_row->Find("metrics");
    for (const auto& [metric, base_value] : base_metrics->object) {
      double tol = ToleranceFor(baseline, result_name, metric, options);
      MetricCheckRow row;
      row.label = label;
      row.result = result_name;
      row.metric = metric;
      row.tolerance = tol;
      if (base_value.is_null()) {
        // The writer maps NaN/Inf to null ("not measured") — nothing to
        // gate on.
        row.note = "skipped: baseline value is null";
        report->rows.push_back(row);
        continue;
      }
      if (!base_value.is_number()) {
        row.ok = false;
        row.note = "baseline value is not a number";
        report->rows.push_back(row);
        continue;
      }
      const JsonValue* cur_value =
          cur_metrics != nullptr ? cur_metrics->Find(metric) : nullptr;
      if (cur_value == nullptr) {
        row.ok = false;
        row.baseline = base_value.number_value;
        row.note = "metric missing from current run";
        report->rows.push_back(row);
        continue;
      }
      if (!cur_value->is_number()) {
        row.ok = false;
        row.baseline = base_value.number_value;
        row.note = cur_value->is_null() ? "metric became null (NaN/Inf)"
                                        : "metric is not a number";
        report->rows.push_back(row);
        continue;
      }
      report->rows.push_back(CompareMetric(label, result_name, metric,
                                           base_value.number_value,
                                           cur_value->number_value, tol));
    }
  }
}

CheckReport CheckDirs(const std::string& baseline_dir,
                      const std::string& results_dir,
                      const CheckOptions& options) {
  namespace fs = std::filesystem;
  CheckReport report;
  std::error_code ec;
  std::vector<fs::path> baselines;
  for (const auto& entry : fs::directory_iterator(baseline_dir, ec)) {
    const fs::path& p = entry.path();
    if (p.extension() == ".json" &&
        p.filename().string().rfind("BENCH_", 0) == 0) {
      baselines.push_back(p);
    }
  }
  if (ec) {
    report.errors.push_back("cannot read baseline dir '" + baseline_dir +
                            "': " + ec.message());
    return report;
  }
  if (baselines.empty()) {
    report.errors.push_back("no BENCH_*.json baselines under '" +
                            baseline_dir + "'");
    return report;
  }
  std::sort(baselines.begin(), baselines.end());

  auto load = [&report](const fs::path& path,
                        JsonValue* out) {
    std::ifstream in(path);
    if (!in) {
      report.errors.push_back("cannot open '" + path.string() + "'");
      return false;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    Result<JsonValue> parsed = ParseJson(buffer.str());
    if (!parsed.ok()) {
      report.errors.push_back("'" + path.string() +
                              "': " + parsed.status().ToString());
      return false;
    }
    *out = std::move(parsed).ValueOrDie();
    return true;
  };

  for (const fs::path& base_path : baselines) {
    // BENCH_kernels.json -> label "kernels"
    std::string stem = base_path.stem().string();
    std::string label =
        stem.rfind("BENCH_", 0) == 0 ? stem.substr(6) : stem;
    fs::path results_path = fs::path(results_dir) / base_path.filename();
    if (!fs::exists(results_path)) {
      report.errors.push_back(label + ": no results file '" +
                              results_path.string() +
                              "' (bench not run with --out?)");
      continue;
    }
    JsonValue baseline, results;
    if (!load(base_path, &baseline) || !load(results_path, &results)) {
      continue;
    }
    CompareDocs(label, baseline, results, options, &report);
  }
  return report;
}

std::string FormatCheckReport(const CheckReport& report, bool verbose) {
  std::ostringstream os;
  size_t compared = 0;
  for (const MetricCheckRow& row : report.rows) {
    if (!row.metric.empty() && row.note.rfind("skipped", 0) != 0) ++compared;
    if (!verbose && row.ok) continue;
    char line[512];
    std::snprintf(line, sizeof(line),
                  "%-6s %-18s %-28s %-16s base=%-12.6g cur=%-12.6g %s\n",
                  row.ok ? "ok" : "FAIL", row.label.c_str(),
                  (row.result + (row.metric.empty() ? "" : "." + row.metric))
                      .c_str(),
                  row.note.empty() ? "within tolerance" : row.note.c_str(),
                  row.baseline, row.current,
                  row.ok ? "" : "<<<");
    os << line;
  }
  for (const std::string& err : report.errors) {
    os << "ERROR  " << err << "\n";
  }
  os << "bench_check: " << compared << " metrics compared, "
     << report.failures() << " regressed, " << report.errors.size()
     << " errors -> " << (report.ok() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace autodc::bench
