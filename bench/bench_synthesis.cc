// Experiment C3 (Sec. 4 / 5.3, FlashFill [27]): program synthesis for
// data transformation. Shape: classic standardization tasks are
// recovered from <= 3 input-output examples; held-out accuracy rises
// with the number of examples (more examples prune overfit programs);
// and the SEMANTIC transformation (country -> capital) that no string
// program can express is solved by the embedding-offset learner.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/corpus.h"
#include "src/embedding/word2vec.h"
#include "src/synthesis/dsl.h"
#include "src/synthesis/semantic.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

struct Task {
  const char* name;
  std::vector<synthesis::Example> pool;  // first k train, rest held out
};

std::vector<Task> MakeTasks() {
  return {
      {"abbrev first name",
       {{"john smith", "J. Smith"},
        {"mary jones", "M. Jones"},
        {"carol davis", "C. Davis"},
        {"robert brown", "R. Brown"},
        {"linda wilson", "L. Wilson"},
        {"james taylor", "J. Taylor"}}},
      {"last, first -> first last",
       {{"smith, john", "john smith"},
        {"jones, mary", "mary jones"},
        {"davis, carol", "carol davis"},
        {"brown, robert", "robert brown"},
        {"wilson, linda", "linda wilson"}}},
      {"phone dashes",
       {{"555 123 4567", "555-123-4567"},
        {"800 555 0199", "800-555-0199"},
        {"212 867 5309", "212-867-5309"},
        {"310 555 2368", "310-555-2368"}}},
      {"uppercase code",
       {{"usa", "USA"}, {"uk", "UK"}, {"eu", "EU"}, {"un", "UN"}}},
      {"title-case city",
       {{"NEW york", "New York"},
        {"LOS angeles", "Los Angeles"},
        {"SAN diego", "San Diego"},
        {"LAS vegas", "Las Vegas"}}},
  };
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "synthesis";
  spec.experiment =
      "Experiment C3 — program synthesis for transformation (Sec. 4)";
  spec.claim =
      "Held-out accuracy of the synthesized program vs number of\n"
      "examples given. Shape: 1 example often suffices thanks to the\n"
      "token-over-constant ranking; 2-3 examples always do.";
  spec.default_seed = 7;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    PrintRow({"task", "k=1", "k=2", "k=3", "program (k=3)"});
    double k3_acc_sum = 0.0;
    size_t k3_tasks = 0;
    for (const Task& task : MakeTasks()) {
      std::vector<std::string> cells = {task.name};
      std::string program_text = "-";
      for (size_t k = 1; k <= 3; ++k) {
        std::vector<synthesis::Example> train(task.pool.begin(),
                                              task.pool.begin() + k);
        auto prog = synthesis::SynthesizeStringProgram(train);
        if (!prog.ok()) {
          cells.push_back("fail");
          continue;
        }
        size_t hit = 0, total = 0;
        for (size_t i = k; i < task.pool.size(); ++i) {
          ++total;
          if (prog.ValueOrDie().Apply(task.pool[i].input) ==
              task.pool[i].output) {
            ++hit;
          }
        }
        double acc = total > 0 ? static_cast<double>(hit) / total : 0.0;
        cells.push_back(total > 0 ? Fmt(acc, 2) : "n/a");
        if (k == 3) {
          program_text = prog.ValueOrDie().ToString();
          k3_acc_sum += acc;
          ++k3_tasks;
        }
      }
      cells.push_back(program_text);
      for (size_t i = 0; i < cells.size(); ++i) {
        std::printf(i == 0 ? "%-26s" : (i < 4 ? "%8s" : "  %s"),
                    cells[i].c_str());
      }
      std::printf("\n");
    }

    // Semantic transformation: beyond any string DSL.
    std::printf(
        "\nSemantic transformation (country -> capital) from 3 examples,\n"
        "via embedding offsets (string programs cannot express this):\n");
    datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 32;
    wcfg.sgns.epochs = b.Size(8, 4);
    wcfg.sgns.seed = b.seed();
    embedding::EmbeddingStore words =
        embedding::TrainWordEmbeddings(corpus.sentences, wcfg);
    synthesis::SemanticTransformLearner learner(&words);
    std::vector<synthesis::Example> train;
    for (size_t i = 0; i < 3; ++i) {
      train.push_back({corpus.country_capitals[i].first,
                       corpus.country_capitals[i].second});
    }
    learner.Fit(train).ok();
    // A string-DSL attempt on the same examples for contrast.
    auto dsl_try = synthesis::SynthesizeStringProgram(train);
    PrintRow({"input", "expected", "semantic", "string DSL"});
    size_t hits = 0, total = 0;
    for (size_t i = 3; i < corpus.country_capitals.size(); ++i) {
      const auto& [country, capital] = corpus.country_capitals[i];
      auto got = learner.Transform(country);
      std::string sem = got.ok() ? got.ValueOrDie() : "(error)";
      std::string dsl = dsl_try.ok() ? dsl_try.ValueOrDie().Apply(country)
                                     : "(no program)";
      if (sem == capital) ++hits;
      ++total;
      PrintRow({country, capital, sem, dsl});
    }
    std::printf("semantic accuracy: %zu/%zu; string DSL: %s\n", hits, total,
                dsl_try.ok() ? "found an overfit program" : "correctly fails");
    b.Report("string_dsl",
             {{"k3_accuracy", k3_tasks ? k3_acc_sum / k3_tasks : 0.0}});
    b.Report("semantic",
             {{"accuracy",
               total ? static_cast<double>(hits) / total : 0.0}});
    return 0;
  });
}
