// Experiment F3 (Figure 3, Sec. 2.2): local (one-hot) vs distributed
// representations. Shape: (a) distributed representations expose the
// semantic similarity structure that one-hot geometry cannot (all
// one-hot pairs are equidistant); (b) a downstream classifier trained on
// distributed inputs generalizes to words never seen in training, while
// the one-hot classifier cannot.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/corpus.h"
#include "src/embedding/word2vec.h"
#include "src/nn/classifier.h"
#include "src/text/similarity.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "representations";
  spec.experiment =
      "Experiment F3 — local vs distributed representations (Figure 3)";
  spec.claim =
      "Part 1: cosine similarity of related vs unrelated word pairs.\n"
      "One-hot vectors are orthogonal (similarity 0 for ALL distinct\n"
      "pairs); distributed vectors separate related from unrelated.";
  spec.default_seed = 7;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    datagen::SemanticCorpus corpus = datagen::GenerateSemanticCorpus();
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 32;
    wcfg.sgns.epochs = b.Size(8, 4);
    wcfg.sgns.seed = b.seed();
    embedding::EmbeddingStore words =
        embedding::TrainWordEmbeddings(corpus.sentences, wcfg);

    double rel = 0.0, unrel = 0.0;
    for (const auto& [a, c] : corpus.related_pairs) {
      rel += words.Similarity(a, c).ValueOr(0.0);
    }
    rel /= corpus.related_pairs.size();
    for (const auto& [a, c] : corpus.unrelated_pairs) {
      unrel += words.Similarity(a, c).ValueOr(0.0);
    }
    unrel /= corpus.unrelated_pairs.size();
    PrintRow({"pair type", "one-hot", "distributed"});
    PrintRow({"related (king,queen...)", Fmt(0.0), Fmt(rel)});
    PrintRow({"unrelated (king,paris...)", Fmt(0.0), Fmt(unrel)});
    PrintRow({"separation", Fmt(0.0), Fmt(rel - unrel)});

    // Part 2: downstream generalization. Task: classify words as royal
    // vs common. Train on a subset of words; test on held-out words.
    // One-hot features have no way to transfer; embeddings place unseen
    // royals near seen royals.
    struct Word {
      const char* w;
      int royal;
    };
    const Word all_words[] = {{"king", 1},   {"queen", 1}, {"prince", 1},
                              {"princess", 1}, {"man", 0},  {"woman", 0},
                              {"boy", 0},      {"girl", 0}};
    const int train_idx[] = {0, 1, 4, 5};  // king, queen, man, woman
    const int test_idx[] = {2, 3, 6, 7};   // prince, princess, boy, girl

    // Distributed classifier.
    Rng rng(3);
    nn::ClassifierConfig ccfg;
    ccfg.input_dim = words.dim();
    ccfg.hidden = {16};
    ccfg.learning_rate = 0.05f;
    nn::BinaryClassifier dist_clf(ccfg, &rng);
    nn::Batch x;
    std::vector<int> y;
    for (int i : train_idx) {
      x.push_back(*words.Find(all_words[i].w));
      y.push_back(all_words[i].royal);
    }
    dist_clf.Train(x, y, 300);
    int dist_correct = 0;
    for (int i : test_idx) {
      int pred = dist_clf.Predict(*words.Find(all_words[i].w));
      if (pred == all_words[i].royal) ++dist_correct;
    }

    // One-hot classifier over an 8-word vocabulary.
    Rng rng2(3);
    nn::ClassifierConfig ocfg;
    ocfg.input_dim = 8;
    ocfg.hidden = {16};
    ocfg.learning_rate = 0.05f;
    nn::BinaryClassifier onehot_clf(ocfg, &rng2);
    nn::Batch ox;
    std::vector<int> oy;
    for (int i : train_idx) {
      std::vector<float> v(8, 0.0f);
      v[static_cast<size_t>(i)] = 1.0f;
      ox.push_back(v);
      oy.push_back(all_words[i].royal);
    }
    onehot_clf.Train(ox, oy, 300);
    int onehot_correct = 0;
    for (int i : test_idx) {
      std::vector<float> v(8, 0.0f);
      v[static_cast<size_t>(i)] = 1.0f;
      if (onehot_clf.Predict(v) == all_words[i].royal) ++onehot_correct;
    }

    std::printf(
        "\nPart 2: royal-vs-common classifier, trained on {king,queen,man,\n"
        "woman}, tested on UNSEEN {prince,princess,boy,girl}:\n");
    PrintRow({"representation", "test acc"});
    PrintRow({"one-hot (local)", Fmt(onehot_correct / 4.0, 2)});
    PrintRow({"distributed", Fmt(dist_correct / 4.0, 2)});
    b.Report("similarity", {{"related_sim", rel},
                            {"unrelated_sim", unrel},
                            {"separation", rel - unrel}});
    b.Report("generalization",
             {{"onehot_accuracy", onehot_correct / 4.0},
              {"distributed_accuracy", dist_correct / 4.0}});
    return 0;
  });
}
