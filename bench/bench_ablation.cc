// Ablation study over DeepER's design choices (the knobs DESIGN.md calls
// out): SIF weighting, subword (trigram) fallback, hard-negative
// sampling, and per-attribute vs whole-tuple similarity features. Each
// row removes one ingredient from the full model on the same benchmark.
// Shape: SIF+subword weighting and the per-attribute similarity vector
// are the load-bearing ingredients; hard negatives are roughly neutral
// once those are in place.
#include <cstdio>

#include "bench/harness.h"
#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"
#include "src/er/features.h"
#include "src/nn/classifier.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

struct Setup {
  datagen::ErBenchmark bench;
  embedding::EmbeddingStore words;
  std::vector<er::PairLabel> hard_train;
  std::vector<er::PairLabel> random_train;
  std::vector<er::RowPair> all;
};

Setup MakeSetup(uint64_t seed, size_t entities) {
  Setup s;
  datagen::ErBenchmarkConfig cfg;
  cfg.domain = datagen::ErDomain::kProducts;
  cfg.num_entities = entities;
  cfg.dirtiness = 0.55;
  cfg.synonym_rate = 0.5;
  cfg.seed = seed;
  s.bench = datagen::GenerateErBenchmark(cfg);
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 6;
  wcfg.sgns.seed = 5;
  s.words = embedding::TrainWordEmbeddingsFromTables(
      {&s.bench.left, &s.bench.right}, wcfg);
  Rng rng(11);
  auto hard = er::AttributeBlocking(s.bench.left, s.bench.right, 0);
  s.hard_train = er::SampleTrainingPairsWithHardNegatives(
      s.bench.left.num_rows(), s.bench.right.num_rows(), s.bench.matches,
      hard, 5, 0.6, &rng);
  Rng rng2(11);
  s.random_train = er::SampleTrainingPairs(s.bench.left.num_rows(),
                                           s.bench.right.num_rows(),
                                           s.bench.matches, 5, &rng2);
  for (size_t l = 0; l < s.bench.left.num_rows(); ++l) {
    for (size_t r = 0; r < s.bench.right.num_rows(); ++r) {
      s.all.push_back({l, r});
    }
  }
  return s;
}

er::PrfScore RunDeepEr(Setup& s, size_t epochs, bool fit_weights,
                       bool hard_negatives) {
  er::DeepErConfig cfg;
  cfg.epochs = epochs;
  cfg.learning_rate = 1e-2f;
  er::DeepEr model(&s.words, cfg);
  if (fit_weights) model.FitWeights({&s.bench.left, &s.bench.right});
  model.Train(s.bench.left, s.bench.right,
              hard_negatives ? s.hard_train : s.random_train);
  return er::Evaluate(model.Match(s.bench.left, s.bench.right, s.all, 0.9),
                      s.bench.matches);
}

// Whole-tuple-features variant: classifier over EmbeddingPairFeatures of
// the full tuple vectors (what the per-attribute similarity vector
// replaced).
er::PrfScore RunWholeTuple(Setup& s, size_t epochs) {
  er::DeepErConfig cfg;
  er::DeepEr embedder(&s.words, cfg);
  embedder.FitWeights({&s.bench.left, &s.bench.right});
  Rng rng(13);
  nn::ClassifierConfig ccfg;
  ccfg.input_dim = er::EmbeddingFeatureDim(s.words.dim());
  ccfg.hidden = {32};
  ccfg.learning_rate = 1e-2f;
  nn::BinaryClassifier clf(ccfg, &rng);
  nn::Batch x;
  std::vector<int> y;
  for (const er::PairLabel& p : s.hard_train) {
    x.push_back(er::EmbeddingPairFeatures(
        embedder.EmbedTupleVector(s.bench.left.row(p.left)),
        embedder.EmbedTupleVector(s.bench.right.row(p.right))));
    y.push_back(p.label);
  }
  clf.Train(x, y, epochs);
  std::vector<er::RowPair> predicted;
  for (const er::RowPair& c : s.all) {
    auto f = er::EmbeddingPairFeatures(
        embedder.EmbedTupleVector(s.bench.left.row(c.first)),
        embedder.EmbedTupleVector(s.bench.right.row(c.second)));
    if (clf.PredictProba(f) >= 0.9) predicted.push_back(c);
  }
  return er::Evaluate(predicted, s.bench.matches);
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "ablation";
  spec.experiment = "Ablation — DeepER design choices";
  spec.claim =
      "Full model minus one ingredient each, products benchmark at\n"
      "dirtiness 0.55 + synonyms 0.5, threshold 0.9.";
  spec.default_seed = 17;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    Setup s = MakeSetup(b.seed(), b.Size(150, 80));
    const size_t epochs = b.Size(40, 20);

    PrintRow({"variant", "P", "R", "F1"});
    er::PrfScore full = RunDeepEr(s, epochs, true, true);
    PrintRow({"full model", Fmt(full.precision), Fmt(full.recall),
              Fmt(full.f1)});
    er::PrfScore no_sif = RunDeepEr(s, epochs, false, true);
    PrintRow({"- SIF + subword weights", Fmt(no_sif.precision),
              Fmt(no_sif.recall), Fmt(no_sif.f1)});
    er::PrfScore no_hard = RunDeepEr(s, epochs, true, false);
    PrintRow({"- hard negatives", Fmt(no_hard.precision), Fmt(no_hard.recall),
              Fmt(no_hard.f1)});
    er::PrfScore whole = RunWholeTuple(s, epochs);
    PrintRow({"- per-attribute simvec", Fmt(whole.precision),
              Fmt(whole.recall), Fmt(whole.f1)});

    b.Report("full", {{"f1", full.f1}, {"recall", full.recall}});
    b.Report("no_sif", {{"f1", no_sif.f1}});
    b.Report("no_hard_negatives", {{"f1", no_hard.f1}});
    b.Report("whole_tuple", {{"f1", whole.f1}});
    return 0;
  });
}
