// Experiment F1 (Figure 1): the end-to-end self-driving curation
// pipeline. A lake of source tables (one relevant, with planted
// duplicates, nulls, and FD violations; others irrelevant) goes in; a
// curated analysis-ready table comes out. Shape: discovery picks the
// right table, dedup recovers close to the true entity count, repair
// removes constraint violations, imputation eliminates nulls — all
// without task-specific configuration beyond the analyst's query.
//
// Profiling: run with AUTODC_TRACE=trace.json to get a Chrome-trace
// file of the stage/epoch span tree (load it in Perfetto; see README
// "Profiling a run").
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "src/core/autocurator.h"
#include "src/data/dependencies.h"
#include "src/datagen/er_benchmark.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "pipeline";
  spec.experiment =
      "Experiment F1 — end-to-end self-driving curation (Figure 1)";
  spec.claim =
      "Lake: product_catalog (dirty, duplicated, nulls) +\n"
      "employee_directory + publication_list (distractors). Query:\n"
      "'product brand model price'. Shape: the pipeline discovers,\n"
      "integrates, deduplicates, repairs and imputes automatically.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    // Build the lake: a duplicated dirty product catalog + two
    // distractors.
    datagen::ErBenchmarkConfig pcfg;
    pcfg.domain = datagen::ErDomain::kProducts;
    pcfg.num_entities = b.Size(120, 60);
    pcfg.overlap = 0.6;
    pcfg.dirtiness = 0.25;
    pcfg.synonym_rate = 0.0;
    pcfg.null_rate = 0.12;
    pcfg.seed = 9;
    datagen::ErBenchmark pbench = datagen::GenerateErBenchmark(pcfg);
    data::Table catalog(pbench.left.schema(), "product_catalog");
    for (size_t r = 0; r < pbench.left.num_rows(); ++r) {
      catalog.AppendRow(pbench.left.row(r));
    }
    for (size_t r = 0; r < pbench.right.num_rows(); ++r) {
      catalog.AppendRow(pbench.right.row(r));
    }
    size_t true_entities = catalog.num_rows() - pbench.matches.size();

    datagen::ErBenchmarkConfig dcfg1;
    dcfg1.domain = datagen::ErDomain::kPersons;
    dcfg1.num_entities = 60;
    dcfg1.seed = 10;
    data::Table people = datagen::GenerateErBenchmark(dcfg1).left;
    people.set_name("employee_directory");

    datagen::ErBenchmarkConfig dcfg2;
    dcfg2.domain = datagen::ErDomain::kCitations;
    dcfg2.num_entities = 60;
    dcfg2.seed = 11;
    data::Table papers = datagen::GenerateErBenchmark(dcfg2).left;
    papers.set_name("publication_list");

    std::printf("input: 3 tables, catalog has %zu rows (%zu true entities), "
                "null fraction %.3f\n",
                catalog.num_rows(), true_entities, catalog.NullFraction());

    core::AutoCuratorConfig cfg;
    cfg.task_query = "product brand model price catalog";
    cfg.max_tables = 1;
    cfg.seed = 4;
    core::AutoCurator curator(cfg);
    Timer timer;
    auto result = curator.Curate({people, catalog, papers});
    double seconds = timer.Seconds();
    if (!result.ok()) {
      std::printf("pipeline failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const core::CurationResult& r = result.ValueOrDie();

    std::printf("\nstage log:\n");
    for (const std::string& line : r.context.report) {
      std::printf("  %s\n", line.c_str());
    }

    std::printf("\n");
    PrintRow({"metric", "value", "ideal"});
    PrintRow({"rows out", FmtInt(r.curated.num_rows()),
              FmtInt(true_entities)});
    double dedup_err =
        std::fabs(static_cast<double>(r.curated.num_rows()) -
                  static_cast<double>(true_entities)) /
        static_cast<double>(true_entities);
    PrintRow({"entity-count error", Fmt(dedup_err), "0.000"});
    PrintRow({"null fraction out", Fmt(r.curated.NullFraction()), "0.000"});
    PrintRow({"wall clock (s)", Fmt(seconds, 1), "-"});
    b.Report("curate",
             {{"rows_out", static_cast<double>(r.curated.num_rows())},
              {"true_entities", static_cast<double>(true_entities)},
              {"entity_count_err", dedup_err},
              {"null_fraction_out", r.curated.NullFraction()},
              {"wall_clock_s", seconds}});
    std::printf(
        "\n(The dedup stage uses NO hand labels: weak supervision from\n"
        "near-identical candidates trains the DeepER matcher — the Sec. 6.2\n"
        "recipe inside the Figure 1 flow.)\n");
    return 0;
  });
}
