// Experiment C7 (Sec. 3.1, limitation 2): the word2vec window size W vs
// the attribute distance |i - j| between two semantically-linked columns.
// Shape: the naive tuples-as-documents model only links values whose
// columns fall inside the window, so its similarity decays with column
// distance; the table-graph model is immune (co-occurrence edges connect
// ALL cells of a tuple regardless of position).
#include <cstdio>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/data/table_graph.h"
#include "src/embedding/graph_embedding.h"
#include "src/embedding/word2vec.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

// A table with the linked pair (country, capital) placed `distance`
// columns apart; unique filler values in between (so fillers carry no
// shared signal).
data::Table MakeTable(size_t distance, size_t rows, uint64_t seed) {
  std::vector<std::string> cols = {"country"};
  for (size_t i = 0; i < distance - 1; ++i) {
    cols.push_back("f" + std::to_string(i));
  }
  cols.push_back("capital");
  data::Table t(data::Schema::OfStrings(cols));
  Rng rng(seed);
  const char* countries[] = {"france", "italy", "spain", "japan"};
  const char* capitals[] = {"paris", "rome", "madrid", "tokyo"};
  for (size_t r = 0; r < rows; ++r) {
    size_t k = static_cast<size_t>(rng.UniformInt(0, 3));
    data::Row row;
    row.push_back(data::Value(countries[k]));
    for (size_t i = 0; i < distance - 1; ++i) {
      row.push_back(data::Value("x" + std::to_string(r) + "_" +
                                std::to_string(i)));
    }
    row.push_back(data::Value(capitals[k]));
    t.AppendRow(std::move(row));
  }
  return t;
}

double PairedSimilarity(const embedding::EmbeddingStore& store,
                        bool graph_keys, const data::Schema& schema,
                        size_t capital_col) {
  const char* countries[] = {"france", "italy", "spain", "japan"};
  const char* capitals[] = {"paris", "rome", "madrid", "tokyo"};
  double total = 0.0;
  size_t n = 0;
  for (size_t k = 0; k < 4; ++k) {
    std::string a = graph_keys
                        ? embedding::GraphNodeKey(schema, 0, countries[k])
                        : countries[k];
    std::string b = graph_keys ? embedding::GraphNodeKey(schema, capital_col,
                                                         capitals[k])
                               : capitals[k];
    auto sim = store.Similarity(a, b);
    if (sim.ok()) {
      total += sim.ValueOrDie();
      ++n;
    }
  }
  return n > 0 ? total / static_cast<double>(n) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "window_size";
  spec.experiment =
      "Experiment C7 — window size vs attribute distance (Sec. 3.1)";
  spec.claim =
      "Mean cosine(country, its capital) as the two columns move apart.\n"
      "Naive word2vec (W=3) decays once |i-j| > W; the table graph's\n"
      "co-occurrence edges are position-independent.";
  spec.default_seed = 9;
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const size_t rows = b.Size(300, 150);
    PrintRow({"attribute distance", "naive W=3", "graph"});
    for (size_t distance : {1, 2, 3, 5, 8}) {
      data::Table t = MakeTable(distance, rows, b.seed());
      embedding::Word2VecConfig wcfg;
      wcfg.sgns.dim = 16;
      wcfg.sgns.window = 3;
      wcfg.sgns.epochs = 8;
      wcfg.sgns.seed = 5;
      embedding::EmbeddingStore naive =
          embedding::TrainCellEmbeddingsNaive({&t}, wcfg);

      data::TableGraph graph = data::TableGraph::Build(t, {});
      embedding::GraphEmbeddingConfig gcfg;
      gcfg.sgns.dim = 16;
      gcfg.sgns.epochs = 4;
      gcfg.sgns.seed = 5;
      gcfg.walks_per_node = 5;
      gcfg.walk_length = 6;
      embedding::EmbeddingStore graph_store =
          embedding::TrainTableGraphEmbeddings(graph, t.schema(), gcfg);

      double naive_sim = PairedSimilarity(naive, false, t.schema(), distance);
      double graph_sim =
          PairedSimilarity(graph_store, true, t.schema(), distance);
      PrintRow({"|i-j| = " + FmtInt(distance), Fmt(naive_sim),
                Fmt(graph_sim)});
      if (distance == 1 || distance == 8) {
        b.Report("distance_" + FmtInt(distance),
                 {{"naive_sim", naive_sim}, {"graph_sim", graph_sim}});
      }
    }
    return 0;
  });
}
