// Columnar data plane bench (DESIGN.md §12): typed chunk scans and the
// ADCT binary format vs the row-major layout Table replaced. Shape: a
// full-column scan runs >= 2x faster than iterating materialized rows,
// the columnar table is resident in <= 0.6x the bytes, and reopening
// the binary file is orders of magnitude cheaper than re-parsing CSV.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/common/rng.h"
#include "src/data/csv.h"
#include "src/data/table.h"
#include "src/data/table_file.h"

using namespace autodc;         // NOLINT
using namespace autodc::bench;  // NOLINT

namespace {

/// Mixed-type workload table: int key, double measure, low-cardinality
/// category, high-cardinality name, nullable int quantity.
data::Table BuildTable(size_t rows, uint64_t seed) {
  data::Table t(data::Schema({{"id", data::ValueType::kInt},
                              {"price", data::ValueType::kDouble},
                              {"category", data::ValueType::kString},
                              {"name", data::ValueType::kString},
                              {"qty", data::ValueType::kInt}}),
                "bench");
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    data::Row row;
    row.push_back(data::Value(static_cast<int64_t>(r)));
    row.push_back(data::Value(rng.Uniform(0.0, 1000.0)));
    row.push_back(data::Value("cat" + std::to_string(rng.UniformInt(0, 63))));
    row.push_back(
        data::Value("item-" + std::to_string(rng.UniformInt(0, 99999))));
    if (rng.Bernoulli(0.1)) {
      row.push_back(data::Value::Null());
    } else {
      row.push_back(data::Value(rng.UniformInt(0, 99)));
    }
    t.AppendRow(std::move(row)).ok();
  }
  return t;
}

/// Bytes held by a materialized row-major image: the Row vectors plus
/// every string's heap block — what the pre-columnar Table kept
/// resident for the same data.
size_t RowMajorBytes(const std::vector<data::Row>& rows) {
  size_t bytes = sizeof(data::Row) * rows.capacity();
  for (const data::Row& row : rows) {
    bytes += row.capacity() * sizeof(data::Value);
    for (const data::Value& v : row) {
      if (v.type() == data::ValueType::kString && !v.is_null()) {
        bytes += v.AsString().capacity();
      }
    }
  }
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  BenchSpec spec;
  spec.name = "table";
  spec.experiment = "Columnar data plane vs row-major layout";
  spec.claim =
      "Typed chunk scans >= 2x row-major scan throughput at <= 0.6x the\n"
      "resident bytes; ADCT binary reopen is O(1) vs CSV re-parse.";
  return BenchMain(argc, argv, spec, [](Bench& b) {
    const size_t rows = b.Size(1000000, 100000);
    data::Table t = BuildTable(rows, b.seed());

    // The row-major strawman: every row materialized as a Value vector,
    // the layout Table itself used before the columnar store.
    std::vector<data::Row> materialized;
    materialized.reserve(t.num_rows());
    for (size_t r = 0; r < t.num_rows(); ++r) {
      materialized.push_back(t.row(r).Materialize());
    }

    size_t row_bytes = RowMajorBytes(materialized);
    size_t col_bytes = t.ResidentBytes();
    double bytes_ratio =
        row_bytes > 0 ? static_cast<double>(col_bytes) / row_bytes : 0.0;

    // Full-column scan: sum the price column. The row-major loop pays a
    // pointer chase + variant dispatch per row; the chunk scan streams a
    // contiguous double array.
    double row_sum = 0.0;
    double scan_row_ms = b.TimeMs([&] {
      double s = 0.0;
      for (const data::Row& row : materialized) {
        if (!row[1].is_null()) s += row[1].AsDouble();
      }
      row_sum = s;
    });
    double col_sum = 0.0;
    double scan_col_ms = b.TimeMs([&] {
      double s = 0.0;
      for (size_t k = 0; k < t.num_chunks(); ++k) {
        data::TypedChunkRef ch = t.column_chunk(1, k);
        for (size_t i = 0; i < ch.n; ++i) {
          if (!ch.is_null(i)) s += ch.f64[i];
        }
      }
      col_sum = s;
    });
    if (row_sum != col_sum) {
      std::fprintf(stderr, "scan mismatch: %f vs %f\n", row_sum, col_sum);
      return 1;
    }
    double scan_speedup = scan_col_ms > 0.0 ? scan_row_ms / scan_col_ms : 0.0;

    // Filtered aggregate: mean qty of one category. The columnar path
    // resolves the category to a dictionary code once, then compares
    // u32 codes; the row-major path string-compares every row.
    const std::string needle = "cat7";
    double row_agg = 0.0;
    double filt_row_ms = b.TimeMs([&] {
      double s = 0.0;
      size_t n = 0;
      for (const data::Row& row : materialized) {
        if (row[2].is_null() || row[4].is_null()) continue;
        if (row[2].AsString() != needle) continue;
        s += static_cast<double>(row[4].AsInt());
        ++n;
      }
      row_agg = n > 0 ? s / static_cast<double>(n) : 0.0;
    });
    double col_agg = 0.0;
    double filt_col_ms = b.TimeMs([&] {
      const data::StringDict& dict = t.dict(2);
      uint32_t code = UINT32_MAX;
      for (uint32_t i = 0; i < dict.size(); ++i) {
        if (dict.str(i) == needle) {
          code = i;
          break;
        }
      }
      double s = 0.0;
      size_t n = 0;
      for (size_t k = 0; k < t.num_chunks(); ++k) {
        data::TypedChunkRef cat = t.column_chunk(2, k);
        data::TypedChunkRef qty = t.column_chunk(4, k);
        for (size_t i = 0; i < cat.n; ++i) {
          if (cat.is_null(i) || qty.is_null(i)) continue;
          if (cat.codes[i] != code) continue;
          s += static_cast<double>(qty.i64[i]);
          ++n;
        }
      }
      col_agg = n > 0 ? s / static_cast<double>(n) : 0.0;
    });
    if (row_agg != col_agg) {
      std::fprintf(stderr, "filter mismatch: %f vs %f\n", row_agg, col_agg);
      return 1;
    }
    double filtered_speedup =
        filt_col_ms > 0.0 ? filt_row_ms / filt_col_ms : 0.0;

    // Ingest once, reopen forever: CSV parse vs ADCT binary open.
    std::string csv_path = "/tmp/autodc_bench_table.csv";
    std::string bin_path = "/tmp/autodc_bench_table.adct";
    data::WriteCsvFile(t, csv_path).ok();
    data::WriteTableFile(t, bin_path).ok();
    double csv_parse_ms = b.TimeMs([&] {
      auto r = data::ReadCsvFile(csv_path);
      if (!r.ok()) std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    });
    double reopen_ms = b.TimeMs([&] {
      auto r = data::OpenTableFile(bin_path);
      if (!r.ok()) std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    });
    double reopen_speedup = reopen_ms > 0.0 ? csv_parse_ms / reopen_ms : 0.0;

    std::remove(csv_path.c_str());
    std::remove(bin_path.c_str());

    PrintRow({"metric", "value"});
    PrintRow({"rows", FmtInt(rows)});
    PrintRow({"rowmajor_resident_mb", Fmt(row_bytes / 1e6, 1)});
    PrintRow({"columnar_resident_mb", Fmt(col_bytes / 1e6, 1)});
    PrintRow({"bytes_ratio (<=0.6)", Fmt(bytes_ratio, 3)});
    PrintRow({"scan_row_ms", Fmt(scan_row_ms, 2)});
    PrintRow({"scan_col_ms", Fmt(scan_col_ms, 2)});
    PrintRow({"scan_speedup (>=2)", Fmt(scan_speedup, 1)});
    PrintRow({"filtered_speedup", Fmt(filtered_speedup, 1)});
    PrintRow({"csv_parse_ms", Fmt(csv_parse_ms, 1)});
    PrintRow({"reopen_ms", Fmt(reopen_ms, 3)});
    PrintRow({"reopen_speedup", Fmt(reopen_speedup, 0)});

    b.Report("memory",
             {{"columnar_resident_bytes", static_cast<double>(col_bytes)},
              {"rowmajor_resident_bytes", static_cast<double>(row_bytes)},
              {"bytes_speedup",
               bytes_ratio > 0.0 ? 1.0 / bytes_ratio : 0.0}});
    b.Report("scan", {{"scan_speedup", scan_speedup},
                      {"filtered_speedup", filtered_speedup}});
    b.Report("io", {{"csv_parse_ms", csv_parse_ms},
                    {"reopen_ms", reopen_ms},
                    {"reopen_speedup", reopen_speedup}});
    return 0;
  });
}
