#include "bench/harness.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "src/common/env.h"
#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"

#ifndef AUTODC_GIT_SHA
#define AUTODC_GIT_SHA "unknown"
#endif

namespace autodc::bench {

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf(
      "\n==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("%s\n", claim.c_str());
  std::printf(
      "==============================================================\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf(i == 0 ? "%-28s" : "%12s", cells[i].c_str());
  }
  std::printf("\n");
}

std::string GitSha() { return EnvString("AUTODC_GIT_SHA", AUTODC_GIT_SHA); }

JsonObject Bench::Envelope() const {
  JsonObject o;
  o.Set("bench", spec_.name)
      .Set("git_sha", GitSha())
      .Set("threads", threads_)
      .Set("isa", std::string(nn::kernels::ActiveIsaName()))
      .Set("repeats", repeats_)
      .SetRaw("quick", quick_ ? "true" : "false");
  return o;
}

void Bench::Report(const std::string& name,
                   std::vector<std::pair<std::string, double>> metrics) {
  JsonObject m;
  for (const auto& [key, value] : metrics) m.Set(key, value);
  JsonObject line = Envelope();
  line.Set("name", name)
      .Set("wall_ms", run_timer_.Seconds() * 1e3)
      .SetRaw("metrics", m.str());
  PrintJsonLine(line);
  results_.push_back(BenchResult{name, std::move(metrics)});
}

namespace {

void PrintUsage(const BenchSpec& spec, std::FILE* out) {
  std::fprintf(
      out,
      "usage: bench_%s [--repeats N] [--warmup N] [--threads N] [--seed N]\n"
      "                [--quick] [--out DIR]\n"
      "%s\n",
      spec.name.c_str(), spec.experiment.c_str());
}

bool ParseCount(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool WriteResultsFile(const Bench& bench, const BenchSpec& spec,
                      const JsonObject& envelope, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string path = dir + "/BENCH_" + spec.name + ".json";
  std::string rows = "[";
  for (size_t i = 0; i < bench.results().size(); ++i) {
    const BenchResult& r = bench.results()[i];
    if (i > 0) rows += ",";
    JsonObject m;
    for (const auto& [key, value] : r.metrics) m.Set(key, value);
    JsonObject row;
    row.Set("name", r.name).SetRaw("metrics", m.str());
    rows += row.str();
  }
  rows += "]";
  JsonObject doc = envelope;
  doc.SetRaw("results", rows)
      .SetRaw("obs",
              obs::FormatJson(obs::MetricsRegistry::Global().Snapshot()));
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_%s: cannot write '%s'\n", spec.name.c_str(),
                 path.c_str());
    return false;
  }
  out << doc.str() << "\n";
  return static_cast<bool>(out);
}

}  // namespace

int BenchMain(int argc, char** argv, const BenchSpec& spec,
              const std::function<int(Bench&)>& body) {
  Bench bench(spec);
  bench.seed_ = spec.default_seed;
  bool pin_threads = false;
  uint64_t pin_count = 0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&](uint64_t* out) {
      if (i + 1 >= argc || !ParseCount(argv[++i], out)) {
        std::fprintf(stderr, "bench_%s: %s needs a numeric argument\n",
                     spec.name.c_str(), arg.c_str());
        return false;
      }
      return true;
    };
    uint64_t v = 0;
    if (arg == "--repeats") {
      if (!next(&v) || v == 0) return 2;
      bench.repeats_ = static_cast<size_t>(v);
    } else if (arg == "--warmup") {
      if (!next(&v)) return 2;
      bench.warmup_ = static_cast<size_t>(v);
    } else if (arg == "--threads") {
      if (!next(&v) || v == 0) return 2;
      pin_threads = true;
      pin_count = v;
    } else if (arg == "--seed") {
      if (!next(&v)) return 2;
      bench.seed_ = v;
    } else if (arg == "--quick") {
      bench.quick_ = true;
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_%s: --out needs a directory\n",
                     spec.name.c_str());
        return 2;
      }
      bench.out_dir_ = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(spec, stdout);
      return 0;
    } else {
      std::fprintf(stderr, "bench_%s: unknown argument '%s'\n",
                   spec.name.c_str(), arg.c_str());
      PrintUsage(spec, stderr);
      return 2;
    }
  }

  if (pin_threads) SetNumThreads(static_cast<size_t>(pin_count));
  bench.threads_ = NumThreads();

  PrintHeader(spec.experiment, spec.claim);
  bench.run_timer_.Reset();
  int rc = body(bench);

  if (rc == 0 && !bench.out_dir_.empty()) {
    JsonObject envelope = bench.Envelope();
    envelope.Set("wall_ms", bench.run_timer_.Seconds() * 1e3);
    if (!WriteResultsFile(bench, spec, envelope, bench.out_dir_)) rc = 1;
  }
  return rc;
}

}  // namespace autodc::bench
