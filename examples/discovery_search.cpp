// Example: data discovery over an enterprise lake (Sec. 5.1):
//
//   multi-domain lake  ->  lake-wide word embeddings
//   ->  coherent-groups semantic column matching  ->  EKG
//   ->  Google-style table search with thematic expansion.
#include <cstdio>

#include "src/datagen/enterprise.h"
#include "src/discovery/ekg.h"
#include "src/discovery/search.h"
#include "src/discovery/semantic_matcher.h"
#include "src/embedding/word2vec.h"

using namespace autodc;  // NOLINT

int main() {
  datagen::EnterpriseLake lake = datagen::GenerateEnterpriseLake();
  std::vector<const data::Table*> tables;
  for (const data::Table& t : lake.tables) tables.push_back(&t);
  std::printf("lake: %zu tables\n", tables.size());
  for (const data::Table* t : tables) {
    std::printf("  %-20s (%zu rows, %zu cols)\n", t->name().c_str(),
                t->num_rows(), t->num_columns());
  }

  // Holistic knowledge: one embedding space over the whole lake.
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 10;
  embedding::EmbeddingStore words =
      embedding::TrainWordEmbeddingsFromTables(tables, wcfg);

  // Semantic column links (coherent groups).
  discovery::SemanticColumnMatcher matcher(&words);
  auto matches = matcher.MatchLake(tables);
  std::printf("\ntop-6 semantic column links:\n");
  for (size_t i = 0; i < matches.size() && i < 6; ++i) {
    const auto& m = matches[i];
    std::printf("  %.3f  %s.%s <-> %s.%s\n", m.score, m.table_a.c_str(),
                m.column_a.c_str(), m.table_b.c_str(), m.column_b.c_str());
  }

  // The enterprise knowledge graph.
  auto ekg = discovery::EnterpriseKnowledgeGraph::Build(tables, matches, 0.3);
  std::printf("\nEKG: %zu nodes, %zu edges\n", ekg.num_nodes(),
              ekg.num_edges());

  // Keyword search with thematic expansion.
  discovery::TableSearchEngine engine(&words);
  engine.Index(tables);
  const char* query = "protein assay measurements";
  std::printf("\nquery: \"%s\"\n", query);
  for (const auto& hit : engine.Search(query)) {
    std::printf("  direct   %-20s %.3f\n", hit.table.c_str(), hit.score);
  }
  std::printf("with EKG expansion:\n");
  for (const auto& hit : engine.SearchWithRelated(query, ekg)) {
    std::printf("  expanded %-20s %.3f\n", hit.table.c_str(), hit.score);
  }
  return 0;
}
