// Quickstart: the 60-second tour of AutoDC.
//
//   1. load a CSV into a Table
//   2. train word embeddings over it
//   3. ask semantic questions (nearest neighbours)
//   4. find and repair a constraint violation
//   5. run the one-call self-driving curator
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "src/core/autocurator.h"
#include "src/data/csv.h"
#include "src/data/dependencies.h"
#include "src/embedding/word2vec.h"

using namespace autodc;  // NOLINT

int main() {
  // 1. Tables from CSV (string literal here; ReadCsvFile works the same).
  const char* csv =
      "country,capital,continent\n"
      "france,paris,europe\n"
      "germany,berlin,europe\n"
      "italy,rome,europe\n"
      "japan,tokyo,asia\n"
      "france,paris,europe\n"
      "france,lyon,europe\n"  // <- violates country -> capital
      "brazil,brasilia,southamerica\n";
  data::Table table = data::ReadCsvString(csv).ValueOrDie();
  table.set_name("countries");
  std::printf("%s\n", table.ToString().c_str());

  // 2. Distributed representations of the cells (Sec. 3.1).
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 16;
  wcfg.sgns.epochs = 20;
  embedding::EmbeddingStore cells =
      embedding::TrainCellEmbeddingsNaive({&table}, wcfg);

  // 3. Semantic queries.
  std::printf("nearest to 'paris':\n");
  std::vector<embedding::Neighbor> neighbors =
      cells.Nearest("paris", 3).ValueOrDie();
  for (const auto& n : neighbors) {
    std::printf("  %-16s %.3f\n", n.key.c_str(), n.similarity);
  }

  // 4. Integrity constraints: discover, detect, repair.
  data::FunctionalDependency fd{{0}, 1};  // country -> capital
  std::printf("\ncountry -> capital confidence: %.2f\n",
              data::Confidence(table, fd));
  auto violations = data::FindViolations(table, fd);
  std::printf("violating row pairs: %zu\n", violations.size());

  // 5. The self-driving pipeline (Figure 1) in one call.
  core::AutoCuratorConfig cfg;
  cfg.task_query = "country capital continent";
  cfg.max_tables = 1;
  auto result = core::AutoCurator(cfg).Curate({table});
  if (!result.ok()) {
    std::printf("curation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ncuration report:\n");
  for (const std::string& line : result.ValueOrDie().context.report) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf("\ncurated output:\n%s",
              result.ValueOrDie().curated.ToString().c_str());
  return 0;
}
