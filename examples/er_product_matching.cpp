// Example: DeepER entity resolution on a product-catalog linkage task
// (the Figure 5 workflow, end to end):
//
//   dirty two-source benchmark  ->  pre-trained word embeddings
//   ->  LSH blocking over tuple vectors  ->  DeepER matcher
//   ->  precision/recall/F1 against ground truth.
#include <cstdio>

#include "src/datagen/er_benchmark.h"
#include "src/embedding/word2vec.h"
#include "src/er/baselines.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"

using namespace autodc;  // NOLINT

int main() {
  // A two-table product-linkage task with typos, abbreviations, synonyms
  // (laptop vs notebook), nulls, and price jitter.
  datagen::ErBenchmarkConfig bcfg;
  bcfg.domain = datagen::ErDomain::kProducts;
  bcfg.num_entities = 200;
  bcfg.dirtiness = 0.45;
  bcfg.synonym_rate = 0.4;
  datagen::ErBenchmark bench = datagen::GenerateErBenchmark(bcfg);
  std::printf("left: %zu rows, right: %zu rows, true matches: %zu\n",
              bench.left.num_rows(), bench.right.num_rows(),
              bench.matches.size());

  // "Pre-trained" embeddings — the GloVe substitute, trained on the
  // tables themselves (unsupervised; Sec. 6.2.1).
  embedding::Word2VecConfig wcfg;
  wcfg.sgns.dim = 24;
  wcfg.sgns.epochs = 6;
  embedding::EmbeddingStore words = embedding::TrainWordEmbeddingsFromTables(
      {&bench.left, &bench.right}, wcfg);

  // DeepER with average composition + SIF weighting + subword fallback.
  er::DeepErConfig dcfg;
  dcfg.epochs = 40;
  dcfg.learning_rate = 1e-2f;
  er::DeepEr model(&words, dcfg);
  model.FitWeights({&bench.left, &bench.right});

  // Training pairs: labeled matches + hard negatives from blocking.
  Rng rng(7);
  auto hard = er::AttributeBlocking(bench.left, bench.right, 0);
  auto train = er::SampleTrainingPairsWithHardNegatives(
      bench.left.num_rows(), bench.right.num_rows(), bench.matches, hard, 5,
      0.6, &rng);
  double loss = model.Train(bench.left, bench.right, train);
  std::printf("trained on %zu pairs, final loss %.4f\n", train.size(), loss);

  // Blocking: LSH over tuple embeddings (all attributes at once).
  std::vector<std::vector<float>> lv, rv;
  for (size_t i = 0; i < bench.left.num_rows(); ++i) {
    lv.push_back(model.EmbedTupleVector(bench.left.row(i)));
  }
  for (size_t i = 0; i < bench.right.num_rows(); ++i) {
    rv.push_back(model.EmbedTupleVector(bench.right.row(i)));
  }
  er::LshBlocker lsh(words.dim(), 4, 16, 21);
  auto candidates = lsh.Candidates(lv, rv);
  std::printf("LSH blocking: %zu candidates (%.1f%% of cross product), "
              "pair recall %.3f\n",
              candidates.size(),
              100.0 * candidates.size() / (lv.size() * rv.size()),
              er::PairCompleteness(candidates, bench.matches));

  // Match and evaluate.
  auto predicted = model.Match(bench.left, bench.right, candidates, 0.9);
  er::PrfScore score = er::Evaluate(predicted, bench.matches);
  std::printf("\nDeepER   P=%.3f R=%.3f F1=%.3f\n", score.precision,
              score.recall, score.f1);

  // Baseline for contrast.
  er::ThresholdMatcher rule(0.5);
  er::PrfScore rule_score =
      er::Evaluate(rule.Match(bench.left, bench.right, candidates),
                   bench.matches);
  std::printf("Rule     P=%.3f R=%.3f F1=%.3f  (token-jaccard > 0.5)\n",
              rule_score.precision, rule_score.recall, rule_score.f1);

  // Peek at one matched pair.
  if (!predicted.empty()) {
    auto [l, r] = predicted[0];
    std::printf("\nexample match:\n  left : ");
    for (size_t c = 0; c < bench.left.num_columns(); ++c) {
      std::printf("%s | ", bench.left.at(l, c).ToString().c_str());
    }
    std::printf("\n  right: ");
    for (size_t c = 0; c < bench.right.num_columns(); ++c) {
      std::printf("%s | ", bench.right.at(r, c).ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
