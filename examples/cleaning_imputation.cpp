// Example: the cleaning toolkit (Sec. 5.3) on one dirty table:
//
//   clean relation + BART-style error injection
//   ->  outlier detection (z-score + autoencoder)
//   ->  FD repair by majority vote
//   ->  missing-value imputation (DAE vs mean/mode).
#include <cstdio>

#include "src/cleaning/imputation.h"
#include "src/cleaning/outliers.h"
#include "src/cleaning/repair.h"
#include "src/data/dependencies.h"
#include "src/datagen/error_injector.h"

using namespace autodc;  // NOLINT

int main() {
  // A clean employee relation with structure: city -> zip, level ~ salary.
  data::Table clean(data::Schema({{"city", data::ValueType::kString},
                                  {"zip", data::ValueType::kString},
                                  {"level", data::ValueType::kInt},
                                  {"salary", data::ValueType::kDouble}}));
  const char* cities[] = {"springfield", "riverton", "fairview"};
  const char* zips[] = {"11111", "22222", "33333"};
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    int k = static_cast<int>(rng.UniformInt(0, 2));
    int64_t level = rng.UniformInt(1, 5);
    clean.AppendRow({data::Value(cities[k]), data::Value(zips[k]),
                     data::Value(level),
                     data::Value(40000.0 + 10000.0 * level +
                                 rng.Normal(0, 1000))});
  }

  // Dirty it up with ground truth (BART-style, Sec. 6.2.3).
  std::vector<data::FunctionalDependency> fds = {{{0}, 1}};
  datagen::ErrorInjectionConfig ecfg;
  ecfg.typo_rate = 0.0;
  ecfg.null_rate = 0.04;
  ecfg.fd_violation_rate = 0.08;
  ecfg.outlier_rate = 0.02;
  auto injected = datagen::InjectErrors(clean, fds, ecfg);
  data::Table dirty = injected.dirty;
  std::printf("injected %zu errors; null fraction %.3f, FD violations %zu\n",
              injected.errors.size(), dirty.NullFraction(),
              data::FindAllViolations(dirty, fds).size());

  // 1. Outliers.
  auto z = cleaning::ZScoreOutliers(dirty, 3);
  std::printf("\nz-score flags %zu salary outliers (top severity %.1f)\n",
              z.size(), z.empty() ? 0.0 : z[0].score);
  auto ae = cleaning::AutoencoderRowOutliers(dirty);
  std::printf("autoencoder flags %zu anomalous rows\n", ae.size());

  // 2. FD repair.
  auto repairs = cleaning::RepairFdViolations(&dirty, fds);
  std::printf("\nrepaired %zu cells; remaining violations: %zu\n",
              repairs.size(), data::FindAllViolations(dirty, fds).size());

  // 3. Imputation: DAE vs mean/mode, scored against the clean originals.
  auto score = [&](cleaning::Imputer* imputer, const char* name) {
    data::Table copy = dirty;
    imputer->FitAndFillAll(&copy);
    size_t cat_hit = 0, cat_total = 0;
    for (const datagen::InjectedError& e : injected.errors) {
      if (e.kind != datagen::ErrorKind::kNull) continue;
      if (e.col > 1) continue;  // categorical columns only
      ++cat_total;
      if (copy.at(e.row, e.col).ToString() == e.original.ToString()) {
        ++cat_hit;
      }
    }
    std::printf("  %-12s recovered %zu/%zu nulled categorical cells\n",
                name, cat_hit, cat_total);
  };
  std::printf("\nimputation (exact recovery of nulled cells):\n");
  cleaning::MeanModeImputer mean;
  score(&mean, "mean/mode");
  cleaning::DaeImputerConfig dcfg;
  dcfg.epochs = 80;
  cleaning::DaeImputer dae(dcfg);
  score(&dae, "DAE (MIDA)");
  return 0;
}
