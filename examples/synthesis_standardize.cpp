// Example: program synthesis for data transformation (Sec. 4):
//
//   input-output examples  ->  synthesized string program
//   ->  applied to a whole column; plus full ETL-pipeline synthesis
//   from a source table and a target example.
#include <cstdio>

#include "src/data/table.h"
#include "src/synthesis/dsl.h"
#include "src/synthesis/etl.h"

using namespace autodc;  // NOLINT

int main() {
  // The paper's own FlashFill example (Sec. 4):
  // {(John Smith, J Smith), (Jane Doe, J Doe), ...}
  std::vector<synthesis::Example> examples = {
      {"John Smith", "J Smith"},
      {"Jane Doe", "J Doe"},
  };
  auto prog = synthesis::SynthesizeStringProgram(examples);
  if (!prog.ok()) {
    std::printf("synthesis failed: %s\n", prog.status().ToString().c_str());
    return 1;
  }
  std::printf("synthesized: %s\n\n", prog.ValueOrDie().ToString().c_str());

  // Standardize a whole dirty column with it.
  const char* names[] = {"Alice Cooper", "bob marley", "CAROL KING",
                         "Dan Aykroyd"};
  for (const char* n : names) {
    std::printf("  %-16s -> %s\n", n,
                prog.ValueOrDie().Apply(n).c_str());
  }

  // ETL synthesis: derive the script that maps a source table to a
  // target layout from 3 example rows (Sec. 4, "Program Synthesis from
  // ETL Scripts").
  data::Table source(data::Schema::OfStrings({"full_name", "dept"}));
  source.AppendRow({data::Value("john smith"), data::Value("sales")});
  source.AppendRow({data::Value("mary jones"), data::Value("hr")});
  source.AppendRow({data::Value("carol davis"), data::Value("it")});
  source.AppendRow({data::Value("frank moore"), data::Value("legal")});

  data::Table target(data::Schema::OfStrings({"badge", "dept", "org"}));
  target.AppendRow({data::Value("J. SMITH"), data::Value("sales"),
                    data::Value("acme")});
  target.AppendRow({data::Value("M. JONES"), data::Value("hr"),
                    data::Value("acme")});
  target.AppendRow({data::Value("C. DAVIS"), data::Value("it"),
                    data::Value("acme")});

  auto etl = synthesis::SynthesizeEtl(source, target);
  if (!etl.ok()) {
    std::printf("ETL synthesis failed: %s\n",
                etl.status().ToString().c_str());
    return 1;
  }
  std::printf("\nsynthesized ETL pipeline:\n%s",
              etl.ValueOrDie().ToString(source.schema()).c_str());
  std::printf("\napplied to the full source table:\n%s",
              etl.ValueOrDie().Apply(source).ToString().c_str());
  return 0;
}
