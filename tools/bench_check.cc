// bench_check: the perf regression gate.
//
//   tools/bench_check --baselines bench/baselines --results out/
//                     [--tolerance 0.5] [--verbose]
//
// Joins every committed BENCH_*.json baseline with its namesake under
// --results (written by the bench binaries' --out flag) and compares
// each baseline metric within its tolerance band (see bench/check.h for
// the band/direction rules). Exit codes: 0 all within tolerance, 1 any
// regression / missing result / malformed file, 2 usage error.
//
// Typical gate (the CI quick-bench leg):
//   for b in build/bench/bench_{kernels,trainer,parallel,pipeline,obs}; do
//     AUTODC_NUM_THREADS=2 $b --quick --repeats 3 --out out/ > /dev/null
//   done
//   build/tools/bench_check --baselines bench/baselines --results out/
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/check.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: bench_check --baselines DIR --results DIR\n"
               "                   [--tolerance FRACTION] [--verbose]\n"
               "\n"
               "Diffs a results dir (bench --out output) against committed\n"
               "BENCH_*.json baselines. Exits 1 on any regression beyond\n"
               "tolerance, missing result, or malformed file.\n"
               "--tolerance overrides the baselines' default band (their\n"
               "per-metric entries still win).\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselines, results;
  autodc::bench::CheckOptions options;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--baselines" && i + 1 < argc) {
      baselines = argv[++i];
    } else if (arg == "--results" && i + 1 < argc) {
      results = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      char* end = nullptr;
      double tol = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || tol < 0.0) {
        std::fprintf(stderr, "bench_check: bad --tolerance '%s'\n", argv[i]);
        return 2;
      }
      options.default_tolerance = tol;
      options.tolerance_is_override = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "bench_check: unknown argument '%s'\n",
                   arg.c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  if (baselines.empty() || results.empty()) {
    PrintUsage(stderr);
    return 2;
  }
  autodc::bench::CheckReport report =
      autodc::bench::CheckDirs(baselines, results, options);
  std::fputs(autodc::bench::FormatCheckReport(report, verbose).c_str(),
             stdout);
  return report.ok() ? 0 : 1;
}
