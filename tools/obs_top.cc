// obs_top: a top(1)-style viewer for a running curation server.
//
// The live monitor (src/obs/live.cc, armed by AUTODC_METRICS_INTERVAL_MS
// with AUTODC_METRICS_SNAPSHOT=<file>) atomically rewrites a one-line
// JSON snapshot every tick; this tool polls that file and renders the
// serving picture — throughput, window tail latencies, SLO state, the
// per-tenant/per-kind breakdown from the labeled metrics, and span
// buffer health — refreshing in place until interrupted.
//
//   obs_top --file /tmp/autodc.metrics.json [--interval-ms 1000] [--once]
//
// Nothing here talks to the server process: the snapshot file is the
// whole interface, so a wedged server can still be inspected.

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json_parse.h"

namespace {

using autodc::JsonValue;

struct TenantRow {
  std::string tenant;
  double completed = 0.0;
  double lat_count = 0.0;
  double lat_sum = 0.0;
  double lat_p99 = std::numeric_limits<double>::quiet_NaN();
};

// Splits a labeled metric name "base{key=value}"; false when `name` is
// not labeled or the label key differs.
bool SplitLabel(const std::string& name, const std::string& base,
                const std::string& key, std::string* value) {
  const std::string prefix = base + "{" + key + "=";
  if (name.size() <= prefix.size() + 1 || name.compare(0, prefix.size(), prefix) != 0 ||
      name.back() != '}') {
    return false;
  }
  *value = name.substr(prefix.size(), name.size() - prefix.size() - 1);
  return true;
}

double NumberAt(const JsonValue* obj, const std::string& key, double fallback) {
  if (obj == nullptr) return fallback;
  const JsonValue* v = obj->Find(key);
  return v != nullptr ? v->NumberOr(fallback) : fallback;
}

// Interpolated quantile from a histogram object's bounds/counts arrays
// (same estimator the live monitor uses for its window quantiles).
double HistQuantile(const JsonValue& hist, double q) {
  const JsonValue* bounds = hist.Find("bounds");
  const JsonValue* counts = hist.Find("counts");
  if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
      !counts->is_array()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double total = 0.0;
  for (const JsonValue& c : counts->array) total += c.NumberOr(0.0);
  if (total <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  double target = std::max(1.0, q * total);
  double cum = 0.0;
  for (size_t i = 0; i < counts->array.size(); ++i) {
    double c = counts->array[i].NumberOr(0.0);
    if (c <= 0.0) continue;
    double before = cum;
    cum += c;
    if (cum < target) continue;
    if (i >= bounds->array.size()) {
      return bounds->array.empty() ? std::numeric_limits<double>::quiet_NaN()
                                   : bounds->array.back().NumberOr(0.0);
    }
    double lo = i == 0 ? 0.0 : bounds->array[i - 1].NumberOr(0.0);
    double hi = bounds->array[i].NumberOr(0.0);
    return lo + (hi - lo) * ((target - before) / c);
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string FmtUs(double us) {
  char buf[32];
  if (!std::isfinite(us)) return "-";
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fs", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fus", us);
  }
  return buf;
}

std::string FmtCount(double v) {
  char buf[32];
  if (!std::isfinite(v)) return "-";
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

struct RenderState {
  double last_completed = std::numeric_limits<double>::quiet_NaN();
  std::chrono::steady_clock::time_point last_read;
};

int Render(const std::string& text, RenderState* state, bool clear) {
  auto parsed = autodc::ParseJson(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "obs_top: bad snapshot: %s\n",
                 parsed.status().message().c_str());
    return 1;
  }
  const JsonValue root = std::move(parsed).ValueOrDie();
  const JsonValue* metrics = root.Find("metrics");
  const JsonValue* counters = metrics ? metrics->Find("counters") : nullptr;
  const JsonValue* gauges = metrics ? metrics->Find("gauges") : nullptr;
  const JsonValue* hists = metrics ? metrics->Find("histograms") : nullptr;

  double tick = NumberAt(&root, "tick", 0.0);
  double interval_ms = NumberAt(&root, "interval_ms", 0.0);
  double ts_ms = NumberAt(&root, "ts_ms", 0.0);
  double now_ms = static_cast<double>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  double age_s = ts_ms > 0.0 ? (now_ms - ts_ms) / 1e3 : 0.0;

  double completed = NumberAt(counters, "serve.completed", 0.0);
  double admitted = NumberAt(counters, "serve.admit", 0.0);
  double rej_q = NumberAt(counters, "serve.reject.queue_full", 0.0);
  double rej_t = NumberAt(counters, "serve.reject.tenant_cap", 0.0);
  double depth = NumberAt(gauges, "serve.queue.depth", 0.0);
  double p50 = NumberAt(gauges, "serve.latency_p50",
                        std::numeric_limits<double>::quiet_NaN());
  double p99 = NumberAt(gauges, "serve.latency_p99",
                        std::numeric_limits<double>::quiet_NaN());
  double wait_p99 = NumberAt(gauges, "serve.queue.wait_p99",
                             std::numeric_limits<double>::quiet_NaN());
  double reject_rate = NumberAt(gauges, "serve.reject_rate",
                                std::numeric_limits<double>::quiet_NaN());

  // QPS from completed-counter deltas between our own reads.
  auto now = std::chrono::steady_clock::now();
  double qps = std::numeric_limits<double>::quiet_NaN();
  if (std::isfinite(state->last_completed) && completed >= state->last_completed) {
    double dt = std::chrono::duration<double>(now - state->last_read).count();
    if (dt > 0.0) qps = (completed - state->last_completed) / dt;
  }
  state->last_completed = completed;
  state->last_read = now;

  std::ostringstream out;
  if (clear) out << "\x1b[2J\x1b[H";
  out << "autodc obs_top — tick " << FmtCount(tick) << ", snapshot "
      << (age_s < 0.05 ? std::string("fresh") : FmtCount(age_s * 1e3) + "ms old")
      << ", exporter interval " << FmtCount(interval_ms) << "ms\n\n";
  out << "serving   completed=" << FmtCount(completed)
      << " admitted=" << FmtCount(admitted) << " rejected="
      << FmtCount(rej_q + rej_t) << " (queue_full=" << FmtCount(rej_q)
      << " tenant_cap=" << FmtCount(rej_t) << ")\n";
  out << "          queue_depth=" << FmtCount(depth);
  if (std::isfinite(qps)) out << "  ~qps=" << FmtCount(qps);
  out << "\n";
  out << "window    latency p50=" << FmtUs(p50) << " p99=" << FmtUs(p99)
      << "  queue_wait p99=" << FmtUs(wait_p99) << "  reject_rate="
      << (std::isfinite(reject_rate)
              ? std::to_string(reject_rate).substr(0, 6)
              : "-")
      << "\n";

  // SLO lights: any serve.slo.breached.* gauge present renders.
  if (gauges != nullptr && gauges->is_object()) {
    std::string slo_line;
    for (const auto& [name, value] : gauges->object) {
      const std::string prefix = "serve.slo.breached.";
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      slo_line += "  " + name.substr(prefix.size()) + "=" +
                  (value.NumberOr(0.0) > 0.0 ? "BREACH" : "ok");
    }
    if (!slo_line.empty()) {
      out << "slo     " << slo_line << "  (breaches="
          << FmtCount(NumberAt(counters, "serve.slo.breaches", 0.0)) << ")\n";
    }
  }

  // Per-tenant table from the labeled metrics.
  std::map<std::string, TenantRow> tenants;
  if (counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->object) {
      std::string tenant;
      if (SplitLabel(name, "serve.completed", "tenant", &tenant)) {
        TenantRow& row = tenants[tenant];
        row.tenant = tenant;
        row.completed = value.NumberOr(0.0);
      }
    }
  }
  if (hists != nullptr && hists->is_object()) {
    for (const auto& [name, value] : hists->object) {
      std::string tenant;
      if (SplitLabel(name, "serve.latency_us", "tenant", &tenant)) {
        TenantRow& row = tenants[tenant];
        row.tenant = tenant;
        row.lat_count = NumberAt(&value, "count", 0.0);
        row.lat_sum = NumberAt(&value, "sum", 0.0);
        row.lat_p99 = HistQuantile(value, 0.99);
      }
    }
  }
  if (!tenants.empty()) {
    out << "\n  tenant               completed    share   mean_lat    p99_lat\n";
    for (const auto& [name, row] : tenants) {
      double share = completed > 0.0 ? row.completed / completed : 0.0;
      double mean =
          row.lat_count > 0.0 ? row.lat_sum / row.lat_count
                              : std::numeric_limits<double>::quiet_NaN();
      char line[160];
      std::snprintf(line, sizeof(line),
                    "  %-20s %10.0f   %5.1f%%   %8s   %8s\n",
                    row.tenant.empty() ? "(shared)" : row.tenant.c_str(),
                    row.completed, share * 100.0, FmtUs(mean).c_str(),
                    FmtUs(row.lat_p99).c_str());
      out << line;
    }
  }

  // Per-kind rollup.
  if (counters != nullptr && counters->is_object()) {
    std::string kinds;
    for (const auto& [name, value] : counters->object) {
      std::string kind;
      if (SplitLabel(name, "serve.completed", "kind", &kind)) {
        kinds += "  " + kind + "=" + FmtCount(value.NumberOr(0.0));
      }
    }
    if (!kinds.empty()) out << "\nkinds   " << kinds << "\n";
  }

  out << "\nspans     buffered=" << FmtCount(NumberAt(gauges, "obs.spans.buffered", 0.0))
      << " dropped=" << FmtCount(NumberAt(gauges, "obs.spans.dropped", 0.0))
      << " hwm=" << FmtCount(NumberAt(gauges, "obs.spans.hwm", 0.0)) << "\n";
  std::fputs(out.str().c_str(), stdout);
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file;
  size_t interval_ms = 1000;
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--file" && i + 1 < argc) {
      file = argv[++i];
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: obs_top --file <snapshot.json> [--interval-ms N] [--once]\n"
          "Point --file at the AUTODC_METRICS_SNAPSHOT path of a server\n"
          "running with AUTODC_METRICS_INTERVAL_MS set.\n");
      return 0;
    } else if (file.empty() && arg[0] != '-') {
      file = arg;  // positional form: obs_top <file>
    } else {
      std::fprintf(stderr, "obs_top: unknown flag '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    }
  }
  if (file.empty()) {
    std::fprintf(stderr, "obs_top: --file is required (try --help)\n");
    return 2;
  }
  if (interval_ms == 0) interval_ms = 1000;

  RenderState state;
  for (;;) {
    std::ifstream in(file);
    if (!in) {
      if (once) {
        std::fprintf(stderr, "obs_top: cannot read '%s'\n", file.c_str());
        return 1;
      }
      std::printf("obs_top: waiting for '%s'...\n", file.c_str());
    } else {
      std::stringstream buf;
      buf << in.rdbuf();
      int rc = Render(buf.str(), &state, /*clear=*/!once);
      if (once) return rc;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
