#ifndef AUTODC_DATAGEN_ERROR_INJECTOR_H_
#define AUTODC_DATAGEN_ERROR_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "src/data/dependencies.h"
#include "src/data/table.h"

namespace autodc::datagen {

/// What kind of error was injected into a cell.
enum class ErrorKind { kTypo = 0, kNull, kFdViolation, kOutlier };

/// Ground-truth record of one injected error.
struct InjectedError {
  size_t row = 0;
  size_t col = 0;
  ErrorKind kind = ErrorKind::kTypo;
  data::Value original;  ///< the clean value that was destroyed
};

struct ErrorInjectionConfig {
  double typo_rate = 0.02;          ///< per string cell
  double null_rate = 0.03;          ///< per cell (missing values)
  double fd_violation_rate = 0.02;  ///< per row, when FDs are supplied
  double outlier_rate = 0.01;       ///< per numeric cell (x10-50 scaling)
  uint64_t seed = 42;
};

/// The dirty table plus the exact cells that were corrupted — the
/// evaluation contract of a BART-style error generator [4]: repair
/// algorithms are scored against `errors`.
struct InjectionResult {
  data::Table dirty;
  std::vector<InjectedError> errors;
};

/// Injects typos, nulls, FD violations, and numeric outliers into a copy
/// of `clean`. FD violations overwrite the RHS cell of a row with a
/// different value drawn from the same column's domain, so exactly the
/// supplied constraint is broken.
InjectionResult InjectErrors(const data::Table& clean,
                             const std::vector<data::FunctionalDependency>& fds,
                             const ErrorInjectionConfig& config);

}  // namespace autodc::datagen

#endif  // AUTODC_DATAGEN_ERROR_INJECTOR_H_
