#include "src/datagen/perturb.h"

#include "src/common/string_util.h"

namespace autodc::datagen {

namespace {
constexpr const char* kAlphabet = "abcdefghijklmnopqrstuvwxyz";

char RandomLetter(Rng* rng) {
  return kAlphabet[rng->UniformInt(0, 25)];
}
}  // namespace

std::string Typo(const std::string& s, Rng* rng) {
  if (s.empty()) return s;
  std::string out = s;
  size_t pos = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(out.size()) - 1));
  switch (rng->UniformInt(0, 3)) {
    case 0:  // substitution
      out[pos] = RandomLetter(rng);
      break;
    case 1:  // deletion
      out.erase(pos, 1);
      break;
    case 2:  // insertion
      out.insert(out.begin() + static_cast<int64_t>(pos), RandomLetter(rng));
      break;
    default:  // adjacent transposition
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      else out[pos] = RandomLetter(rng);
  }
  return out;
}

std::string Typos(const std::string& s, size_t n, Rng* rng) {
  std::string out = s;
  for (size_t i = 0; i < n; ++i) out = Typo(out, rng);
  return out;
}

std::string AbbreviateFirstWord(const std::string& s) {
  std::vector<std::string> words = SplitWhitespace(s);
  if (words.empty() || words[0].empty()) return s;
  words[0] = std::string(1, words[0][0]) + ".";
  return Join(words, " ");
}

std::string SwapAdjacentWords(const std::string& s, Rng* rng) {
  std::vector<std::string> words = SplitWhitespace(s);
  if (words.size() < 2) return s;
  size_t i = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(words.size()) - 2));
  std::swap(words[i], words[i + 1]);
  return Join(words, " ");
}

std::string DropWord(const std::string& s, Rng* rng) {
  std::vector<std::string> words = SplitWhitespace(s);
  if (words.size() < 2) return s;
  size_t i = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(words.size()) - 1));
  words.erase(words.begin() + static_cast<int64_t>(i));
  return Join(words, " ");
}

std::string ChangeCase(const std::string& s, Rng* rng) {
  switch (rng->UniformInt(0, 2)) {
    case 0:
      return ToLower(s);
    case 1:
      return ToUpper(s);
    default: {
      std::vector<std::string> words = SplitWhitespace(s);
      for (std::string& w : words) w = Capitalize(w);
      return Join(words, " ");
    }
  }
}

double Jitter(double v, double epsilon, Rng* rng) {
  return v * (1.0 + rng->Uniform(-epsilon, epsilon));
}

void PerturbRow(data::Row* row, double cell_prob, Rng* rng) {
  for (data::Value& v : *row) {
    if (v.is_null() || !rng->Bernoulli(cell_prob)) continue;
    switch (v.type()) {
      case data::ValueType::kString: {
        const std::string& s = v.AsString();
        std::string out;
        switch (rng->UniformInt(0, 4)) {
          case 0: out = Typo(s, rng); break;
          case 1: out = AbbreviateFirstWord(s); break;
          case 2: out = SwapAdjacentWords(s, rng); break;
          case 3: out = DropWord(s, rng); break;
          default: out = ChangeCase(s, rng); break;
        }
        v = data::Value(out);
        break;
      }
      case data::ValueType::kInt:
        v = data::Value(static_cast<int64_t>(
            Jitter(static_cast<double>(v.AsInt()), 0.02, rng)));
        break;
      case data::ValueType::kDouble:
        v = data::Value(Jitter(v.AsDouble(), 0.02, rng));
        break;
      default:
        break;
    }
  }
}

}  // namespace autodc::datagen
