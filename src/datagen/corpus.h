#ifndef AUTODC_DATAGEN_CORPUS_H_
#define AUTODC_DATAGEN_CORPUS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace autodc::datagen {

struct SemanticCorpusConfig {
  size_t sentences_per_concept = 150;
  /// Probability each feature marker appears in a concept's sentence.
  double marker_prob = 0.9;
  size_t filler_words = 2;  ///< random noise words per sentence
  uint64_t seed = 42;
};

/// A synthetic corpus with planted semantic structure, standing in for
/// the large natural corpora word2vec/GloVe are trained on. It encodes
/// the exact examples the paper uses: the Figure 3 royalty/gender/youth
/// concept grid and the country-capital relation of Sec. 2.2/4, so the
/// "king - man + woman ≈ queen" arithmetic is testable.
struct SemanticCorpus {
  std::vector<std::vector<std::string>> sentences;

  /// Analogy ground truth: a : b :: c : d.
  struct Quad {
    std::string a, b, c, d;
  };
  std::vector<Quad> analogies;

  /// Pairs that must embed close together (same semantic neighbourhood).
  std::vector<std::pair<std::string, std::string>> related_pairs;
  /// Pairs that must embed far apart.
  std::vector<std::pair<std::string, std::string>> unrelated_pairs;

  /// All country and capital tokens (used by the synthesis module's
  /// semantic-transformation experiment).
  std::vector<std::pair<std::string, std::string>> country_capitals;
};

SemanticCorpus GenerateSemanticCorpus(const SemanticCorpusConfig& config = {});

}  // namespace autodc::datagen

#endif  // AUTODC_DATAGEN_CORPUS_H_
