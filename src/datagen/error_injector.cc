#include "src/datagen/error_injector.h"

#include "src/common/rng.h"
#include "src/datagen/perturb.h"

namespace autodc::datagen {

InjectionResult InjectErrors(
    const data::Table& clean,
    const std::vector<data::FunctionalDependency>& fds,
    const ErrorInjectionConfig& config) {
  Rng rng(config.seed);
  InjectionResult result;
  result.dirty = clean;

  // Cache column domains for FD-violation substitution.
  std::vector<std::vector<data::Value>> domains(clean.num_columns());
  for (size_t c = 0; c < clean.num_columns(); ++c) {
    domains[c] = clean.DistinctColumnValues(c);
  }

  for (size_t r = 0; r < result.dirty.num_rows(); ++r) {
    // FD violations first (cell-level errors may then stack elsewhere).
    if (!fds.empty() && rng.Bernoulli(config.fd_violation_rate)) {
      const data::FunctionalDependency& fd =
          fds[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(fds.size()) - 1))];
      const data::Value& cur = result.dirty.at(r, fd.rhs);
      const std::vector<data::Value>& dom = domains[fd.rhs];
      if (dom.size() >= 2) {
        data::Value replacement = cur;
        for (int attempt = 0; attempt < 10 && replacement == cur; ++attempt) {
          replacement = dom[static_cast<size_t>(rng.UniformInt(
              0, static_cast<int64_t>(dom.size()) - 1))];
        }
        if (replacement != cur) {
          result.errors.push_back(
              InjectedError{r, fd.rhs, ErrorKind::kFdViolation, cur});
          result.dirty.Set(r, fd.rhs, replacement);
        }
      }
    }
    for (size_t c = 0; c < result.dirty.num_columns(); ++c) {
      const data::Value& v = result.dirty.at(r, c);
      if (v.is_null()) continue;
      if (rng.Bernoulli(config.null_rate)) {
        result.errors.push_back(InjectedError{r, c, ErrorKind::kNull, v});
        result.dirty.Set(r, c, data::Value::Null());
        continue;
      }
      switch (v.type()) {
        case data::ValueType::kString:
          if (rng.Bernoulli(config.typo_rate)) {
            result.errors.push_back(InjectedError{r, c, ErrorKind::kTypo, v});
            result.dirty.Set(r, c, data::Value(Typo(v.AsString(), &rng)));
          }
          break;
        case data::ValueType::kDouble:
          if (rng.Bernoulli(config.outlier_rate)) {
            result.errors.push_back(
                InjectedError{r, c, ErrorKind::kOutlier, v});
            double factor = rng.Uniform(10.0, 50.0);
            result.dirty.Set(r, c, data::Value(v.AsDouble() * factor));
          }
          break;
        case data::ValueType::kInt:
          if (rng.Bernoulli(config.outlier_rate)) {
            result.errors.push_back(
                InjectedError{r, c, ErrorKind::kOutlier, v});
            double factor = rng.Uniform(10.0, 50.0);
            result.dirty.Set(
                r, c,
                data::Value(static_cast<int64_t>(
                    static_cast<double>(v.AsInt()) * factor)));
          }
          break;
        default:
          break;
      }
    }
  }
  return result;
}

}  // namespace autodc::datagen
