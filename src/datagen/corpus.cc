#include "src/datagen/corpus.h"

#include "src/common/rng.h"

namespace autodc::datagen {

namespace {

// The Figure 3 concept grid: concept -> {feature markers}.
struct Concept {
  const char* word;
  bool female;
  bool young;
  bool royal;
};
constexpr Concept kConcepts[] = {
    {"man", false, false, false},      {"woman", true, false, false},
    {"boy", false, true, false},       {"girl", true, true, false},
    {"prince", false, true, true},     {"princess", true, true, true},
    {"king", false, false, true},      {"queen", true, false, true},
};

constexpr const char* kCountryCapitals[][2] = {
    {"france", "paris"},    {"germany", "berlin"}, {"italy", "rome"},
    {"spain", "madrid"},    {"japan", "tokyo"},    {"egypt", "cairo"},
    {"canada", "ottawa"},   {"brazil", "brasilia"},
};

constexpr const char* kFillers[] = {"the", "a",  "was", "seen",  "near",
                                    "old", "new", "very", "quite", "then"};

std::string PickFiller(Rng* rng) {
  return kFillers[rng->UniformInt(0, 9)];
}

}  // namespace

SemanticCorpus GenerateSemanticCorpus(const SemanticCorpusConfig& config) {
  Rng rng(config.seed);
  SemanticCorpus corpus;

  // Concept sentences: the concept word plus its feature markers. Two
  // concepts sharing markers end up with similar contexts, and concept
  // pairs differing in exactly one marker (king/queen vs man/woman) give
  // parallel offset vectors — the mechanism behind word analogies.
  for (const Concept& c : kConcepts) {
    for (size_t s = 0; s < config.sentences_per_concept; ++s) {
      std::vector<std::string> sent;
      sent.push_back(c.word);
      if (rng.Bernoulli(config.marker_prob)) {
        sent.push_back(c.female ? "female" : "male");
      }
      if (rng.Bernoulli(config.marker_prob)) {
        sent.push_back(c.young ? "child" : "adult");
      }
      if (rng.Bernoulli(config.marker_prob)) {
        sent.push_back(c.royal ? "royal" : "common");
      }
      for (size_t f = 0; f < config.filler_words; ++f) {
        sent.push_back(PickFiller(&rng));
      }
      rng.Shuffle(&sent);
      corpus.sentences.push_back(std::move(sent));
    }
  }

  // Country/capital sentences: each pair shares a private context token
  // (the country itself) while capitals share the "capital city" role
  // markers and countries share the "nation" role marker.
  for (const auto& cc : kCountryCapitals) {
    corpus.country_capitals.emplace_back(cc[0], cc[1]);
    for (size_t s = 0; s < config.sentences_per_concept; ++s) {
      std::vector<std::string> country_sent = {cc[0], "nation",
                                               PickFiller(&rng)};
      std::vector<std::string> capital_sent = {cc[1], "capital", "city",
                                               cc[0], PickFiller(&rng)};
      rng.Shuffle(&country_sent);
      rng.Shuffle(&capital_sent);
      corpus.sentences.push_back(std::move(country_sent));
      corpus.sentences.push_back(std::move(capital_sent));
    }
  }
  rng.Shuffle(&corpus.sentences);

  corpus.analogies = {
      {"man", "woman", "king", "queen"},
      {"man", "woman", "prince", "princess"},
      {"boy", "girl", "prince", "princess"},
      {"king", "queen", "prince", "princess"},
      {"france", "paris", "germany", "berlin"},
      {"italy", "rome", "spain", "madrid"},
      {"japan", "tokyo", "egypt", "cairo"},
  };
  corpus.related_pairs = {
      {"king", "queen"},   {"prince", "princess"}, {"man", "woman"},
      {"girl", "princess"}, {"paris", "berlin"},   {"france", "germany"},
  };
  corpus.unrelated_pairs = {
      {"king", "paris"},   {"girl", "tokyo"},  {"france", "princess"},
      {"berlin", "woman"}, {"madrid", "boy"},
  };
  return corpus;
}

}  // namespace autodc::datagen
