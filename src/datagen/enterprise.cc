#include "src/datagen/enterprise.h"

#include "src/common/rng.h"

namespace autodc::datagen {

namespace {

using data::Schema;
using data::Table;
using data::Value;

// Shared value vocabularies. Columns drawing from the same pool are
// semantically linked no matter what they are named.
const char* const kProteins[] = {
    "p53 kinase",    "insulin receptor", "hemoglobin beta",
    "actin filament", "myosin heavy",    "collagen alpha",
    "keratin complex", "tubulin gamma",  "ferritin light",
    "albumin serum"};
const char* const kAssays[] = {
    "pcr amplification", "elisa screen",    "western blot",
    "mass spectrometry", "flow cytometry",  "gel electrophoresis",
    "sequencing panel",  "microarray scan"};
const char* const kOrganisms[] = {"human", "mouse", "yeast", "zebrafish",
                                  "fruitfly"};
const char* const kBodySites[] = {"liver lobe",   "lung apex",
                                  "kidney cortex", "skin dermis",
                                  "colon mucosa", "breast tissue"};
const char* const kHardware[] = {"valve gasket",  "pump rotor",
                                 "filter housing", "sensor bracket",
                                 "tube fitting",  "seal oring"};
const char* const kPeople[] = {
    "alice johnson", "bob smith",    "carol davis", "dan miller",
    "erin wilson",   "frank moore",  "grace taylor", "henry clark"};
const char* const kProducts[] = {"laptop stand", "desk lamp", "usb hub",
                                 "monitor arm", "webcam hd", "keyboard pad"};
const char* const kRegions[] = {"north", "south", "east", "west",
                                "central"};
const char* const kSuppliers[] = {"acme corp", "globex inc", "initech llc",
                                  "umbrella co"};

template <size_t N>
Value Pick(const char* const (&arr)[N], Rng* rng) {
  return Value(
      std::string(arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)]));
}

}  // namespace

EnterpriseLake GenerateEnterpriseLake(const EnterpriseConfig& config) {
  Rng rng(config.seed);
  EnterpriseLake lake;
  size_t n = config.rows_per_table;

  // ---- Bio domain ------------------------------------------------------
  Table protein_catalog(Schema::OfStrings({"protein", "organism", "function"}),
                        "protein_catalog");
  for (size_t i = 0; i < n; ++i) {
    protein_catalog.AppendRow({Pick(kProteins, &rng), Pick(kOrganisms, &rng),
                               Value("binding transport signaling")});
  }
  // lab_results names its protein column "isoform" and its assay column
  // "assay" — the exact links the pharma deployment surfaced.
  Table lab_results(
      Schema({{"isoform", data::ValueType::kString},
              {"assay", data::ValueType::kString},
              {"result_value", data::ValueType::kDouble}}),
      "lab_results");
  for (size_t i = 0; i < n; ++i) {
    lab_results.AppendRow({Pick(kProteins, &rng), Pick(kAssays, &rng),
                           Value(rng.Uniform(0.0, 100.0))});
  }
  Table experiments(Schema::OfStrings({"pcr", "sample", "readout"}),
                    "experiments");
  for (size_t i = 0; i < n; ++i) {
    experiments.AppendRow({Pick(kAssays, &rng), Pick(kBodySites, &rng),
                           Value("positive")});
  }

  // ---- Clinical vs facilities: the spurious syntactic pair -------------
  Table biopsies(Schema::OfStrings({"biopsy_site", "pathology"}),
                 "biopsies");
  for (size_t i = 0; i < n; ++i) {
    biopsies.AppendRow({Pick(kBodySites, &rng), Value("benign lesion")});
  }
  Table inventory(Schema::OfStrings({"site_components", "supplier"}),
                  "inventory");
  for (size_t i = 0; i < n; ++i) {
    inventory.AppendRow({Pick(kHardware, &rng), Pick(kSuppliers, &rng)});
  }

  // ---- Sales domain ----------------------------------------------------
  Table orders(Schema({{"customer", data::ValueType::kString},
                       {"product", data::ValueType::kString},
                       {"amount", data::ValueType::kDouble}}),
               "orders");
  for (size_t i = 0; i < n; ++i) {
    orders.AppendRow({Pick(kPeople, &rng), Pick(kProducts, &rng),
                      Value(rng.Uniform(10.0, 500.0))});
  }
  Table crm_contacts(Schema::OfStrings({"client", "region"}),
                     "crm_contacts");
  for (size_t i = 0; i < n; ++i) {
    crm_contacts.AppendRow({Pick(kPeople, &rng), Pick(kRegions, &rng)});
  }

  lake.tables = {std::move(protein_catalog), std::move(lab_results),
                 std::move(experiments),     std::move(biopsies),
                 std::move(inventory),       std::move(orders),
                 std::move(crm_contacts)};

  lake.semantic_links = {
      {"protein_catalog", "protein", "lab_results", "isoform"},
      {"lab_results", "assay", "experiments", "pcr"},
      {"experiments", "sample", "biopsies", "biopsy_site"},
      {"orders", "customer", "crm_contacts", "client"},
  };
  lake.spurious_links = {
      // Names share the token "site" but the value domains are disjoint
      // (body parts vs machine parts) — the Sec. 5.1 false positive.
      {"biopsies", "biopsy_site", "inventory", "site_components"},
  };
  lake.queries = {
      {"protein assay measurements", "lab_results"},
      {"pcr experiment readout", "experiments"},
      {"customer product purchases", "orders"},
      {"biopsy pathology findings", "biopsies"},
      {"component supplier parts", "inventory"},
  };
  return lake;
}

}  // namespace autodc::datagen
