#ifndef AUTODC_DATAGEN_ENTERPRISE_H_
#define AUTODC_DATAGEN_ENTERPRISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/table.h"

namespace autodc::datagen {

/// A planted ground-truth column pair in the synthetic enterprise lake.
struct ColumnLink {
  std::string table_a;
  std::string column_a;
  std::string table_b;
  std::string column_b;
};

struct EnterpriseConfig {
  size_t rows_per_table = 60;
  uint64_t seed = 42;
};

/// A synthetic multi-table "enterprise data lake" mimicking the pharma
/// deployment of Sec. 5.1 (Seeping Semantics): tables from several
/// business domains whose semantically-equivalent columns carry
/// *different names* (isoform vs protein, pcr vs assay), plus column-name
/// pairs that *look* alike syntactically but are semantically unrelated
/// (biopsy_site vs site_components). A semantic matcher must surface
/// `semantic_links` and reject `spurious_links`.
struct EnterpriseLake {
  std::vector<data::Table> tables;
  /// Same-concept columns under different names (should be linked).
  std::vector<ColumnLink> semantic_links;
  /// Name-similar but concept-disjoint columns (should NOT be linked).
  std::vector<ColumnLink> spurious_links;
  /// Keyword queries with their single best-matching table, for the
  /// neural-IR search experiment.
  struct Query {
    std::string text;
    std::string expected_table;
  };
  std::vector<Query> queries;
};

EnterpriseLake GenerateEnterpriseLake(const EnterpriseConfig& config = {});

}  // namespace autodc::datagen

#endif  // AUTODC_DATAGEN_ENTERPRISE_H_
