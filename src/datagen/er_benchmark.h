#ifndef AUTODC_DATAGEN_ER_BENCHMARK_H_
#define AUTODC_DATAGEN_ER_BENCHMARK_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/data/table.h"

namespace autodc::datagen {

/// Which realistic schema the generator mimics. These stand in for the
/// standard ER benchmark datasets (DBLP-ACM, Walmart-Amazon,
/// Fodors-Zagat) the DeepER line of work evaluates on.
enum class ErDomain {
  kProducts = 0,  ///< brand, model, category, price, description
  kPersons,       ///< name, city, street, phone, email
  kCitations,     ///< title, authors, venue, year
};

struct ErBenchmarkConfig {
  ErDomain domain = ErDomain::kProducts;
  size_t num_entities = 200;   ///< distinct real-world entities
  /// Fraction of entities that appear in BOTH tables (as a dirty pair);
  /// the rest appear in only one table.
  double overlap = 0.5;
  /// Perturbation intensity of the duplicate copy, in [0,1]: probability
  /// that each cell of the duplicate is corrupted.
  double dirtiness = 0.4;
  /// Probability that a corrupted string cell is nulled instead.
  double null_rate = 0.05;
  /// Probability the duplicate uses a *synonym* for its category-like
  /// attribute (laptop -> notebook). Synonyms preserve semantics but
  /// destroy string similarity — the error channel that separates
  /// embedding-based matchers from edit-distance ones.
  double synonym_rate = 0.3;
  uint64_t seed = 42;
};

/// A two-table ER task with ground truth, mirroring the record-linkage
/// setting of Figure 5.
struct ErBenchmark {
  data::Table left;
  data::Table right;
  /// Ground-truth matches as (left row, right row) pairs.
  std::vector<std::pair<size_t, size_t>> matches;
};

/// Generates a deterministic dirty-duplicate benchmark.
ErBenchmark GenerateErBenchmark(const ErBenchmarkConfig& config);

/// True if (l, r) is a ground-truth match (linear scan helper for tests).
bool IsMatch(const ErBenchmark& bench, size_t l, size_t r);

}  // namespace autodc::datagen

#endif  // AUTODC_DATAGEN_ER_BENCHMARK_H_
