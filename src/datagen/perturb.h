#ifndef AUTODC_DATAGEN_PERTURB_H_
#define AUTODC_DATAGEN_PERTURB_H_

#include <string>

#include "src/common/rng.h"
#include "src/data/table.h"

namespace autodc::datagen {

/// Label-preserving string transformations (Sec. 6.2.2): each returns a
/// corrupted-but-same-entity variant of `s`. These double as the error
/// channels of the ER benchmark generator and as augmentation operators.

/// Random single-character edit: substitution, deletion, insertion, or
/// adjacent transposition.
std::string Typo(const std::string& s, Rng* rng);

/// Applies `n` independent typos.
std::string Typos(const std::string& s, size_t n, Rng* rng);

/// Abbreviates the first word to its initial: "John Smith" -> "J. Smith".
std::string AbbreviateFirstWord(const std::string& s);

/// Swaps two adjacent words: "John Smith" -> "Smith John".
std::string SwapAdjacentWords(const std::string& s, Rng* rng);

/// Drops one word (if more than one).
std::string DropWord(const std::string& s, Rng* rng);

/// Random case change: lower, UPPER, or Title.
std::string ChangeCase(const std::string& s, Rng* rng);

/// Numeric jitter: multiplies by (1 +- epsilon).
double Jitter(double v, double epsilon, Rng* rng);

/// Applies a randomly chosen label-preserving transformation to the
/// string cells of `row` (in place); numeric cells get jitter with
/// probability `cell_prob`. Used for ER-pair data augmentation.
void PerturbRow(data::Row* row, double cell_prob, Rng* rng);

}  // namespace autodc::datagen

#endif  // AUTODC_DATAGEN_PERTURB_H_
