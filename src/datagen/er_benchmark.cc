#include "src/datagen/er_benchmark.h"

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/string_util.h"
#include "src/datagen/perturb.h"

namespace autodc::datagen {

namespace {

using data::Row;
using data::Schema;
using data::Table;
using data::Value;

const char* const kBrands[] = {
    "sony", "samsung", "apple", "lenovo", "dell", "asus", "panasonic",
    "canon", "nikon", "logitech", "philips", "toshiba", "acer", "hp"};
const char* const kCategories[] = {"laptop", "camera",  "phone",
                                   "monitor", "printer", "tablet",
                                   "headphones", "keyboard"};
const char* const kAdjectives[] = {"pro", "ultra", "max",   "mini",
                                   "plus", "lite",  "prime", "elite"};
// Synonym table for the category attribute: surface forms differ wildly
// but denote the same concept.
const char* const kCategorySynonyms[][2] = {
    {"laptop", "notebook"},       {"camera", "camcorder"},
    {"phone", "handset"},         {"monitor", "display"},
    {"printer", "copier"},        {"tablet", "slate"},
    {"headphones", "earphones"},  {"keyboard", "keypad"}};

// Returns the synonym of `s` if it participates in a synonym pair.
std::string SynonymOf(const std::string& s) {
  for (const auto& pair : kCategorySynonyms) {
    if (s == pair[0]) return pair[1];
    if (s == pair[1]) return pair[0];
  }
  return s;
}

const char* const kFirstNames[] = {
    "james", "mary", "john",  "patricia", "robert", "jennifer", "michael",
    "linda", "david", "susan", "richard", "karen",  "joseph",   "nancy",
    "thomas", "lisa", "charles", "betty", "daniel", "sandra"};
const char* const kLastNames[] = {
    "smith", "johnson", "williams", "brown",  "jones",  "garcia",
    "miller", "davis",  "rodriguez", "martinez", "hernandez", "lopez",
    "gonzalez", "wilson", "anderson", "taylor", "moore", "jackson"};
const char* const kCities[] = {"springfield", "riverton", "fairview",
                               "greenville", "bristol",  "clinton",
                               "georgetown", "salem",    "madison",
                               "franklin"};
const char* const kStreets[] = {"oak", "maple", "cedar", "pine",
                                "elm", "walnut", "willow", "birch"};

const char* const kTitleWords[] = {
    "learning",  "deep",      "neural",    "entity",   "resolution",
    "data",      "curation",  "embedding", "database", "cleaning",
    "matching",  "discovery", "scalable",  "efficient", "distributed",
    "adaptive",  "robust",    "automatic", "holistic",  "semantic"};
const char* const kVenues[] = {"vldb", "sigmod", "icde", "edbt", "cidr",
                               "kdd", "www", "aaai"};

template <size_t N>
std::string Pick(const char* const (&arr)[N], Rng* rng) {
  return arr[rng->UniformInt(0, static_cast<int64_t>(N) - 1)];
}

Schema SchemaFor(ErDomain domain) {
  switch (domain) {
    case ErDomain::kProducts:
      return Schema({{"brand", data::ValueType::kString},
                     {"model", data::ValueType::kString},
                     {"category", data::ValueType::kString},
                     {"price", data::ValueType::kDouble},
                     {"description", data::ValueType::kString}});
    case ErDomain::kPersons:
      return Schema({{"name", data::ValueType::kString},
                     {"city", data::ValueType::kString},
                     {"street", data::ValueType::kString},
                     {"phone", data::ValueType::kString},
                     {"email", data::ValueType::kString}});
    case ErDomain::kCitations:
      return Schema({{"title", data::ValueType::kString},
                     {"authors", data::ValueType::kString},
                     {"venue", data::ValueType::kString},
                     {"year", data::ValueType::kInt}});
  }
  return Schema(std::vector<data::Column>{});
}

Row MakeEntity(ErDomain domain, Rng* rng) {
  switch (domain) {
    case ErDomain::kProducts: {
      std::string brand = Pick(kBrands, rng);
      std::string model = Pick(kAdjectives, rng) + " " +
                          std::to_string(rng->UniformInt(100, 9999));
      std::string category = Pick(kCategories, rng);
      double price = rng->Uniform(50, 2000);
      std::string desc = brand + " " + category + " " + model + " " +
                         Pick(kAdjectives, rng) + " edition";
      return {Value(brand), Value(model), Value(category), Value(price),
              Value(desc)};
    }
    case ErDomain::kPersons: {
      std::string name = Pick(kFirstNames, rng) + " " + Pick(kLastNames, rng);
      std::string city = Pick(kCities, rng);
      std::string street = std::to_string(rng->UniformInt(1, 999)) + " " +
                           Pick(kStreets, rng) + " st";
      std::string phone = std::to_string(rng->UniformInt(200, 999)) + "-" +
                          std::to_string(rng->UniformInt(200, 999)) + "-" +
                          std::to_string(rng->UniformInt(1000, 9999));
      std::vector<std::string> parts = SplitWhitespace(name);
      std::string email = parts[0] + "." + parts[1] + "@example.com";
      return {Value(name), Value(city), Value(street), Value(phone),
              Value(email)};
    }
    case ErDomain::kCitations: {
      std::string title;
      size_t words = static_cast<size_t>(rng->UniformInt(4, 8));
      for (size_t i = 0; i < words; ++i) {
        if (i > 0) title += " ";
        title += Pick(kTitleWords, rng);
      }
      size_t nauthors = static_cast<size_t>(rng->UniformInt(1, 3));
      std::string authors;
      for (size_t i = 0; i < nauthors; ++i) {
        if (i > 0) authors += " and ";
        authors += Pick(kFirstNames, rng);
        authors += " ";
        authors += Pick(kLastNames, rng);
      }
      return {Value(title), Value(authors), Value(Pick(kVenues, rng)),
              Value(rng->UniformInt(1995, 2020))};
    }
  }
  return {};
}

// Corrupts a copy of `row` per the config's dirtiness.
Row MakeDuplicate(const Row& row, const ErBenchmarkConfig& config, Rng* rng) {
  Row dup = row;
  // Synonym substitution on the products category (column 2), mirrored in
  // the description (column 4) where the category word also appears.
  if (config.domain == ErDomain::kProducts &&
      rng->Bernoulli(config.synonym_rate) && !dup[2].is_null()) {
    std::string cat = dup[2].AsString();
    std::string syn = SynonymOf(cat);
    if (syn != cat) {
      dup[2] = Value(syn);
      if (!dup[4].is_null()) {
        std::string desc = dup[4].AsString();
        size_t pos = desc.find(cat);
        if (pos != std::string::npos) desc.replace(pos, cat.size(), syn);
        dup[4] = Value(desc);
      }
    }
  }
  for (data::Value& v : dup) {
    if (v.is_null() || !rng->Bernoulli(config.dirtiness)) continue;
    if (v.type() == data::ValueType::kString &&
        rng->Bernoulli(config.null_rate)) {
      v = Value::Null();
      continue;
    }
    switch (v.type()) {
      case data::ValueType::kString: {
        const std::string& s = v.AsString();
        std::string out;
        switch (rng->UniformInt(0, 5)) {
          case 0: out = Typo(s, rng); break;
          case 1: out = Typos(s, 2, rng); break;
          case 2: out = AbbreviateFirstWord(s); break;
          case 3: out = SwapAdjacentWords(s, rng); break;
          case 4: out = DropWord(s, rng); break;
          default: out = ChangeCase(s, rng); break;
        }
        v = Value(out);
        break;
      }
      case data::ValueType::kDouble:
        v = Value(Jitter(v.AsDouble(), 0.05, rng));
        break;
      case data::ValueType::kInt:
        // Off-by-small-amount errors (e.g. publication year).
        v = Value(v.AsInt() + rng->UniformInt(-1, 1));
        break;
      default:
        break;
    }
  }
  return dup;
}

}  // namespace

ErBenchmark GenerateErBenchmark(const ErBenchmarkConfig& config) {
  Rng rng(config.seed);
  ErBenchmark bench;
  Schema schema = SchemaFor(config.domain);
  bench.left = Table(schema, "left");
  bench.right = Table(schema, "right");

  for (size_t e = 0; e < config.num_entities; ++e) {
    Row entity = MakeEntity(config.domain, &rng);
    bool in_both = rng.Bernoulli(config.overlap);
    if (in_both) {
      size_t l = bench.left.num_rows();
      size_t r = bench.right.num_rows();
      bench.left.AppendRow(entity);
      bench.right.AppendRow(MakeDuplicate(entity, config, &rng));
      bench.matches.emplace_back(l, r);
    } else if (rng.Bernoulli(0.5)) {
      bench.left.AppendRow(std::move(entity));
    } else {
      bench.right.AppendRow(std::move(entity));
    }
  }
  return bench;
}

bool IsMatch(const ErBenchmark& bench, size_t l, size_t r) {
  return std::find(bench.matches.begin(), bench.matches.end(),
                   std::make_pair(l, r)) != bench.matches.end();
}

}  // namespace autodc::datagen
