#ifndef AUTODC_OBS_TRACE_EXPORT_H_
#define AUTODC_OBS_TRACE_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"

// Renders drained SpanRecords as Chrome trace-event JSON (the "JSON
// Object Format" both chrome://tracing and Perfetto load). Every span
// becomes one "ph":"X" complete event: `ts`/`dur` are the span's
// microsecond start/duration on the shared process obs epoch, `pid` is
// a fixed 1 (one process), and `tid` is the recording thread's obs
// slot — so the viewer's per-track nesting reproduces the Span
// parent/child tree exactly, and the span id / parent id ride along in
// `args` for programmatic consumers. A pipeline run with
// AUTODC_TRACE=<path> set in the environment becomes a file you can
// drop into ui.perfetto.dev unchanged.
namespace autodc::obs {

/// Fixed pid for all trace events (single-process tree).
inline constexpr int kTracePid = 1;

/// Chrome trace-event JSON for `spans` (as drained by TakeSpans()).
/// Events are sorted by (ts, dur desc, id) so parents precede their
/// children; `spans_dropped` lands in otherData.spans_dropped, flagging
/// an incomplete trace. Deterministic: equal inputs, equal bytes.
std::string FormatChromeTrace(const std::vector<SpanRecord>& spans,
                              uint64_t spans_dropped = 0);

/// Drains TakeSpans() and writes FormatChromeTrace to `path`
/// (truncating: a trace file is one JSON document, never an append
/// log). Returns false when the file cannot be opened.
bool WriteTrace(const std::string& path);

/// Reads AUTODC_TRACE (a file path) and, when set, registers an atexit
/// hook draining the final trace there — the tracing twin of
/// AUTODC_METRICS. Installed from Span creation and registry init; safe
/// to call repeatedly (first call wins).
void InstallTraceDumpFromEnv();

}  // namespace autodc::obs

#endif  // AUTODC_OBS_TRACE_EXPORT_H_
