#ifndef AUTODC_OBS_EXPORT_H_
#define AUTODC_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

// Snapshot exporters: a pretty fixed-width text table for humans and a
// one-line JSON object (same writer and escaping as bench_util's
// RESULT_JSON lines — src/common/json.h) for machines. The
// AUTODC_METRICS env var wires the JSON+text dump to process exit.
namespace autodc::obs {

/// Multi-line human-readable rendering: counters, gauges, histograms
/// (with bucket rows), then the most recent spans. `max_spans` bounds
/// the span section (0 = omit spans entirely). Draining spans is left
/// to the caller — pass TakeSpans() output; a nonzero `spans_dropped`
/// (pass SpansDropped()) is called out in the span section header so
/// buffer overflow is never silent.
std::string FormatText(const MetricsSnapshot& snapshot,
                       const std::vector<SpanRecord>& spans = {},
                       size_t max_spans = 40, uint64_t spans_dropped = 0);

/// One-line JSON object:
///   {"counters":{...},"gauges":{...},
///    "histograms":{"name":{"count":..,"sum":..,"min":..,"max":..,
///                          "bounds":[..],"counts":[..]},..}}
/// Non-finite values (an empty histogram's min/max, a NaN gauge) emit
/// as null, exactly like every other RESULT_JSON line in the tree.
std::string FormatJson(const MetricsSnapshot& snapshot);

/// Takes a snapshot of the global registry and writes text + one
/// `METRICS_JSON {...}` line to `target`: "stderr", "stdout", or a file
/// path (appended). Returns false when the file cannot be opened.
bool WriteSnapshot(const std::string& target);

/// Reads AUTODC_METRICS ("stderr"|"stdout"|<path>) and, when set,
/// registers an atexit hook dumping the final snapshot there. Called
/// once from MetricsRegistry::Global(); safe to call again (no-op).
void InstallExitDumpFromEnv();

}  // namespace autodc::obs

#endif  // AUTODC_OBS_EXPORT_H_
