#include "src/obs/export.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/obs/log.h"
#include "src/obs/trace.h"

namespace autodc::obs {

namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonArray(const std::vector<double>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonNumber(v[i]);
  }
  return out + "]";
}

std::string JsonArray(const std::vector<uint64_t>& v) {
  std::string out = "[";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(v[i]);
  }
  return out + "]";
}

}  // namespace

std::string FormatText(const MetricsSnapshot& snapshot,
                       const std::vector<SpanRecord>& spans,
                       size_t max_spans, uint64_t spans_dropped) {
  std::ostringstream os;
  os << "=== autodc metrics snapshot ===\n";
  if (!snapshot.counters.empty()) {
    os << "counters:\n";
    for (const CounterSample& c : snapshot.counters) {
      char line[256];
      std::snprintf(line, sizeof(line), "  %-44s %" PRIu64 "\n",
                    c.name.c_str(), c.value);
      os << line;
    }
  }
  if (!snapshot.gauges.empty()) {
    os << "gauges:\n";
    for (const GaugeSample& g : snapshot.gauges) {
      char line[256];
      std::snprintf(line, sizeof(line), "  %-44s %s\n", g.name.c_str(),
                    FmtDouble(g.value).c_str());
      os << line;
    }
  }
  if (!snapshot.histograms.empty()) {
    os << "histograms:\n";
    for (const HistogramSample& h : snapshot.histograms) {
      char line[320];
      std::snprintf(line, sizeof(line),
                    "  %-44s count=%" PRIu64 " sum=%s min=%s max=%s\n",
                    h.name.c_str(), h.count, FmtDouble(h.sum).c_str(),
                    FmtDouble(h.min).c_str(), FmtDouble(h.max).c_str());
      os << line;
      if (h.count == 0) continue;
      os << "    buckets:";
      for (size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        std::string label = i < h.bounds.size()
                                ? "<" + FmtDouble(h.bounds[i])
                                : ">=" + FmtDouble(h.bounds.back());
        os << " [" << label << "]=" << h.counts[i];
      }
      os << "\n";
    }
  }
  if (max_spans > 0 && !spans.empty()) {
    os << "spans (" << spans.size() << " recorded";
    if (spans_dropped > 0) os << ", " << spans_dropped << " DROPPED";
    if (spans.size() > max_spans) {
      os << ", last " << max_spans << " shown";
    }
    os << "):\n";
    size_t begin = spans.size() > max_spans ? spans.size() - max_spans : 0;
    for (size_t i = begin; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      char line[320];
      std::snprintf(line, sizeof(line), "  [t%02u] %*s%s %s ms\n", s.thread,
                    static_cast<int>(s.depth * 2), "", s.name.c_str(),
                    FmtDouble(static_cast<double>(s.duration_us) / 1e3)
                        .c_str());
      os << line;
    }
  }
  return os.str();
}

std::string FormatJson(const MetricsSnapshot& snapshot) {
  JsonObject counters;
  for (const CounterSample& c : snapshot.counters) {
    counters.SetRaw(c.name, std::to_string(c.value));
  }
  JsonObject gauges;
  for (const GaugeSample& g : snapshot.gauges) {
    gauges.Set(g.name, g.value);
  }
  JsonObject histograms;
  for (const HistogramSample& h : snapshot.histograms) {
    JsonObject hist;
    hist.Set("count", static_cast<size_t>(h.count))
        .Set("sum", h.sum)
        .Set("min", h.min)
        .Set("max", h.max)
        .SetRaw("bounds", JsonArray(h.bounds))
        .SetRaw("counts", JsonArray(h.counts));
    histograms.SetRaw(h.name, hist.str());
  }
  JsonObject root;
  root.SetRaw("counters", counters.str())
      .SetRaw("gauges", gauges.str())
      .SetRaw("histograms", histograms.str());
  return root.str();
}

bool WriteSnapshot(const std::string& target) {
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  std::vector<SpanRecord> spans = TakeSpans();
  std::string text = FormatText(snap, spans, /*max_spans=*/40, SpansDropped());
  std::string json = "METRICS_JSON " + FormatJson(snap) + "\n";
  if (target == "stderr") {
    std::fputs(text.c_str(), stderr);
    std::fputs(json.c_str(), stderr);
    return true;
  }
  if (target == "stdout") {
    std::fputs(text.c_str(), stdout);
    std::fputs(json.c_str(), stdout);
    return true;
  }
  std::ofstream out(target, std::ios::app);
  if (!out) {
    AUTODC_LOG(WARN) << "AUTODC_METRICS: cannot open '" << target << "'";
    return false;
  }
  out << text << json;
  return static_cast<bool>(out);
}

namespace {

std::string& ExitDumpTarget() {
  static auto* target = new std::string();
  return *target;
}

void DumpAtExit() {
  if (!ExitDumpTarget().empty()) WriteSnapshot(ExitDumpTarget());
}

}  // namespace

void InstallExitDumpFromEnv() {
  static bool installed = [] {
    std::string target = EnvString("AUTODC_METRICS");
    if (!target.empty()) {
      ExitDumpTarget() = target;
      std::atexit(&DumpAtExit);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace autodc::obs
