#include "src/obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <unordered_map>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/obs/log.h"

namespace autodc::obs {

namespace {

// One "ph":"X" complete event. Built with raw string appends rather
// than JsonObject so a 100k-span drain does not churn through per-event
// builder allocations.
void AppendCompleteEvent(const SpanRecord& s, std::string* out) {
  out->append("{\"name\":\"");
  out->append(JsonEscape(s.name));
  out->append("\",\"cat\":\"autodc\",\"ph\":\"X\",\"ts\":");
  out->append(std::to_string(s.start_us));
  out->append(",\"dur\":");
  out->append(std::to_string(s.duration_us));
  out->append(",\"pid\":");
  out->append(std::to_string(kTracePid));
  out->append(",\"tid\":");
  out->append(std::to_string(s.thread));
  out->append(",\"args\":{\"span_id\":");
  out->append(std::to_string(s.id));
  out->append(",\"parent_id\":");
  out->append(std::to_string(s.parent_id));
  out->append(",\"trace_id\":");
  out->append(std::to_string(s.trace_id));
  out->append(",\"depth\":");
  out->append(std::to_string(s.depth));
  out->append("}}");
}

void AppendMetadataEvent(const std::string& name, int tid,
                         const std::string& arg_name, std::string* out) {
  out->append("{\"name\":\"");
  out->append(name);
  out->append("\",\"ph\":\"M\",\"pid\":");
  out->append(std::to_string(kTracePid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"args\":{\"name\":\"");
  out->append(JsonEscape(arg_name));
  out->append("\"}}");
}

// One flow arrow (ph "s" start / ph "f" finish) binding a cross-thread
// parent to its child so the viewer draws the request as one connected
// tree instead of two unrelated slices. The flow id is the child's span
// id — unique per edge.
void AppendFlowEvent(const char* ph, uint64_t flow_id, uint64_t ts,
                     uint32_t tid, std::string* out) {
  out->append("{\"name\":\"autodc.link\",\"cat\":\"autodc\",\"ph\":\"");
  out->append(ph);
  out->append("\",\"id\":");
  out->append(std::to_string(flow_id));
  out->append(",\"ts\":");
  out->append(std::to_string(ts));
  out->append(",\"pid\":");
  out->append(std::to_string(kTracePid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  if (ph[0] == 'f') out->append(",\"bp\":\"e\"");
  out->append("}");
}

}  // namespace

std::string FormatChromeTrace(const std::vector<SpanRecord>& spans,
                              uint64_t spans_dropped) {
  // Parents before children: span ids are allotted in creation order,
  // and a parent exists before any of its children — on its own thread
  // by RAII nesting, across threads because a TraceContext is copied
  // out of a live span. So sorting by (ts, id) puts every parent ahead
  // of its children even when microsecond truncation collapses their
  // start times (where a duration tie-break would misorder a short
  // cross-thread admission span behind its long-running child).
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start_us != b->start_us) {
                       return a->start_us < b->start_us;
                     }
                     return a->id < b->id;
                   });

  std::set<uint32_t> tids;
  for (const SpanRecord& s : spans) tids.insert(s.thread);
  std::unordered_map<uint64_t, const SpanRecord*> by_id;
  by_id.reserve(spans.size());
  for (const SpanRecord& s : spans) by_id.emplace(s.id, &s);

  std::string out;
  out.reserve(64 + spans.size() * 160);
  out.append("{\"traceEvents\":[");
  bool first = true;
  AppendMetadataEvent("process_name", 0, "autodc", &out);
  first = false;
  for (uint32_t tid : tids) {
    out.push_back(',');
    AppendMetadataEvent("thread_name", static_cast<int>(tid),
                        "obs-slot-" + std::to_string(tid), &out);
  }
  for (const SpanRecord* s : ordered) {
    if (!first) out.push_back(',');
    first = false;
    AppendCompleteEvent(*s, &out);
  }
  // Flow arrows for every parent/child edge that crosses threads (the
  // in-thread edges are already drawn by track nesting). Emitted in the
  // children's sorted order, so equal inputs yield equal bytes.
  uint64_t flow_edges = 0;
  for (const SpanRecord* s : ordered) {
    if (s->parent_id == 0) continue;
    auto it = by_id.find(s->parent_id);
    if (it == by_id.end() || it->second->thread == s->thread) continue;
    const SpanRecord* parent = it->second;
    out.push_back(',');
    AppendFlowEvent("s", s->id, parent->start_us, parent->thread, &out);
    out.push_back(',');
    AppendFlowEvent("f", s->id, s->start_us, s->thread, &out);
    ++flow_edges;
  }
  out.append("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans\":");
  out.append(std::to_string(spans.size()));
  out.append(",\"spans_dropped\":");
  out.append(std::to_string(spans_dropped));
  out.append(",\"flow_edges\":");
  out.append(std::to_string(flow_edges));
  out.append(",\"clock\":\"us since process obs epoch\"}}");
  return out;
}

bool WriteTrace(const std::string& path) {
  std::vector<SpanRecord> spans = TakeSpans();
  std::string json = FormatChromeTrace(spans, SpansDropped());
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    AUTODC_LOG(WARN) << "AUTODC_TRACE: cannot open '" << path << "'";
    return false;
  }
  out << json << "\n";
  return static_cast<bool>(out);
}

namespace {

std::string& TraceDumpPath() {
  static auto* path = new std::string();
  return *path;
}

void DumpTraceAtExit() {
  if (!TraceDumpPath().empty()) WriteTrace(TraceDumpPath());
}

}  // namespace

void InstallTraceDumpFromEnv() {
  static bool installed = [] {
    std::string path = EnvString("AUTODC_TRACE");
    if (!path.empty()) {
      TraceDumpPath() = path;
      std::atexit(&DumpTraceAtExit);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace autodc::obs
