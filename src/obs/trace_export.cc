#include "src/obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/obs/log.h"

namespace autodc::obs {

namespace {

// One "ph":"X" complete event. Built with raw string appends rather
// than JsonObject so a 100k-span drain does not churn through per-event
// builder allocations.
void AppendCompleteEvent(const SpanRecord& s, std::string* out) {
  out->append("{\"name\":\"");
  out->append(JsonEscape(s.name));
  out->append("\",\"cat\":\"autodc\",\"ph\":\"X\",\"ts\":");
  out->append(std::to_string(s.start_us));
  out->append(",\"dur\":");
  out->append(std::to_string(s.duration_us));
  out->append(",\"pid\":");
  out->append(std::to_string(kTracePid));
  out->append(",\"tid\":");
  out->append(std::to_string(s.thread));
  out->append(",\"args\":{\"span_id\":");
  out->append(std::to_string(s.id));
  out->append(",\"parent_id\":");
  out->append(std::to_string(s.parent_id));
  out->append(",\"depth\":");
  out->append(std::to_string(s.depth));
  out->append("}}");
}

void AppendMetadataEvent(const std::string& name, int tid,
                         const std::string& arg_name, std::string* out) {
  out->append("{\"name\":\"");
  out->append(name);
  out->append("\",\"ph\":\"M\",\"pid\":");
  out->append(std::to_string(kTracePid));
  out->append(",\"tid\":");
  out->append(std::to_string(tid));
  out->append(",\"args\":{\"name\":\"");
  out->append(JsonEscape(arg_name));
  out->append("\"}}");
}

}  // namespace

std::string FormatChromeTrace(const std::vector<SpanRecord>& spans,
                              uint64_t spans_dropped) {
  // Parents before children: at equal start the longer span is the
  // enclosing one, and ids break the remaining ties (ids grow in
  // creation order, so a zero-length parent still precedes its
  // zero-length child).
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& s : spans) ordered.push_back(&s);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     if (a->start_us != b->start_us) {
                       return a->start_us < b->start_us;
                     }
                     if (a->duration_us != b->duration_us) {
                       return a->duration_us > b->duration_us;
                     }
                     return a->id < b->id;
                   });

  std::set<uint32_t> tids;
  for (const SpanRecord& s : spans) tids.insert(s.thread);

  std::string out;
  out.reserve(64 + spans.size() * 160);
  out.append("{\"traceEvents\":[");
  bool first = true;
  AppendMetadataEvent("process_name", 0, "autodc", &out);
  first = false;
  for (uint32_t tid : tids) {
    out.push_back(',');
    AppendMetadataEvent("thread_name", static_cast<int>(tid),
                        "obs-slot-" + std::to_string(tid), &out);
  }
  for (const SpanRecord* s : ordered) {
    if (!first) out.push_back(',');
    first = false;
    AppendCompleteEvent(*s, &out);
  }
  out.append("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"spans\":");
  out.append(std::to_string(spans.size()));
  out.append(",\"spans_dropped\":");
  out.append(std::to_string(spans_dropped));
  out.append(",\"clock\":\"us since process obs epoch\"}}");
  return out;
}

bool WriteTrace(const std::string& path) {
  std::vector<SpanRecord> spans = TakeSpans();
  std::string json = FormatChromeTrace(spans, SpansDropped());
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    AUTODC_LOG(WARN) << "AUTODC_TRACE: cannot open '" << path << "'";
    return false;
  }
  out << json << "\n";
  return static_cast<bool>(out);
}

namespace {

std::string& TraceDumpPath() {
  static auto* path = new std::string();
  return *path;
}

void DumpTraceAtExit() {
  if (!TraceDumpPath().empty()) WriteTrace(TraceDumpPath());
}

}  // namespace

void InstallTraceDumpFromEnv() {
  static bool installed = [] {
    std::string path = EnvString("AUTODC_TRACE");
    if (!path.empty()) {
      TraceDumpPath() = path;
      std::atexit(&DumpTraceAtExit);
    }
    return true;
  }();
  (void)installed;
}

}  // namespace autodc::obs
