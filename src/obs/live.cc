#include "src/obs/live.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>

#include "src/common/env.h"
#include "src/obs/export.h"
#include "src/obs/log.h"

namespace autodc::obs {

// ---- SlidingQuantile --------------------------------------------------

SlidingQuantile::SlidingQuantile(const Histogram* hist, size_t window_ticks)
    : hist_(hist),
      window_(std::max<size_t>(1, window_ticks)),
      bounds_(hist->bounds()),
      last_(hist->BucketCounts()),
      window_sum_(bounds_.size() + 1, 0) {}

void SlidingQuantile::Tick() {
  std::vector<uint64_t> cur = hist_->BucketCounts();
  std::vector<uint64_t> delta(cur.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    // A ResetValues() between ticks makes cumulative counts shrink;
    // treat the post-reset count as this tick's recording.
    delta[i] = cur[i] >= last_[i] ? cur[i] - last_[i] : cur[i];
    window_sum_[i] += delta[i];
  }
  last_ = std::move(cur);
  ring_.push_back(std::move(delta));
  if (ring_.size() > window_) {
    const std::vector<uint64_t>& old = ring_.front();
    for (size_t i = 0; i < old.size(); ++i) window_sum_[i] -= old[i];
    ring_.pop_front();
  }
}

uint64_t SlidingQuantile::WindowCount() const {
  uint64_t total = 0;
  for (uint64_t c : window_sum_) total += c;
  return total;
}

double SlidingQuantile::Quantile(double q) const {
  uint64_t total = WindowCount();
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  q = std::min(1.0, std::max(0.0, q));
  // Rank in [1, total]; walk buckets until the cumulative count covers
  // it, then interpolate linearly inside the covering bucket.
  double target = std::max(1.0, q * static_cast<double>(total));
  uint64_t cum = 0;
  for (size_t i = 0; i < window_sum_.size(); ++i) {
    if (window_sum_[i] == 0) continue;
    double before = static_cast<double>(cum);
    cum += window_sum_[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: the true value is >= bounds_.back(), which is
      // all the histogram knows — clamp rather than extrapolate.
      return bounds_.empty() ? std::numeric_limits<double>::quiet_NaN()
                             : bounds_.back();
    }
    double lo = i == 0 ? 0.0 : bounds_[i - 1];
    double hi = bounds_[i];
    double frac = (target - before) / static_cast<double>(window_sum_[i]);
    return lo + (hi - lo) * frac;
  }
  return bounds_.empty() ? std::numeric_limits<double>::quiet_NaN()
                         : bounds_.back();
}

// ---- Config -----------------------------------------------------------

SloConfig SloConfigFromEnv() {
  SloConfig s;
  s.p99_us = EnvDouble("AUTODC_SLO_P99_US", s.p99_us, 0.0, 1e12);
  s.queue_depth =
      EnvDouble("AUTODC_SLO_QUEUE_DEPTH", s.queue_depth, 0.0, 1e12);
  s.reject_rate =
      EnvDouble("AUTODC_SLO_REJECT_RATE", s.reject_rate, 0.0, 1.0);
  return s;
}

LiveMonitorConfig LiveMonitorConfigFromEnv() {
  LiveMonitorConfig c;
  c.interval_ms =
      EnvSizeT("AUTODC_METRICS_INTERVAL_MS", c.interval_ms, 0, 3600000);
  c.window_ticks = EnvSizeT("AUTODC_METRICS_WINDOW", c.window_ticks, 1, 4096);
  c.snapshot_path = EnvString("AUTODC_METRICS_SNAPSHOT");
  c.slo = SloConfigFromEnv();
  return c;
}

// ---- Monitor ----------------------------------------------------------

namespace {

// One SLO dimension's edge-trigger state: WARN once on breach entry,
// INFO once on recovery, a 0/1 gauge either way.
struct SloDimension {
  const char* what;        // human name for the log line
  const char* gauge_name;  // serve.slo.breached.<dim>
  bool breached = false;
};

struct LiveMonitor {
  LiveMonitorConfig config;
  std::thread thread;
  std::mutex mu;  // guards everything below + serializes ticks
  std::condition_variable cv;
  bool stop = false;

  std::unique_ptr<SlidingQuantile> latency;
  std::unique_ptr<SlidingQuantile> queue_wait;
  // Cumulative (rejected, attempted) samples, one per tick, newest
  // last; the window rate is the diff between the ends.
  std::deque<std::array<uint64_t, 2>> rate_ring;
  SloDimension slo_p99{"serve.latency_p99", "serve.slo.breached.p99"};
  SloDimension slo_depth{"serve.queue.depth", "serve.slo.breached.queue_depth"};
  SloDimension slo_reject{"serve.reject_rate",
                          "serve.slo.breached.reject_rate"};
};

std::mutex g_monitor_mu;
LiveMonitor* g_monitor = nullptr;
std::atomic<uint64_t> g_ticks{0};

uint64_t CounterValueOrZero(const MetricsRegistry& reg,
                            const std::string& name) {
  const Counter* c = reg.FindCounter(name);
  return c != nullptr ? c->Value() : 0;
}

void EvaluateSlo(SloDimension* dim, double value, double threshold) {
  auto& reg = MetricsRegistry::Global();
  bool breach = std::isfinite(value) && value > threshold;
  reg.GetGauge(dim->gauge_name)->Set(breach ? 1.0 : 0.0);
  if (breach && !dim->breached) {
    reg.GetCounter("serve.slo.breaches")->Inc();
    AUTODC_LOG(WARN) << "SLO breach: " << dim->what << "=" << value << " > "
                     << threshold;
  } else if (!breach && dim->breached) {
    AUTODC_LOG(INFO) << "SLO recovered: " << dim->what << "=" << value
                     << " <= " << threshold;
  }
  dim->breached = breach;
}

// One exporter tick: refresh window quantiles, evaluate SLOs, rewrite
// the snapshot file. Caller holds m->mu.
void TickLocked(LiveMonitor* m) {
  auto& reg = MetricsRegistry::Global();

  // Quantiles attach lazily: the serve histograms exist only once a
  // server has run, and observing must never fabricate metrics.
  if (m->latency == nullptr) {
    if (const Histogram* h = reg.FindHistogram("serve.latency_us")) {
      m->latency =
          std::make_unique<SlidingQuantile>(h, m->config.window_ticks);
    }
  }
  if (m->queue_wait == nullptr) {
    if (const Histogram* h = reg.FindHistogram("serve.queue.wait_us")) {
      m->queue_wait =
          std::make_unique<SlidingQuantile>(h, m->config.window_ticks);
    }
  }

  double p99 = std::numeric_limits<double>::quiet_NaN();
  if (m->latency != nullptr) {
    m->latency->Tick();
    if (m->latency->WindowCount() > 0) {
      double p50 = m->latency->Quantile(0.50);
      p99 = m->latency->Quantile(0.99);
      reg.GetGauge("serve.latency_p50")->Set(p50);
      reg.GetGauge("serve.latency_p99")->Set(p99);
    }
  }
  if (m->queue_wait != nullptr) {
    m->queue_wait->Tick();
    if (m->queue_wait->WindowCount() > 0) {
      reg.GetGauge("serve.queue.wait_p50")
          ->Set(m->queue_wait->Quantile(0.50));
      reg.GetGauge("serve.queue.wait_p99")
          ->Set(m->queue_wait->Quantile(0.99));
    }
  }

  // Window reject rate from cumulative admission counters (shutdown
  // flushes are not admission decisions and stay out of it).
  double reject_rate = std::numeric_limits<double>::quiet_NaN();
  if (reg.FindCounter("serve.admit") != nullptr ||
      reg.FindCounter("serve.reject.queue_full") != nullptr ||
      reg.FindCounter("serve.reject.tenant_cap") != nullptr) {
    uint64_t rejected = CounterValueOrZero(reg, "serve.reject.queue_full") +
                        CounterValueOrZero(reg, "serve.reject.tenant_cap");
    uint64_t attempts = CounterValueOrZero(reg, "serve.admit") + rejected;
    if (!m->rate_ring.empty() && (rejected < m->rate_ring.back()[0] ||
                                  attempts < m->rate_ring.back()[1])) {
      m->rate_ring.clear();  // counters were reset; restart the window
    }
    m->rate_ring.push_back({rejected, attempts});
    if (m->rate_ring.size() > m->config.window_ticks + 1) {
      m->rate_ring.pop_front();
    }
    uint64_t d_rej = m->rate_ring.back()[0] - m->rate_ring.front()[0];
    uint64_t d_att = m->rate_ring.back()[1] - m->rate_ring.front()[1];
    reject_rate = d_att > 0 ? static_cast<double>(d_rej) /
                                  static_cast<double>(d_att)
                            : 0.0;
    reg.GetGauge("serve.reject_rate")->Set(reject_rate);
  }

  const SloConfig& slo = m->config.slo;
  if (slo.p99_us > 0.0) EvaluateSlo(&m->slo_p99, p99, slo.p99_us);
  if (slo.queue_depth > 0.0) {
    const Gauge* depth = reg.FindGauge("serve.queue.depth");
    if (depth != nullptr) {
      EvaluateSlo(&m->slo_depth, depth->Value(), slo.queue_depth);
    }
  }
  if (slo.reject_rate > 0.0) {
    EvaluateSlo(&m->slo_reject, reject_rate, slo.reject_rate);
  }

  uint64_t tick = g_ticks.fetch_add(1, std::memory_order_relaxed) + 1;
  reg.GetGauge("obs.live.ticks")->Set(static_cast<double>(tick));

  if (!m->config.snapshot_path.empty()) {
    // Snapshot after publishing, so the file carries this tick's
    // quantiles; collectors (span-buffer gauges etc.) run inside.
    MetricsSnapshot snap = reg.Snapshot();
    int64_t ts_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
    std::string body;
    body.reserve(4096);
    body.append("{\"ts_ms\":");
    body.append(std::to_string(ts_ms));
    body.append(",\"tick\":");
    body.append(std::to_string(tick));
    body.append(",\"interval_ms\":");
    body.append(std::to_string(m->config.interval_ms));
    body.append(",\"window_ticks\":");
    body.append(std::to_string(m->config.window_ticks));
    body.append(",\"metrics\":");
    body.append(FormatJson(snap));
    body.append("}\n");
    // tmp + rename: obs_top polling the file never reads a torn write.
    std::string tmp = m->config.snapshot_path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (!out) {
        AUTODC_LOG(WARN) << "live monitor: cannot open '" << tmp << "'";
        return;
      }
      out << body;
      if (!out.flush()) {
        AUTODC_LOG(WARN) << "live monitor: short write to '" << tmp << "'";
        return;
      }
    }
    if (std::rename(tmp.c_str(), m->config.snapshot_path.c_str()) != 0) {
      AUTODC_LOG(WARN) << "live monitor: rename to '"
                       << m->config.snapshot_path << "' failed";
    }
  }
}

void MonitorLoop(LiveMonitor* m) {
  std::unique_lock<std::mutex> lock(m->mu);
  while (!m->stop) {
    bool stopping = m->cv.wait_for(
        lock, std::chrono::milliseconds(m->config.interval_ms),
        [m] { return m->stop; });
    if (stopping) break;
    TickLocked(m);
  }
}

}  // namespace

bool StartLiveMonitor(const LiveMonitorConfig& config) {
  std::lock_guard<std::mutex> lock(g_monitor_mu);
  if (g_monitor != nullptr) return false;
  auto* m = new LiveMonitor();
  m->config = config;
  if (m->config.interval_ms == 0) m->config.interval_ms = 1;
  if (m->config.window_ticks == 0) m->config.window_ticks = 1;
  m->thread = std::thread(&MonitorLoop, m);
  g_monitor = m;
  // Stop before the atexit metric/trace dumps (registered earlier →
  // they run after us in LIFO order), so the final dump is quiescent.
  static bool atexit_installed = [] {
    std::atexit(&StopLiveMonitor);
    return true;
  }();
  (void)atexit_installed;
  return true;
}

void StopLiveMonitor() {
  LiveMonitor* m = nullptr;
  {
    std::lock_guard<std::mutex> lock(g_monitor_mu);
    m = g_monitor;
    g_monitor = nullptr;
  }
  if (m == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(m->mu);
    m->stop = true;
  }
  m->cv.notify_all();
  if (m->thread.joinable()) m->thread.join();
  delete m;
}

bool LiveMonitorRunning() {
  std::lock_guard<std::mutex> lock(g_monitor_mu);
  return g_monitor != nullptr;
}

uint64_t LiveMonitorTicks() {
  return g_ticks.load(std::memory_order_relaxed);
}

void LiveMonitorTickForTest() {
  std::lock_guard<std::mutex> lock(g_monitor_mu);
  if (g_monitor == nullptr) return;
  std::lock_guard<std::mutex> tick_lock(g_monitor->mu);
  TickLocked(g_monitor);
}

void InstallLiveMonitorFromEnv() {
  static bool installed = [] {
    LiveMonitorConfig config = LiveMonitorConfigFromEnv();
    if (config.interval_ms > 0) StartLiveMonitor(config);
    return true;
  }();
  (void)installed;
}

}  // namespace autodc::obs
