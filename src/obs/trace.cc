#include "src/obs/trace.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>

#include "src/obs/trace_export.h"

namespace autodc::obs {

namespace {

// Completed spans per thread. Buffers are shared_ptr-owned by both the
// thread (via TLS) and the global list, so a drain can safely read a
// buffer whose thread has already exited.
struct SpanBuffer {
  std::mutex mu;
  std::deque<SpanRecord> records;
  uint64_t dropped = 0;
};

std::mutex g_buffers_mu;
std::vector<std::shared_ptr<SpanBuffer>>& AllBuffers() {
  static auto* buffers = new std::vector<std::shared_ptr<SpanBuffer>>();
  return *buffers;
}

#ifndef AUTODC_DISABLE_OBS

SpanBuffer* ThreadBuffer() {
  thread_local std::shared_ptr<SpanBuffer> buffer = [] {
    auto b = std::make_shared<SpanBuffer>();
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    AllBuffers().push_back(b);
    return b;
  }();
  return buffer.get();
}

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// The innermost live span id on this thread (parent for new spans).
thread_local std::vector<uint64_t> t_span_stack;

#endif  // !AUTODC_DISABLE_OBS

}  // namespace

#ifndef AUTODC_DISABLE_OBS

Span::Span(std::string name) : name_(std::move(name)) {
  active_ = Enabled();
  if (!active_) return;
  // AUTODC_TRACE must work even when nothing ever touches the metrics
  // registry; the first live span arms the atexit drain.
  InstallTraceDumpFromEnv();
  id_ = NextSpanId();
  parent_id_ = t_span_stack.empty() ? 0 : t_span_stack.back();
  depth_ = static_cast<uint32_t>(t_span_stack.size());
  t_span_stack.push_back(id_);
  // Pin the process epoch no later than any span's start: if it were
  // first touched in ~Span, the first span would start *before* the
  // epoch and its unsigned start_us would wrap to a huge value,
  // scrambling the drain's start-time sort.
  ProcessEpoch();
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  // Pop self. RAII nesting means we are the innermost live span; the
  // find() tolerates pathological out-of-order destruction anyway.
  auto it = std::find(t_span_stack.rbegin(), t_span_stack.rend(), id_);
  if (it != t_span_stack.rend()) {
    t_span_stack.erase(std::next(it).base());
  }
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent_id = parent_id_;
  rec.depth = depth_;
  rec.thread = static_cast<uint32_t>(internal::Slot());
  rec.start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                            ProcessEpoch())
          .count());
  rec.duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  SpanBuffer* buf = ThreadBuffer();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->records.size() >= kSpanBufferCap) {
      buf->records.pop_front();
      ++buf->dropped;
      dropped = true;
    }
    buf->records.push_back(std::move(rec));
  }
  // Outside the buffer lock: the first drop registers the counter,
  // which takes the registry mutex.
  if (dropped) AUTODC_OBS_INC("obs.spans_dropped");
}

#endif  // !AUTODC_DISABLE_OBS

std::vector<SpanRecord> TakeSpans() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (SpanRecord& r : buf->records) out.push_back(std::move(r));
    buf->records.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

uint64_t SpansDropped() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  uint64_t total = 0;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

uint64_t CurrentSpanId() {
#ifndef AUTODC_DISABLE_OBS
  if (!t_span_stack.empty()) return t_span_stack.back();
#endif
  return 0;
}

void ClearSpans() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->records.clear();
    buf->dropped = 0;
  }
}

}  // namespace autodc::obs
