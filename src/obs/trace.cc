#include "src/obs/trace.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>

#include "src/obs/trace_export.h"

namespace autodc::obs {

namespace {

// Completed spans per thread. Buffers are shared_ptr-owned by both the
// thread (via TLS) and the global list, so a drain can safely read a
// buffer whose thread has already exited.
struct SpanBuffer {
  std::mutex mu;
  std::deque<SpanRecord> records;
  uint64_t dropped = 0;
  size_t cap = kSpanBufferCap;
  size_t hwm = 0;     ///< max records.size() ever reached
  uint32_t slot = 0;  ///< obs slot of the owning thread, for HWM gauges
};

std::mutex g_buffers_mu;
std::vector<std::shared_ptr<SpanBuffer>>& AllBuffers() {
  static auto* buffers = new std::vector<std::shared_ptr<SpanBuffer>>();
  return *buffers;
}

// Publishes span-buffer health into the snapshot (obs.spans.* gauges):
// total buffered, total dropped, and the max per-thread high-water
// mark. Registered once, from the first buffer's creation, so the
// periodic live exporter surfaces overflow without waiting for the
// atexit dump.
void PublishSpanBufferGauges() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  uint64_t buffered = 0, dropped = 0, hwm = 0;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buffered += buf->records.size();
    dropped += buf->dropped;
    hwm = std::max<uint64_t>(hwm, buf->hwm);
  }
  auto& reg = MetricsRegistry::Global();
  reg.GetGauge("obs.spans.buffered")->Set(static_cast<double>(buffered));
  reg.GetGauge("obs.spans.dropped")->Set(static_cast<double>(dropped));
  reg.GetGauge("obs.spans.hwm")->Set(static_cast<double>(hwm));
}

SpanBuffer* ThreadBuffer() {
  thread_local std::shared_ptr<SpanBuffer> buffer = [] {
    auto b = std::make_shared<SpanBuffer>();
    b->slot = static_cast<uint32_t>(internal::Slot());
    bool first;
    {
      std::lock_guard<std::mutex> lock(g_buffers_mu);
      first = AllBuffers().empty();
      AllBuffers().push_back(b);
    }
    if (first) {
      MetricsRegistry::Global().AddCollector(&PublishSpanBufferGauges);
    }
    return b;
  }();
  return buffer.get();
}

#ifndef AUTODC_DISABLE_OBS

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// The innermost live span on this thread (parent for new spans), plus
// the trace id nested children inherit.
struct LiveSpan {
  uint64_t id = 0;
  uint64_t trace_id = 0;
};
thread_local std::vector<LiveSpan> t_span_stack;

#endif  // !AUTODC_DISABLE_OBS

}  // namespace

uint64_t MintTraceId() {
#ifndef AUTODC_DISABLE_OBS
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
#else
  return 0;
#endif
}

TraceContext NewTrace() { return {MintTraceId(), 0}; }

#ifndef AUTODC_DISABLE_OBS

Span::Span(std::string name) : name_(std::move(name)) { Init(nullptr); }

Span::Span(std::string name, const TraceContext& ctx)
    : name_(std::move(name)) {
  Init(&ctx);
}

void Span::Init(const TraceContext* ctx) {
  active_ = Enabled();
  if (!active_) return;
  // AUTODC_TRACE must work even when nothing ever touches the metrics
  // registry; the first live span arms the atexit drain.
  InstallTraceDumpFromEnv();
  id_ = NextSpanId();
  uint64_t local_parent = t_span_stack.empty() ? 0 : t_span_stack.back().id;
  uint64_t local_trace =
      t_span_stack.empty() ? 0 : t_span_stack.back().trace_id;
  if (ctx != nullptr) {
    // Explicit context wins: the remote parent is the point of handing
    // a context across threads, even inside another local span.
    trace_id_ = ctx->trace_id;
    parent_id_ = ctx->parent_span_id != 0 ? ctx->parent_span_id : local_parent;
  } else {
    trace_id_ = local_trace;
    parent_id_ = local_parent;
  }
  depth_ = static_cast<uint32_t>(t_span_stack.size());
  t_span_stack.push_back({id_, trace_id_});
  // Pin the process epoch no later than any span's start: if it were
  // first touched in ~Span, the first span would start *before* the
  // epoch and its unsigned start_us would wrap to a huge value,
  // scrambling the drain's start-time sort.
  ProcessEpoch();
  start_ = std::chrono::steady_clock::now();
}

Span::~Span() {
  if (!active_) return;
  auto end = std::chrono::steady_clock::now();
  // Pop self. RAII nesting means we are the innermost live span; the
  // find tolerates pathological out-of-order destruction anyway.
  auto it = std::find_if(t_span_stack.rbegin(), t_span_stack.rend(),
                         [&](const LiveSpan& s) { return s.id == id_; });
  if (it != t_span_stack.rend()) {
    t_span_stack.erase(std::next(it).base());
  }
  SpanRecord rec;
  rec.name = std::move(name_);
  rec.id = id_;
  rec.parent_id = parent_id_;
  rec.trace_id = trace_id_;
  rec.depth = depth_;
  rec.thread = static_cast<uint32_t>(internal::Slot());
  rec.start_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(start_ -
                                                            ProcessEpoch())
          .count());
  rec.duration_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(end - start_)
          .count());
  SpanBuffer* buf = ThreadBuffer();
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->records.size() >= buf->cap) {
      buf->records.pop_front();
      ++buf->dropped;
      dropped = true;
    }
    buf->records.push_back(std::move(rec));
    buf->hwm = std::max(buf->hwm, buf->records.size());
  }
  // Outside the buffer lock: the first drop registers the counter,
  // which takes the registry mutex.
  if (dropped) AUTODC_OBS_INC("obs.spans_dropped");
}

#endif  // !AUTODC_DISABLE_OBS

std::vector<SpanRecord> TakeSpans() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  std::vector<SpanRecord> out;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    for (SpanRecord& r : buf->records) out.push_back(std::move(r));
    buf->records.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_us != b.start_us ? a.start_us < b.start_us
                                              : a.id < b.id;
            });
  return out;
}

uint64_t SpansDropped() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  uint64_t total = 0;
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    total += buf->dropped;
  }
  return total;
}

uint64_t CurrentSpanId() {
#ifndef AUTODC_DISABLE_OBS
  if (!t_span_stack.empty()) return t_span_stack.back().id;
#endif
  return 0;
}

uint64_t CurrentTraceId() {
#ifndef AUTODC_DISABLE_OBS
  if (!t_span_stack.empty()) return t_span_stack.back().trace_id;
#endif
  return 0;
}

void SetThreadSpanBufferCap(size_t cap) {
  SpanBuffer* buf = ThreadBuffer();
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->cap = cap == 0 ? kSpanBufferCap : cap;
  // Shrinking below the current backlog drops oldest-first, same as
  // the record path would.
  while (buf->records.size() > buf->cap) {
    buf->records.pop_front();
    ++buf->dropped;
  }
}

void ClearSpans() {
  std::vector<std::shared_ptr<SpanBuffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(g_buffers_mu);
    buffers = AllBuffers();
  }
  for (const auto& buf : buffers) {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->records.clear();
    buf->dropped = 0;
    buf->hwm = 0;
  }
}

}  // namespace autodc::obs
