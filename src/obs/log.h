#ifndef AUTODC_OBS_LOG_H_
#define AUTODC_OBS_LOG_H_

#include <cstdint>
#include <sstream>
#include <string>

// Leveled structured logging for the library's diagnostics, the third
// leg of the obs layer (metrics count, spans time, logs explain).
//
//   AUTODC_LOG(WARN) << "checkpoint save failed: " << status;
//
// Each record carries level, source location, the recording thread's
// obs slot, and — the correlation hook — the innermost live Span id at
// emit time, so a warning in a trace-instrumented region can be lined
// up against the trace event that contains it.
//
// Sinks: a human text sink on stderr (always on, gated by level) and an
// optional JSON-lines machine sink (one JsonObject per record, shared
// common/json escaping) appended to a file. Env knobs, parsed through
// common/env.h semantics:
//
//   AUTODC_LOG_LEVEL = debug|info|warn|error|off   (default warn)
//   AUTODC_LOG_FILE  = <path>                      (JSONL sink, append)
//
// Under AUTODC_DISABLE_OBS the macro compiles to a dead branch: stream
// arguments are never evaluated and the optimizer deletes the whole
// statement, same contract as AUTODC_OBS_* and Span.
namespace autodc::obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold-only: nothing logs at or above this
};

/// Stable uppercase name ("DEBUG".."ERROR", "OFF").
const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"(/"warning")/"error"/"off", any case.
/// Returns false (out untouched) on anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// The active threshold. First call reads AUTODC_LOG_LEVEL (default
/// kWarn) and AUTODC_LOG_FILE.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Points the JSONL sink at `path` (append), replacing any previous
/// sink; empty closes it. Returns false when the file cannot be opened
/// (the sink is then closed). SetLogFile("") + SetLogLevel restore a
/// test-mangled config.
bool SetLogFile(const std::string& path);

/// True when a record at `level` would be emitted.
inline bool LogLevelEnabled(LogLevel level);

/// One materialized record, exposed for the formatters and tests.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  std::string file;      ///< basename of the emitting source file
  int line = 0;
  uint32_t thread = 0;   ///< obs thread slot
  uint64_t span_id = 0;  ///< innermost live Span at emit time (0 = none)
  int64_t wall_ms = 0;   ///< unix wall clock, milliseconds
  std::string message;
};

/// `[2026-08-06T12:34:56.789Z W env.cc:14 t0 s17] message`
std::string FormatLogText(const LogRecord& record);
/// `{"ts_ms":...,"level":"warn","file":"env.cc","line":14,"thread":0,
///   "span":17,"msg":"..."}`
std::string FormatLogJson(const LogRecord& record);

/// Test hook: when set, records bypass both real sinks and go to `fn`
/// instead (nullptr restores normal sinks). Not thread-safe against
/// concurrent logging — install before the threads start.
void SetLogSinkForTest(void (*fn)(const LogRecord&));

namespace internal {

/// Loads env config on first call, then returns the live threshold.
int LoadedLogLevel();

/// Builds one record and streams into it; the destructor dispatches to
/// the sinks. Use via AUTODC_LOG, never directly.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  std::ostream& stream() { return stream_; }

 private:
  LogRecord record_;
  std::ostringstream stream_;
};

/// Swallows streamed arguments in the dead branch of the disabled
/// macro; everything folds to nothing at -O2.
struct NullLogStream {
  template <typename T>
  NullLogStream& operator<<(const T&) {
    return *this;
  }
  NullLogStream& operator<<(std::ostream& (*)(std::ostream&)) {
    return *this;
  }
};

}  // namespace internal

inline bool LogLevelEnabled(LogLevel level) {
  return static_cast<int>(level) >= internal::LoadedLogLevel();
}

}  // namespace autodc::obs

// Severity tokens for the macro: AUTODC_LOG(INFO), AUTODC_LOG(WARN), ...
#define AUTODC_LOG_LEVEL_DEBUG ::autodc::obs::LogLevel::kDebug
#define AUTODC_LOG_LEVEL_INFO ::autodc::obs::LogLevel::kInfo
#define AUTODC_LOG_LEVEL_WARN ::autodc::obs::LogLevel::kWarn
#define AUTODC_LOG_LEVEL_ERROR ::autodc::obs::LogLevel::kError

#ifdef AUTODC_DISABLE_OBS
// Dead-branch no-op: arguments compile but never run.
#define AUTODC_LOG(severity) \
  if (true) {                \
  } else                     \
    ::autodc::obs::internal::NullLogStream()
#else
#define AUTODC_LOG(severity)                                          \
  if (!::autodc::obs::LogLevelEnabled(AUTODC_LOG_LEVEL_##severity)) { \
  } else                                                              \
    ::autodc::obs::internal::LogMessage(AUTODC_LOG_LEVEL_##severity,  \
                                        __FILE__, __LINE__)           \
        .stream()
#endif  // AUTODC_DISABLE_OBS

#endif  // AUTODC_OBS_LOG_H_
