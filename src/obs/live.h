#ifndef AUTODC_OBS_LIVE_H_
#define AUTODC_OBS_LIVE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

// The live observability plane (DESIGN.md §14): everything PRs 4–5
// built reports at process exit; this file makes a long-running server
// watchable while it runs. A background exporter thread ticks every
// AUTODC_METRICS_INTERVAL_MS, derives sliding-window tail quantiles
// from the cumulative serve histograms, evaluates SLO tripwires, and
// atomically rewrites a JSON snapshot file that `tools/obs_top` tails.
//
// Nothing here touches a request hot path: quantiles come from
// *diffing* histogram bucket counts the serve layer already records,
// so the entire plane costs one registry snapshot per tick.
namespace autodc::obs {

/// Sliding-window quantile estimator over an existing cumulative
/// Histogram. Each Tick() absorbs the bucket counts recorded since the
/// previous tick as one delta frame in a fixed-length ring; Quantile()
/// interpolates within the merged window, so the answer reflects the
/// last `window_ticks` ticks only — a histogram serving for days still
/// yields a *current* p99. Not thread-safe: owned and ticked by one
/// thread (the live monitor's).
class SlidingQuantile {
 public:
  /// `hist` must outlive this object (registry histograms always do).
  /// `window_ticks` = 0 is clamped to 1.
  SlidingQuantile(const Histogram* hist, size_t window_ticks);

  /// Absorbs counts recorded since the last Tick (or construction)
  /// into the window, evicting the oldest tick past the window length.
  void Tick();

  /// The q-quantile (q in [0,1]) of values recorded within the window,
  /// linearly interpolated inside the covering bucket. Values in the
  /// overflow bucket clamp to the top bound. NaN when the window holds
  /// no samples.
  double Quantile(double q) const;

  /// Samples inside the current window.
  uint64_t WindowCount() const;

  size_t window_ticks() const { return window_; }

 private:
  const Histogram* hist_;
  size_t window_;
  std::vector<double> bounds_;
  std::vector<uint64_t> last_;              // cumulative counts at last Tick
  std::deque<std::vector<uint64_t>> ring_;  // per-tick deltas, newest last
  std::vector<uint64_t> window_sum_;        // running sum over ring_
};

/// SLO thresholds the monitor trips on. 0 disables a dimension.
struct SloConfig {
  double p99_us = 0.0;       ///< serve.latency_p99 ceiling, microseconds
  double queue_depth = 0.0;  ///< serve.queue.depth ceiling
  double reject_rate = 0.0;  ///< window rejected/(admitted+rejected) ceiling
};

/// From AUTODC_SLO_P99_US, AUTODC_SLO_QUEUE_DEPTH,
/// AUTODC_SLO_REJECT_RATE (all default 0 = disabled).
SloConfig SloConfigFromEnv();

struct LiveMonitorConfig {
  /// Tick period. 0 means "do not start" for the env installer;
  /// StartLiveMonitor clamps 0 to 1ms.
  size_t interval_ms = 0;
  /// Sliding-window length in ticks (window seconds = ticks * interval).
  size_t window_ticks = 8;
  /// When nonempty, every tick atomically rewrites this file with a
  /// one-line JSON snapshot (tmp + rename — readers never see a torn
  /// write). The obs_top CLI polls this file.
  std::string snapshot_path;
  SloConfig slo;
};

/// From AUTODC_METRICS_INTERVAL_MS, AUTODC_METRICS_WINDOW,
/// AUTODC_METRICS_SNAPSHOT, and the SLO knobs.
LiveMonitorConfig LiveMonitorConfigFromEnv();

/// Starts the background exporter thread. Returns false (and does
/// nothing) when a monitor is already running. The monitor publishes:
///   serve.latency_p50 / serve.latency_p99      (gauges, microseconds)
///   serve.queue.wait_p50 / serve.queue.wait_p99
///   serve.reject_rate                          (window ratio)
///   serve.slo.breached.{p99,queue_depth,reject_rate}  (0/1 gauges)
///   serve.slo.breaches                         (counter, breach entries)
///   obs.live.ticks                             (gauge)
/// plus whatever registered collectors publish (span-buffer gauges).
/// SLO breaches are edge-triggered: one WARN log line on entry, one
/// INFO on recovery — a sustained breach does not spam.
bool StartLiveMonitor(const LiveMonitorConfig& config);

/// Stops and joins the monitor thread (no-op when not running). Also
/// registered atexit by StartLiveMonitor, so the thread never outlives
/// the registry dumps.
void StopLiveMonitor();

bool LiveMonitorRunning();

/// Monotonic process-wide tick count (survives monitor restarts).
/// Tests and benches use this to wait for "at least one tick".
uint64_t LiveMonitorTicks();

/// Test hook: runs one tick synchronously on the calling thread (the
/// same code path the background thread runs, under the same lock).
/// No-op when no monitor is running. Deterministic tests start the
/// monitor with a large interval and drive ticks through this.
void LiveMonitorTickForTest();

/// Reads the env config and starts the monitor when
/// AUTODC_METRICS_INTERVAL_MS > 0. Called once from
/// MetricsRegistry::Global(); safe to call again (no-op).
void InstallLiveMonitorFromEnv();

}  // namespace autodc::obs

#endif  // AUTODC_OBS_LIVE_H_
