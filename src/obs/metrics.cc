#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/obs/export.h"
#include "src/obs/live.h"
#include "src/obs/trace_export.h"

namespace autodc::obs {

namespace internal {

thread_local int t_slot = -1;

int AssignSlot() {
  static std::atomic<uint64_t> next{0};
  t_slot = static_cast<int>(next.fetch_add(1, std::memory_order_relaxed) %
                            kSlots);
  return t_slot;
}

}  // namespace internal

// ---- Histogram --------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultBoundsMs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::DefaultBoundsMs() {
  return {0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0};
}

std::vector<double> Histogram::LogBounds(double lo, double hi,
                                         int per_decade) {
  std::vector<double> out;
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) return out;
  const double step = std::pow(10.0, 1.0 / per_decade);
  // Multiply up from lo; regenerate each bound from lo via pow so a
  // long ladder does not accumulate rounding drift.
  for (int i = 0;; ++i) {
    double b = lo * std::pow(step, static_cast<double>(i));
    // Snap near-integers (1000.0000000002 → 1000): keeps bucket edges
    // printable and the ladder exactly periodic per decade.
    double r = std::round(b);
    if (r != 0.0 && std::fabs(b - r) / r < 1e-9) b = r;
    if (b > hi * (1.0 + 1e-9)) break;
    out.push_back(b);
  }
  return out;
}

std::vector<double> Histogram::LogBoundsUs() {
  return LogBounds(1.0, 1e7, 4);
}

void Histogram::Record(double v) {
  if (!Enabled()) return;
  size_t b = static_cast<size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  internal::AtomicAddDouble(&sum_, v);
  internal::AtomicMinDouble(&min_, v);
  internal::AtomicMaxDouble(&max_, v);
}

double Histogram::Min() const {
  double v = min_.load(std::memory_order_relaxed);
  return std::isinf(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

double Histogram::Max() const {
  double v = max_.load(std::memory_order_relaxed);
  return std::isinf(v) ? std::numeric_limits<double>::quiet_NaN() : v;
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---- Labeled metrics --------------------------------------------------

std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value) {
  std::string out;
  out.reserve(base.size() + key.size() + value.size() + 3);
  out.append(base);
  out.push_back('{');
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('}');
  return out;
}

LabeledCounter::LabeledCounter(MetricsRegistry* reg, std::string base,
                               std::string key, size_t max_cardinality)
    : reg_(reg),
      base_(std::move(base)),
      key_(std::move(key)),
      max_cardinality_(max_cardinality == 0 ? 1 : max_cardinality) {}

Counter* LabeledCounter::WithLabel(const std::string& value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = children_.find(value);
    if (it != children_.end()) return it->second;
    if (children_.size() >= max_cardinality_ && overflow_ != nullptr) {
      return overflow_;
    }
  }
  return Materialize(value);
}

Counter* LabeledCounter::Materialize(const std::string& value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = children_.find(value);
  if (it != children_.end()) return it->second;
  // Lock order is always LabeledCounter -> registry; the registry never
  // calls back into a labeled metric while holding its own mutex.
  if (children_.size() >= max_cardinality_) {
    if (overflow_ == nullptr) {
      overflow_ =
          reg_->GetCounter(LabeledMetricName(base_, key_, kLabelOverflow));
    }
    return overflow_;
  }
  Counter* child = reg_->GetCounter(LabeledMetricName(base_, key_, value));
  children_.emplace(value, child);
  return child;
}

size_t LabeledCounter::cardinality() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return children_.size();
}

LabeledHistogram::LabeledHistogram(MetricsRegistry* reg, std::string base,
                                   std::string key, std::vector<double> bounds,
                                   size_t max_cardinality)
    : reg_(reg),
      base_(std::move(base)),
      key_(std::move(key)),
      bounds_(std::move(bounds)),
      max_cardinality_(max_cardinality == 0 ? 1 : max_cardinality) {}

Histogram* LabeledHistogram::WithLabel(const std::string& value) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = children_.find(value);
    if (it != children_.end()) return it->second;
    if (children_.size() >= max_cardinality_ && overflow_ != nullptr) {
      return overflow_;
    }
  }
  return Materialize(value);
}

Histogram* LabeledHistogram::Materialize(const std::string& value) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = children_.find(value);
  if (it != children_.end()) return it->second;
  if (children_.size() >= max_cardinality_) {
    if (overflow_ == nullptr) {
      overflow_ = reg_->GetHistogram(
          LabeledMetricName(base_, key_, kLabelOverflow), bounds_);
    }
    return overflow_;
  }
  Histogram* child =
      reg_->GetHistogram(LabeledMetricName(base_, key_, value), bounds_);
  children_.emplace(value, child);
  return child;
}

size_t LabeledHistogram::cardinality() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return children_.size();
}

// ---- Snapshot lookups -------------------------------------------------

namespace {
template <typename T>
const T* FindByName(const std::vector<T>& v, const std::string& name) {
  for (const T& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}
}  // namespace

const CounterSample* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  return FindByName(counters, name);
}
const GaugeSample* MetricsSnapshot::FindGauge(const std::string& name) const {
  return FindByName(gauges, name);
}
const HistogramSample* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

// ---- Registry ---------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  // Leaky singleton: late recordings during shutdown are always safe,
  // and the AUTODC_METRICS atexit dump can still read every metric.
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    InstallExitDumpFromEnv();
    InstallTraceDumpFromEnv();
    // After the dump hooks: atexit runs LIFO, so the live monitor
    // thread stops before the final metric/trace dumps read state.
    InstallLiveMonitorFromEnv();
    return r;
  }();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot.reset(new Counter(name));
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot.reset(new Gauge(name));
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot.reset(new Histogram(name, std::move(bounds)));
  return slot.get();
}

LabeledCounter* MetricsRegistry::GetLabeledCounter(const std::string& base,
                                                   const std::string& label_key,
                                                   size_t max_cardinality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = labeled_counters_[base + '\0' + label_key];
  if (slot == nullptr) {
    slot.reset(new LabeledCounter(this, base, label_key, max_cardinality));
  }
  return slot.get();
}

LabeledHistogram* MetricsRegistry::GetLabeledHistogram(
    const std::string& base, const std::string& label_key,
    std::vector<double> bounds, size_t max_cardinality) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = labeled_histograms_[base + '\0' + label_key];
  if (slot == nullptr) {
    slot.reset(new LabeledHistogram(this, base, label_key, std::move(bounds),
                                    max_cardinality));
  }
  return slot.get();
}

Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it != counters_.end() ? it->second.get() : nullptr;
}

Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it != gauges_.end() ? it->second.get() : nullptr;
}

Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it != histograms_.end() ? it->second.get() : nullptr;
}

void MetricsRegistry::AddCollector(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  collectors_.push_back(std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  // Collectors call back into GetGauge/Set, so they run outside mu_.
  std::vector<std::function<void()>> collectors;
  {
    std::lock_guard<std::mutex> lock(mu_);
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn();

  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample s;
    s.name = name;
    s.bounds = h->bounds();
    s.counts = h->BucketCounts();
    s.count = h->TotalCount();
    s.sum = h->Sum();
    s.min = h->Min();
    s.max = h->Max();
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

size_t MetricsRegistry::num_metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace autodc::obs
