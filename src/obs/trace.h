#ifndef AUTODC_OBS_TRACE_H_
#define AUTODC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/metrics.h"

// RAII tracing on top of the metrics registry. A Span marks one timed
// region; spans nest naturally (a thread-local stack tracks the current
// parent), and completed spans land in a bounded per-thread buffer that
// TakeSpans() drains for export. A ScopedTimer is the cheaper cousin:
// no record, no parentage — just "elapsed ms into this histogram".
//
// Request-scoped tracing: a TraceContext carries a (trace id, span id)
// pair across thread boundaries. Mint a trace id where a request is
// admitted, hand the admission span's Context() to whichever thread
// picks the request up, and construct the downstream Span with that
// context — the child records the remote span as its parent and the
// shared trace id, so one request renders as a single connected tree
// in the Chrome-trace export even though its spans live on different
// threads. Spans without an explicit context inherit the innermost
// live span's trace id (0 = untraced).
//
// Under AUTODC_DISABLE_OBS both classes compile to empty objects.
namespace autodc::obs {

/// One completed span, as drained by TakeSpans().
struct SpanRecord {
  std::string name;
  uint64_t id = 0;         ///< process-unique, 1-based
  uint64_t parent_id = 0;  ///< 0 for a root span
  uint32_t depth = 0;      ///< nesting depth at entry (0 = root)
  uint32_t thread = 0;     ///< obs thread slot of the recording thread
  uint64_t start_us = 0;   ///< microseconds since the process obs epoch
  uint64_t duration_us = 0;
  uint64_t trace_id = 0;   ///< request trace this span belongs to (0 = none)
};

/// The cross-thread link: enough of a span's identity to parent remote
/// children under it. Obtained from Span::Context() (or built from
/// MintTraceId() for a fresh root) and safe to copy through queues.
struct TraceContext {
  uint64_t trace_id = 0;       ///< 0 = no trace (children stay untraced)
  uint64_t parent_span_id = 0; ///< 0 = the remote span becomes a root
};

/// A fresh process-unique nonzero trace id (0 under AUTODC_DISABLE_OBS).
uint64_t MintTraceId();

/// Root context for a new request trace: fresh trace id, no parent.
TraceContext NewTrace();

#ifndef AUTODC_DISABLE_OBS

/// RAII trace span: names a region, records [start, duration] with
/// parent/child nesting on destruction. Must be destroyed on the thread
/// that created it (RAII usage guarantees this).
class Span {
 public:
  explicit Span(std::string name);
  /// Cross-thread form: adopts `ctx`'s trace id and records
  /// ctx.parent_span_id as the parent (falling back to the local
  /// innermost span when the context has no parent). While this span
  /// lives, locally nested Spans inherit the adopted trace id.
  Span(std::string name, const TraceContext& ctx);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// This span's identity as a context for remote children. Valid
  /// whether or not recording was enabled (ids are 0 when it was not).
  TraceContext Context() const { return {trace_id_, id_}; }

 private:
  void Init(const TraceContext* ctx);

  std::string name_;
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t trace_id_ = 0;
  uint32_t depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  bool active_ = false;  // Enabled() at entry
};

/// RAII timer recording elapsed milliseconds into `hist` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    if (hist_ == nullptr) return;
    hist_->Record(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start_)
                      .count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

#else  // AUTODC_DISABLE_OBS

class Span {
 public:
  explicit Span(const std::string&) {}
  Span(const std::string&, const TraceContext&) {}
  TraceContext Context() const { return {}; }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
};

#endif  // AUTODC_DISABLE_OBS

/// Drains every thread's completed-span buffer, ordered by start time.
/// Spans recorded after the call stay buffered for the next drain.
std::vector<SpanRecord> TakeSpans();

/// Spans dropped because a per-thread buffer was full. Every drop also
/// increments the `obs.spans_dropped` counter, so overflow is visible
/// in metric snapshots, not just to callers of this accessor.
uint64_t SpansDropped();

/// The innermost live Span's id on the calling thread (0 when no span
/// is open, or under AUTODC_DISABLE_OBS). Log records capture this so
/// log lines correlate with trace events.
uint64_t CurrentSpanId();

/// The innermost live Span's trace id on the calling thread (0 when no
/// span is open or the innermost span is untraced).
uint64_t CurrentTraceId();

/// Overrides the calling thread's completed-span buffer capacity
/// (0 restores kSpanBufferCap). Long-running span-heavy threads — serve
/// workers tracing sampled requests — raise this so a full load run
/// drops nothing; the cost is memory on that thread only.
void SetThreadSpanBufferCap(size_t cap);

/// Test hook: drops all buffered spans and zeroes the dropped count
/// and per-buffer high-water marks.
void ClearSpans();

// Per-thread completed-span buffer capacity; older spans are dropped
// first (and counted in SpansDropped()).
inline constexpr size_t kSpanBufferCap = 4096;

}  // namespace autodc::obs

// Statement macros for static-named spans/timers. AUTODC_OBS_TIMER_MS
// keeps a function-local static Histogram*, so steady state is two
// clock reads + one histogram record.
#ifdef AUTODC_DISABLE_OBS
#define AUTODC_OBS_SPAN(var, name) ((void)0)
#define AUTODC_OBS_TIMER_MS(var, name) ((void)0)
#else
#define AUTODC_OBS_SPAN(var, name) ::autodc::obs::Span var(name)
#define AUTODC_OBS_TIMER_MS(var, name)                               \
  static ::autodc::obs::Histogram* var##_hist =                      \
      ::autodc::obs::MetricsRegistry::Global().GetHistogram(name);   \
  ::autodc::obs::ScopedTimer var(var##_hist)
#endif

#endif  // AUTODC_OBS_TRACE_H_
