#include "src/obs/log.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <mutex>

#include "src/common/env.h"
#include "src/common/json.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::obs {

namespace {

// Sink state. Leaky (like the metrics registry) so records emitted from
// atexit hooks — the AUTODC_METRICS/AUTODC_TRACE dumps log their own
// open failures — never touch a destroyed object.
struct LogState {
  std::mutex mu;
  std::ofstream file;
  std::string file_path;
  void (*test_sink)(const LogRecord&) = nullptr;
};

LogState& State() {
  static auto* state = new LogState();
  return *state;
}

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  return base;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  std::string t;
  t.reserve(text.size());
  for (char c : text) {
    t.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (t == "debug") *out = LogLevel::kDebug;
  else if (t == "info") *out = LogLevel::kInfo;
  else if (t == "warn" || t == "warning") *out = LogLevel::kWarn;
  else if (t == "error") *out = LogLevel::kError;
  else if (t == "off" || t == "none") *out = LogLevel::kOff;
  else return false;
  return true;
}

namespace internal {

int LoadedLogLevel() {
  static bool loaded = [] {
    std::string text = EnvString("AUTODC_LOG_LEVEL");
    if (!text.empty()) {
      LogLevel level;
      if (ParseLogLevel(text, &level)) {
        g_level.store(static_cast<int>(level), std::memory_order_relaxed);
      } else {
        // Not AUTODC_LOG: a broken level knob must warn unconditionally.
        std::fprintf(stderr,
                     "[autodc] warning: AUTODC_LOG_LEVEL: unknown level "
                     "'%s', using warn\n",
                     text.c_str());
      }
    }
    std::string path = EnvString("AUTODC_LOG_FILE");
    if (!path.empty()) SetLogFile(path);
    return true;
  }();
  (void)loaded;
  return g_level.load(std::memory_order_relaxed);
}

}  // namespace internal

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(internal::LoadedLogLevel());
}

void SetLogLevel(LogLevel level) {
  internal::LoadedLogLevel();  // keep env load ordering deterministic
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool SetLogFile(const std::string& path) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.file.is_open()) state.file.close();
  state.file_path.clear();
  if (path.empty()) return true;
  state.file.open(path, std::ios::app);
  if (!state.file) {
    std::fprintf(stderr,
                 "[autodc] warning: AUTODC_LOG_FILE: cannot open '%s'\n",
                 path.c_str());
    return false;
  }
  state.file_path = path;
  return true;
}

void SetLogSinkForTest(void (*fn)(const LogRecord&)) {
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.test_sink = fn;
}

std::string FormatLogText(const LogRecord& record) {
  std::time_t secs = static_cast<std::time_t>(record.wall_ms / 1000);
  int ms = static_cast<int>(record.wall_ms % 1000);
  std::tm tm_utc{};
  gmtime_r(&secs, &tm_utc);
  char ts[96];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm_utc.tm_year + 1900, tm_utc.tm_mon + 1, tm_utc.tm_mday,
                tm_utc.tm_hour, tm_utc.tm_min, tm_utc.tm_sec, ms);
  std::string out = "[";
  out += ts;
  out += " ";
  out += LogLevelName(record.level)[0];  // single-letter severity
  out += " ";
  out += record.file + ":" + std::to_string(record.line);
  out += " t" + std::to_string(record.thread);
  out += " s" + std::to_string(record.span_id);
  out += "] " + record.message;
  return out;
}

std::string FormatLogJson(const LogRecord& record) {
  std::string level = LogLevelName(record.level);
  for (char& c : level) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  JsonObject o;
  o.SetRaw("ts_ms", std::to_string(record.wall_ms))
      .Set("level", level)
      .Set("file", record.file)
      .Set("line", static_cast<size_t>(record.line > 0 ? record.line : 0))
      .Set("thread", static_cast<size_t>(record.thread))
      .SetRaw("span", std::to_string(record.span_id))
      .Set("msg", record.message);
  return o.str();
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) {
  record_.level = level;
  record_.file = Basename(file);
  record_.line = line;
  record_.thread = static_cast<uint32_t>(Slot());
  record_.span_id = CurrentSpanId();
  record_.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
}

LogMessage::~LogMessage() {
  record_.message = stream_.str();
  LogState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.test_sink != nullptr) {
    state.test_sink(record_);
    return;
  }
  std::string text = FormatLogText(record_) + "\n";
  std::fputs(text.c_str(), stderr);
  if (state.file.is_open()) {
    state.file << FormatLogJson(record_) << "\n";
    state.file.flush();
  }
}

}  // namespace internal

}  // namespace autodc::obs
