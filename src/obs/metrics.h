#ifndef AUTODC_OBS_METRICS_H_
#define AUTODC_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

// Process-wide, thread-safe metrics for the whole library (the
// "instrumented, auditable curation runs" substrate — see DESIGN.md
// "Observability layer"). Three metric kinds:
//
//   * Counter   — monotonically increasing event count. The write path
//     is lock-free: each thread increments its own cache-line-padded
//     shard (a relaxed fetch_add on a line no other writer touches in
//     steady state), and shards are summed only at snapshot time.
//   * Gauge     — last-write-wins double (queue depths, loss values,
//     pool occupancy). A single relaxed atomic.
//   * Histogram — fixed upper-exclusive buckets plus count/sum/min/max.
//     Recorded at batch/task/epoch granularity, so plain relaxed
//     fetch_adds on shared atomics are cheap enough.
//
// Registration (GetCounter/GetGauge/GetHistogram) takes a mutex and is
// expected to happen once per call site — the AUTODC_OBS_* macros below
// cache the returned pointer in a function-local static. Returned
// pointers are valid for the process lifetime: the registry never
// deletes a metric (ResetValues() zeroes in place).
//
// Compile-time kill switch: building with -DAUTODC_DISABLE_OBS (cmake
// -DAUTODC_DISABLE_OBS=ON) turns every AUTODC_OBS_* macro into ((void)0)
// and every Span/ScopedTimer into an empty object, so instrumented code
// carries zero overhead. The registry classes themselves stay available
// in both modes. Runtime pause: SetEnabled(false) makes the record paths
// early-return (the A/B switch bench_obs uses to price instrumentation).
namespace autodc::obs {

// ---- Runtime enable switch -------------------------------------------

namespace internal {
inline std::atomic<bool> g_enabled{true};

/// This thread's shard index in [0, kSlots). Assigned round-robin on
/// first use; threads never share a slot while fewer than kSlots threads
/// have ever started, and a collision merely shares a fetch_add target
/// (still correct, still data-race-free).
inline constexpr size_t kSlots = 64;
int AssignSlot();
extern thread_local int t_slot;
inline size_t Slot() {
  int s = t_slot;
  return static_cast<size_t>(s >= 0 ? s : AssignSlot());
}

inline void AtomicAddDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (!a->compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMinDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v < cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
inline void AtomicMaxDouble(std::atomic<double>* a, double v) {
  double cur = a->load(std::memory_order_relaxed);
  while (v > cur &&
         !a->compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}
}  // namespace internal

/// True when recording is live (the default). Snapshots work either way.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
/// Pauses/resumes all metric recording at runtime (bench A/B switch).
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Metric kinds -----------------------------------------------------

/// Monotonic event counter, sharded per thread.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!Enabled()) return;
    cells_[internal::Slot()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Inc() { Add(1); }

  /// Sum over all shards. Monotonic between ResetValues() calls.
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void Reset() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

  // One cache line per shard: a thread's increments stay exclusive to
  // its own line, so the fetch_add never bounces in steady state.
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  std::string name_;
  Cell cells_[internal::kSlots];
};

/// Last-write-wins double.
class Gauge {
 public:
  void Set(double v) {
    if (!Enabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(double v) {
    if (!Enabled()) return;
    internal::AtomicAddDouble(&value_, v);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts values in
/// [bounds[i-1], bounds[i]); the final bucket is the >= bounds.back()
/// overflow. Also tracks count, sum, min, and max exactly.
class Histogram {
 public:
  void Record(double v);

  uint64_t TotalCount() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// NaN before the first Record.
  double Min() const;
  double Max() const;
  const std::vector<double>& bounds() const { return bounds_; }
  std::vector<uint64_t> BucketCounts() const;
  const std::string& name() const { return name_; }

  /// The default bounds: decades of milliseconds, 10us .. 100s.
  static std::vector<double> DefaultBoundsMs();

  /// Geometric (log-scale) bounds: `per_decade` upper bounds in every
  /// decade of [lo, hi]. Unlike the decade-wide defaults, these resolve
  /// tail quantiles to ~1/per_decade of a decade instead of collapsing
  /// a whole decade of latencies into one bucket.
  static std::vector<double> LogBounds(double lo, double hi, int per_decade);

  /// Log-scale preset for microsecond-valued latency histograms:
  /// 1us .. 10s at 4 buckets per decade (29 bounds). The serve-layer
  /// latency/wait histograms record in us and use this.
  static std::vector<double> LogBoundsUs();

 private:
  friend class MetricsRegistry;
  Histogram(std::string name, std::vector<double> bounds);
  void Reset();

  std::string name_;
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

// ---- Labeled metrics --------------------------------------------------

class MetricsRegistry;

/// Cardinality cap a labeled metric defaults to. Past the cap, every
/// unseen label value is folded into one `_other` child, so a tenant
/// id chosen by traffic can never grow the registry without bound.
inline constexpr size_t kDefaultLabelCardinality = 32;

/// The label value overflow children are registered under.
inline constexpr const char* kLabelOverflow = "_other";

/// The composed registry name of one labeled child:
/// `base{key=value}` — e.g. `serve.completed{tenant=acme}`. Children
/// are ordinary registry metrics, so every existing snapshot/export
/// path breaks them down with zero new machinery.
std::string LabeledMetricName(const std::string& base, const std::string& key,
                              const std::string& value);

/// One label dimension over Counters: `WithLabel(v)` resolves (and on
/// first sight registers) the child counter `base{key=v}`. The resolve
/// path takes a shared lock over a small hash map — no global registry
/// mutex, and writer threads never contend with each other once the
/// children they touch exist. Cardinality is bounded at construction;
/// children past the cap alias the `_other` overflow child.
class LabeledCounter {
 public:
  Counter* WithLabel(const std::string& value);
  /// Distinct non-overflow children registered so far.
  size_t cardinality() const;
  const std::string& base() const { return base_; }

 private:
  friend class MetricsRegistry;
  LabeledCounter(MetricsRegistry* reg, std::string base, std::string key,
                 size_t max_cardinality);
  Counter* Materialize(const std::string& value);

  MetricsRegistry* reg_;
  std::string base_;
  std::string key_;
  size_t max_cardinality_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Counter*> children_;
  Counter* overflow_ = nullptr;
};

/// LabeledCounter's shape over Histograms; all children share the
/// bounds given at registration.
class LabeledHistogram {
 public:
  Histogram* WithLabel(const std::string& value);
  size_t cardinality() const;
  const std::string& base() const { return base_; }

 private:
  friend class MetricsRegistry;
  LabeledHistogram(MetricsRegistry* reg, std::string base, std::string key,
                   std::vector<double> bounds, size_t max_cardinality);
  Histogram* Materialize(const std::string& value);

  MetricsRegistry* reg_;
  std::string base_;
  std::string key_;
  std::vector<double> bounds_;
  size_t max_cardinality_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Histogram*> children_;
  Histogram* overflow_ = nullptr;
};

// ---- Snapshot ---------------------------------------------------------

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  double value = 0.0;
};
struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 (overflow last)
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // NaN when count == 0
  double max = 0.0;  // NaN when count == 0
};

/// One merged, name-sorted view of every metric in the registry.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(const std::string& name) const;
  const GaugeSample* FindGauge(const std::string& name) const;
  const HistogramSample* FindHistogram(const std::string& name) const;
};

// ---- Registry ---------------------------------------------------------

class MetricsRegistry {
 public:
  /// The process-wide registry (leaky singleton; installs the
  /// AUTODC_METRICS exit dump on first use).
  static MetricsRegistry& Global();

  /// Get-or-create. Pointers remain valid for the process lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` (ascending upper bounds) apply only on first registration;
  /// empty means Histogram::DefaultBoundsMs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// Labeled get-or-create, keyed by (base, label key). Cardinality and
  /// bounds apply only on first registration. Children live in this
  /// registry under `base{key=value}` names.
  LabeledCounter* GetLabeledCounter(
      const std::string& base, const std::string& label_key,
      size_t max_cardinality = kDefaultLabelCardinality);
  LabeledHistogram* GetLabeledHistogram(
      const std::string& base, const std::string& label_key,
      std::vector<double> bounds = {},
      size_t max_cardinality = kDefaultLabelCardinality);

  /// Non-creating lookups (nullptr when the name was never registered).
  /// Introspection paths use these so that *observing* a metric never
  /// fabricates it.
  Counter* FindCounter(const std::string& name) const;
  Gauge* FindGauge(const std::string& name) const;
  Histogram* FindHistogram(const std::string& name) const;

  /// Registers a hook run at the start of every Snapshot() — the way
  /// subsystems with their own internal stats (TensorPool, ThreadPool)
  /// publish gauges without paying anything on their hot paths.
  void AddCollector(std::function<void()> fn);

  /// Runs collectors, then merges every metric into one sorted snapshot.
  MetricsSnapshot Snapshot();

  /// Zeroes every metric value in place. Registrations, pointers, and
  /// collectors survive — this is the test/bench reset, not a teardown.
  void ResetValues();

  size_t num_metrics() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  // std::map keeps name order, so snapshots come out sorted for free.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  // Keyed by base + '\0' + label key (names alone could collide with a
  // plain metric). Children live in the maps above.
  std::map<std::string, std::unique_ptr<LabeledCounter>> labeled_counters_;
  std::map<std::string, std::unique_ptr<LabeledHistogram>> labeled_histograms_;
  std::vector<std::function<void()>> collectors_;
};

}  // namespace autodc::obs

// ---- Instrumentation macros ------------------------------------------
// The only way library code should record metrics with static names:
// each expansion caches its metric pointer in a function-local static,
// so steady state is one branch + one relaxed atomic op. All of them
// compile to nothing under AUTODC_DISABLE_OBS.

#ifdef AUTODC_DISABLE_OBS

#define AUTODC_OBS_COUNT(name, n) ((void)0)
#define AUTODC_OBS_INC(name) ((void)0)
#define AUTODC_OBS_GAUGE_SET(name, v) ((void)0)
#define AUTODC_OBS_GAUGE_ADD(name, v) ((void)0)
#define AUTODC_OBS_HIST(name, v) ((void)0)

#else  // !AUTODC_DISABLE_OBS

#define AUTODC_OBS_COUNT(name, n)                                  \
  do {                                                             \
    static ::autodc::obs::Counter* autodc_obs_counter =            \
        ::autodc::obs::MetricsRegistry::Global().GetCounter(name); \
    autodc_obs_counter->Add(n);                                    \
  } while (0)
#define AUTODC_OBS_INC(name) AUTODC_OBS_COUNT(name, 1)
#define AUTODC_OBS_GAUGE_SET(name, v)                            \
  do {                                                           \
    static ::autodc::obs::Gauge* autodc_obs_gauge =              \
        ::autodc::obs::MetricsRegistry::Global().GetGauge(name); \
    autodc_obs_gauge->Set(v);                                    \
  } while (0)
#define AUTODC_OBS_GAUGE_ADD(name, v)                            \
  do {                                                           \
    static ::autodc::obs::Gauge* autodc_obs_gauge =              \
        ::autodc::obs::MetricsRegistry::Global().GetGauge(name); \
    autodc_obs_gauge->Add(v);                                    \
  } while (0)
#define AUTODC_OBS_HIST(name, v)                                     \
  do {                                                               \
    static ::autodc::obs::Histogram* autodc_obs_hist =               \
        ::autodc::obs::MetricsRegistry::Global().GetHistogram(name); \
    autodc_obs_hist->Record(v);                                      \
  } while (0)

#endif  // AUTODC_DISABLE_OBS

#endif  // AUTODC_OBS_METRICS_H_
