#include "src/er/blocking.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/tokenizer.h"

namespace autodc::er {

namespace {

/// Blocking key (first token, "" when null/empty) of every row of one
/// table. On a chunk-scannable uniform string column each DISTINCT
/// value is tokenized once, keyed by its dictionary code; other layouts
/// fall back to the per-cell path with identical results.
std::vector<std::string> BlockingKeys(const data::Table& t, size_t column) {
  std::vector<std::string> keys(t.num_rows());
  if (t.ChunkScannable() && t.ColumnUniform(column) &&
      t.storage_type(column) == data::ValueType::kString) {
    const data::StringDict& dict = t.dict(column);
    std::vector<std::string> key_of_code(dict.size());
    std::vector<char> done(dict.size(), 0);
    for (size_t k = 0; k < t.num_chunks(); ++k) {
      data::TypedChunkRef ch = t.column_chunk(column, k);
      for (size_t i = 0; i < ch.n; ++i) {
        if (ch.is_null(i)) continue;
        uint32_t code = ch.codes[i];
        if (!done[code]) {
          std::vector<std::string> toks =
              text::Tokenize(std::string(dict.str(code)));
          if (!toks.empty()) key_of_code[code] = std::move(toks[0]);
          done[code] = 1;
        }
        keys[ch.base + i] = key_of_code[code];
      }
    }
    return keys;
  }
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.IsNull(r, column)) continue;
    std::vector<std::string> toks = text::Tokenize(t.CellText(r, column));
    if (!toks.empty()) keys[r] = std::move(toks[0]);
  }
  return keys;
}

}  // namespace

std::vector<RowPair> AttributeBlocking(const data::Table& left,
                                       const data::Table& right,
                                       size_t column) {
  std::vector<std::string> right_keys = BlockingKeys(right, column);
  std::unordered_map<std::string, std::vector<size_t>> right_blocks;
  for (size_t r = 0; r < right_keys.size(); ++r) {
    if (!right_keys[r].empty()) right_blocks[right_keys[r]].push_back(r);
  }
  std::vector<std::string> left_keys = BlockingKeys(left, column);
  std::vector<RowPair> out;
  for (size_t l = 0; l < left_keys.size(); ++l) {
    if (left_keys[l].empty()) continue;
    auto it = right_blocks.find(left_keys[l]);
    if (it == right_blocks.end()) continue;
    for (size_t r : it->second) out.emplace_back(l, r);
  }
  AUTODC_OBS_COUNT("blocking.attribute_candidates", out.size());
  return out;
}

LshBlocker::LshBlocker(size_t dim, size_t bits, size_t tables, uint64_t seed)
    : dim_(dim), bits_(bits), num_tables_(tables) {
  Rng rng(seed);
  hyperplanes_.resize(bits * tables);
  for (auto& h : hyperplanes_) {
    h.resize(dim);
    for (float& x : h) x = static_cast<float>(rng.Normal());
  }
}

uint64_t LshBlocker::HashVector(const std::vector<float>& v,
                                size_t table) const {
  uint64_t code = 0;
  for (size_t b = 0; b < bits_; ++b) {
    const std::vector<float>& h = hyperplanes_[table * bits_ + b];
    double dot = 0.0;
    size_t n = std::min(dim_, v.size());
    for (size_t i = 0; i < n; ++i) dot += static_cast<double>(h[i]) * v[i];
    code = (code << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return code;
}

std::vector<RowPair> LshBlocker::Candidates(
    const std::vector<std::vector<float>>& left,
    const std::vector<std::vector<float>>& right) const {
  struct PairHash {
    size_t operator()(const RowPair& p) const {
      return p.first * 1000003u + p.second;
    }
  };
  AUTODC_OBS_SPAN(lsh_span, "blocking.lsh_candidates");
  // Each table's hashing + bucket probe is independent, so tables run in
  // parallel; the dedup merge below consumes them in table order, which
  // keeps the result identical to the serial implementation for any
  // thread count.
  std::vector<std::vector<RowPair>> per_table(num_tables_);
  ParallelFor(0, num_tables_, 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      std::unordered_map<uint64_t, std::vector<size_t>> buckets;
      for (size_t r = 0; r < right.size(); ++r) {
        buckets[HashVector(right[r], t)].push_back(r);
      }
      std::vector<RowPair>& pairs = per_table[t];
      for (size_t l = 0; l < left.size(); ++l) {
        auto it = buckets.find(HashVector(left[l], t));
        if (it == buckets.end()) continue;
        for (size_t r : it->second) pairs.emplace_back(l, r);
      }
    }
  });
  std::unordered_set<RowPair, PairHash> seen;
  for (const std::vector<RowPair>& pairs : per_table) {
    for (const RowPair& p : pairs) seen.insert(p);
  }
  AUTODC_OBS_COUNT("blocking.lsh_candidates", seen.size());
  return std::vector<RowPair>(seen.begin(), seen.end());
}

namespace {

/// Exact top-k right rows for one left vector, (sim desc, id asc)
/// ordered — the small-n fallback and the recall reference.
std::vector<size_t> ExactTopK(const std::vector<float>& q,
                              const std::vector<std::vector<float>>& right,
                              size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  scored.reserve(right.size());
  for (size_t r = 0; r < right.size(); ++r) {
    double sim = q.size() == right[r].size() && !q.empty()
                     ? nn::kernels::CosineF32(q.data(), right[r].data(),
                                              q.size())
                     : 0.0;
    scored.emplace_back(sim, r);
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first ||
                             (a.first == b.first && a.second < b.second);
                    });
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) out.push_back(scored[i].second);
  return out;
}

}  // namespace

AnnBlocker::AnnBlocker(size_t k, const ann::HnswConfig& config)
    : k_(k), config_(config) {}

std::vector<RowPair> AnnBlocker::Candidates(
    const std::vector<std::vector<float>>& left,
    const std::vector<std::vector<float>>& right) const {
  AUTODC_OBS_SPAN(ann_span, "blocking.ann_candidates");
  std::vector<std::vector<RowPair>> per_left(left.size());
  if (right.empty() || left.empty()) return {};

  if (right.size() <= kExactThreshold) {
    ParallelFor(0, left.size(), 8, [&](size_t b, size_t e) {
      for (size_t l = b; l < e; ++l) {
        for (size_t r : ExactTopK(left[l], right, k_)) {
          per_left[l].emplace_back(l, r);
        }
      }
    });
  } else {
    size_t dim = right[0].size();
    ann::HnswIndex index(dim, config_);
    std::vector<const float*> rows;
    rows.reserve(right.size());
    // Rows of the wrong width get a zero vector so ids keep matching
    // row indices; zero-norm rows score 0 against everything, the same
    // as the exact cosine's mismatch semantics.
    std::vector<float> zero(dim, 0.0f);
    for (const std::vector<float>& v : right) {
      rows.push_back(v.size() == dim ? v.data() : zero.data());
    }
    index.Build(rows);
    // Queries are read-only on the built graph: embarrassingly
    // parallel, with per-row output slots so the flattened result is
    // independent of thread count.
    ParallelFor(0, left.size(), 8, [&](size_t b, size_t e) {
      for (size_t l = b; l < e; ++l) {
        if (left[l].size() != dim) continue;
        for (const ann::ScoredId& hit :
             index.Search(left[l].data(), k_)) {
          per_left[l].emplace_back(l, hit.id);
        }
      }
    });
  }

  std::vector<RowPair> out;
  out.reserve(left.size() * k_);
  for (const std::vector<RowPair>& pairs : per_left) {
    out.insert(out.end(), pairs.begin(), pairs.end());
  }
  AUTODC_OBS_COUNT("blocking.ann_candidates", out.size());
  return out;
}

}  // namespace autodc::er
