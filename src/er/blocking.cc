#include "src/er/blocking.h"

#include <unordered_map>
#include <unordered_set>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/tokenizer.h"

namespace autodc::er {

std::vector<RowPair> AttributeBlocking(const data::Table& left,
                                       const data::Table& right,
                                       size_t column) {
  auto key_of = [column](const data::Table& t, size_t r) -> std::string {
    const data::Value& v = t.at(r, column);
    if (v.is_null()) return "";
    std::vector<std::string> toks = text::Tokenize(v.ToString());
    return toks.empty() ? "" : toks[0];
  };
  std::unordered_map<std::string, std::vector<size_t>> right_blocks;
  for (size_t r = 0; r < right.num_rows(); ++r) {
    std::string key = key_of(right, r);
    if (!key.empty()) right_blocks[key].push_back(r);
  }
  std::vector<RowPair> out;
  for (size_t l = 0; l < left.num_rows(); ++l) {
    std::string key = key_of(left, l);
    if (key.empty()) continue;
    auto it = right_blocks.find(key);
    if (it == right_blocks.end()) continue;
    for (size_t r : it->second) out.emplace_back(l, r);
  }
  AUTODC_OBS_COUNT("blocking.attribute_candidates", out.size());
  return out;
}

LshBlocker::LshBlocker(size_t dim, size_t bits, size_t tables, uint64_t seed)
    : dim_(dim), bits_(bits), num_tables_(tables) {
  Rng rng(seed);
  hyperplanes_.resize(bits * tables);
  for (auto& h : hyperplanes_) {
    h.resize(dim);
    for (float& x : h) x = static_cast<float>(rng.Normal());
  }
}

uint64_t LshBlocker::HashVector(const std::vector<float>& v,
                                size_t table) const {
  uint64_t code = 0;
  for (size_t b = 0; b < bits_; ++b) {
    const std::vector<float>& h = hyperplanes_[table * bits_ + b];
    double dot = 0.0;
    size_t n = std::min(dim_, v.size());
    for (size_t i = 0; i < n; ++i) dot += static_cast<double>(h[i]) * v[i];
    code = (code << 1) | (dot >= 0.0 ? 1u : 0u);
  }
  return code;
}

std::vector<RowPair> LshBlocker::Candidates(
    const std::vector<std::vector<float>>& left,
    const std::vector<std::vector<float>>& right) const {
  struct PairHash {
    size_t operator()(const RowPair& p) const {
      return p.first * 1000003u + p.second;
    }
  };
  AUTODC_OBS_SPAN(lsh_span, "blocking.lsh_candidates");
  // Each table's hashing + bucket probe is independent, so tables run in
  // parallel; the dedup merge below consumes them in table order, which
  // keeps the result identical to the serial implementation for any
  // thread count.
  std::vector<std::vector<RowPair>> per_table(num_tables_);
  ParallelFor(0, num_tables_, 1, [&](size_t t0, size_t t1) {
    for (size_t t = t0; t < t1; ++t) {
      std::unordered_map<uint64_t, std::vector<size_t>> buckets;
      for (size_t r = 0; r < right.size(); ++r) {
        buckets[HashVector(right[r], t)].push_back(r);
      }
      std::vector<RowPair>& pairs = per_table[t];
      for (size_t l = 0; l < left.size(); ++l) {
        auto it = buckets.find(HashVector(left[l], t));
        if (it == buckets.end()) continue;
        for (size_t r : it->second) pairs.emplace_back(l, r);
      }
    }
  });
  std::unordered_set<RowPair, PairHash> seen;
  for (const std::vector<RowPair>& pairs : per_table) {
    for (const RowPair& p : pairs) seen.insert(p);
  }
  AUTODC_OBS_COUNT("blocking.lsh_candidates", seen.size());
  return std::vector<RowPair>(seen.begin(), seen.end());
}

}  // namespace autodc::er
