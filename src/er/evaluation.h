#ifndef AUTODC_ER_EVALUATION_H_
#define AUTODC_ER_EVALUATION_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace autodc::er {

/// A (left row, right row) identifier pair.
using RowPair = std::pair<size_t, size_t>;

/// Precision/recall/F1 of a predicted match set against ground truth.
struct PrfScore {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  size_t true_positives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;
};

/// Scores `predicted` against `truth` (both as unordered pair sets).
PrfScore Evaluate(const std::vector<RowPair>& predicted,
                  const std::vector<RowPair>& truth);

/// Fraction of true pairs surviving in `candidates` — blocking quality.
double PairCompleteness(const std::vector<RowPair>& candidates,
                        const std::vector<RowPair>& truth);

/// 1 - |candidates| / (n_left * n_right) — how much comparison work
/// blocking saved.
double ReductionRatio(size_t num_candidates, size_t n_left, size_t n_right);

}  // namespace autodc::er

#endif  // AUTODC_ER_EVALUATION_H_
