#ifndef AUTODC_ER_DEEPER_H_
#define AUTODC_ER_DEEPER_H_

#include <memory>
#include <vector>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"
#include "src/er/evaluation.h"
#include "src/nn/classifier.h"
#include "src/nn/rnn.h"
#include "src/text/vocabulary.h"

namespace autodc::er {

/// A labeled training pair.
struct PairLabel {
  size_t left = 0;
  size_t right = 0;
  int label = 0;  ///< 1 = match
};

/// Samples a training set from ground-truth matches: every match becomes
/// a positive, and `negatives_per_positive` random non-matching pairs
/// become negatives. This is DeepER's imbalance-aware sampling (Sec. 6.1:
/// "samples non-duplicate tuple pairs ... at a higher level than
/// duplicate pairs").
std::vector<PairLabel> SampleTrainingPairs(
    size_t left_rows, size_t right_rows, const std::vector<RowPair>& matches,
    size_t negatives_per_positive, Rng* rng);

/// Like SampleTrainingPairs, but draws a share of the negatives from
/// `hard_pool` (e.g. blocking candidates): near-miss non-matches are what
/// the classifier must separate at deployment, so training on them is
/// essential for precision. `hard_fraction` in [0,1] controls the mix.
std::vector<PairLabel> SampleTrainingPairsWithHardNegatives(
    size_t left_rows, size_t right_rows, const std::vector<RowPair>& matches,
    const std::vector<RowPair>& hard_pool, size_t negatives_per_positive,
    double hard_fraction, Rng* rng);

/// How DeepER composes a tuple vector from word vectors (Figure 5).
enum class TupleComposition {
  kAverage = 0,  ///< mean of the tuple's word vectors (fast path)
  kLstm,         ///< trainable (bi)LSTM over the word sequence
};

struct DeepErConfig {
  TupleComposition composition = TupleComposition::kAverage;
  size_t lstm_hidden = 16;
  bool bidirectional = true;
  std::vector<size_t> classifier_hidden = {32};
  size_t epochs = 15;
  float learning_rate = 5e-3f;
  float positive_weight = 1.0f;
  size_t max_tokens_per_tuple = 24;  ///< LSTM unroll cap
  uint64_t seed = 42;

  // ---- Trainer runtime knobs (defaults reproduce seed behaviour). ----
  /// Fraction of training pairs held out for validation (0 disables).
  double validation_fraction = 0.0;
  /// Early stopping patience in epochs (0 disables); monitors val loss
  /// when a split exists, else train loss; best weights are restored.
  size_t early_stopping_patience = 0;
  double early_stopping_min_delta = 0.0;
  /// Periodic checkpointing through nn/serialize (0 disables).
  size_t checkpoint_every = 0;
  std::string checkpoint_path;
  /// Per-epoch telemetry: {epoch, train_loss, val_loss, lr, wall_ms}.
  nn::EpochCallback epoch_callback;
};

/// The DeepER entity-resolution model of Sec. 5.2 / Figure 5: pre-trained
/// word embeddings -> tuple composition -> similarity features ->
/// classifier. With kAverage composition only the classifier trains; with
/// kLstm the encoder trains end-to-end through the similarity layer.
class DeepEr {
 public:
  /// `words` must outlive the model (pre-trained embeddings, the
  /// GloVe-substitute).
  DeepEr(const embedding::EmbeddingStore* words, const DeepErConfig& config);

  /// Fits token-frequency statistics over the given tables and switches
  /// the average-composition path to SIF weighting (frequent tokens such
  /// as shared brand/category words are downweighted, so tuple vectors
  /// are dominated by their discriminative rare tokens). Call before
  /// Train/EmbedTupleVector for best quality.
  void FitWeights(const std::vector<const data::Table*>& tables);

  /// Trains on labeled pairs drawn from the two tables. Returns final
  /// epoch mean loss. Validation/early-stopping/checkpoint behaviour is
  /// controlled by the Trainer knobs in DeepErConfig; full per-epoch
  /// history is available via last_train_result().
  double Train(const data::Table& left, const data::Table& right,
               const std::vector<PairLabel>& pairs);

  /// Trainer result of the most recent Train call (epoch history,
  /// early-stopping outcome, checkpoint status).
  const nn::TrainResult& last_train_result() const { return last_train_; }

  /// Match probability for one tuple pair.
  double PredictProba(data::RowView a, data::RowView b) const;

  /// Classifies every candidate pair and returns those above threshold.
  std::vector<RowPair> Match(const data::Table& left,
                             const data::Table& right,
                             const std::vector<RowPair>& candidates,
                             double threshold = 0.5) const;

  /// Tuple embedding under the configured composition (average path uses
  /// the word store; LSTM path runs the trained encoder). Exposed for
  /// LSH blocking over tuple vectors.
  std::vector<float> EmbedTupleVector(data::RowView row) const;

  /// DeepER's similarity vector (Figure 5): per attribute, the cosine,
  /// L2 distance, and a null indicator between the two cells' composed
  /// embeddings, plus the whole-tuple cosine.
  std::vector<float> SimilarityVector(data::RowView a, data::RowView b) const;

  const DeepErConfig& config() const { return config_; }

  /// Materializes the model for a given column count without training —
  /// required before LoadCheckpoint on a fresh model (the average-
  /// composition classifier is otherwise created lazily at Train time).
  void InitForSchema(const data::Schema& schema);

  /// Every trainable parameter, in a stable order (classifier or
  /// encoder+head). Empty for an uninitialized average-path model.
  std::vector<nn::VarPtr> TrainableParameters() const;

  /// Saves / restores the trainable parameters — the "pre-trained DL
  /// models for DC" workflow of Sec. 3.3: train once on a big task,
  /// reload and fine-tune on a related task with few labels.
  Status SaveCheckpoint(const std::string& path) const;
  Status LoadCheckpoint(const std::string& path);

 private:
  /// Composed embedding of one cell's tokens (SIF + subword fallback
  /// when FitWeights was called).
  std::vector<float> AttributeEmbedding(const data::Value& v) const;
  void EnsureAvgClassifier(size_t num_columns);
  /// TrainOptions assembled from the config's Trainer knobs.
  nn::TrainOptions MakeTrainOptions(size_t batch_size, float grad_clip) const;
  // LSTM path helpers (tape-building).
  nn::VarPtr EncodeTuple(data::RowView row) const;
  nn::VarPtr PairLogit(data::RowView a, data::RowView b, bool train) const;
  std::vector<nn::VarPtr> AllParameters() const;

  const embedding::EmbeddingStore* words_;
  DeepErConfig config_;
  mutable Rng rng_;
  /// Token frequencies for SIF weighting (empty until FitWeights).
  text::Vocabulary token_counts_;
  bool use_sif_ = false;

  /// Result of the most recent Train call.
  nn::TrainResult last_train_;

  // Average-composition path: plain feature classifier.
  std::unique_ptr<nn::BinaryClassifier> avg_classifier_;

  // LSTM path: encoder + head trained end-to-end.
  std::unique_ptr<nn::LstmEncoder> encoder_;
  std::unique_ptr<nn::Linear> head1_;
  std::unique_ptr<nn::Linear> head2_;
};

}  // namespace autodc::er

#endif  // AUTODC_ER_DEEPER_H_
