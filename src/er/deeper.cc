#include "src/er/deeper.h"

#include <cmath>
#include <unordered_set>

#include "src/common/parallel.h"
#include "src/embedding/composition.h"
#include "src/er/features.h"
#include "src/nn/kernels.h"
#include "src/nn/optimizer.h"
#include "src/nn/serialize.h"
#include "src/nn/tensor_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/similarity.h"
#include "src/text/tokenizer.h"

namespace autodc::er {

std::vector<PairLabel> SampleTrainingPairs(size_t left_rows,
                                           size_t right_rows,
                                           const std::vector<RowPair>& matches,
                                           size_t negatives_per_positive,
                                           Rng* rng) {
  struct PairHash {
    size_t operator()(const RowPair& p) const {
      return p.first * 1000003u + p.second;
    }
  };
  std::unordered_set<RowPair, PairHash> match_set(matches.begin(),
                                                  matches.end());
  std::vector<PairLabel> out;
  for (const RowPair& m : matches) {
    out.push_back(PairLabel{m.first, m.second, 1});
  }
  size_t want = matches.size() * negatives_per_positive;
  size_t attempts = 0;
  std::unordered_set<RowPair, PairHash> sampled;
  while (sampled.size() < want && attempts < want * 50 && left_rows > 0 &&
         right_rows > 0) {
    ++attempts;
    RowPair p{static_cast<size_t>(
                  rng->UniformInt(0, static_cast<int64_t>(left_rows) - 1)),
              static_cast<size_t>(
                  rng->UniformInt(0, static_cast<int64_t>(right_rows) - 1))};
    if (match_set.count(p) > 0 || sampled.count(p) > 0) continue;
    sampled.insert(p);
    out.push_back(PairLabel{p.first, p.second, 0});
  }
  return out;
}

std::vector<PairLabel> SampleTrainingPairsWithHardNegatives(
    size_t left_rows, size_t right_rows, const std::vector<RowPair>& matches,
    const std::vector<RowPair>& hard_pool, size_t negatives_per_positive,
    double hard_fraction, Rng* rng) {
  struct PairHash {
    size_t operator()(const RowPair& p) const {
      return p.first * 1000003u + p.second;
    }
  };
  std::unordered_set<RowPair, PairHash> match_set(matches.begin(),
                                                  matches.end());
  std::vector<RowPair> hard_negatives;
  for (const RowPair& p : hard_pool) {
    if (match_set.count(p) == 0) hard_negatives.push_back(p);
  }
  size_t want = matches.size() * negatives_per_positive;
  size_t want_hard = static_cast<size_t>(want * hard_fraction);

  std::vector<PairLabel> out;
  for (const RowPair& m : matches) {
    out.push_back(PairLabel{m.first, m.second, 1});
  }
  rng->Shuffle(&hard_negatives);
  for (size_t i = 0; i < hard_negatives.size() && i < want_hard; ++i) {
    out.push_back(PairLabel{hard_negatives[i].first, hard_negatives[i].second,
                            0});
  }
  size_t have_hard = std::min(hard_negatives.size(), want_hard);
  // Top up with random negatives.
  std::vector<PairLabel> random = SampleTrainingPairs(
      left_rows, right_rows, matches,
      matches.empty() ? 0 : (want - have_hard) / matches.size() + 1, rng);
  size_t added = 0;
  for (const PairLabel& p : random) {
    if (p.label == 1) continue;
    if (added + have_hard >= want) break;
    out.push_back(p);
    ++added;
  }
  return out;
}

DeepEr::DeepEr(const embedding::EmbeddingStore* words,
               const DeepErConfig& config)
    : words_(words), config_(config), rng_(config.seed) {
  if (config_.composition == TupleComposition::kAverage) {
    // The classifier is created lazily on first Train/Predict: its input
    // width depends on the schema's column count (see SimilarityVector).
  } else {
    encoder_ = std::make_unique<nn::LstmEncoder>(
        words_->dim(), config_.lstm_hidden, config_.bidirectional, &rng_);
    size_t enc_dim = encoder_->output_dim();
    size_t feat_dim = 2 * enc_dim + 1;
    size_t hidden = config_.classifier_hidden.empty()
                        ? 16
                        : config_.classifier_hidden[0];
    head1_ = std::make_unique<nn::Linear>(feat_dim, hidden, &rng_);
    head2_ = std::make_unique<nn::Linear>(hidden, 1, &rng_);
  }
}

std::vector<nn::VarPtr> DeepEr::AllParameters() const {
  std::vector<nn::VarPtr> params = encoder_->Parameters();
  for (const nn::VarPtr& p : head1_->Parameters()) params.push_back(p);
  for (const nn::VarPtr& p : head2_->Parameters()) params.push_back(p);
  return params;
}

nn::VarPtr DeepEr::EncodeTuple(data::RowView row) const {
  std::vector<nn::VarPtr> seq;
  for (const data::Value& v : row) {
    if (v.is_null()) continue;
    for (const std::string& tok : text::Tokenize(v.ToString())) {
      const std::vector<float>* vec = words_->Find(tok);
      std::vector<float> subword;
      if (vec == nullptr) {
        // Subword fallback keeps out-of-vocabulary (typo-ridden) tokens
        // in the sequence instead of dropping signal.
        subword = embedding::TrigramHashVector(tok, words_->dim());
        vec = &subword;
      }
      seq.push_back(nn::Constant(nn::Tensor::FromVector(*vec)));
      if (seq.size() >= config_.max_tokens_per_tuple) break;
    }
    if (seq.size() >= config_.max_tokens_per_tuple) break;
  }
  return encoder_->Encode(seq);
}

namespace {
// |x| built from two relus so it stays on the tape.
nn::VarPtr Abs(const nn::VarPtr& x) {
  return nn::Add(nn::Relu(x), nn::Relu(nn::Scale(x, -1.0f)));
}
}  // namespace

nn::VarPtr DeepEr::PairLogit(data::RowView a, data::RowView b,
                             bool train) const {
  nn::VarPtr ea = EncodeTuple(a);
  nn::VarPtr eb = EncodeTuple(b);
  nn::VarPtr diff = Abs(nn::Sub(ea, eb));
  nn::VarPtr prod = nn::Mul(ea, eb);
  // Cosine as a derived scalar feature (dot of normalized values,
  // computed outside the tape — a fixed similarity input, not a trained
  // path, mirroring DeepER's similarity-vector design).
  float cos = static_cast<float>(nn::kernels::CosineF32(
      ea->value.data(), eb->value.data(), ea->value.size()));
  nn::VarPtr cos_feat = nn::Constant(nn::Tensor({1}, {cos}));
  nn::VarPtr features = nn::Concat({diff, prod, cos_feat});
  nn::VarPtr h = nn::Relu(head1_->Forward(features, train));
  return head2_->Forward(h, train);  // {1,1}
}

void DeepEr::FitWeights(const std::vector<const data::Table*>& tables) {
  token_counts_ = text::Vocabulary();
  for (const data::Table* t : tables) {
    size_t rows = t->num_rows();
    size_t cols = t->num_columns();
    // Dictionary-encoded columns tokenize each DISTINCT string once and
    // replay the cached token list per row; a column with d distinct
    // values costs d tokenizations instead of n. The row-major emission
    // order (and thus every vocabulary count and id) is unchanged.
    std::vector<std::vector<std::vector<std::string>>> cached(cols);
    std::vector<char> use_dict(cols, 0);
    for (size_t c = 0; c < cols; ++c) {
      if (t->ChunkScannable() &&
          t->storage_type(c) == data::ValueType::kString &&
          t->ColumnUniform(c)) {
        use_dict[c] = 1;
        cached[c].resize(t->dict(c).size());
      }
    }
    std::vector<std::vector<char>> done(cols);
    for (size_t c = 0; c < cols; ++c) {
      if (use_dict[c]) done[c].assign(cached[c].size(), 0);
    }
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (use_dict[c]) {
          if (t->IsNull(r, c)) continue;
          uint32_t code = t->DictCode(r, c);
          if (!done[c][code]) {
            cached[c][code] =
                text::Tokenize(std::string(t->dict(c).str(code)));
            done[c][code] = 1;
          }
          token_counts_.AddAll(cached[c][code]);
          continue;
        }
        const data::Value v = t->at(r, c);
        if (v.is_null()) continue;
        token_counts_.AddAll(text::Tokenize(v.ToString()));
      }
    }
  }
  use_sif_ = true;
}

std::vector<float> DeepEr::AttributeEmbedding(const data::Value& v) const {
  if (v.is_null()) return std::vector<float>(words_->dim(), 0.0f);
  std::vector<std::string> tokens = text::Tokenize(v.ToString());
  if (use_sif_) {
    embedding::SifWeights sif;
    sif.vocabulary = &token_counts_;
    sif.trigram_fallback_below = 5;
    return embedding::EmbedTokens(*words_, tokens,
                                  embedding::Composition::kSifWeighted, sif);
  }
  return embedding::EmbedTokens(*words_, tokens);
}

std::vector<float> DeepEr::SimilarityVector(data::RowView a,
                                            data::RowView b) const {
  std::vector<float> f;
  f.reserve(3 * a.size() + 1);
  for (size_t c = 0; c < a.size(); ++c) {
    // Cells are assembled from column storage once per attribute.
    const data::Value va = a[c];
    const data::Value vb = b[c];
    bool any_null = va.is_null() || vb.is_null();
    f.push_back(any_null ? 1.0f : 0.0f);
    if (any_null) {
      f.push_back(0.0f);
      f.push_back(0.0f);
      continue;
    }
    bool a_num = false, b_num = false;
    double x = va.ToNumeric(&a_num);
    double y = vb.ToNumeric(&b_num);
    if (a_num && b_num) {
      // Heterogeneity handling (Sec. 3.2): numeric cells compare
      // numerically — token embeddings of digit strings carry no metric
      // structure.
      double scale = std::max({std::fabs(x), std::fabs(y), 1e-9});
      f.push_back(static_cast<float>(1.0 - std::fabs(x - y) / scale));
      f.push_back(x == y ? 1.0f : 0.0f);
      continue;
    }
    std::vector<float> ea = AttributeEmbedding(va);
    std::vector<float> eb = AttributeEmbedding(vb);
    f.push_back(static_cast<float>(text::CosineSimilarity(ea, eb)));
    f.push_back(static_cast<float>(text::EuclideanDistance(ea, eb)));
  }
  f.push_back(static_cast<float>(
      text::CosineSimilarity(EmbedTupleVector(a), EmbedTupleVector(b))));
  return f;
}

void DeepEr::EnsureAvgClassifier(size_t num_columns) {
  if (avg_classifier_ != nullptr) return;
  nn::ClassifierConfig ccfg;
  ccfg.input_dim = 3 * num_columns + 1;
  ccfg.hidden = config_.classifier_hidden;
  ccfg.learning_rate = config_.learning_rate;
  ccfg.positive_weight = config_.positive_weight;
  avg_classifier_ = std::make_unique<nn::BinaryClassifier>(ccfg, &rng_);
}

nn::TrainOptions DeepEr::MakeTrainOptions(size_t batch_size,
                                          float grad_clip) const {
  nn::TrainOptions options;
  options.epochs = config_.epochs;
  options.batch_size = batch_size;
  options.grad_clip = grad_clip;
  options.validation_fraction = config_.validation_fraction;
  options.early_stopping_patience = config_.early_stopping_patience;
  options.early_stopping_min_delta = config_.early_stopping_min_delta;
  options.checkpoint_every = config_.checkpoint_every;
  options.checkpoint_path = config_.checkpoint_path;
  options.epoch_callback = config_.epoch_callback;
  return options;
}

double DeepEr::Train(const data::Table& left, const data::Table& right,
                     const std::vector<PairLabel>& pairs) {
  AUTODC_OBS_SPAN(train_span, "deeper.train");
  AUTODC_OBS_COUNT("deeper.train_pairs", pairs.size());
  if (config_.composition == TupleComposition::kAverage) {
    EnsureAvgClassifier(left.num_columns());
    // Featurization is a pure map over pairs — the dominant cost of the
    // average path — so it runs on the thread pool.
    nn::Batch features(pairs.size());
    std::vector<int> labels(pairs.size());
    ParallelFor(0, pairs.size(), 8, [&](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        const PairLabel& p = pairs[i];
        features[i] = SimilarityVector(left.row(p.left), right.row(p.right));
        labels[i] = p.label;
      }
    });
    last_train_ = avg_classifier_->Train(
        features, labels, MakeTrainOptions(/*batch_size=*/32,
                                           /*grad_clip=*/5.0f));
    return last_train_.final_train_loss;
  }

  // LSTM path: per-pair SGD through the unrolled encoders, driven by the
  // shared Trainer runtime. The unrolled graphs allocate thousands of
  // small tensors per pair; the workspace pool recycles them across pairs
  // and epochs. Persistent shuffle order + batch_size 1 reproduce the
  // original per-pair loop exactly.
  nn::WorkspaceScope workspace;
  nn::Adam opt(AllParameters(), config_.learning_rate);
  nn::TrainOptions options =
      MakeTrainOptions(/*batch_size=*/1, /*grad_clip=*/1.0f);
  options.shuffle = nn::ShuffleMode::kPersistent;
  nn::Trainer trainer(options);
  last_train_ = trainer.Fit(
      pairs.size(), &rng_, &opt,
      [&](const std::vector<size_t>& idx, bool train) {
        const PairLabel& p = pairs[idx[0]];
        nn::VarPtr logit =
            PairLogit(left.row(p.left), right.row(p.right), train);
        nn::Tensor target({1, 1});
        target.at(0, 0) = p.label > 0 ? 1.0f : 0.0f;
        nn::VarPtr loss = nn::BceWithLogitsLoss(logit, target);
        if (p.label > 0 && config_.positive_weight != 1.0f) {
          loss = nn::Scale(loss, config_.positive_weight);
        }
        return loss;
      });
  return last_train_.final_train_loss;
}

double DeepEr::PredictProba(data::RowView a, data::RowView b) const {
  if (config_.composition == TupleComposition::kAverage) {
    if (avg_classifier_ == nullptr) return 0.0;  // untrained
    return avg_classifier_->PredictProba(SimilarityVector(a, b));
  }
  nn::WorkspaceScope workspace;
  nn::VarPtr logit = PairLogit(a, b, /*train=*/false);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logit->value[0])));
}

std::vector<RowPair> DeepEr::Match(const data::Table& left,
                                   const data::Table& right,
                                   const std::vector<RowPair>& candidates,
                                   double threshold) const {
  // Scoring candidate pairs is embarrassingly parallel: PredictProba
  // only reads trained weights and embedding stores. Flags are collected
  // per pair and compacted in order, so the output is independent of the
  // thread count.
  AUTODC_OBS_SPAN(match_span, "deeper.match");
  AUTODC_OBS_COUNT("deeper.match_candidates", candidates.size());
  std::vector<char> keep(candidates.size(), 0);
  ParallelFor(0, candidates.size(), 8, [&](size_t lo, size_t hi) {
    // Workspace mode is per-thread, so each worker opens its own scope.
    nn::WorkspaceScope workspace;
    for (size_t i = lo; i < hi; ++i) {
      const RowPair& c = candidates[i];
      keep[i] =
          PredictProba(left.row(c.first), right.row(c.second)) >= threshold
              ? 1
              : 0;
    }
  });
  std::vector<RowPair> out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) out.push_back(candidates[i]);
  }
  AUTODC_OBS_COUNT("deeper.matches", out.size());
  return out;
}

void DeepEr::InitForSchema(const data::Schema& schema) {
  if (config_.composition == TupleComposition::kAverage) {
    EnsureAvgClassifier(schema.num_columns());
  }
}

std::vector<nn::VarPtr> DeepEr::TrainableParameters() const {
  if (config_.composition == TupleComposition::kAverage) {
    if (avg_classifier_ == nullptr) return {};
    return avg_classifier_->Parameters();
  }
  return AllParameters();
}

Status DeepEr::SaveCheckpoint(const std::string& path) const {
  std::vector<nn::VarPtr> params = TrainableParameters();
  if (params.empty()) {
    return Status::FailedPrecondition(
        "model has no parameters yet (call Train or InitForSchema first)");
  }
  return nn::SaveParametersToFile(params, path);
}

Status DeepEr::LoadCheckpoint(const std::string& path) {
  std::vector<nn::VarPtr> params = TrainableParameters();
  if (params.empty()) {
    return Status::FailedPrecondition(
        "model has no parameters yet (call InitForSchema first)");
  }
  return nn::LoadParametersFromFile(params, path);
}

std::vector<float> DeepEr::EmbedTupleVector(data::RowView row) const {
  if (config_.composition == TupleComposition::kAverage) {
    if (use_sif_) {
      embedding::SifWeights sif;
      sif.vocabulary = &token_counts_;
      sif.trigram_fallback_below = 5;
      return embedding::EmbedTuple(*words_, row,
                                   embedding::Composition::kSifWeighted, sif);
    }
    return embedding::EmbedTuple(*words_, row);
  }
  nn::VarPtr enc = EncodeTuple(row);
  return enc->value.vec();
}

}  // namespace autodc::er
