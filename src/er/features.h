#ifndef AUTODC_ER_FEATURES_H_
#define AUTODC_ER_FEATURES_H_

#include <vector>

#include "src/data/table.h"
#include "src/embedding/embedding_store.h"

namespace autodc::er {

/// Classical handcrafted pair features — what "traditional machine
/// learning based approaches" (Sec. 5.2) engineer per attribute pair:
/// Levenshtein, Jaro-Winkler, token Jaccard, trigram Jaccard, Monge-Elkan
/// for strings; relative difference for numerics; a both/either-null
/// indicator per attribute.
std::vector<float> HandcraftedPairFeatures(data::RowView a, data::RowView b,
                                           const data::Schema& schema);

/// Dimensionality of HandcraftedPairFeatures for `schema`.
size_t HandcraftedFeatureDim(const data::Schema& schema);

/// DeepER-style distributional pair features from precomputed tuple
/// embeddings: [ |ea - eb| , ea * eb , cos(ea, eb) ].
std::vector<float> EmbeddingPairFeatures(const std::vector<float>& ea,
                                         const std::vector<float>& eb);

/// Dimensionality of EmbeddingPairFeatures for embedding dim d: 2d + 1.
inline size_t EmbeddingFeatureDim(size_t dim) { return 2 * dim + 1; }

}  // namespace autodc::er

#endif  // AUTODC_ER_FEATURES_H_
