#ifndef AUTODC_ER_BASELINES_H_
#define AUTODC_ER_BASELINES_H_

#include <memory>
#include <vector>

#include "src/data/table.h"
#include "src/er/deeper.h"
#include "src/er/evaluation.h"
#include "src/nn/classifier.h"

namespace autodc::er {

/// Rule baseline: declares a match when the token-Jaccard similarity of
/// the concatenated tuple text exceeds a threshold. The "ad-hoc,
/// similarity function + threshold" approach the paper contrasts with.
class ThresholdMatcher {
 public:
  explicit ThresholdMatcher(double threshold = 0.5)
      : threshold_(threshold) {}

  double Score(data::RowView a, data::RowView b) const;
  std::vector<RowPair> Match(const data::Table& left,
                             const data::Table& right,
                             const std::vector<RowPair>& candidates) const;

 private:
  double threshold_;
};

/// Classical ML baseline: logistic regression (or small MLP) over the
/// handcrafted per-attribute similarity features — the Magellan-style
/// feature-engineering approach requiring expert-designed similarity
/// functions.
class FeatureMatcher {
 public:
  FeatureMatcher(const data::Schema& schema, std::vector<size_t> hidden,
                 float learning_rate, size_t epochs, uint64_t seed = 42);

  double Train(const data::Table& left, const data::Table& right,
               const std::vector<PairLabel>& pairs);
  double PredictProba(data::RowView a, data::RowView b) const;
  std::vector<RowPair> Match(const data::Table& left,
                             const data::Table& right,
                             const std::vector<RowPair>& candidates,
                             double threshold = 0.5) const;

  /// Trainer options used by Train (epochs/batching/early stopping/
  /// telemetry); defaults reproduce the seed behaviour. Mutate before
  /// calling Train to enable validation splits or checkpointing.
  nn::TrainOptions& mutable_train_options() { return train_options_; }
  /// Trainer result of the most recent Train call.
  const nn::TrainResult& last_train_result() const { return last_train_; }

 private:
  data::Schema schema_;
  nn::TrainOptions train_options_;
  nn::TrainResult last_train_;
  Rng rng_;
  std::unique_ptr<nn::BinaryClassifier> classifier_;
};

}  // namespace autodc::er

#endif  // AUTODC_ER_BASELINES_H_
