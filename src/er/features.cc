#include "src/er/features.h"

#include <algorithm>
#include <cmath>

#include "src/text/similarity.h"

namespace autodc::er {

namespace {
constexpr size_t kStringFeatures = 5;
constexpr size_t kNumericFeatures = 2;
constexpr size_t kNullFeatures = 1;
}  // namespace

size_t HandcraftedFeatureDim(const data::Schema& schema) {
  size_t dim = 0;
  for (const data::Column& c : schema.columns()) {
    dim += kNullFeatures;
    if (c.type == data::ValueType::kInt ||
        c.type == data::ValueType::kDouble) {
      dim += kNumericFeatures;
    } else {
      dim += kStringFeatures;
    }
  }
  return dim;
}

std::vector<float> HandcraftedPairFeatures(data::RowView a, data::RowView b,
                                           const data::Schema& schema) {
  std::vector<float> f;
  f.reserve(HandcraftedFeatureDim(schema));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const data::Value va = a[c];
    const data::Value vb = b[c];
    bool any_null = va.is_null() || vb.is_null();
    f.push_back(any_null ? 1.0f : 0.0f);
    bool numeric = schema.column(c).type == data::ValueType::kInt ||
                   schema.column(c).type == data::ValueType::kDouble;
    if (numeric) {
      if (any_null) {
        f.push_back(0.0f);
        f.push_back(0.0f);
      } else {
        double x = va.ToNumeric();
        double y = vb.ToNumeric();
        double scale = std::max({std::fabs(x), std::fabs(y), 1e-9});
        f.push_back(static_cast<float>(1.0 - std::fabs(x - y) / scale));
        f.push_back(x == y ? 1.0f : 0.0f);
      }
    } else {
      if (any_null) {
        f.insert(f.end(), kStringFeatures, 0.0f);
      } else {
        const std::string sa = va.ToString();
        const std::string sb = vb.ToString();
        f.push_back(static_cast<float>(text::LevenshteinSimilarity(sa, sb)));
        f.push_back(static_cast<float>(text::JaroWinklerSimilarity(sa, sb)));
        f.push_back(static_cast<float>(text::TokenJaccard(sa, sb)));
        f.push_back(static_cast<float>(text::TrigramJaccard(sa, sb)));
        f.push_back(static_cast<float>(text::MongeElkan(sa, sb)));
      }
    }
  }
  return f;
}

std::vector<float> EmbeddingPairFeatures(const std::vector<float>& ea,
                                         const std::vector<float>& eb) {
  std::vector<float> f;
  f.reserve(EmbeddingFeatureDim(ea.size()));
  for (size_t i = 0; i < ea.size(); ++i) {
    f.push_back(std::fabs(ea[i] - eb[i]));
  }
  for (size_t i = 0; i < ea.size(); ++i) {
    f.push_back(ea[i] * eb[i]);
  }
  f.push_back(static_cast<float>(text::CosineSimilarity(ea, eb)));
  return f;
}

}  // namespace autodc::er
