#include "src/er/baselines.h"

#include "src/er/features.h"
#include "src/text/similarity.h"

namespace autodc::er {

namespace {
std::string RowText(const data::Row& row) {
  std::string out;
  for (const data::Value& v : row) {
    if (v.is_null()) continue;
    out += v.ToString();
    out += " ";
  }
  return out;
}
}  // namespace

double ThresholdMatcher::Score(const data::Row& a, const data::Row& b) const {
  return text::TokenJaccard(RowText(a), RowText(b));
}

std::vector<RowPair> ThresholdMatcher::Match(
    const data::Table& left, const data::Table& right,
    const std::vector<RowPair>& candidates) const {
  std::vector<RowPair> out;
  for (const RowPair& c : candidates) {
    if (Score(left.row(c.first), right.row(c.second)) >= threshold_) {
      out.push_back(c);
    }
  }
  return out;
}

FeatureMatcher::FeatureMatcher(const data::Schema& schema,
                               std::vector<size_t> hidden,
                               float learning_rate, size_t epochs,
                               uint64_t seed)
    : schema_(schema), epochs_(epochs), rng_(seed) {
  nn::ClassifierConfig cfg;
  cfg.input_dim = HandcraftedFeatureDim(schema);
  cfg.hidden = std::move(hidden);
  cfg.learning_rate = learning_rate;
  classifier_ = std::make_unique<nn::BinaryClassifier>(cfg, &rng_);
}

double FeatureMatcher::Train(const data::Table& left,
                             const data::Table& right,
                             const std::vector<PairLabel>& pairs) {
  nn::Batch features;
  std::vector<int> labels;
  features.reserve(pairs.size());
  for (const PairLabel& p : pairs) {
    features.push_back(HandcraftedPairFeatures(left.row(p.left),
                                               right.row(p.right), schema_));
    labels.push_back(p.label);
  }
  return classifier_->Train(features, labels, epochs_);
}

double FeatureMatcher::PredictProba(const data::Row& a,
                                    const data::Row& b) const {
  return classifier_->PredictProba(HandcraftedPairFeatures(a, b, schema_));
}

std::vector<RowPair> FeatureMatcher::Match(
    const data::Table& left, const data::Table& right,
    const std::vector<RowPair>& candidates, double threshold) const {
  std::vector<RowPair> out;
  for (const RowPair& c : candidates) {
    if (PredictProba(left.row(c.first), right.row(c.second)) >= threshold) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace autodc::er
