#include "src/er/baselines.h"

#include "src/common/parallel.h"
#include "src/er/features.h"
#include "src/text/similarity.h"

namespace autodc::er {

namespace {
std::string RowText(data::RowView row) {
  std::string out;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row.is_null(c)) continue;
    out += row.Text(c);
    out += " ";
  }
  return out;
}
}  // namespace

double ThresholdMatcher::Score(data::RowView a, data::RowView b) const {
  return text::TokenJaccard(RowText(a), RowText(b));
}

std::vector<RowPair> ThresholdMatcher::Match(
    const data::Table& left, const data::Table& right,
    const std::vector<RowPair>& candidates) const {
  std::vector<RowPair> out;
  for (const RowPair& c : candidates) {
    if (Score(left.row(c.first), right.row(c.second)) >= threshold_) {
      out.push_back(c);
    }
  }
  return out;
}

FeatureMatcher::FeatureMatcher(const data::Schema& schema,
                               std::vector<size_t> hidden,
                               float learning_rate, size_t epochs,
                               uint64_t seed)
    : schema_(schema), rng_(seed) {
  train_options_.epochs = epochs;
  train_options_.batch_size = 32;
  train_options_.grad_clip = 5.0f;
  nn::ClassifierConfig cfg;
  cfg.input_dim = HandcraftedFeatureDim(schema);
  cfg.hidden = std::move(hidden);
  cfg.learning_rate = learning_rate;
  classifier_ = std::make_unique<nn::BinaryClassifier>(cfg, &rng_);
}

double FeatureMatcher::Train(const data::Table& left,
                             const data::Table& right,
                             const std::vector<PairLabel>& pairs) {
  // Thin Trainer client, mirroring DeepER's average path: featurize on
  // the thread pool, then hand the matrix to the shared runtime.
  nn::Batch features(pairs.size());
  std::vector<int> labels(pairs.size());
  ParallelFor(0, pairs.size(), 8, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      const PairLabel& p = pairs[i];
      features[i] = HandcraftedPairFeatures(left.row(p.left),
                                            right.row(p.right), schema_);
      labels[i] = p.label;
    }
  });
  last_train_ = classifier_->Train(features, labels, train_options_);
  return last_train_.final_train_loss;
}

double FeatureMatcher::PredictProba(data::RowView a,
                                    data::RowView b) const {
  return classifier_->PredictProba(HandcraftedPairFeatures(a, b, schema_));
}

std::vector<RowPair> FeatureMatcher::Match(
    const data::Table& left, const data::Table& right,
    const std::vector<RowPair>& candidates, double threshold) const {
  std::vector<RowPair> out;
  for (const RowPair& c : candidates) {
    if (PredictProba(left.row(c.first), right.row(c.second)) >= threshold) {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace autodc::er
