#include "src/er/evaluation.h"

#include <unordered_set>

namespace autodc::er {

namespace {
struct PairHash {
  size_t operator()(const RowPair& p) const {
    return p.first * 1000003u + p.second;
  }
};
}  // namespace

PrfScore Evaluate(const std::vector<RowPair>& predicted,
                  const std::vector<RowPair>& truth) {
  std::unordered_set<RowPair, PairHash> truth_set(truth.begin(), truth.end());
  std::unordered_set<RowPair, PairHash> pred_set(predicted.begin(),
                                                 predicted.end());
  PrfScore s;
  for (const RowPair& p : pred_set) {
    if (truth_set.count(p) > 0) {
      ++s.true_positives;
    } else {
      ++s.false_positives;
    }
  }
  for (const RowPair& p : truth_set) {
    if (pred_set.count(p) == 0) ++s.false_negatives;
  }
  size_t denom_p = s.true_positives + s.false_positives;
  size_t denom_r = s.true_positives + s.false_negatives;
  s.precision = denom_p > 0 ? static_cast<double>(s.true_positives) / denom_p
                            : 0.0;
  s.recall = denom_r > 0 ? static_cast<double>(s.true_positives) / denom_r
                         : 0.0;
  s.f1 = (s.precision + s.recall) > 0.0
             ? 2.0 * s.precision * s.recall / (s.precision + s.recall)
             : 0.0;
  return s;
}

double PairCompleteness(const std::vector<RowPair>& candidates,
                        const std::vector<RowPair>& truth) {
  if (truth.empty()) return 1.0;
  std::unordered_set<RowPair, PairHash> cand_set(candidates.begin(),
                                                 candidates.end());
  size_t hit = 0;
  for (const RowPair& p : truth) {
    if (cand_set.count(p) > 0) ++hit;
  }
  return static_cast<double>(hit) / static_cast<double>(truth.size());
}

double ReductionRatio(size_t num_candidates, size_t n_left, size_t n_right) {
  double total = static_cast<double>(n_left) * static_cast<double>(n_right);
  if (total <= 0.0) return 0.0;
  return 1.0 - static_cast<double>(num_candidates) / total;
}

}  // namespace autodc::er
