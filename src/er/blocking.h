#ifndef AUTODC_ER_BLOCKING_H_
#define AUTODC_ER_BLOCKING_H_

#include <cstdint>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/data/table.h"
#include "src/er/evaluation.h"

namespace autodc::er {

/// Classical blocking: candidate pairs are rows sharing a blocking key
/// derived from ONE attribute (here: the attribute's first word token,
/// lowercased). This is the "traditional methods that consider only few
/// attributes" baseline of Sec. 5.2 — cheap, but brittle when the keyed
/// attribute is dirty.
std::vector<RowPair> AttributeBlocking(const data::Table& left,
                                       const data::Table& right,
                                       size_t column);

/// Random-hyperplane LSH blocking over dense tuple embeddings — DeepER's
/// blocking contribution: it sees ALL attributes through the embedding
/// and produces far smaller candidate sets at equal recall.
class LshBlocker {
 public:
  /// `bits` hyperplanes per table and `tables` independent hash tables;
  /// more tables raise recall, more bits shrink buckets.
  LshBlocker(size_t dim, size_t bits, size_t tables, uint64_t seed = 42);

  /// Candidate pairs: (l, r) collide in at least one hash table.
  std::vector<RowPair> Candidates(
      const std::vector<std::vector<float>>& left,
      const std::vector<std::vector<float>>& right) const;

  size_t bits() const { return bits_; }
  size_t tables() const { return num_tables_; }

 private:
  uint64_t HashVector(const std::vector<float>& v, size_t table) const;

  size_t dim_;
  size_t bits_;
  size_t num_tables_;
  /// hyperplanes_[t * bits + b] is one random normal vector of length dim.
  std::vector<std::vector<float>> hyperplanes_;
};

/// kNN blocking over dense tuple embeddings through the HNSW index
/// (ROADMAP item 3, sub-linear retrieval): the right table's vectors
/// are indexed once, then every left row retrieves its k most similar
/// right rows as candidates. Unlike LSH, the candidate count is an
/// exact budget (≤ k per left row) rather than an emergent bucket-size
/// distribution, and cost grows ~n·log n instead of with bucket skew.
/// Small right tables take an exact top-k scan instead of a graph
/// build (same candidates, recall 1.0 against the scan by definition).
/// The default config comes from the environment, so AUTODC_ANN_M /
/// AUTODC_ANN_EF_* tuning and the AUTODC_EMB_QUANT low-precision path
/// (DESIGN.md §11) apply to blocking without a code change; candidates
/// are a recall set, so quantized graph distances need no rescoring
/// here.
class AnnBlocker {
 public:
  explicit AnnBlocker(size_t k = 10,
                      const ann::HnswConfig& config = ann::ConfigFromEnv());

  /// Candidate pairs: for each left row, its k nearest right rows by
  /// cosine. Queries run in parallel; output is ordered by left row
  /// and identical for any thread count.
  std::vector<RowPair> Candidates(
      const std::vector<std::vector<float>>& left,
      const std::vector<std::vector<float>>& right) const;

  size_t k() const { return k_; }

 private:
  size_t k_;
  ann::HnswConfig config_;
  /// Right tables at or below this size use the exact scan.
  static constexpr size_t kExactThreshold = 128;
};

}  // namespace autodc::er

#endif  // AUTODC_ER_BLOCKING_H_
