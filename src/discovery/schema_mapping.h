#ifndef AUTODC_DISCOVERY_SCHEMA_MAPPING_H_
#define AUTODC_DISCOVERY_SCHEMA_MAPPING_H_

#include <vector>

#include "src/common/result.h"
#include "src/data/table.h"
#include "src/discovery/semantic_matcher.h"

namespace autodc::discovery {

/// An injective column mapping from a target schema onto a source table:
/// mapping[i] is the source column feeding target column i, or -1 when
/// no source column scored above the threshold.
struct SchemaMapping {
  std::vector<int64_t> mapping;
  double total_score = 0.0;

  /// Number of mapped target columns.
  size_t num_mapped() const;
};

/// Greedy injective schema matching: for each column of `target` (in
/// order), picks the highest-scoring unused column of `source` under the
/// semantic matcher, keeping it only if the score reaches `threshold`.
/// This is the schema-mapping step of the integration stage (Figure 1).
SchemaMapping MapSchema(const SemanticColumnMatcher& matcher,
                        const data::Table& target, const data::Table& source,
                        double threshold);

/// Re-shapes `source` rows into `target`'s schema using `mapping`
/// (unmapped columns become nulls) and appends them to `*target`.
Status UnionInto(data::Table* target, const data::Table& source,
                 const SchemaMapping& mapping);

}  // namespace autodc::discovery

#endif  // AUTODC_DISCOVERY_SCHEMA_MAPPING_H_
