#ifndef AUTODC_DISCOVERY_SEARCH_H_
#define AUTODC_DISCOVERY_SEARCH_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/data/table.h"
#include "src/discovery/ekg.h"
#include "src/embedding/embedding_store.h"
#include "src/text/vocabulary.h"

namespace autodc::discovery {

/// One search hit.
struct SearchResult {
  std::string table;
  double score = 0.0;
};

struct SearchConfig {
  /// Mix between the neural (embedding cosine) and lexical (tf-idf
  /// cosine) ranking signals, as in hybrid neural IR (Sec. 5.1).
  double neural_weight = 0.6;
  size_t top_k = 5;
  /// Sub-linear mode (defaults to the AUTODC_ANN env switch): Index()
  /// additionally builds an HNSW index over the table vectors, and
  /// Search() retrieves top_k * ann_overfetch candidates by neural
  /// similarity, scoring the lexical signal only on those instead of
  /// every indexed table. Approximate: a table ranked purely by its
  /// tf-idf match can drop out; the exact scan remains the default.
  bool use_ann = ann::AnnEnvEnabled();
  /// Lakes smaller than this always take the exact scan.
  size_t ann_min_tables = 64;
  size_t ann_overfetch = 4;
  /// Graph parameters for the ANN index (M / ef_* / quant). Defaults
  /// pick up AUTODC_ANN_M, AUTODC_ANN_EF_CONSTRUCTION,
  /// AUTODC_ANN_EF_SEARCH and AUTODC_EMB_QUANT from the environment;
  /// candidates are re-scored by the hybrid ranker either way, so a
  /// quantized index only affects which tables make the shortlist.
  ann::HnswConfig ann_config = ann::ConfigFromEnv();
};

/// The "Google-style search engine over the enterprise's relations" of
/// Sec. 5.1: tables are indexed by both a distributed representation
/// (mean word vector of schema + sampled values) and a tf-idf vector;
/// a free-text query is ranked against both.
class TableSearchEngine {
 public:
  TableSearchEngine(const embedding::EmbeddingStore* words,
                    const SearchConfig& config = {});

  /// Indexes the given tables (documents = schema tokens + value tokens).
  void Index(const std::vector<const data::Table*>& tables);

  /// Ranked tables for a keyword query.
  std::vector<SearchResult> Search(const std::string& query) const;

  /// Search, then expand each hit with tables the EKG marks as
  /// thematically related (Sec. 5.1's "simultaneously return other
  /// datasets that are thematically related").
  std::vector<SearchResult> SearchWithRelated(
      const std::string& query, const EnterpriseKnowledgeGraph& ekg,
      double related_discount = 0.5) const;

  size_t num_indexed() const { return table_names_.size(); }

 private:
  const embedding::EmbeddingStore* words_;
  SearchConfig config_;
  std::vector<std::string> table_names_;
  std::vector<std::vector<float>> table_vectors_;
  /// Squared L2 norm of each table vector, computed once at Index time
  /// so Search does one dot product per table instead of three
  /// reductions (cosine = dot / (|q| * |t|)).
  std::vector<double> table_norms_sq_;
  std::vector<std::unordered_map<size_t, double>> table_tfidf_;
  text::TfIdf tfidf_;
  /// Built by Index() in ANN mode over table_vectors_ (ids == table
  /// positions); null in exact mode. Makes the engine move-only.
  std::unique_ptr<ann::HnswIndex> ann_;
};

}  // namespace autodc::discovery

#endif  // AUTODC_DISCOVERY_SEARCH_H_
