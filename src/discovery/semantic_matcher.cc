#include "src/discovery/semantic_matcher.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/similarity.h"
#include "src/text/tokenizer.h"

namespace autodc::discovery {

namespace {

// All vectors in one EmbeddingStore share a dimension; the size guard
// mirrors text::CosineSimilarity's mismatch semantics all the same.
double VecCosine(const std::vector<float>& a, const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  return nn::kernels::CosineF32(a.data(), b.data(), a.size());
}

}  // namespace

double CoherentGroupSimilarity(const embedding::EmbeddingStore& words,
                               const std::vector<std::string>& group_a,
                               const std::vector<std::string>& group_b) {
  double total = 0.0;
  size_t pairs = 0;
  for (const std::string& a : group_a) {
    const std::vector<float>* va = words.Find(a);
    if (va == nullptr) continue;
    for (const std::string& b : group_b) {
      const std::vector<float>* vb = words.Find(b);
      if (vb == nullptr) continue;
      total += VecCosine(*va, *vb);
      ++pairs;
    }
  }
  if (pairs == 0) return 0.0;
  return total / static_cast<double>(pairs);
}

double BestMatchGroupSimilarity(const embedding::EmbeddingStore& words,
                                const std::vector<std::string>& group_a,
                                const std::vector<std::string>& group_b) {
  const std::vector<std::string>& small =
      group_a.size() <= group_b.size() ? group_a : group_b;
  const std::vector<std::string>& large =
      group_a.size() <= group_b.size() ? group_b : group_a;
  double total = 0.0;
  size_t counted = 0;
  for (const std::string& a : small) {
    const std::vector<float>* va = words.Find(a);
    if (va == nullptr) continue;
    double best = -1.0;
    for (const std::string& b : large) {
      const std::vector<float>* vb = words.Find(b);
      if (vb == nullptr) continue;
      best = std::max(best, VecCosine(*va, *vb));
    }
    if (best > -1.0) {
      total += best;
      ++counted;
    }
  }
  if (counted == 0) return 0.0;
  return total / static_cast<double>(counted);
}

namespace {

std::vector<std::string> NameGroup(const data::Table& t, size_t col) {
  return text::Tokenize(t.schema().column(col).name);
}

std::vector<std::string> ValueGroup(const data::Table& t, size_t col,
                                    size_t max_values) {
  std::vector<std::string> group;
  for (const data::Value& v : t.DistinctColumnValues(col)) {
    for (std::string& tok : text::Tokenize(v.ToString())) {
      group.push_back(std::move(tok));
      if (group.size() >= max_values) return group;
    }
  }
  return group;
}

bool IsNumericColumn(const data::Table& t, size_t col) {
  data::ValueType ty = t.schema().column(col).type;
  return ty == data::ValueType::kInt || ty == data::ValueType::kDouble;
}

}  // namespace

double SemanticColumnMatcher::ScorePair(const data::Table& a, size_t col_a,
                                        const data::Table& b,
                                        size_t col_b) const {
  double name_sim = CoherentGroupSimilarity(*words_, NameGroup(a, col_a),
                                            NameGroup(b, col_b));
  double value_sim = 0.0;
  if (!IsNumericColumn(a, col_a) && !IsNumericColumn(b, col_b)) {
    value_sim = BestMatchGroupSimilarity(
        *words_, ValueGroup(a, col_a, config_.max_values_per_column),
        ValueGroup(b, col_b, config_.max_values_per_column));
  }
  return config_.name_weight * name_sim +
         (1.0 - config_.name_weight) * value_sim;
}

std::vector<ColumnMatch> SemanticColumnMatcher::MatchColumns(
    const data::Table& a, const data::Table& b) const {
  std::vector<ColumnMatch> out;
  for (size_t i = 0; i < a.num_columns(); ++i) {
    for (size_t j = 0; j < b.num_columns(); ++j) {
      double score = ScorePair(a, i, b, j);
      if (score < config_.min_score) continue;
      out.push_back(ColumnMatch{a.name(), a.schema().column(i).name,
                                b.name(), b.schema().column(j).name, score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ColumnMatch& x, const ColumnMatch& y) {
              return x.score > y.score;
            });
  return out;
}

std::vector<ColumnMatch> SemanticColumnMatcher::MatchLake(
    const std::vector<const data::Table*>& tables) const {
  struct ColRef {
    size_t table;
    size_t col;
  };
  std::vector<ColRef> cols;
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t c = 0; c < tables[i]->num_columns(); ++c) {
      cols.push_back(ColRef{i, c});
    }
  }

  std::vector<ColumnMatch> out;
  size_t dim = words_->dim();
  if (!config_.use_ann || dim == 0 || cols.size() < config_.ann_min_columns) {
    for (size_t i = 0; i < tables.size(); ++i) {
      for (size_t j = i + 1; j < tables.size(); ++j) {
        std::vector<ColumnMatch> pair = MatchColumns(*tables[i], *tables[j]);
        out.insert(out.end(), pair.begin(), pair.end());
      }
    }
  } else {
    AUTODC_OBS_SPAN(lake_span, "matcher.ann_lake");
    // One centroid per column: the mean embedding of its name tokens
    // plus sampled value tokens — a cheap proxy for the group
    // similarities ScorePair computes, good enough to propose
    // neighbours. Centroids are independent, so they fill in parallel.
    std::vector<std::vector<float>> centroids(cols.size());
    ParallelFor(0, cols.size(), 4, [&](size_t b, size_t e) {
      for (size_t idx = b; idx < e; ++idx) {
        const data::Table& t = *tables[cols[idx].table];
        std::vector<std::string> toks = NameGroup(t, cols[idx].col);
        if (!IsNumericColumn(t, cols[idx].col)) {
          for (std::string& v :
               ValueGroup(t, cols[idx].col, config_.max_values_per_column)) {
            toks.push_back(std::move(v));
          }
        }
        centroids[idx] = words_->AverageOf(toks);
      }
    });
    ann::HnswIndex index(dim, config_.ann_config);
    std::vector<const float*> rows;
    rows.reserve(cols.size());
    std::vector<float> zero(dim, 0.0f);
    for (const std::vector<float>& c : centroids) {
      rows.push_back(c.size() == dim ? c.data() : zero.data());
    }
    index.Build(rows);
    // Every column proposes its nearest columns; cross-table hits become
    // candidate pairs. Queries are read-only and run in parallel with
    // per-column slots; the ordered-set merge canonicalizes each pair to
    // (smaller table index first) and dedupes the two directions.
    size_t fetch = config_.ann_candidates + 1;  // the query column returns
                                                // itself; fetch one extra
    std::vector<std::vector<size_t>> hits(cols.size());
    ParallelFor(0, cols.size(), 8, [&](size_t b, size_t e) {
      for (size_t idx = b; idx < e; ++idx) {
        for (const ann::ScoredId& hit : index.Search(rows[idx], fetch)) {
          if (hit.id != idx) hits[idx].push_back(hit.id);
        }
      }
    });
    std::set<std::pair<size_t, size_t>> pairs;
    for (size_t idx = 0; idx < cols.size(); ++idx) {
      for (size_t other : hits[idx]) {
        size_t a = idx;
        size_t b = other;
        if (cols[a].table == cols[b].table) continue;
        if (cols[a].table > cols[b].table) std::swap(a, b);
        pairs.insert({a, b});
      }
    }
    AUTODC_OBS_COUNT("matcher.ann_pairs", pairs.size());
    for (const auto& [a, b] : pairs) {
      const data::Table& ta = *tables[cols[a].table];
      const data::Table& tb = *tables[cols[b].table];
      double score = ScorePair(ta, cols[a].col, tb, cols[b].col);
      if (score < config_.min_score) continue;
      out.push_back(ColumnMatch{ta.name(), ta.schema().column(cols[a].col).name,
                                tb.name(), tb.schema().column(cols[b].col).name,
                                score});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ColumnMatch& x, const ColumnMatch& y) {
              return x.score > y.score;
            });
  return out;
}

std::vector<ColumnMatch> SyntacticColumnMatches(
    const std::vector<const data::Table*>& tables) {
  std::vector<ColumnMatch> out;
  for (size_t i = 0; i < tables.size(); ++i) {
    for (size_t j = i + 1; j < tables.size(); ++j) {
      const data::Table& a = *tables[i];
      const data::Table& b = *tables[j];
      for (size_t ca = 0; ca < a.num_columns(); ++ca) {
        for (size_t cb = 0; cb < b.num_columns(); ++cb) {
          const std::string& na = a.schema().column(ca).name;
          const std::string& nb = b.schema().column(cb).name;
          double score = 0.5 * text::JaroWinklerSimilarity(na, nb) +
                         0.5 * text::TokenJaccard(na, nb);
          out.push_back(ColumnMatch{a.name(), na, b.name(), nb, score});
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ColumnMatch& x, const ColumnMatch& y) {
              return x.score > y.score;
            });
  return out;
}

}  // namespace autodc::discovery
