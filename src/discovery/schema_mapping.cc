#include "src/discovery/schema_mapping.h"

#include <algorithm>

namespace autodc::discovery {

size_t SchemaMapping::num_mapped() const {
  return mapping.size() -
         static_cast<size_t>(std::count(mapping.begin(), mapping.end(),
                                        static_cast<int64_t>(-1)));
}

SchemaMapping MapSchema(const SemanticColumnMatcher& matcher,
                        const data::Table& target, const data::Table& source,
                        double threshold) {
  SchemaMapping out;
  out.mapping.assign(target.num_columns(), -1);
  std::vector<bool> used(source.num_columns(), false);
  for (size_t tc = 0; tc < target.num_columns(); ++tc) {
    double best = -1.0;
    size_t best_col = 0;
    for (size_t sc = 0; sc < source.num_columns(); ++sc) {
      if (used[sc]) continue;
      double s = matcher.ScorePair(target, tc, source, sc);
      if (s > best) {
        best = s;
        best_col = sc;
      }
    }
    if (best >= threshold) {
      out.mapping[tc] = static_cast<int64_t>(best_col);
      used[best_col] = true;
      out.total_score += best;
    }
  }
  return out;
}

Status UnionInto(data::Table* target, const data::Table& source,
                 const SchemaMapping& mapping) {
  if (mapping.mapping.size() != target->num_columns()) {
    return Status::InvalidArgument("mapping arity != target arity");
  }
  for (int64_t m : mapping.mapping) {
    if (m >= static_cast<int64_t>(source.num_columns())) {
      return Status::OutOfRange("mapping references missing source column");
    }
  }
  for (size_t r = 0; r < source.num_rows(); ++r) {
    data::Row row(target->num_columns(), data::Value::Null());
    for (size_t tc = 0; tc < target->num_columns(); ++tc) {
      if (mapping.mapping[tc] >= 0) {
        row[tc] = source.at(r, static_cast<size_t>(mapping.mapping[tc]));
      }
    }
    AUTODC_RETURN_NOT_OK(target->AppendRow(std::move(row)));
  }
  return Status::OK();
}

}  // namespace autodc::discovery
