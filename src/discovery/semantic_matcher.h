#ifndef AUTODC_DISCOVERY_SEMANTIC_MATCHER_H_
#define AUTODC_DISCOVERY_SEMANTIC_MATCHER_H_

#include <string>
#include <vector>

#include "src/ann/hnsw.h"
#include "src/data/table.h"
#include "src/embedding/embedding_store.h"

namespace autodc::discovery {

/// A scored column-pair candidate produced by a matcher.
struct ColumnMatch {
  std::string table_a;
  std::string column_a;
  std::string table_b;
  std::string column_b;
  double score = 0.0;
};

/// Coherent-group similarity (Sec. 5.1, Seeping Semantics [21]): a group
/// of words is similar to another group if the *average pairwise*
/// embedding similarity between all cross pairs is high. Handles
/// multi-word phrases and out-of-vocabulary terms (OOV words are
/// skipped; empty groups score 0).
double CoherentGroupSimilarity(const embedding::EmbeddingStore& words,
                               const std::vector<std::string>& group_a,
                               const std::vector<std::string>& group_b);

/// Best-match group similarity (Monge-Elkan lifted to embeddings): for
/// each token of the smaller group, its best cosine against the other
/// group, averaged. Columns sharing (or synonymous with) each other's
/// value vocabulary score near 1 even when each group also contains many
/// internally-dissimilar values — the dilution the plain pairwise
/// average suffers from.
double BestMatchGroupSimilarity(const embedding::EmbeddingStore& words,
                                const std::vector<std::string>& group_a,
                                const std::vector<std::string>& group_b);

struct SemanticMatcherConfig {
  /// Weight of column-NAME group similarity vs column-VALUE group
  /// similarity in the combined score.
  double name_weight = 0.4;
  /// How many distinct values per column feed the value group.
  size_t max_values_per_column = 30;
  /// Pairs scoring below this are not reported.
  double min_score = 0.0;
  /// Sub-quadratic MatchLake (defaults to the AUTODC_ANN env switch):
  /// each column gets a centroid embedding (mean of its name + sampled
  /// value tokens), an HNSW index over the centroids proposes
  /// `ann_candidates` similar columns per column, and only those
  /// cross-table pairs are scored exactly. Approximate: a pair whose
  /// centroids are far apart but whose best-match value similarity is
  /// high can be missed; the exact O(C^2) sweep stays the default.
  bool use_ann = ann::AnnEnvEnabled();
  /// Lakes with fewer total columns than this always take the exact
  /// cross product.
  size_t ann_min_columns = 64;
  /// Neighbour columns retrieved per column in ANN mode.
  size_t ann_candidates = 8;
  /// Graph parameters for the centroid index (M / ef_* / quant).
  /// Defaults pick up AUTODC_ANN_M, AUTODC_ANN_EF_CONSTRUCTION,
  /// AUTODC_ANN_EF_SEARCH and AUTODC_EMB_QUANT; proposed pairs are
  /// always scored exactly afterwards, so a quantized index only
  /// affects candidate proposal.
  ann::HnswConfig ann_config = ann::ConfigFromEnv();
};

/// The embedding-based semantic matcher: scores every cross-table column
/// pair by combining coherent-group similarity of the column names and
/// of (samples of) the column values. Numeric columns participate via
/// their names only.
class SemanticColumnMatcher {
 public:
  SemanticColumnMatcher(const embedding::EmbeddingStore* words,
                        const SemanticMatcherConfig& config = {})
      : words_(words), config_(config) {}

  /// All column pairs across the two tables, scored, descending.
  std::vector<ColumnMatch> MatchColumns(const data::Table& a,
                                        const data::Table& b) const;

  /// All cross-table column pairs over a lake of tables.
  std::vector<ColumnMatch> MatchLake(
      const std::vector<const data::Table*>& tables) const;

  /// Score for one specific column pair.
  double ScorePair(const data::Table& a, size_t col_a, const data::Table& b,
                   size_t col_b) const;

 private:
  const embedding::EmbeddingStore* words_;
  SemanticMatcherConfig config_;
};

/// The syntactic baseline the paper says produces spurious results: ranks
/// column pairs purely by name string similarity (Jaro-Winkler over the
/// raw names plus token Jaccard).
std::vector<ColumnMatch> SyntacticColumnMatches(
    const std::vector<const data::Table*>& tables);

}  // namespace autodc::discovery

#endif  // AUTODC_DISCOVERY_SEMANTIC_MATCHER_H_
