#ifndef AUTODC_DISCOVERY_EKG_H_
#define AUTODC_DISCOVERY_EKG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/discovery/semantic_matcher.h"

namespace autodc::discovery {

/// The Enterprise Knowledge Graph of Sec. 5.1: nodes are data elements
/// (tables, columns) and edges carry relationships (column containment,
/// semantic links surfaced by the matcher). Analysts navigate it to find
/// thematically related datasets.
class EnterpriseKnowledgeGraph {
 public:
  enum class NodeKind { kTable = 0, kColumn };
  struct Node {
    NodeKind kind = NodeKind::kTable;
    std::string table;
    std::string column;  ///< empty for table nodes

    std::string Label() const {
      return column.empty() ? table : table + "." + column;
    }
  };
  enum class EdgeKind { kHasColumn = 0, kSemanticLink };
  struct Edge {
    size_t from = 0;
    size_t to = 0;
    EdgeKind kind = EdgeKind::kHasColumn;
    double weight = 1.0;
  };

  /// Builds the graph: a node per table and per column, kHasColumn edges
  /// within tables, and kSemanticLink edges for every column match at or
  /// above `link_threshold`.
  static EnterpriseKnowledgeGraph Build(
      const std::vector<const data::Table*>& tables,
      const std::vector<ColumnMatch>& matches, double link_threshold);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const Node& node(size_t i) const { return nodes_[i]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Node id of a table or column, or -1.
  int64_t FindTable(const std::string& table) const;
  int64_t FindColumn(const std::string& table,
                     const std::string& column) const;

  /// Tables connected to `table` through at least one semantic column
  /// link, with the strongest link weight. Sorted descending.
  std::vector<std::pair<std::string, double>> RelatedTables(
      const std::string& table) const;

  /// True if the two columns are semantically linked in the graph.
  bool AreLinked(const std::string& table_a, const std::string& column_a,
                 const std::string& table_b,
                 const std::string& column_b) const;

 private:
  size_t AddNode(Node node);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::vector<size_t>> adjacency_;  ///< edge ids per node
};

}  // namespace autodc::discovery

#endif  // AUTODC_DISCOVERY_EKG_H_
