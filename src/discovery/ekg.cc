#include "src/discovery/ekg.h"

#include <algorithm>

namespace autodc::discovery {

namespace {
std::string Key(const std::string& table, const std::string& column) {
  return table + "\x01" + column;
}
}  // namespace

size_t EnterpriseKnowledgeGraph::AddNode(Node node) {
  std::string key = Key(node.table, node.column);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  size_t id = nodes_.size();
  index_.emplace(std::move(key), id);
  nodes_.push_back(std::move(node));
  adjacency_.emplace_back();
  return id;
}

EnterpriseKnowledgeGraph EnterpriseKnowledgeGraph::Build(
    const std::vector<const data::Table*>& tables,
    const std::vector<ColumnMatch>& matches, double link_threshold) {
  EnterpriseKnowledgeGraph g;
  for (const data::Table* t : tables) {
    size_t tid = g.AddNode(Node{NodeKind::kTable, t->name(), ""});
    for (const data::Column& c : t->schema().columns()) {
      size_t cid = g.AddNode(Node{NodeKind::kColumn, t->name(), c.name});
      size_t eid = g.edges_.size();
      g.edges_.push_back(Edge{tid, cid, EdgeKind::kHasColumn, 1.0});
      g.adjacency_[tid].push_back(eid);
      g.adjacency_[cid].push_back(eid);
    }
  }
  for (const ColumnMatch& m : matches) {
    if (m.score < link_threshold) continue;
    int64_t a = g.FindColumn(m.table_a, m.column_a);
    int64_t b = g.FindColumn(m.table_b, m.column_b);
    if (a < 0 || b < 0) continue;
    size_t eid = g.edges_.size();
    g.edges_.push_back(Edge{static_cast<size_t>(a), static_cast<size_t>(b),
                            EdgeKind::kSemanticLink, m.score});
    g.adjacency_[static_cast<size_t>(a)].push_back(eid);
    g.adjacency_[static_cast<size_t>(b)].push_back(eid);
  }
  return g;
}

int64_t EnterpriseKnowledgeGraph::FindTable(const std::string& table) const {
  auto it = index_.find(Key(table, ""));
  if (it == index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

int64_t EnterpriseKnowledgeGraph::FindColumn(
    const std::string& table, const std::string& column) const {
  auto it = index_.find(Key(table, column));
  if (it == index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

std::vector<std::pair<std::string, double>>
EnterpriseKnowledgeGraph::RelatedTables(const std::string& table) const {
  std::unordered_map<std::string, double> best;
  for (const Edge& e : edges_) {
    if (e.kind != EdgeKind::kSemanticLink) continue;
    const Node& a = nodes_[e.from];
    const Node& b = nodes_[e.to];
    if (a.table == table && b.table != table) {
      double& w = best[b.table];
      w = std::max(w, e.weight);
    } else if (b.table == table && a.table != table) {
      double& w = best[a.table];
      w = std::max(w, e.weight);
    }
  }
  std::vector<std::pair<std::string, double>> out(best.begin(), best.end());
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return x.second > y.second;
  });
  return out;
}

bool EnterpriseKnowledgeGraph::AreLinked(const std::string& table_a,
                                         const std::string& column_a,
                                         const std::string& table_b,
                                         const std::string& column_b) const {
  int64_t a = FindColumn(table_a, column_a);
  int64_t b = FindColumn(table_b, column_b);
  if (a < 0 || b < 0) return false;
  for (const Edge& e : edges_) {
    if (e.kind != EdgeKind::kSemanticLink) continue;
    if ((e.from == static_cast<size_t>(a) && e.to == static_cast<size_t>(b)) ||
        (e.from == static_cast<size_t>(b) && e.to == static_cast<size_t>(a))) {
      return true;
    }
  }
  return false;
}

}  // namespace autodc::discovery
