#include "src/discovery/search.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/text/similarity.h"
#include "src/text/tokenizer.h"

namespace autodc::discovery {

namespace {
std::vector<std::string> TableTokens(const data::Table& t) {
  std::vector<std::string> tokens = text::Tokenize(t.name());
  for (const data::Column& c : t.schema().columns()) {
    for (std::string& tok : text::Tokenize(c.name)) {
      tokens.push_back(std::move(tok));
    }
  }
  for (size_t c = 0; c < t.num_columns(); ++c) {
    size_t taken = 0;
    for (const data::Value& v : t.DistinctColumnValues(c)) {
      for (std::string& tok : text::Tokenize(v.ToString())) {
        tokens.push_back(std::move(tok));
        if (++taken >= 50) break;
      }
      if (taken >= 50) break;
    }
  }
  return tokens;
}
}  // namespace

TableSearchEngine::TableSearchEngine(const embedding::EmbeddingStore* words,
                                     const SearchConfig& config)
    : words_(words), config_(config) {}

void TableSearchEngine::Index(const std::vector<const data::Table*>& tables) {
  table_names_.clear();
  table_vectors_.clear();
  table_norms_sq_.clear();
  table_tfidf_.clear();
  std::vector<std::vector<std::string>> docs;
  for (const data::Table* t : tables) {
    table_names_.push_back(t->name());
    docs.push_back(TableTokens(*t));
  }
  tfidf_ = text::TfIdf();
  tfidf_.Fit(docs);
  for (const auto& doc : docs) {
    table_vectors_.push_back(words_->AverageOf(doc));
    const std::vector<float>& v = table_vectors_.back();
    table_norms_sq_.push_back(nn::kernels::SumSqF32(v.data(), v.size()));
    table_tfidf_.push_back(tfidf_.Transform(doc));
  }
  ann_.reset();
  size_t dim = words_->dim();
  if (config_.use_ann && dim > 0 &&
      table_vectors_.size() >= config_.ann_min_tables) {
    AUTODC_OBS_SPAN(index_span, "search.ann_index");
    ann_ = std::make_unique<ann::HnswIndex>(dim, config_.ann_config);
    std::vector<const float*> rows;
    rows.reserve(table_vectors_.size());
    // Odd-width vectors (dim-0 store rows, schema glitches) get a zero
    // row so index ids stay aligned with table positions; they score 0
    // everywhere, matching the exact path's mismatch handling.
    std::vector<float> zero(dim, 0.0f);
    for (const std::vector<float>& v : table_vectors_) {
      rows.push_back(v.size() == dim ? v.data() : zero.data());
    }
    ann_->Build(rows);
  }
}

std::vector<SearchResult> TableSearchEngine::Search(
    const std::string& query) const {
  std::vector<std::string> qtokens = text::Tokenize(query);
  std::vector<float> qvec = words_->AverageOf(qtokens);
  auto qtfidf = tfidf_.Transform(qtokens);
  double qnorm_sq = nn::kernels::SumSqF32(qvec.data(), qvec.size());

  auto score_table = [&](size_t i) {
    // cosine(q, t) with |q|^2 hoisted out of the loop and |t|^2 cached
    // at Index time; identical accumulation order to CosineSimilarity.
    double neural = 0.0;
    if (qnorm_sq > 0.0 && table_norms_sq_[i] > 0.0 &&
        qvec.size() == table_vectors_[i].size()) {
      double dot = nn::kernels::DotF32D(qvec.data(), table_vectors_[i].data(),
                                        qvec.size());
      neural = dot / (std::sqrt(qnorm_sq) * std::sqrt(table_norms_sq_[i]));
    }
    double lexical = text::TfIdf::SparseCosine(qtfidf, table_tfidf_[i]);
    return SearchResult{table_names_[i],
                        config_.neural_weight * neural +
                            (1.0 - config_.neural_weight) * lexical};
  };

  std::vector<SearchResult> out;
  if (ann_ && qnorm_sq > 0.0 && qvec.size() == ann_->dim()) {
    // Sub-linear path: neural top candidates from the graph, lexical
    // scored only on those. Over-fetch so a table whose hybrid score is
    // carried by the lexical term still has a seat at the table.
    size_t fetch = std::min(table_names_.size(),
                            std::max(config_.top_k * config_.ann_overfetch,
                                     config_.top_k));
    AUTODC_OBS_COUNT("search.ann_queries", 1);
    for (const ann::ScoredId& hit : ann_->Search(qvec.data(), fetch)) {
      out.push_back(score_table(hit.id));
    }
  } else {
    for (size_t i = 0; i < table_names_.size(); ++i) {
      out.push_back(score_table(i));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.score > b.score;
            });
  if (out.size() > config_.top_k) out.resize(config_.top_k);
  return out;
}

std::vector<SearchResult> TableSearchEngine::SearchWithRelated(
    const std::string& query, const EnterpriseKnowledgeGraph& ekg,
    double related_discount) const {
  std::vector<SearchResult> direct = Search(query);
  std::unordered_map<std::string, double> scores;
  for (const SearchResult& r : direct) scores[r.table] = r.score;
  for (const SearchResult& r : direct) {
    for (const auto& [related, weight] : ekg.RelatedTables(r.table)) {
      double bonus = r.score * weight * related_discount;
      double& cur = scores[related];
      cur = std::max(cur, bonus);
    }
  }
  std::vector<SearchResult> out;
  for (const auto& [table, score] : scores) {
    out.push_back(SearchResult{table, score});
  }
  std::sort(out.begin(), out.end(),
            [](const SearchResult& a, const SearchResult& b) {
              return a.score > b.score;
            });
  return out;
}

}  // namespace autodc::discovery
