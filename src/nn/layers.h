#ifndef AUTODC_NN_LAYERS_H_
#define AUTODC_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/autograd.h"

namespace autodc::nn {

/// Dense batch of row vectors used by trainers throughout the library.
using Batch = std::vector<std::vector<float>>;

/// Base class for trainable components. A module owns parameters (leaf
/// Variables with requires_grad) and maps an input Variable to an output
/// Variable, extending the tape.
class Module {
 public:
  virtual ~Module() = default;

  /// Forward pass. `train` toggles train-time behavior (dropout).
  virtual VarPtr Forward(const VarPtr& input, bool train) = 0;

  /// All trainable parameters, in a stable order (used by optimizers and
  /// serialization).
  virtual std::vector<VarPtr> Parameters() const = 0;

  /// Total scalar parameter count.
  size_t NumParameters() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();
};

/// Fully-connected layer: y = x W^T + b for x {n, in} -> {n, out}.
class Linear : public Module {
 public:
  Linear(size_t in_features, size_t out_features, Rng* rng,
         bool bias = true);

  VarPtr Forward(const VarPtr& input, bool train) override;
  std::vector<VarPtr> Parameters() const override;

  size_t in_features() const { return in_features_; }
  size_t out_features() const { return out_features_; }
  const VarPtr& weight() const { return weight_; }
  const VarPtr& bias() const { return bias_; }

 private:
  size_t in_features_;
  size_t out_features_;
  VarPtr weight_;  ///< {in, out} so forward is a plain MatMul
  VarPtr bias_;    ///< {out} or null
};

/// Parameter-free activation layers so architectures compose uniformly.
enum class Activation { kIdentity, kSigmoid, kTanh, kRelu, kLeakyRelu };

class ActivationLayer : public Module {
 public:
  explicit ActivationLayer(Activation kind) : kind_(kind) {}
  VarPtr Forward(const VarPtr& input, bool train) override;
  std::vector<VarPtr> Parameters() const override { return {}; }

 private:
  Activation kind_;
};

/// Inverted dropout layer (active only in train mode).
class Dropout : public Module {
 public:
  Dropout(float p, Rng* rng) : p_(p), rng_(rng) {}
  VarPtr Forward(const VarPtr& input, bool train) override {
    return DropoutOp(input, p_, train, rng_);
  }
  std::vector<VarPtr> Parameters() const override { return {}; }

 private:
  float p_;
  Rng* rng_;
};

/// Composition of modules applied in order. This is the "fully-connected
/// network" builder of Figure 2(b): alternate Linear and ActivationLayer.
class Sequential : public Module {
 public:
  Sequential() = default;

  /// Appends a module; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Module> m);

  /// Convenience: builds an MLP with the given layer widths and a uniform
  /// hidden activation; the output layer is linear (no activation).
  static std::unique_ptr<Sequential> Mlp(const std::vector<size_t>& widths,
                                         Activation hidden, Rng* rng);

  VarPtr Forward(const VarPtr& input, bool train) override;
  std::vector<VarPtr> Parameters() const override;

  size_t num_modules() const { return modules_.size(); }
  Module* module(size_t i) { return modules_[i].get(); }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

/// Token-id -> dense-vector lookup table (the distributed-representation
/// primitive of Sec. 2.2). Forward input is ignored; use Lookup().
class EmbeddingTable {
 public:
  EmbeddingTable(size_t vocab_size, size_t dim, Rng* rng);

  /// Rows for `ids` as a {n, dim} Variable on the tape (gradients scatter
  /// back into the table).
  VarPtr Lookup(const std::vector<size_t>& ids) const;

  size_t vocab_size() const { return table_->value.rows(); }
  size_t dim() const { return table_->value.cols(); }
  const VarPtr& table() const { return table_; }
  std::vector<VarPtr> Parameters() const { return {table_}; }

 private:
  VarPtr table_;
};

/// 1-D convolution over a {time, channels} input (Figure 2(c)):
/// `filters` kernels of width `kernel`, stride 1, valid padding.
/// Output is {time - kernel + 1, filters}.
class Conv1D : public Module {
 public:
  Conv1D(size_t in_channels, size_t filters, size_t kernel, Rng* rng);

  VarPtr Forward(const VarPtr& input, bool train) override;
  std::vector<VarPtr> Parameters() const override;

  size_t kernel() const { return kernel_; }

 private:
  size_t in_channels_;
  size_t filters_;
  size_t kernel_;
  VarPtr weight_;  ///< {kernel * in_channels, filters}
  VarPtr bias_;    ///< {filters}
};

/// Max pooling over the time axis of a {time, channels} input, collapsing
/// to a rank-1 {channels} vector (global max pool).
VarPtr GlobalMaxPoolRows(const VarPtr& input);

}  // namespace autodc::nn

#endif  // AUTODC_NN_LAYERS_H_
