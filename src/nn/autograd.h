#ifndef AUTODC_NN_AUTOGRAD_H_
#define AUTODC_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/tensor.h"

namespace autodc::nn {

class Variable;
/// Shared handle to a node of the dynamic computation graph.
using VarPtr = std::shared_ptr<Variable>;

/// A node in the reverse-mode autodiff tape: a value, its gradient, and a
/// closure that propagates the gradient to its parents. Graphs are built
/// dynamically by the op functions below (define-by-run), so RNNs unroll
/// naturally.
class Variable {
 public:
  explicit Variable(Tensor value, bool requires_grad = false)
      : value(std::move(value)), requires_grad(requires_grad) {}

  Tensor value;
  Tensor grad;  ///< allocated on demand; same shape as value
  bool requires_grad = false;
  std::vector<VarPtr> parents;
  /// Propagates this->grad into parents' grads. Null for leaves.
  std::function<void()> backward_fn;

  /// Allocates (zeroed) grad storage if absent.
  void EnsureGrad() {
    if (grad.size() != value.size()) grad = Tensor::Zeros(value.shape());
  }
  void ZeroGrad() {
    if (grad.size() == value.size()) grad.Fill(0.0f);
  }
};

/// Leaf that does not require gradients (inputs, targets).
VarPtr Constant(Tensor value);
/// Leaf that accumulates gradients (trainable parameter).
VarPtr Parameter(Tensor value);

/// Runs reverse-mode backprop from `root`, which must be a scalar
/// (size()==1). Seeds d(root)/d(root)=1 and accumulates into every
/// reachable parameter's grad.
void Backward(const VarPtr& root);

// ---- Elementwise and linear-algebra ops -------------------------------
// All ops allocate a fresh output Variable wired into the tape. Shape
// preconditions are asserted; graph construction code is expected to pass
// conforming shapes.

VarPtr Add(const VarPtr& a, const VarPtr& b);        ///< same shape
VarPtr Sub(const VarPtr& a, const VarPtr& b);        ///< same shape
VarPtr Mul(const VarPtr& a, const VarPtr& b);        ///< elementwise, same shape
VarPtr Scale(const VarPtr& a, float s);
VarPtr AddScalar(const VarPtr& a, float s);
/// Matrix product: a {n,m} x b {m,k} -> {n,k}.
VarPtr MatMulOp(const VarPtr& a, const VarPtr& b);
/// Adds rank-1 bias {k} to each row of a {n,k} matrix.
VarPtr AddBias(const VarPtr& a, const VarPtr& bias);

VarPtr Sigmoid(const VarPtr& a);
VarPtr Tanh(const VarPtr& a);
VarPtr Relu(const VarPtr& a);
VarPtr LeakyRelu(const VarPtr& a, float alpha = 0.01f);
VarPtr Exp(const VarPtr& a);
/// Natural log of max(a, eps) for numerical safety.
VarPtr Log(const VarPtr& a, float eps = 1e-8f);
VarPtr Square(const VarPtr& a);

/// Scalar sum of all elements.
VarPtr Sum(const VarPtr& a);
/// Scalar mean of all elements.
VarPtr Mean(const VarPtr& a);
/// Concatenates rank-1 vectors into one rank-1 vector.
VarPtr Concat(const std::vector<VarPtr>& parts);
/// Gathers rows of a {v,d} embedding matrix by index -> {n,d}. Gradient is
/// scattered back into the matrix rows (sparse update pattern).
VarPtr Rows(const VarPtr& matrix, const std::vector<size_t>& indices);
/// Mean over rows of a {n,d} matrix -> {d}.
VarPtr MeanRows(const VarPtr& a);
/// Inverted dropout: active only when `train`; scales kept units by 1/(1-p).
VarPtr DropoutOp(const VarPtr& a, float p, bool train, Rng* rng);
/// Row-wise softmax of a {n,k} matrix (or rank-1 {k}).
VarPtr SoftmaxRows(const VarPtr& a);

// ---- Loss ops (scalar outputs) ----------------------------------------

/// Mean squared error between prediction and a constant target.
VarPtr MseLoss(const VarPtr& pred, const Tensor& target);
/// Mean binary cross-entropy of logits against {0,1} targets
/// (numerically stable log-sum-exp form).
VarPtr BceWithLogitsLoss(const VarPtr& logits, const Tensor& targets);
/// Mean softmax cross-entropy of row logits {n,k} against class labels.
VarPtr SoftmaxCrossEntropyLoss(const VarPtr& logits,
                               const std::vector<size_t>& labels);

}  // namespace autodc::nn

#endif  // AUTODC_NN_AUTOGRAD_H_
