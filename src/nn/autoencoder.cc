#include "src/nn/autoencoder.h"

#include <cassert>
#include <cmath>

namespace autodc::nn {

namespace {
Tensor BatchToTensor(const Batch& data, const std::vector<size_t>& idx) {
  size_t d = data.empty() ? 0 : data[0].size();
  Tensor t({idx.size(), d});
  for (size_t i = 0; i < idx.size(); ++i) {
    for (size_t j = 0; j < d; ++j) t.at(i, j) = data[idx[i]][j];
  }
  return t;
}

VarPtr ApplyActivation(const VarPtr& x, Activation a) {
  switch (a) {
    case Activation::kIdentity: return x;
    case Activation::kSigmoid: return Sigmoid(x);
    case Activation::kTanh: return Tanh(x);
    case Activation::kRelu: return Relu(x);
    case Activation::kLeakyRelu: return LeakyRelu(x);
  }
  return x;
}

// Mean absolute value of all elements (L1 / n) — the sparsity penalty.
VarPtr MeanAbs(const VarPtr& x) {
  // |x| = x * sign(x); implement via relu(x) + relu(-x).
  return Mean(Add(Relu(x), Relu(Scale(x, -1.0f))));
}
}  // namespace

Autoencoder::Autoencoder(AutoencoderKind kind, const AutoencoderConfig& config,
                         Rng* rng)
    : kind_(kind), config_(config), rng_(rng) {
  size_t in = config.input_dim;
  size_t hid = config.hidden_dim;
  assert(in > 0 && hid > 0);
  enc_w_ = nn::Parameter(Tensor::Xavier(in, hid, rng));
  enc_b_ = nn::Parameter(Tensor::Zeros({hid}));
  dec_w_ = nn::Parameter(Tensor::Xavier(hid, in, rng));
  dec_b_ = nn::Parameter(Tensor::Zeros({in}));
  if (kind_ == AutoencoderKind::kVariational) {
    mu_w_ = nn::Parameter(Tensor::Xavier(hid, hid, rng));
    mu_b_ = nn::Parameter(Tensor::Zeros({hid}));
    logvar_w_ = nn::Parameter(Tensor::Xavier(hid, hid, rng));
    logvar_b_ = nn::Parameter(Tensor::Zeros({hid}));
  }
  optimizer_ = std::make_unique<Adam>(Parameters(), config.learning_rate);
}

std::vector<VarPtr> Autoencoder::Parameters() const {
  std::vector<VarPtr> out = {enc_w_, enc_b_, dec_w_, dec_b_};
  if (kind_ == AutoencoderKind::kVariational) {
    out.push_back(mu_w_);
    out.push_back(mu_b_);
    out.push_back(logvar_w_);
    out.push_back(logvar_b_);
  }
  return out;
}

VarPtr Autoencoder::BuildLoss(const Tensor& input, const Tensor& target,
                              bool train) {
  VarPtr x = Constant(input);
  VarPtr code = ApplyActivation(AddBias(MatMulOp(x, enc_w_), enc_b_),
                                config_.activation);
  VarPtr loss;
  if (kind_ == AutoencoderKind::kVariational) {
    VarPtr mu = AddBias(MatMulOp(code, mu_w_), mu_b_);
    VarPtr logvar = AddBias(MatMulOp(code, logvar_w_), logvar_b_);
    VarPtr z = mu;
    if (train) {
      // Reparameterization: z = mu + exp(logvar/2) * eps.
      Tensor eps(mu->value.shape());
      for (size_t i = 0; i < eps.size(); ++i) {
        eps[i] = static_cast<float>(rng_->Normal());
      }
      z = Add(mu, Mul(Exp(Scale(logvar, 0.5f)), Constant(std::move(eps))));
    }
    VarPtr recon = AddBias(MatMulOp(z, dec_w_), dec_b_);
    VarPtr rec_loss = MseLoss(recon, target);
    // KL(q||N(0,1)) = -0.5 mean(1 + logvar - mu^2 - exp(logvar)).
    VarPtr kl = Scale(
        Mean(Sub(Add(AddScalar(logvar, 1.0f), Scale(Square(mu), -1.0f)),
                 Exp(logvar))),
        -0.5f);
    loss = Add(rec_loss, Scale(kl, config_.kl_weight));
  } else {
    VarPtr recon = AddBias(MatMulOp(code, dec_w_), dec_b_);
    loss = MseLoss(recon, target);
    if (kind_ == AutoencoderKind::kSparse) {
      loss = Add(loss, Scale(MeanAbs(code), config_.sparsity_weight));
    }
  }
  return loss;
}

double Autoencoder::TrainEpoch(const Batch& data, size_t batch_size) {
  return Train(data, 1, batch_size);
}

double Autoencoder::Train(const Batch& data, size_t epochs,
                          size_t batch_size) {
  TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch_size;
  options.grad_clip = 5.0f;
  return Train(data, options).final_train_loss;
}

TrainResult Autoencoder::Train(const Batch& data,
                               const TrainOptions& options) {
  Trainer trainer(options);
  return trainer.Fit(
      data.size(), rng_, optimizer_.get(),
      [&](const std::vector<size_t>& idx, bool train) {
        Tensor target = BatchToTensor(data, idx);
        Tensor input = target;
        if (train && kind_ == AutoencoderKind::kDenoising) {
          // Stochastically corrupt the input; reconstruct the clean
          // original. Validation evaluates uncorrupted (deterministic).
          for (size_t i = 0; i < input.size(); ++i) {
            if (rng_->Bernoulli(config_.corruption)) input[i] = 0.0f;
          }
        }
        return BuildLoss(input, target, train);
      });
}

std::vector<float> Autoencoder::Encode(const std::vector<float>& x) const {
  Tensor input({1, x.size()}, x);
  VarPtr code = ApplyActivation(
      AddBias(MatMulOp(Constant(input), enc_w_), enc_b_),
      config_.activation);
  if (kind_ == AutoencoderKind::kVariational) {
    code = AddBias(MatMulOp(code, mu_w_), mu_b_);
  }
  return code->value.vec();
}

std::vector<float> Autoencoder::Reconstruct(const std::vector<float>& x) const {
  std::vector<float> code = Encode(x);
  Tensor c({1, code.size()}, code);
  VarPtr recon = AddBias(MatMulOp(Constant(c), dec_w_), dec_b_);
  return recon->value.vec();
}

double Autoencoder::ReconstructionError(const std::vector<float>& x) const {
  std::vector<float> r = Reconstruct(x);
  double s = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double d = static_cast<double>(r[i]) - x[i];
    s += d * d;
  }
  return x.empty() ? 0.0 : s / static_cast<double>(x.size());
}

}  // namespace autodc::nn
