#include "src/nn/layers.h"

#include <cassert>

namespace autodc::nn {

size_t Module::NumParameters() const {
  size_t n = 0;
  for (const VarPtr& p : Parameters()) n += p->value.size();
  return n;
}

void Module::ZeroGrad() {
  for (const VarPtr& p : Parameters()) p->ZeroGrad();
}

Linear::Linear(size_t in_features, size_t out_features, Rng* rng, bool bias)
    : in_features_(in_features), out_features_(out_features) {
  // Stored as {in, out} so forward is input {n,in} x W {in,out}.
  weight_ = nn::Parameter(Tensor::Xavier(in_features, out_features, rng));
  if (bias) bias_ = nn::Parameter(Tensor::Zeros({out_features}));
}

VarPtr Linear::Forward(const VarPtr& input, bool /*train*/) {
  // Accept rank-1 input as a single-row matrix.
  VarPtr x = input;
  if (x->value.rank() == 1) {
    // Reshape by wrapping: create a rank-2 alias node via Rows-free path.
    // Cheap approach: treat as {1, n} matrix with shared data copy.
    Tensor m({1, x->value.size()}, x->value.vec());
    VarPtr wrapped = std::make_shared<Variable>(std::move(m));
    wrapped->requires_grad = x->requires_grad;
    if (wrapped->requires_grad) {
      wrapped->parents = {x};
      Variable* w = wrapped.get();
      Variable* px = x.get();
      wrapped->backward_fn = [w, px]() { Axpy(w->grad, 1.0f, &px->grad); };
    }
    x = wrapped;
  }
  assert(x->value.cols() == in_features_);
  VarPtr out = MatMulOp(x, weight_);
  if (bias_) out = AddBias(out, bias_);
  return out;
}

std::vector<VarPtr> Linear::Parameters() const {
  if (bias_) return {weight_, bias_};
  return {weight_};
}

VarPtr ActivationLayer::Forward(const VarPtr& input, bool /*train*/) {
  switch (kind_) {
    case Activation::kIdentity: return input;
    case Activation::kSigmoid: return Sigmoid(input);
    case Activation::kTanh: return Tanh(input);
    case Activation::kRelu: return Relu(input);
    case Activation::kLeakyRelu: return LeakyRelu(input);
  }
  return input;
}

Sequential& Sequential::Add(std::unique_ptr<Module> m) {
  modules_.push_back(std::move(m));
  return *this;
}

std::unique_ptr<Sequential> Sequential::Mlp(const std::vector<size_t>& widths,
                                            Activation hidden, Rng* rng) {
  auto seq = std::make_unique<Sequential>();
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    seq->Add(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    if (i + 2 < widths.size()) {
      seq->Add(std::make_unique<ActivationLayer>(hidden));
    }
  }
  return seq;
}

VarPtr Sequential::Forward(const VarPtr& input, bool train) {
  VarPtr x = input;
  for (auto& m : modules_) x = m->Forward(x, train);
  return x;
}

std::vector<VarPtr> Sequential::Parameters() const {
  std::vector<VarPtr> out;
  for (const auto& m : modules_) {
    for (const VarPtr& p : m->Parameters()) out.push_back(p);
  }
  return out;
}

EmbeddingTable::EmbeddingTable(size_t vocab_size, size_t dim, Rng* rng) {
  table_ = nn::Parameter(
      Tensor::RandomUniform({vocab_size, dim}, 0.5f / dim, rng));
}

VarPtr EmbeddingTable::Lookup(const std::vector<size_t>& ids) const {
  return Rows(table_, ids);
}

Conv1D::Conv1D(size_t in_channels, size_t filters, size_t kernel, Rng* rng)
    : in_channels_(in_channels), filters_(filters), kernel_(kernel) {
  weight_ = nn::Parameter(Tensor::Xavier(kernel * in_channels, filters, rng));
  bias_ = nn::Parameter(Tensor::Zeros({filters}));
}

VarPtr Conv1D::Forward(const VarPtr& input, bool /*train*/) {
  // input: {time, in_channels}. Build the im2col matrix {time-k+1,
  // k*in_channels} as a tape op, then reuse MatMul + bias.
  size_t time = input->value.rows();
  size_t c = input->value.cols();
  assert(c == in_channels_);
  assert(time >= kernel_);
  size_t out_t = time - kernel_ + 1;
  Tensor cols({out_t, kernel_ * c});
  for (size_t t = 0; t < out_t; ++t) {
    for (size_t k = 0; k < kernel_; ++k) {
      for (size_t j = 0; j < c; ++j) {
        cols.at(t, k * c + j) = input->value.at(t + k, j);
      }
    }
  }
  auto im2col = std::make_shared<Variable>(std::move(cols));
  im2col->requires_grad = input->requires_grad;
  if (im2col->requires_grad) {
    im2col->parents = {input};
    Variable* r = im2col.get();
    Variable* pin = input.get();
    size_t kernel = kernel_;
    im2col->backward_fn = [r, pin, kernel, c, out_t]() {
      for (size_t t = 0; t < out_t; ++t) {
        for (size_t k = 0; k < kernel; ++k) {
          for (size_t j = 0; j < c; ++j) {
            pin->grad.at(t + k, j) += r->grad.at(t, k * c + j);
          }
        }
      }
    };
  }
  return AddBias(MatMulOp(im2col, weight_), bias_);
}

std::vector<VarPtr> Conv1D::Parameters() const { return {weight_, bias_}; }

VarPtr GlobalMaxPoolRows(const VarPtr& input) {
  size_t n = input->value.rows();
  size_t d = input->value.cols();
  Tensor out({d});
  std::vector<size_t> argmax(d, 0);
  for (size_t j = 0; j < d; ++j) {
    float best = input->value.at(0, j);
    for (size_t i = 1; i < n; ++i) {
      if (input->value.at(i, j) > best) {
        best = input->value.at(i, j);
        argmax[j] = i;
      }
    }
    out[j] = best;
  }
  auto result = std::make_shared<Variable>(std::move(out));
  result->requires_grad = input->requires_grad;
  if (result->requires_grad) {
    result->parents = {input};
    Variable* r = result.get();
    Variable* pin = input.get();
    result->backward_fn = [r, pin, argmax, d]() {
      for (size_t j = 0; j < d; ++j) {
        pin->grad.at(argmax[j], j) += r->grad[j];
      }
    };
  }
  return result;
}

}  // namespace autodc::nn
