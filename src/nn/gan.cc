#include "src/nn/gan.h"

#include <cassert>

#include "src/nn/tensor_pool.h"

namespace autodc::nn {

Gan::Gan(const GanConfig& config, Rng* rng) : config_(config), rng_(rng) {
  assert(config.data_dim > 0);
  generator_ = Sequential::Mlp(
      {config.latent_dim, config.hidden_dim, config.data_dim},
      Activation::kLeakyRelu, rng);
  discriminator_ = Sequential::Mlp({config.data_dim, config.hidden_dim, 1},
                                   Activation::kLeakyRelu, rng);
  g_opt_ = std::make_unique<Adam>(generator_->Parameters(),
                                  config.lr_generator);
  d_opt_ = std::make_unique<Adam>(discriminator_->Parameters(),
                                  config.lr_discriminator);
}

Tensor Gan::SampleNoise(size_t n) {
  Tensor z({n, config_.latent_dim});
  for (size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<float>(rng_->Normal());
  }
  return z;
}

VarPtr Gan::GeneratorForward(const Tensor& noise) const {
  return generator_->Forward(Constant(noise), /*train=*/true);
}

VarPtr Gan::DiscriminatorForward(const VarPtr& rows) const {
  return discriminator_->Forward(rows, /*train=*/true);
}

Gan::StepStats Gan::TrainStep(const Batch& real_batch) {
  StepStats stats;
  size_t n = real_batch.size();
  if (n == 0) return stats;
  // Both G and D graphs of this step allocate from the tensor pool.
  WorkspaceScope workspace;

  // ---- Discriminator step: real rows labelled 1, fake rows labelled 0.
  Tensor real({n, config_.data_dim});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < config_.data_dim; ++j) {
      real.at(i, j) = real_batch[i][j];
    }
  }
  VarPtr fake = GeneratorForward(SampleNoise(n));
  // Detach the generator from the discriminator step: copy fake values
  // into a constant so D's loss does not backprop into G.
  VarPtr fake_detached = Constant(fake->value);

  VarPtr d_real = DiscriminatorForward(Constant(real));
  VarPtr d_fake = DiscriminatorForward(fake_detached);
  VarPtr d_loss = Add(BceWithLogitsLoss(d_real, Tensor::Ones({n, 1})),
                      BceWithLogitsLoss(d_fake, Tensor::Zeros({n, 1})));
  stats.d_loss = d_loss->value[0];
  size_t correct = 0;
  for (size_t i = 0; i < n; ++i) {
    if (d_real->value.at(i, 0) > 0.0f) ++correct;
    if (d_fake->value.at(i, 0) <= 0.0f) ++correct;
  }
  stats.d_accuracy = static_cast<double>(correct) / (2.0 * n);
  Backward(d_loss);
  d_opt_->ClipGradients(5.0f);
  d_opt_->Step();

  // ---- Generator step: fresh fakes must be classified real.
  VarPtr fake2 = GeneratorForward(SampleNoise(n));
  VarPtr d_fake2 = DiscriminatorForward(fake2);
  VarPtr g_loss = BceWithLogitsLoss(d_fake2, Tensor::Ones({n, 1}));
  stats.g_loss = g_loss->value[0];
  Backward(g_loss);
  g_opt_->ClipGradients(5.0f);
  g_opt_->Step();
  // The generator step also deposited gradients in D; drop them so they
  // do not leak into D's next update.
  for (const VarPtr& p : discriminator_->Parameters()) p->ZeroGrad();

  return stats;
}

Gan::StepStats Gan::Train(const Batch& data, size_t epochs,
                          size_t batch_size) {
  last_step_stats_ = StepStats{};
  TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch_size;
  Train(data, options);
  return last_step_stats_;
}

TrainResult Gan::Train(const Batch& data, const TrainOptions& options) {
  Trainer trainer(options);
  std::vector<VarPtr> params = GeneratorParameters();
  for (const VarPtr& p : DiscriminatorParameters()) params.push_back(p);
  return trainer.FitSteps(
      data.size(), rng_, std::move(params),
      [&](const std::vector<size_t>& idx) {
        Batch batch;
        batch.reserve(idx.size());
        for (size_t i : idx) batch.push_back(data[i]);
        last_step_stats_ = TrainStep(batch);
        return last_step_stats_.d_loss + last_step_stats_.g_loss;
      });
}

Batch Gan::Generate(size_t n) {
  VarPtr fake = generator_->Forward(Constant(SampleNoise(n)), /*train=*/false);
  Batch out(n, std::vector<float>(config_.data_dim));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < config_.data_dim; ++j) {
      out[i][j] = fake->value.at(i, j);
    }
  }
  return out;
}

double Gan::DiscriminatorScore(const std::vector<float>& x) const {
  Tensor t({1, x.size()}, x);
  VarPtr logit = discriminator_->Forward(Constant(t), /*train=*/false);
  return 1.0 / (1.0 + std::exp(-logit->value[0]));
}

std::vector<VarPtr> Gan::GeneratorParameters() const {
  return generator_->Parameters();
}

std::vector<VarPtr> Gan::DiscriminatorParameters() const {
  return discriminator_->Parameters();
}

}  // namespace autodc::nn
