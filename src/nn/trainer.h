#ifndef AUTODC_NN_TRAINER_H_
#define AUTODC_NN_TRAINER_H_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/nn/autograd.h"
#include "src/nn/optimizer.h"

namespace autodc::nn {

/// Per-epoch telemetry delivered to TrainOptions::epoch_callback and
/// recorded in TrainResult::history. `val_loss` is NaN when no
/// validation split is configured.
struct EpochStats {
  size_t epoch = 0;  ///< 0-based
  double train_loss = 0.0;
  double val_loss = std::numeric_limits<double>::quiet_NaN();
  float lr = 0.0f;     ///< learning rate used this epoch (0 in step mode)
  double wall_ms = 0.0;
};
using EpochCallback = std::function<void(const EpochStats&)>;

/// Learning-rate schedule across epochs. kConstant never touches the
/// optimizer's rate (the seed-equivalent default); the decaying
/// schedules anneal from the optimizer's initial rate down to
/// `initial * lr_final_factor` over TrainOptions::epochs.
enum class LrSchedule { kConstant, kLinear, kCosine };

/// How the example order evolves across epochs. kFreshEachEpoch resets
/// to identity before every shuffle (classifiers, autoencoders, GAN);
/// kPersistent re-shuffles the previous epoch's order in place (the
/// DeepER per-pair SGD loop). Both consume identical RNG draws — the
/// distinction exists so refactored models reproduce their seed
/// behaviour bit-for-bit.
enum class ShuffleMode { kFreshEachEpoch, kPersistent };

/// Options for one Trainer::Fit run. The defaults reproduce the
/// pre-Trainer hand-rolled loops exactly: shuffled mini-batches, no
/// validation, no early stopping, no checkpoints, constant LR.
struct TrainOptions {
  size_t epochs = 1;
  size_t batch_size = 32;
  /// Elementwise gradient clip applied before every optimizer step;
  /// 0 disables clipping.
  float grad_clip = 0.0f;
  ShuffleMode shuffle = ShuffleMode::kFreshEachEpoch;

  LrSchedule lr_schedule = LrSchedule::kConstant;
  /// Final LR as a fraction of the initial LR for decaying schedules.
  float lr_final_factor = 0.0f;

  /// Fraction of examples held out for validation (0 disables). The
  /// split is drawn once, before the first epoch, from the same RNG
  /// that shuffles batches. Requires a loss callback (ignored in
  /// FitSteps mode).
  double validation_fraction = 0.0;
  /// Stop after this many epochs without improvement of the monitored
  /// loss (val loss when a split exists, else train loss). 0 disables.
  size_t early_stopping_patience = 0;
  /// Improvement smaller than this does not reset patience.
  double early_stopping_min_delta = 0.0;
  /// On early stop (or normal finish with early stopping enabled),
  /// restore the parameters of the best monitored epoch.
  bool restore_best_weights = true;

  /// Write a checkpoint of the trained parameters to `checkpoint_path`
  /// every `checkpoint_every` epochs (0 disables). Failures are
  /// recorded in TrainResult::checkpoint_status; training continues.
  size_t checkpoint_every = 0;
  std::string checkpoint_path;

  EpochCallback epoch_callback;
};

/// Outcome of a Fit run.
struct TrainResult {
  size_t epochs_run = 0;
  double final_train_loss = 0.0;
  /// Best monitored loss seen (val loss when a split exists, else train
  /// loss); +inf when early stopping was disabled.
  double best_loss = std::numeric_limits<double>::infinity();
  size_t best_epoch = 0;
  bool stopped_early = false;
  Status checkpoint_status = Status::OK();
  std::vector<EpochStats> history;
  /// Human-readable notes about configuration adjustments the Trainer
  /// made (e.g. a validation fraction that rounded to zero examples and
  /// was clamped, or a split disabled because the dataset is too small).
  /// Empty on a fully clean run.
  std::vector<std::string> diagnostics;
};

/// The shared training runtime (Sec. 6.1: DC models are "light-weight
/// ... trained in minutes even on a CPU" and retrained constantly —
/// which demands one observable, restartable loop instead of six
/// hand-rolled ones). A Trainer owns no model state: callers inject an
/// optimizer (or step callback), a batch-loss builder, and an Rng; the
/// Trainer supplies batching, shuffling, validation, early stopping,
/// LR scheduling, checkpointing, and per-epoch telemetry.
///
/// Determinism contract: with validation, early stopping, and
/// checkpointing disabled, a Fit run draws from `rng` exactly the
/// Shuffle calls of the seed loops, in the same order, so results are
/// bit-identical to the pre-Trainer implementations under the same
/// kernel dispatch.
class Trainer {
 public:
  /// Builds the tape loss (a scalar Variable) for the given example
  /// indices. `train` is false for validation evaluation, which must
  /// be deterministic (no dropout, no corruption, no sampling).
  using BatchLossFn =
      std::function<VarPtr(const std::vector<size_t>& batch, bool train)>;
  /// Fully custom step (e.g. the GAN's two-optimizer adversarial step):
  /// runs forward/backward/update itself and returns a scalar loss for
  /// telemetry.
  using BatchStepFn = std::function<double(const std::vector<size_t>& batch)>;

  explicit Trainer(TrainOptions options) : options_(std::move(options)) {}

  /// Standard mode: the Trainer drives Backward, gradient clipping, and
  /// `optimizer->Step()` around `batch_loss`. Early stopping snapshots
  /// and checkpoints cover `optimizer->params()`.
  TrainResult Fit(size_t num_examples, Rng* rng, Optimizer* optimizer,
                  const BatchLossFn& batch_loss);

  /// Custom-step mode: `batch_step` owns the optimization. Validation
  /// splits are not supported (early stopping monitors the train loss);
  /// checkpoints and best-weight snapshots cover `params`.
  TrainResult FitSteps(size_t num_examples, Rng* rng,
                       std::vector<VarPtr> params,
                       const BatchStepFn& batch_step);

  const TrainOptions& options() const { return options_; }

 private:
  TrainResult Run(size_t num_examples, Rng* rng, Optimizer* optimizer,
                  const std::vector<VarPtr>& params,
                  const BatchLossFn& batch_loss,
                  const BatchStepFn& batch_step);

  TrainOptions options_;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_TRAINER_H_
