#ifndef AUTODC_NN_GAN_H_
#define AUTODC_NN_GAN_H_

#include <memory>
#include <vector>

#include "src/nn/autoencoder.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/trainer.h"

namespace autodc::nn {

struct GanConfig {
  size_t latent_dim = 8;
  size_t data_dim = 0;
  size_t hidden_dim = 32;
  float lr_generator = 1e-3f;
  float lr_discriminator = 1e-3f;
};

/// Vanilla GAN (Figure 2(i)): an MLP generator mapping latent noise to
/// data space and an MLP discriminator emitting a real/fake logit. Used
/// by the synthetic-data-generation experiments of Sec. 6.2.3.
class Gan {
 public:
  Gan(const GanConfig& config, Rng* rng);

  struct StepStats {
    double d_loss = 0.0;
    double g_loss = 0.0;
    /// Discriminator accuracy on this step's real+fake batch; ~0.5 at the
    /// adversarial equilibrium the paper describes ("fool the dealer").
    double d_accuracy = 0.0;
  };

  /// One adversarial step on a minibatch of real rows: trains D on
  /// real-vs-fake, then trains G to fool D.
  StepStats TrainStep(const Batch& real_batch);

  /// Trains for `epochs` passes over `data` in minibatches; returns the
  /// final step's stats.
  StepStats Train(const Batch& data, size_t epochs, size_t batch_size = 16);

  /// Full-control training on the shared Trainer runtime. The GAN is the
  /// two-optimizer client: each batch runs TrainStep (D update, then G
  /// update), so the Trainer's per-batch loss is d_loss + g_loss and
  /// validation splits do not apply. Early stopping monitors the train
  /// loss; checkpoints cover generator + discriminator parameters.
  TrainResult Train(const Batch& data, const TrainOptions& options);

  /// Stats of the most recent TrainStep (what the legacy Train returns).
  const StepStats& last_step_stats() const { return last_step_stats_; }

  /// Draws n synthetic rows from the generator.
  Batch Generate(size_t n);

  /// Discriminator probability that x is real.
  double DiscriminatorScore(const std::vector<float>& x) const;

  std::vector<VarPtr> GeneratorParameters() const;
  std::vector<VarPtr> DiscriminatorParameters() const;

 private:
  VarPtr GeneratorForward(const Tensor& noise) const;
  VarPtr DiscriminatorForward(const VarPtr& rows) const;
  Tensor SampleNoise(size_t n);

  GanConfig config_;
  Rng* rng_;
  StepStats last_step_stats_;
  std::unique_ptr<Sequential> generator_;
  std::unique_ptr<Sequential> discriminator_;
  std::unique_ptr<Adam> g_opt_;
  std::unique_ptr<Adam> d_opt_;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_GAN_H_
