#ifndef AUTODC_NN_CLASSIFIER_H_
#define AUTODC_NN_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/trainer.h"

namespace autodc::nn {

struct ClassifierConfig {
  size_t input_dim = 0;
  std::vector<size_t> hidden = {32};   ///< hidden layer widths
  Activation activation = Activation::kRelu;
  float learning_rate = 1e-2f;
  float dropout = 0.0f;
  /// Weight applied to positive examples in the BCE loss — the
  /// cost-sensitive handle for skewed label distributions (Sec. 6.1).
  float positive_weight = 1.0f;
};

/// Binary MLP classifier trained with (weighted) BCE on dense feature
/// vectors. This is the classification head of DeepER and of the weak
/// supervision experiments. Training runs on the shared Trainer
/// runtime; the epochs/batch_size signatures below are seed-equivalent
/// shorthands for a TrainOptions with gradient clip 5.
class BinaryClassifier {
 public:
  BinaryClassifier(const ClassifierConfig& config, Rng* rng);

  /// One epoch of minibatch training; returns mean loss.
  double TrainEpoch(const Batch& features, const std::vector<int>& labels,
                    size_t batch_size = 32);

  /// Trains `epochs` epochs; returns final epoch mean loss.
  double Train(const Batch& features, const std::vector<int>& labels,
               size_t epochs, size_t batch_size = 32);

  /// Full-control training: validation split, early stopping, LR
  /// schedules, checkpointing, per-epoch telemetry.
  TrainResult Train(const Batch& features, const std::vector<int>& labels,
                    const TrainOptions& options);

  /// Trains against probabilistic (soft) labels in [0,1], the interface
  /// weak supervision needs.
  double TrainSoft(const Batch& features, const std::vector<double>& probs,
                   size_t epochs, size_t batch_size = 32);
  TrainResult TrainSoft(const Batch& features,
                        const std::vector<double>& probs,
                        const TrainOptions& options);

  /// P(label=1 | x).
  double PredictProba(const std::vector<float>& x) const;
  /// Batched probabilities.
  std::vector<double> PredictProbaBatch(const Batch& xs) const;
  /// Thresholded decision.
  int Predict(const std::vector<float>& x, double threshold = 0.5) const;

  std::vector<VarPtr> Parameters() const { return model_->Parameters(); }
  size_t NumParameters() const { return model_->NumParameters(); }

 private:
  TrainResult Fit(const Batch& features, const std::vector<float>& targets,
                  const TrainOptions& options);

  ClassifierConfig config_;
  Rng* rng_;
  std::unique_ptr<Sequential> model_;
  std::unique_ptr<Adam> optimizer_;
};

/// Multiclass MLP classifier with softmax cross-entropy, used by the
/// architecture-zoo benchmark.
class MulticlassClassifier {
 public:
  MulticlassClassifier(size_t input_dim, const std::vector<size_t>& hidden,
                       size_t num_classes, float lr, Rng* rng);

  double TrainEpoch(const Batch& features, const std::vector<size_t>& labels,
                    size_t batch_size = 32);
  double Train(const Batch& features, const std::vector<size_t>& labels,
               size_t epochs, size_t batch_size = 32);
  TrainResult Train(const Batch& features, const std::vector<size_t>& labels,
                    const TrainOptions& options);

  /// Class probabilities for x.
  std::vector<double> PredictProba(const std::vector<float>& x) const;
  size_t Predict(const std::vector<float>& x) const;
  /// Fraction correct.
  double Accuracy(const Batch& features,
                  const std::vector<size_t>& labels) const;

  std::vector<VarPtr> Parameters() const { return model_->Parameters(); }

 private:
  Rng* rng_;
  size_t num_classes_;
  std::unique_ptr<Sequential> model_;
  std::unique_ptr<Adam> optimizer_;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_CLASSIFIER_H_
