#ifndef AUTODC_NN_OPTIMIZER_H_
#define AUTODC_NN_OPTIMIZER_H_

#include <vector>

#include "src/nn/autograd.h"

namespace autodc::nn {

/// Base interface: applies one update from accumulated gradients, then the
/// caller (or Step itself via zero_grad) clears them.
class Optimizer {
 public:
  Optimizer(std::vector<VarPtr> params, float lr)
      : params_(std::move(params)), lr_(lr) {}
  virtual ~Optimizer() = default;

  /// Applies one gradient step and zeroes gradients.
  void Step() {
    ApplyStep();
    for (const VarPtr& p : params_) p->ZeroGrad();
  }

  /// Clips every parameter's gradient to [-limit, limit] elementwise.
  void ClipGradients(float limit);

  const std::vector<VarPtr>& params() const { return params_; }

  /// The step size applied by the next Step(). The Trainer's LR
  /// schedules drive this between epochs.
  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  virtual void ApplyStep() = 0;
  std::vector<VarPtr> params_;
  float lr_;
};

/// Plain stochastic gradient descent with optional L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, float lr, float weight_decay = 0.0f)
      : Optimizer(std::move(params), lr), weight_decay_(weight_decay) {}

 protected:
  void ApplyStep() override;

 private:
  float weight_decay_;
};

/// SGD with classical momentum.
class Momentum : public Optimizer {
 public:
  Momentum(std::vector<VarPtr> params, float lr, float momentum = 0.9f);

 protected:
  void ApplyStep() override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<VarPtr> params, float lr = 1e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

 protected:
  void ApplyStep() override;

 private:
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  int64_t t_ = 0;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_OPTIMIZER_H_
