#include "src/nn/tensor_pool.h"

#include <utility>

#include "src/obs/metrics.h"

namespace autodc::nn {

namespace {

// Bucket of the smallest power of two >= max(n, 1).
size_t CeilBucket(size_t n) {
  size_t b = 0;
  while ((size_t{1} << b) < n) ++b;
  return b;
}

// Bucket of the largest power of two <= capacity (capacity > 0), i.e.
// the strongest capacity guarantee this buffer can back.
size_t FloorBucket(size_t capacity) {
  size_t b = 0;
  while ((size_t{2} << b) <= capacity) ++b;
  return b;
}

thread_local int g_workspace_depth = 0;

}  // namespace

// Per-thread front cache. Declared at namespace scope (not inside a
// function) so TensorPool can befriend it; one instance lives in
// thread_local storage per thread that touches the pool.
struct TensorPoolThreadCache {
  std::vector<std::vector<float>> free_[TensorPool::kNumBuckets];

  ~TensorPoolThreadCache();
};

namespace {

// tls_cache points at the live cache for this thread, or nullptr before
// first use and again after the cache's thread-exit destructor has run
// (so late Releases during shutdown fall through to the global lists
// instead of touching a dead object).
thread_local TensorPoolThreadCache* tls_cache = nullptr;

struct TlsCacheHolder {
  TensorPoolThreadCache cache;
  TlsCacheHolder() { tls_cache = &cache; }
};

TensorPoolThreadCache* GetThreadCache() {
  if (tls_cache == nullptr) {
    thread_local TlsCacheHolder holder;  // construction sets tls_cache
  }
  return tls_cache;
}

}  // namespace

TensorPoolThreadCache::~TensorPoolThreadCache() {
  tls_cache = nullptr;
  TensorPool::Global().FlushThreadCache(this);
}

TensorPool& TensorPool::Global() {
  static TensorPool* pool = [] {
    auto* p = new TensorPool();  // leaky: survives shutdown
#ifndef AUTODC_DISABLE_OBS
    // Zero hot-path cost: the pool's own atomics are read only at
    // snapshot time via a registry collector.
    obs::MetricsRegistry::Global().AddCollector([p]() {
      Stats s = p->GetStats();
      auto& reg = obs::MetricsRegistry::Global();
      reg.GetGauge("tensor_pool.hits")->Set(static_cast<double>(s.hits));
      reg.GetGauge("tensor_pool.misses")
          ->Set(static_cast<double>(s.misses));
      reg.GetGauge("tensor_pool.releases")
          ->Set(static_cast<double>(s.releases));
      reg.GetGauge("tensor_pool.bytes_cached")
          ->Set(static_cast<double>(s.bytes_cached));
    });
#endif
    return p;
  }();
  return *pool;
}

std::vector<float> TensorPool::Acquire(size_t n) {
  if (n == 0) return {};
  size_t bucket = CeilBucket(n);
  if (bucket > kMaxBucket) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::vector<float>(n, 0.0f);
  }
  std::vector<float> buf;
  TensorPoolThreadCache* cache = GetThreadCache();
  bool found = false;
  if (cache != nullptr && !cache->free_[bucket].empty()) {
    buf = std::move(cache->free_[bucket].back());
    cache->free_[bucket].pop_back();
    found = true;
  } else {
    found = AcquireGlobal(bucket, &buf);
  }
  if (found) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    bytes_cached_.fetch_sub(
        static_cast<long long>(buf.capacity() * sizeof(float)),
        std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    buf.reserve(size_t{1} << bucket);
  }
  buf.resize(n);  // cached buffers are cleared, so this zero-fills
  return buf;
}

void TensorPool::Release(std::vector<float>&& buf) {
  size_t capacity = buf.capacity();
  if (capacity == 0) return;
  size_t bucket = FloorBucket(capacity);
  if (bucket > kMaxBucket) return;  // too big to pool; free it
  buf.clear();
  releases_.fetch_add(1, std::memory_order_relaxed);
  long long bytes = static_cast<long long>(capacity * sizeof(float));
  TensorPoolThreadCache* cache = GetThreadCache();
  if (cache != nullptr && cache->free_[bucket].size() < kThreadCacheCap) {
    cache->free_[bucket].push_back(std::move(buf));
    bytes_cached_.fetch_add(bytes, std::memory_order_relaxed);
    return;
  }
  if (ReleaseGlobal(bucket, std::move(buf))) {
    bytes_cached_.fetch_add(bytes, std::memory_order_relaxed);
  }
}

bool TensorPool::AcquireGlobal(size_t bucket, std::vector<float>* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_[bucket].empty()) return false;
  *out = std::move(free_[bucket].back());
  free_[bucket].pop_back();
  return true;
}

bool TensorPool::ReleaseGlobal(size_t bucket, std::vector<float>&& buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (free_[bucket].size() >= kGlobalCap) return false;  // drop: frees buf
  free_[bucket].push_back(std::move(buf));
  return true;
}

void TensorPool::FlushThreadCache(TensorPoolThreadCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  long long dropped_bytes = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    for (auto& buf : cache->free_[b]) {
      if (free_[b].size() < kGlobalCap) {
        free_[b].push_back(std::move(buf));
      } else {
        // The buffer is about to be freed with the cache; it no longer
        // counts toward cached bytes.
        dropped_bytes +=
            static_cast<long long>(buf.capacity() * sizeof(float));
      }
    }
    cache->free_[b].clear();
  }
  if (dropped_bytes != 0) {
    bytes_cached_.fetch_sub(dropped_bytes, std::memory_order_relaxed);
  }
}

TensorPool::Stats TensorPool::GetStats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.releases = releases_.load(std::memory_order_relaxed);
  long long bytes = bytes_cached_.load(std::memory_order_relaxed);
  s.bytes_cached = bytes > 0 ? static_cast<size_t>(bytes) : 0;
  return s;
}

void TensorPool::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  releases_.store(0, std::memory_order_relaxed);
}

void TensorPool::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  long long bytes = 0;
  for (auto& list : free_) {
    for (const auto& buf : list) {
      bytes += static_cast<long long>(buf.capacity() * sizeof(float));
    }
    list.clear();
  }
  if (bytes != 0) {
    bytes_cached_.fetch_sub(bytes, std::memory_order_relaxed);
  }
}

WorkspaceScope::WorkspaceScope() { ++g_workspace_depth; }
WorkspaceScope::~WorkspaceScope() { --g_workspace_depth; }

bool WorkspaceActive() { return g_workspace_depth > 0; }

}  // namespace autodc::nn
