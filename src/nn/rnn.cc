#include "src/nn/rnn.h"

#include <algorithm>

#include <cassert>

#include "src/nn/kernels.h"

namespace autodc::nn {

namespace {

// Rank-1 x {d} times W {d,k} -> rank-1 {k}: wrap x as {1,d}, MatMul,
// then unwrap. The wrap/unwrap nodes pass gradients straight through.
VarPtr VecMat(const VarPtr& x, const VarPtr& w) {
  Tensor m({1, x->value.size()}, x->value.vec());
  auto wrapped = std::make_shared<Variable>(std::move(m));
  wrapped->requires_grad = x->requires_grad;
  if (wrapped->requires_grad) {
    wrapped->parents = {x};
    Variable* r = wrapped.get();
    Variable* px = x.get();
    wrapped->backward_fn = [r, px]() {
      kernels::AxpyF32(1.0f, r->grad.data(), px->grad.data(), r->grad.size());
    };
  }
  VarPtr prod = MatMulOp(wrapped, w);  // {1,k}
  Tensor flat({prod->value.size()}, prod->value.vec());
  auto out = std::make_shared<Variable>(std::move(flat));
  out->requires_grad = prod->requires_grad;
  if (out->requires_grad) {
    out->parents = {prod};
    Variable* r = out.get();
    Variable* pp = prod.get();
    out->backward_fn = [r, pp]() {
      kernels::AxpyF32(1.0f, r->grad.data(), pp->grad.data(), r->grad.size());
    };
  }
  return out;
}

// Slice of a rank-1 vector [begin, begin+len).
VarPtr Slice(const VarPtr& x, size_t begin, size_t len) {
  Tensor out({len});
  std::copy(x->value.data() + begin, x->value.data() + begin + len,
            out.data());
  auto result = std::make_shared<Variable>(std::move(out));
  result->requires_grad = x->requires_grad;
  if (result->requires_grad) {
    result->parents = {x};
    Variable* r = result.get();
    Variable* px = x.get();
    result->backward_fn = [r, px, begin, len]() {
      kernels::AxpyF32(1.0f, r->grad.data(), px->grad.data() + begin, len);
    };
  }
  return result;
}

}  // namespace

RnnCell::RnnCell(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  wx_ = nn::Parameter(Tensor::Xavier(input_dim, hidden_dim, rng));
  wh_ = nn::Parameter(Tensor::Xavier(hidden_dim, hidden_dim, rng));
  b_ = nn::Parameter(Tensor::Zeros({hidden_dim}));
}

VarPtr RnnCell::Step(const VarPtr& x, const VarPtr& h) const {
  assert(x->value.size() == input_dim_);
  assert(h->value.size() == hidden_dim_);
  VarPtr pre = Add(Add(VecMat(x, wx_), VecMat(h, wh_)), b_);
  return nn::Tanh(pre);
}

VarPtr RnnCell::InitialState() const {
  return Constant(Tensor::Zeros({hidden_dim_}));
}

std::vector<VarPtr> RnnCell::Parameters() const { return {wx_, wh_, b_}; }

LstmCell::LstmCell(size_t input_dim, size_t hidden_dim, Rng* rng)
    : input_dim_(input_dim), hidden_dim_(hidden_dim) {
  w_ = nn::Parameter(
      Tensor::Xavier(input_dim + hidden_dim, 4 * hidden_dim, rng));
  Tensor bias = Tensor::Zeros({4 * hidden_dim});
  // Forget-gate bias starts at 1 (standard trick: remember by default).
  for (size_t i = hidden_dim; i < 2 * hidden_dim; ++i) bias[i] = 1.0f;
  b_ = nn::Parameter(std::move(bias));
}

LstmCell::State LstmCell::Step(const VarPtr& x, const State& state) const {
  assert(x->value.size() == input_dim_);
  VarPtr xh = Concat({x, state.h});          // {input+hidden}
  VarPtr gates = Add(VecMat(xh, w_), b_);    // {4*hidden}
  size_t hd = hidden_dim_;
  VarPtr i = nn::Sigmoid(Slice(gates, 0, hd));
  VarPtr f = nn::Sigmoid(Slice(gates, hd, hd));
  VarPtr g = nn::Tanh(Slice(gates, 2 * hd, hd));
  VarPtr o = nn::Sigmoid(Slice(gates, 3 * hd, hd));
  VarPtr c = Add(Mul(f, state.c), Mul(i, g));
  VarPtr h = Mul(o, nn::Tanh(c));
  return State{h, c};
}

LstmCell::State LstmCell::InitialState() const {
  return State{Constant(Tensor::Zeros({hidden_dim_})),
               Constant(Tensor::Zeros({hidden_dim_}))};
}

std::vector<VarPtr> LstmCell::Parameters() const { return {w_, b_}; }

LstmEncoder::LstmEncoder(size_t input_dim, size_t hidden_dim,
                         bool bidirectional, Rng* rng)
    : forward_(input_dim, hidden_dim, rng), hidden_dim_(hidden_dim) {
  if (bidirectional) {
    backward_ = std::make_unique<LstmCell>(input_dim, hidden_dim, rng);
  }
}

VarPtr LstmEncoder::Encode(const std::vector<VarPtr>& sequence) const {
  LstmCell::State fw = forward_.InitialState();
  for (const VarPtr& x : sequence) fw = forward_.Step(x, fw);
  if (!backward_) return fw.h;
  LstmCell::State bw = backward_->InitialState();
  for (auto it = sequence.rbegin(); it != sequence.rend(); ++it) {
    bw = backward_->Step(*it, bw);
  }
  return Concat({fw.h, bw.h});
}

size_t LstmEncoder::output_dim() const {
  return backward_ ? 2 * hidden_dim_ : hidden_dim_;
}

std::vector<VarPtr> LstmEncoder::Parameters() const {
  std::vector<VarPtr> out = forward_.Parameters();
  if (backward_) {
    for (const VarPtr& p : backward_->Parameters()) out.push_back(p);
  }
  return out;
}

}  // namespace autodc::nn
