#ifndef AUTODC_NN_KERNELS_H_
#define AUTODC_NN_KERNELS_H_

#include <cstddef>
#include <cstdint>

// SIMD micro-kernel layer: the single place where per-core throughput is
// earned. Every dense inner loop in the library (tensor ops, autograd,
// SGNS gradient steps, cosine nearest-neighbour search, DeepER pair
// scoring) routes through these primitives.
//
// Dispatch rules (see DESIGN.md "Kernel layer"):
//   * Two implementations exist per kernel: a portable scalar path
//     (kernels.cc) and an AVX2+FMA path (kernels_avx2.cc, compiled with
//     -mavx2 -mfma when the toolchain supports it; selected at compile
//     time via __AVX2__).
//   * At runtime the AVX2 table is active iff it was compiled in, the
//     CPU reports AVX2+FMA support, and scalar mode is not forced.
//     Scalar mode is forced by the AUTODC_FORCE_SCALAR environment
//     variable (any value other than "0") or programmatically via
//     SetForceScalar() — the A/B switch used by bench_kernels and the
//     agreement tests.
//   * Tolerance policy: the scalar path is operation-for-operation
//     identical to the pre-kernel (seed) loops, so determinism-sensitive
//     golden tests pin it via SetForceScalar(true). The SIMD path uses
//     FMA and lane-parallel accumulators, so its results differ from
//     scalar in the last bits; the two paths agree within 1e-5
//     (relative, with an absolute floor of 1e-5 for near-zero values).
//     Each path on its own is deterministic: results depend only on the
//     inputs, never on thread count or scheduling.
namespace autodc::nn::kernels {

// ---- Dispatch control -------------------------------------------------

/// True when the AVX2+FMA kernel table was compiled into this binary.
bool SimdCompiledIn();

/// True when the AVX2+FMA table is currently active (compiled in, CPU
/// supports it, and scalar mode is not forced).
bool SimdActive();

/// Forces (or releases) the scalar table. Overrides the
/// AUTODC_FORCE_SCALAR environment default; releasing restores SIMD when
/// available. Thread-safe; intended for benches and agreement tests.
void SetForceScalar(bool force);

/// "avx2+fma" or "scalar".
const char* ActiveIsaName();

// ---- Level-1 kernels --------------------------------------------------
// All kernels accept n == 0 (no-op / zero result). Pointers may not
// alias unless noted.

/// Dot product, float accumulation (matches the seed SGNS inner loop in
/// scalar mode).
float DotF32(const float* a, const float* b, size_t n);

/// Dot product, double accumulation (matches the seed MatMulTransB /
/// cosine loops in scalar mode).
double DotF32D(const float* a, const float* b, size_t n);

/// Sum of elements, double accumulation.
double SumF32(const float* x, size_t n);

/// Sum of squares, double accumulation.
double SumSqF32(const float* x, size_t n);

/// Squared Euclidean distance, double accumulation.
double SqDistF32(const float* a, const float* b, size_t n);

/// Cosine similarity; 0.0 when either vector has zero (or negative —
/// impossible) squared norm or n == 0. One fused pass over both inputs.
double CosineF32(const float* a, const float* b, size_t n);
double CosineF64(const double* a, const double* b, size_t n);

/// y += alpha * x
void AxpyF32(float alpha, const float* x, float* y, size_t n);

/// y = alpha * x + beta * y
void ScaleAddF32(float alpha, const float* x, float beta, float* y, size_t n);

/// y *= s
void ScaleF32(float s, float* y, size_t n);

/// y *= x  (elementwise)
void MulF32(const float* x, float* y, size_t n);

/// y += a * b  (elementwise fused multiply-accumulate)
void MulAddF32(const float* a, const float* b, float* y, size_t n);

/// y = clamp(y, lo, hi)
void ClampF32(float lo, float hi, float* y, size_t n);

/// One fused Adam step over a parameter slab:
///   m = beta1*m + (1-beta1)*g
///   v = beta2*v + (1-beta2)*g^2
///   p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)
/// bc1/bc2 are the bias-correction denominators for the current step.
void AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                   float lr, float beta1, float beta2, float eps, float bc1,
                   float bc2);

// ---- Level-3 kernels --------------------------------------------------

/// The 8x8 FMA micro-kernel: C[8x8] += A[8 x kc] * B[kc x 8] with row
/// strides lda/ldb/ldc. The AVX2 path holds the 8x8 C block in eight ymm
/// accumulators and issues eight FMAs per loaded B row. Exposed for
/// tests/benches; the Gemm*Panel kernels below use it internally.
void Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t kc);

/// C rows [r0,r1) += A[r0:r1, 0:m] * B[m x k]  (A row stride m, B/C row
/// stride k). Per output element the accumulation over the inner
/// dimension runs in ascending order on both paths, so results are
/// independent of the caller's row chunking (and hence of thread count).
void GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                  size_t r1, size_t m, size_t k);

/// C rows [c0,c1) += A^T[c0:c1, 0:m] * B[m x k] for A {m,n} (row stride
/// n), B {m,k}, C {n,k}.
void GemmTransAPanelF32(const float* a, const float* b, float* c, size_t c0,
                        size_t c1, size_t m, size_t n, size_t k);

/// C rows [r0,r1) = A[r0:r1, 0:m] * B^T for A {n,m}, B {k,m}, C {n,k}.
/// Assigns (does not accumulate into) the output rows.
void GemmTransBPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k);

// ---- Low-precision kernels -------------------------------------------
// Quantized row formats used by the embedding store and the ANN index
// (see DESIGN.md §11). Two storage modes exist below fp32:
//
//   * int8: per-row affine quantization q = clamp(round(x/scale) + zp)
//     with q restricted to [-127, 127]. The +-127 (not -128) bound is a
//     hard invariant: it keeps |q_a * q_b| <= 127*127, so the AVX2
//     maddubs i16 pair-sums (<= 32258) cannot saturate and the integer
//     dot is EXACT — the scalar and AVX2 paths agree bit-for-bit, unlike
//     the float kernels' 1e-5 tolerance. The symmetric option pins
//     zp = 0 (scale = absmax/127).
//   * bf16: the top 16 bits of the f32 pattern, rounded to
//     nearest-even. Conversion back is exact (<<16), so bf16 dots are
//     ordinary float math on rounded inputs and follow the normal
//     cross-path tolerance policy.
//
// Integer-dot length limit: the i32 accumulator is exact for
// n <= ~1M elements at |q| <= 127; every caller here is a row dot
// (n = embedding dim), far below that.

/// Storage precision of a quantized row.
enum class Quant : std::uint8_t {
  kFp32 = 0,   // no quantization (default everywhere)
  kInt8 = 1,   // per-row scale + zero-point, q in [-127, 127]
  kInt8Sym = 2,  // per-row scale only (zero-point pinned to 0)
  kBf16 = 3,   // round-to-nearest-even bfloat16
};

/// Short mode name ("fp32", "int8", "int8sym", "bf16") for logs/benches.
const char* QuantName(Quant q);

/// True for either int8 flavour.
inline bool QuantIsInt8(Quant q) {
  return q == Quant::kInt8 || q == Quant::kInt8Sym;
}

/// Parses "int8" / "int8sym" / "bf16" / "fp32" (or "", "none", "off") to
/// a mode; unrecognized values fall back to fp32.
Quant ParseQuant(const char* value);

/// Reads AUTODC_EMB_QUANT through common/env.h. Not cached — call sites
/// are store/index construction, never a hot path.
Quant QuantFromEnv();

/// Per-row affine parameters: x ~= scale * (q - zero_point).
struct Int8Params {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Derives quantization parameters for one row. Asymmetric mode extends
/// the [min, max] range to include 0 so zero is exactly representable
/// and |zero_point| <= 127. Degenerate rows (all zeros, n == 0) get
/// {1, 0} so every element quantizes to 0 exactly.
Int8Params ComputeInt8Params(const float* x, size_t n, bool symmetric);

/// Dequantized dot product from an exact integer dot plus the cached
/// per-row element sums:
///   dot = s_a*s_b * (idot - zp_a*sum_b - zp_b*sum_a + n*zp_a*zp_b)
/// Inline and shared by the scalar and AVX2 tables (and by ANN/store
/// callers with cached sums) so every path combines identically.
inline double DequantDotD(std::int32_t idot, Int8Params pa, std::int32_t sum_a,
                          Int8Params pb, std::int32_t sum_b, size_t n) {
  std::int64_t corr = static_cast<std::int64_t>(idot) -
                      static_cast<std::int64_t>(pa.zero_point) * sum_b -
                      static_cast<std::int64_t>(pb.zero_point) * sum_a +
                      static_cast<std::int64_t>(n) * pa.zero_point *
                          pb.zero_point;
  return static_cast<double>(pa.scale) * static_cast<double>(pb.scale) *
         static_cast<double>(corr);
}

/// Dequantized squared norm from the cached integer moments:
///   |x|^2 = s^2 * (sumsq - 2*zp*sum + n*zp^2)
inline double DequantNormSqD(std::int64_t sumsq, Int8Params p,
                             std::int32_t sum, size_t n) {
  std::int64_t corr = sumsq -
                      2 * static_cast<std::int64_t>(p.zero_point) * sum +
                      static_cast<std::int64_t>(n) * p.zero_point *
                          p.zero_point;
  return static_cast<double>(p.scale) * static_cast<double>(p.scale) *
         static_cast<double>(corr);
}

/// q[i] = clamp(round(x[i] * (1/params.scale)) + zp, -127, 127).
/// Round-to-nearest-even on both paths (nearbyintf / cvtps_epi32 under
/// the default FP environment), with the reciprocal precomputed
/// identically, so scalar and AVX2 outputs are bit-identical.
void QuantizeI8F32(const float* x, size_t n, Int8Params params,
                   std::int8_t* q);

/// x[i] = params.scale * (q[i] - params.zero_point). Bit-identical
/// across paths (single f32 multiply per element).
void DequantizeI8F32(const std::int8_t* q, size_t n, Int8Params params,
                     float* x);

/// Exact i32 dot of two int8 rows. Precondition: elements in
/// [-127, 127] (the quantizer's invariant); the AVX2 maddubs path would
/// saturate at -128*-128 pairs otherwise. Scalar/AVX2 bit-identical.
std::int32_t DotI8I32(const std::int8_t* a, const std::int8_t* b, size_t n);

/// Exact i32 element sum of an int8 row (the cached `sum` used by the
/// zero-point correction). Scalar/AVX2 bit-identical.
std::int32_t SumI8I32(const std::int8_t* x, size_t n);

/// Cosine similarity of two quantized rows, computed from one fused
/// integer pass (dot, sums, sums of squares) + the shared dequant
/// algebra. 0.0 when either dequantized norm is zero. Scalar/AVX2
/// bit-identical (all integer sums are exact).
double CosineI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                Int8Params pb, size_t n);

/// Squared Euclidean distance between the dequantized rows, same fused
/// integer pass: |a|^2 + |b|^2 - 2*dot. Scalar/AVX2 bit-identical.
double SqDistI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                Int8Params pb, size_t n);

/// (na - dot) + (nb - dot), deliberately OUT of line: inlined into the
/// AVX2 translation unit, the subtractions contract with the dot
/// product's final multiply into FMAs, silently breaking SqDistI8's
/// bit-identical cross-path contract. One definition in the scalar TU
/// keeps both paths combining with the same instructions.
double DequantSqDistCombineD(double na, double nb, double dot);

/// f32 -> bf16 round-to-nearest-even (integer bit math; bit-identical
/// across paths). NaNs keep a NaN pattern.
void F32ToBf16(const float* x, size_t n, std::uint16_t* y);

/// bf16 -> f32, exact (<<16). Bit-identical across paths.
void Bf16ToF32(const std::uint16_t* x, size_t n, float* y);

/// Dot of two bf16 rows, double accumulation (mirrors DotF32D on the
/// widened values; normal 1e-5 cross-path tolerance).
double DotBf16D(const std::uint16_t* a, const std::uint16_t* b, size_t n);

/// Cosine of two bf16 rows, fused single pass like CosineF32.
double CosineBf16(const std::uint16_t* a, const std::uint16_t* b, size_t n);

/// Squared Euclidean distance of two bf16 rows, double accumulation.
double SqDistBf16(const std::uint16_t* a, const std::uint16_t* b, size_t n);

/// Quantized analogue of GemmTransBPanelF32 for batched scoring:
/// C rows [r0,r1) = dequantized A[r0:r1, 0:m] * B^T for quantized
/// A {n,m}, B {k,m}, C {n,k}. a_params/a_sums index rows of A (n
/// entries), b_params/b_sums rows of B (k entries). Assigns the output.
/// Each element combines an exact integer dot through DequantDotD, so
/// scalar and AVX2 outputs are bit-identical.
void GemmI8TransBPanelF32(const std::int8_t* a, const Int8Params* a_params,
                          const std::int32_t* a_sums, const std::int8_t* b,
                          const Int8Params* b_params,
                          const std::int32_t* b_sums, float* c, size_t r0,
                          size_t r1, size_t m, size_t k);

// ---- Implementation plumbing -----------------------------------------

/// Function table one ISA implements. Internal; exposed so the scalar
/// and AVX2 translation units can share the definition.
struct KernelOps {
  const char* name;
  float (*dot_f32)(const float*, const float*, size_t);
  double (*dot_f32d)(const float*, const float*, size_t);
  double (*sum_f32)(const float*, size_t);
  double (*sumsq_f32)(const float*, size_t);
  double (*sqdist_f32)(const float*, const float*, size_t);
  double (*cosine_f32)(const float*, const float*, size_t);
  double (*cosine_f64)(const double*, const double*, size_t);
  void (*axpy_f32)(float, const float*, float*, size_t);
  void (*scale_add_f32)(float, const float*, float, float*, size_t);
  void (*scale_f32)(float, float*, size_t);
  void (*mul_f32)(const float*, float*, size_t);
  void (*mul_add_f32)(const float*, const float*, float*, size_t);
  void (*clamp_f32)(float, float, float*, size_t);
  void (*adam_update_f32)(const float*, float*, float*, float*, size_t, float,
                          float, float, float, float, float);
  void (*gemm8x8_f32)(const float*, size_t, const float*, size_t, float*,
                      size_t, size_t);
  void (*gemm_panel_f32)(const float*, const float*, float*, size_t, size_t,
                         size_t, size_t);
  void (*gemm_ta_panel_f32)(const float*, const float*, float*, size_t,
                            size_t, size_t, size_t, size_t);
  void (*gemm_tb_panel_f32)(const float*, const float*, float*, size_t,
                            size_t, size_t, size_t);
  void (*quantize_i8)(const float*, size_t, Int8Params, std::int8_t*);
  void (*dequantize_i8)(const std::int8_t*, size_t, Int8Params, float*);
  std::int32_t (*dot_i8_i32)(const std::int8_t*, const std::int8_t*, size_t);
  std::int32_t (*sum_i8_i32)(const std::int8_t*, size_t);
  double (*cosine_i8)(const std::int8_t*, Int8Params, const std::int8_t*,
                      Int8Params, size_t);
  double (*sqdist_i8)(const std::int8_t*, Int8Params, const std::int8_t*,
                      Int8Params, size_t);
  void (*f32_to_bf16)(const float*, size_t, std::uint16_t*);
  void (*bf16_to_f32)(const std::uint16_t*, size_t, float*);
  double (*dot_bf16d)(const std::uint16_t*, const std::uint16_t*, size_t);
  double (*cosine_bf16)(const std::uint16_t*, const std::uint16_t*, size_t);
  double (*sqdist_bf16)(const std::uint16_t*, const std::uint16_t*, size_t);
  void (*gemm_i8_tb_panel_f32)(const std::int8_t*, const Int8Params*,
                               const std::int32_t*, const std::int8_t*,
                               const Int8Params*, const std::int32_t*, float*,
                               size_t, size_t, size_t, size_t);
};

/// AVX2+FMA table, or nullptr when not compiled in. Defined in
/// kernels_avx2.cc.
const KernelOps* Avx2Ops();

}  // namespace autodc::nn::kernels

#endif  // AUTODC_NN_KERNELS_H_
