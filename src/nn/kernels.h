#ifndef AUTODC_NN_KERNELS_H_
#define AUTODC_NN_KERNELS_H_

#include <cstddef>

// SIMD micro-kernel layer: the single place where per-core throughput is
// earned. Every dense inner loop in the library (tensor ops, autograd,
// SGNS gradient steps, cosine nearest-neighbour search, DeepER pair
// scoring) routes through these primitives.
//
// Dispatch rules (see DESIGN.md "Kernel layer"):
//   * Two implementations exist per kernel: a portable scalar path
//     (kernels.cc) and an AVX2+FMA path (kernels_avx2.cc, compiled with
//     -mavx2 -mfma when the toolchain supports it; selected at compile
//     time via __AVX2__).
//   * At runtime the AVX2 table is active iff it was compiled in, the
//     CPU reports AVX2+FMA support, and scalar mode is not forced.
//     Scalar mode is forced by the AUTODC_FORCE_SCALAR environment
//     variable (any value other than "0") or programmatically via
//     SetForceScalar() — the A/B switch used by bench_kernels and the
//     agreement tests.
//   * Tolerance policy: the scalar path is operation-for-operation
//     identical to the pre-kernel (seed) loops, so determinism-sensitive
//     golden tests pin it via SetForceScalar(true). The SIMD path uses
//     FMA and lane-parallel accumulators, so its results differ from
//     scalar in the last bits; the two paths agree within 1e-5
//     (relative, with an absolute floor of 1e-5 for near-zero values).
//     Each path on its own is deterministic: results depend only on the
//     inputs, never on thread count or scheduling.
namespace autodc::nn::kernels {

// ---- Dispatch control -------------------------------------------------

/// True when the AVX2+FMA kernel table was compiled into this binary.
bool SimdCompiledIn();

/// True when the AVX2+FMA table is currently active (compiled in, CPU
/// supports it, and scalar mode is not forced).
bool SimdActive();

/// Forces (or releases) the scalar table. Overrides the
/// AUTODC_FORCE_SCALAR environment default; releasing restores SIMD when
/// available. Thread-safe; intended for benches and agreement tests.
void SetForceScalar(bool force);

/// "avx2+fma" or "scalar".
const char* ActiveIsaName();

// ---- Level-1 kernels --------------------------------------------------
// All kernels accept n == 0 (no-op / zero result). Pointers may not
// alias unless noted.

/// Dot product, float accumulation (matches the seed SGNS inner loop in
/// scalar mode).
float DotF32(const float* a, const float* b, size_t n);

/// Dot product, double accumulation (matches the seed MatMulTransB /
/// cosine loops in scalar mode).
double DotF32D(const float* a, const float* b, size_t n);

/// Sum of elements, double accumulation.
double SumF32(const float* x, size_t n);

/// Sum of squares, double accumulation.
double SumSqF32(const float* x, size_t n);

/// Squared Euclidean distance, double accumulation.
double SqDistF32(const float* a, const float* b, size_t n);

/// Cosine similarity; 0.0 when either vector has zero (or negative —
/// impossible) squared norm or n == 0. One fused pass over both inputs.
double CosineF32(const float* a, const float* b, size_t n);
double CosineF64(const double* a, const double* b, size_t n);

/// y += alpha * x
void AxpyF32(float alpha, const float* x, float* y, size_t n);

/// y = alpha * x + beta * y
void ScaleAddF32(float alpha, const float* x, float beta, float* y, size_t n);

/// y *= s
void ScaleF32(float s, float* y, size_t n);

/// y *= x  (elementwise)
void MulF32(const float* x, float* y, size_t n);

/// y += a * b  (elementwise fused multiply-accumulate)
void MulAddF32(const float* a, const float* b, float* y, size_t n);

/// y = clamp(y, lo, hi)
void ClampF32(float lo, float hi, float* y, size_t n);

/// One fused Adam step over a parameter slab:
///   m = beta1*m + (1-beta1)*g
///   v = beta2*v + (1-beta2)*g^2
///   p -= lr * (m/bc1) / (sqrt(v/bc2) + eps)
/// bc1/bc2 are the bias-correction denominators for the current step.
void AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                   float lr, float beta1, float beta2, float eps, float bc1,
                   float bc2);

// ---- Level-3 kernels --------------------------------------------------

/// The 8x8 FMA micro-kernel: C[8x8] += A[8 x kc] * B[kc x 8] with row
/// strides lda/ldb/ldc. The AVX2 path holds the 8x8 C block in eight ymm
/// accumulators and issues eight FMAs per loaded B row. Exposed for
/// tests/benches; the Gemm*Panel kernels below use it internally.
void Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t kc);

/// C rows [r0,r1) += A[r0:r1, 0:m] * B[m x k]  (A row stride m, B/C row
/// stride k). Per output element the accumulation over the inner
/// dimension runs in ascending order on both paths, so results are
/// independent of the caller's row chunking (and hence of thread count).
void GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                  size_t r1, size_t m, size_t k);

/// C rows [c0,c1) += A^T[c0:c1, 0:m] * B[m x k] for A {m,n} (row stride
/// n), B {m,k}, C {n,k}.
void GemmTransAPanelF32(const float* a, const float* b, float* c, size_t c0,
                        size_t c1, size_t m, size_t n, size_t k);

/// C rows [r0,r1) = A[r0:r1, 0:m] * B^T for A {n,m}, B {k,m}, C {n,k}.
/// Assigns (does not accumulate into) the output rows.
void GemmTransBPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k);

// ---- Implementation plumbing -----------------------------------------

/// Function table one ISA implements. Internal; exposed so the scalar
/// and AVX2 translation units can share the definition.
struct KernelOps {
  const char* name;
  float (*dot_f32)(const float*, const float*, size_t);
  double (*dot_f32d)(const float*, const float*, size_t);
  double (*sum_f32)(const float*, size_t);
  double (*sumsq_f32)(const float*, size_t);
  double (*sqdist_f32)(const float*, const float*, size_t);
  double (*cosine_f32)(const float*, const float*, size_t);
  double (*cosine_f64)(const double*, const double*, size_t);
  void (*axpy_f32)(float, const float*, float*, size_t);
  void (*scale_add_f32)(float, const float*, float, float*, size_t);
  void (*scale_f32)(float, float*, size_t);
  void (*mul_f32)(const float*, float*, size_t);
  void (*mul_add_f32)(const float*, const float*, float*, size_t);
  void (*clamp_f32)(float, float, float*, size_t);
  void (*adam_update_f32)(const float*, float*, float*, float*, size_t, float,
                          float, float, float, float, float);
  void (*gemm8x8_f32)(const float*, size_t, const float*, size_t, float*,
                      size_t, size_t);
  void (*gemm_panel_f32)(const float*, const float*, float*, size_t, size_t,
                         size_t, size_t);
  void (*gemm_ta_panel_f32)(const float*, const float*, float*, size_t,
                            size_t, size_t, size_t, size_t);
  void (*gemm_tb_panel_f32)(const float*, const float*, float*, size_t,
                            size_t, size_t, size_t);
};

/// AVX2+FMA table, or nullptr when not compiled in. Defined in
/// kernels_avx2.cc.
const KernelOps* Avx2Ops();

}  // namespace autodc::nn::kernels

#endif  // AUTODC_NN_KERNELS_H_
