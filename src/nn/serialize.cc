#include "src/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace autodc::nn {

namespace {
constexpr uint32_t kMagic = 0x41444330;  // "ADC0"

template <typename T>
void WritePod(std::ostream* out, T v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream* in, T* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(*in);
}

// Flushes the file's data to stable storage so a crash right after the
// rename cannot leave a zero-length checkpoint behind. Best-effort on
// platforms without fsync.
bool SyncFile(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}
}  // namespace

Status SaveParameters(const std::vector<VarPtr>& params, std::ostream* out) {
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const VarPtr& p : params) {
    WritePod(out, static_cast<uint32_t>(p->value.rank()));
    for (size_t d : p->value.shape()) {
      WritePod(out, static_cast<uint64_t>(d));
    }
    out->write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!*out) return Status::IoError("parameter write failed");
  return Status::OK();
}

Status LoadParameters(const std::vector<VarPtr>& params, std::istream* in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated checkpoint");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  // Stage everything first: a truncated or corrupt checkpoint must be
  // rejected BEFORE any parameter tensor is mutated, so a failed load
  // leaves the model exactly as it was.
  std::vector<std::vector<float>> staged(params.size());
  for (size_t t = 0; t < params.size(); ++t) {
    const VarPtr& p = params[t];
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated checkpoint");
    if (rank != p->value.rank()) {
      return Status::InvalidArgument("checkpoint tensor rank mismatch");
    }
    std::vector<size_t> shape(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint64_t d = 0;
      if (!ReadPod(in, &d)) return Status::IoError("truncated checkpoint");
      shape[i] = static_cast<size_t>(d);
    }
    if (shape != p->value.shape()) {
      return Status::InvalidArgument("checkpoint tensor shape mismatch");
    }
    staged[t].resize(p->value.size());
    in->read(reinterpret_cast<char*>(staged[t].data()),
             static_cast<std::streamsize>(staged[t].size() * sizeof(float)));
    if (!*in) return Status::IoError("truncated checkpoint data");
  }
  // Validation passed for the whole file; commit.
  for (size_t t = 0; t < params.size(); ++t) {
    std::memcpy(params[t]->value.data(), staged[t].data(),
                staged[t].size() * sizeof(float));
  }
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<VarPtr>& params,
                            const std::string& path) {
  // Atomic replace: write a sibling temp file, flush it to disk, then
  // rename over the destination. Readers either see the old complete
  // checkpoint or the new complete one — never a partial write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IoError("cannot open '" + tmp + "'");
    Status s = SaveParameters(params, &out);
    if (!s.ok()) {
      out.close();
      std::remove(tmp.c_str());
      return s;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      return Status::IoError("flush failed for '" + tmp + "'");
    }
  }
  if (!SyncFile(tmp)) {
    std::remove(tmp.c_str());
    return Status::IoError("fsync failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("rename '" + tmp + "' -> '" + path + "' failed");
  }
  return Status::OK();
}

Status LoadParametersFromFile(const std::vector<VarPtr>& params,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return LoadParameters(params, &in);
}

}  // namespace autodc::nn
