#include "src/nn/serialize.h"

#include <cstdint>
#include <fstream>

namespace autodc::nn {

namespace {
constexpr uint32_t kMagic = 0x41444330;  // "ADC0"

template <typename T>
void WritePod(std::ostream* out, T v) {
  out->write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream* in, T* v) {
  in->read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(*in);
}
}  // namespace

Status SaveParameters(const std::vector<VarPtr>& params, std::ostream* out) {
  WritePod(out, kMagic);
  WritePod(out, static_cast<uint64_t>(params.size()));
  for (const VarPtr& p : params) {
    WritePod(out, static_cast<uint32_t>(p->value.rank()));
    for (size_t d : p->value.shape()) {
      WritePod(out, static_cast<uint64_t>(d));
    }
    out->write(reinterpret_cast<const char*>(p->value.data()),
               static_cast<std::streamsize>(p->value.size() * sizeof(float)));
  }
  if (!*out) return Status::IoError("parameter write failed");
  return Status::OK();
}

Status LoadParameters(const std::vector<VarPtr>& params, std::istream* in) {
  uint32_t magic = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return Status::IoError("truncated checkpoint");
  if (count != params.size()) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(count) + " tensors, model has " +
        std::to_string(params.size()));
  }
  for (const VarPtr& p : params) {
    uint32_t rank = 0;
    if (!ReadPod(in, &rank)) return Status::IoError("truncated checkpoint");
    std::vector<size_t> shape(rank);
    for (uint32_t i = 0; i < rank; ++i) {
      uint64_t d = 0;
      if (!ReadPod(in, &d)) return Status::IoError("truncated checkpoint");
      shape[i] = static_cast<size_t>(d);
    }
    if (shape != p->value.shape()) {
      return Status::InvalidArgument("checkpoint tensor shape mismatch");
    }
    in->read(reinterpret_cast<char*>(p->value.data()),
             static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    if (!*in) return Status::IoError("truncated checkpoint data");
  }
  return Status::OK();
}

Status SaveParametersToFile(const std::vector<VarPtr>& params,
                            const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "'");
  return SaveParameters(params, &out);
}

Status LoadParametersFromFile(const std::vector<VarPtr>& params,
                              const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return LoadParameters(params, &in);
}

}  // namespace autodc::nn
