#include "src/nn/kernels.h"

// AVX2+FMA kernel table. This file is compiled with -mavx2 -mfma when
// the toolchain supports them (see src/CMakeLists.txt); everything is
// guarded by __AVX2__ so a build without those flags still links and
// reports the table as absent. The dispatcher only installs this table
// after __builtin_cpu_supports confirms the CPU really has AVX2+FMA, so
// no code here runs on hardware that cannot execute it.
//
// Determinism note: every kernel fixes its lane layout, accumulator
// count, and horizontal-reduction order, so results depend only on the
// inputs. The Gemm panel kernels additionally guarantee that each
// OUTPUT ROW sees the same per-element operation sequence
// (c = fma(a_ij, b_jt, c), j ascending) whether it was computed by the
// 8x8 micro-kernel, the single-row path, or the scalar column
// remainder — which is what makes matmul results independent of how
// ParallelFor chunks rows across threads.

#ifdef __AVX2__

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace autodc::nn::kernels {
namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline double Hsum256d(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Widens the low/high halves of 8 packed floats to 2x4 doubles — the
// building block of the double-accumulation reductions.
inline void CvtPd(__m256 v, __m256d* lo, __m256d* hi) {
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

// ---- Level-1 ----------------------------------------------------------

float Avx2DotF32(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  float s = Hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                  _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) s = std::fmaf(a[i], b[i], s);
  return s;
}

double Avx2DotF32D(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    acc_lo = _mm256_fmadd_pd(alo, blo, acc_lo);
    acc_hi = _mm256_fmadd_pd(ahi, bhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double Avx2SumF32(const float* x, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    CvtPd(_mm256_loadu_ps(x + i), &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, lo);
    acc_hi = _mm256_add_pd(acc_hi, hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += x[i];
  return s;
}

double Avx2SumSqF32(const float* x, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    CvtPd(_mm256_loadu_ps(x + i), &lo, &hi);
    acc_lo = _mm256_fmadd_pd(lo, lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(hi, hi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return s;
}

double Avx2SqDistF32(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    __m256d dlo = _mm256_sub_pd(alo, blo);
    __m256d dhi = _mm256_sub_pd(ahi, bhi);
    acc_lo = _mm256_fmadd_pd(dlo, dlo, acc_lo);
    acc_hi = _mm256_fmadd_pd(dhi, dhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

// Fused single pass over both vectors: dot, |a|^2, |b|^2 in double
// lanes. Double accumulation keeps the SIMD path within a few ULP of the
// scalar one, which the exact-value cosine tests (orthogonal -> 0,
// identical -> 1) rely on.
double Avx2CosineF32(const float* a, const float* b, size_t n) {
  __m256d dot_lo = _mm256_setzero_pd(), dot_hi = _mm256_setzero_pd();
  __m256d na_lo = _mm256_setzero_pd(), na_hi = _mm256_setzero_pd();
  __m256d nb_lo = _mm256_setzero_pd(), nb_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    dot_lo = _mm256_fmadd_pd(alo, blo, dot_lo);
    dot_hi = _mm256_fmadd_pd(ahi, bhi, dot_hi);
    na_lo = _mm256_fmadd_pd(alo, alo, na_lo);
    na_hi = _mm256_fmadd_pd(ahi, ahi, na_hi);
    nb_lo = _mm256_fmadd_pd(blo, blo, nb_lo);
    nb_hi = _mm256_fmadd_pd(bhi, bhi, nb_hi);
  }
  double dot = Hsum256d(_mm256_add_pd(dot_lo, dot_hi));
  double na = Hsum256d(_mm256_add_pd(na_lo, na_hi));
  double nb = Hsum256d(_mm256_add_pd(nb_lo, nb_hi));
  for (; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Avx2CosineF64(const double* a, const double* b, size_t n) {
  __m256d dot = _mm256_setzero_pd();
  __m256d na = _mm256_setzero_pd();
  __m256d nb = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    dot = _mm256_fmadd_pd(va, vb, dot);
    na = _mm256_fmadd_pd(va, va, na);
    nb = _mm256_fmadd_pd(vb, vb, nb);
  }
  double d = Hsum256d(dot), sa = Hsum256d(na), sb = Hsum256d(nb);
  for (; i < n; ++i) {
    d += a[i] * b[i];
    sa += a[i] * a[i];
    sb += b[i] * b[i];
  }
  if (sa <= 0.0 || sb <= 0.0) return 0.0;
  return d / (std::sqrt(sa) * std::sqrt(sb));
}

void Avx2AxpyF32(float alpha, const float* x, float* y, size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

void Avx2ScaleAddF32(float alpha, const float* x, float beta, float* y,
                     size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  __m256 vb = _mm256_set1_ps(beta);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 by = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), by));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], beta * y[i]);
}

void Avx2ScaleF32(float s, float* y, size_t n) {
  __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(vs, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= s;
}

void Avx2MulF32(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void Avx2MulAddF32(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a[i], b[i], y[i]);
}

void Avx2ClampF32(float lo, float hi, float* y, size_t n) {
  __m256 vlo = _mm256_set1_ps(lo);
  __m256 vhi = _mm256_set1_ps(hi);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_min_ps(_mm256_max_ps(v, vlo), vhi));
  }
  for (; i < n; ++i) y[i] = std::clamp(y[i], lo, hi);
}

void Avx2AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                       float lr, float beta1, float beta2, float eps,
                       float bc1, float bc2) {
  __m256 vb1 = _mm256_set1_ps(beta1);
  __m256 vb2 = _mm256_set1_ps(beta2);
  __m256 v1mb1 = _mm256_set1_ps(1.0f - beta1);
  __m256 v1mb2 = _mm256_set1_ps(1.0f - beta2);
  __m256 vlr = _mm256_set1_ps(lr);
  __m256 veps = _mm256_set1_ps(eps);
  __m256 vbc1 = _mm256_set1_ps(bc1);
  __m256 vbc2 = _mm256_set1_ps(bc2);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vg = _mm256_loadu_ps(g + i);
    __m256 vm = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + i),
                                _mm256_mul_ps(v1mb1, vg));
    __m256 vv = _mm256_fmadd_ps(vb2, _mm256_loadu_ps(v + i),
                                _mm256_mul_ps(v1mb2, _mm256_mul_ps(vg, vg)));
    _mm256_storeu_ps(m + i, vm);
    _mm256_storeu_ps(v + i, vv);
    __m256 mhat = _mm256_div_ps(vm, vbc1);
    __m256 vhat = _mm256_div_ps(vv, vbc2);
    __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    __m256 step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(p + i, _mm256_sub_ps(_mm256_loadu_ps(p + i), step));
  }
  for (; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    float mhat = m[i] / bc1;
    float vhat = v[i] / bc2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// ---- Level-3 ----------------------------------------------------------

// C[8x8] += A[8 x kc] * B[kc x 8]. The 8x8 C block lives in eight ymm
// accumulators; each B row is loaded once and feeds eight FMAs (one per
// A row broadcast).
void Avx2Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                    float* c, size_t ldc, size_t kc) {
  __m256 c0 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 c1 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 c2 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 c3 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 c4 = _mm256_loadu_ps(c + 4 * ldc);
  __m256 c5 = _mm256_loadu_ps(c + 5 * ldc);
  __m256 c6 = _mm256_loadu_ps(c + 6 * ldc);
  __m256 c7 = _mm256_loadu_ps(c + 7 * ldc);
  for (size_t j = 0; j < kc; ++j) {
    __m256 brow = _mm256_loadu_ps(b + j * ldb);
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0 * lda + j), brow, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1 * lda + j), brow, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2 * lda + j), brow, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3 * lda + j), brow, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4 * lda + j), brow, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5 * lda + j), brow, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6 * lda + j), brow, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7 * lda + j), brow, c7);
  }
  _mm256_storeu_ps(c + 0 * ldc, c0);
  _mm256_storeu_ps(c + 1 * ldc, c1);
  _mm256_storeu_ps(c + 2 * ldc, c2);
  _mm256_storeu_ps(c + 3 * ldc, c3);
  _mm256_storeu_ps(c + 4 * ldc, c4);
  _mm256_storeu_ps(c + 5 * ldc, c5);
  _mm256_storeu_ps(c + 6 * ldc, c6);
  _mm256_storeu_ps(c + 7 * ldc, c7);
}

// One output row: crow[0:k] += arow[0:m] * B, j ascending. Same
// per-element fma sequence as the micro-kernel, so a row computed here
// matches one computed inside an 8-row block bit-for-bit.
inline void Avx2GemmRow(const float* arow, const float* b, float* crow,
                        size_t m, size_t k) {
  for (size_t j = 0; j < m; ++j) {
    __m256 av = _mm256_broadcast_ss(arow + j);
    const float* brow = b + j * k;
    size_t t = 0;
    for (; t + 8 <= k; t += 8) {
      _mm256_storeu_ps(crow + t,
                       _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + t),
                                       _mm256_loadu_ps(crow + t)));
    }
    for (; t < k; ++t) crow[t] = std::fmaf(arow[j], brow[t], crow[t]);
  }
}

void Avx2GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                      size_t r1, size_t m, size_t k) {
  size_t i0 = r0;
  for (; i0 + 8 <= r1; i0 += 8) {
    size_t t = 0;
    for (; t + 8 <= k; t += 8) {
      Avx2Gemm8x8F32(a + i0 * m, m, b + t, k, c + i0 * k + t, k, m);
    }
    if (t < k) {
      for (size_t i = i0; i < i0 + 8; ++i) {
        const float* arow = a + i * m;
        float* crow = c + i * k;
        for (size_t j = 0; j < m; ++j) {
          float av = arow[j];
          const float* brow = b + j * k;
          for (size_t tt = t; tt < k; ++tt) {
            crow[tt] = std::fmaf(av, brow[tt], crow[tt]);
          }
        }
      }
    }
  }
  for (; i0 < r1; ++i0) {
    Avx2GemmRow(a + i0 * m, b, c + i0 * k, m, k);
  }
}

void Avx2GemmTransAPanelF32(const float* a, const float* b, float* c,
                            size_t c0, size_t c1, size_t m, size_t n,
                            size_t k) {
  // Output row j of C is column j of A against all of B: an axpy
  // accumulation over A's rows, i ascending, vectorized over C's
  // columns.
  for (size_t j = c0; j < c1; ++j) {
    float* crow = c + j * k;
    for (size_t i = 0; i < m; ++i) {
      __m256 av = _mm256_broadcast_ss(a + i * n + j);
      const float* brow = b + i * k;
      size_t t = 0;
      for (; t + 8 <= k; t += 8) {
        _mm256_storeu_ps(crow + t,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + t),
                                         _mm256_loadu_ps(crow + t)));
      }
      for (; t < k; ++t) crow[t] = std::fmaf(a[i * n + j], brow[t], crow[t]);
    }
  }
}

void Avx2GemmTransBPanelF32(const float* a, const float* b, float* c,
                            size_t r0, size_t r1, size_t m, size_t k) {
  // Row of A against rows of B: independent float-accumulated dots. The
  // float (vs. the scalar path's double) accumulation stays within the
  // documented 1e-5 cross-path tolerance at the matrix sizes the models
  // use.
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * m;
    float* crow = c + i * k;
    for (size_t t = 0; t < k; ++t) {
      crow[t] = Avx2DotF32(arow, b + t * m, m);
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2+fma",
    Avx2DotF32,
    Avx2DotF32D,
    Avx2SumF32,
    Avx2SumSqF32,
    Avx2SqDistF32,
    Avx2CosineF32,
    Avx2CosineF64,
    Avx2AxpyF32,
    Avx2ScaleAddF32,
    Avx2ScaleF32,
    Avx2MulF32,
    Avx2MulAddF32,
    Avx2ClampF32,
    Avx2AdamUpdateF32,
    Avx2Gemm8x8F32,
    Avx2GemmPanelF32,
    Avx2GemmTransAPanelF32,
    Avx2GemmTransBPanelF32,
};

}  // namespace

const KernelOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace autodc::nn::kernels

#else  // !__AVX2__

namespace autodc::nn::kernels {

const KernelOps* Avx2Ops() { return nullptr; }

}  // namespace autodc::nn::kernels

#endif  // __AVX2__
