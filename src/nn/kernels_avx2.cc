#include "src/nn/kernels.h"

// AVX2+FMA kernel table. This file is compiled with -mavx2 -mfma when
// the toolchain supports them (see src/CMakeLists.txt); everything is
// guarded by __AVX2__ so a build without those flags still links and
// reports the table as absent. The dispatcher only installs this table
// after __builtin_cpu_supports confirms the CPU really has AVX2+FMA, so
// no code here runs on hardware that cannot execute it.
//
// Determinism note: every kernel fixes its lane layout, accumulator
// count, and horizontal-reduction order, so results depend only on the
// inputs. The Gemm panel kernels additionally guarantee that each
// OUTPUT ROW sees the same per-element operation sequence
// (c = fma(a_ij, b_jt, c), j ascending) whether it was computed by the
// 8x8 micro-kernel, the single-row path, or the scalar column
// remainder — which is what makes matmul results independent of how
// ParallelFor chunks rows across threads.

#ifdef __AVX2__

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>

namespace autodc::nn::kernels {
namespace {

inline float Hsum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 1));
  return _mm_cvtss_f32(s);
}

inline double Hsum256d(__m256d v) {
  __m128d lo = _mm256_castpd256_pd128(v);
  __m128d hi = _mm256_extractf128_pd(v, 1);
  __m128d s = _mm_add_pd(lo, hi);
  s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
  return _mm_cvtsd_f64(s);
}

// Widens the low/high halves of 8 packed floats to 2x4 doubles — the
// building block of the double-accumulation reductions.
inline void CvtPd(__m256 v, __m256d* lo, __m256d* hi) {
  *lo = _mm256_cvtps_pd(_mm256_castps256_ps128(v));
  *hi = _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1));
}

// ---- Level-1 ----------------------------------------------------------

float Avx2DotF32(const float* a, const float* b, size_t n) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  __m256 acc2 = _mm256_setzero_ps();
  __m256 acc3 = _mm256_setzero_ps();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
    acc2 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 16),
                           _mm256_loadu_ps(b + i + 16), acc2);
    acc3 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 24),
                           _mm256_loadu_ps(b + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                           _mm256_loadu_ps(b + i), acc0);
  }
  float s = Hsum256(_mm256_add_ps(_mm256_add_ps(acc0, acc1),
                                  _mm256_add_ps(acc2, acc3)));
  for (; i < n; ++i) s = std::fmaf(a[i], b[i], s);
  return s;
}

double Avx2DotF32D(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    acc_lo = _mm256_fmadd_pd(alo, blo, acc_lo);
    acc_hi = _mm256_fmadd_pd(ahi, bhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double Avx2SumF32(const float* x, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    CvtPd(_mm256_loadu_ps(x + i), &lo, &hi);
    acc_lo = _mm256_add_pd(acc_lo, lo);
    acc_hi = _mm256_add_pd(acc_hi, hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += x[i];
  return s;
}

double Avx2SumSqF32(const float* x, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d lo, hi;
    CvtPd(_mm256_loadu_ps(x + i), &lo, &hi);
    acc_lo = _mm256_fmadd_pd(lo, lo, acc_lo);
    acc_hi = _mm256_fmadd_pd(hi, hi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return s;
}

double Avx2SqDistF32(const float* a, const float* b, size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    __m256d dlo = _mm256_sub_pd(alo, blo);
    __m256d dhi = _mm256_sub_pd(ahi, bhi);
    acc_lo = _mm256_fmadd_pd(dlo, dlo, acc_lo);
    acc_hi = _mm256_fmadd_pd(dhi, dhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

// Fused single pass over both vectors: dot, |a|^2, |b|^2 in double
// lanes. Double accumulation keeps the SIMD path within a few ULP of the
// scalar one, which the exact-value cosine tests (orthogonal -> 0,
// identical -> 1) rely on.
double Avx2CosineF32(const float* a, const float* b, size_t n) {
  __m256d dot_lo = _mm256_setzero_pd(), dot_hi = _mm256_setzero_pd();
  __m256d na_lo = _mm256_setzero_pd(), na_hi = _mm256_setzero_pd();
  __m256d nb_lo = _mm256_setzero_pd(), nb_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(_mm256_loadu_ps(a + i), &alo, &ahi);
    CvtPd(_mm256_loadu_ps(b + i), &blo, &bhi);
    dot_lo = _mm256_fmadd_pd(alo, blo, dot_lo);
    dot_hi = _mm256_fmadd_pd(ahi, bhi, dot_hi);
    na_lo = _mm256_fmadd_pd(alo, alo, na_lo);
    na_hi = _mm256_fmadd_pd(ahi, ahi, na_hi);
    nb_lo = _mm256_fmadd_pd(blo, blo, nb_lo);
    nb_hi = _mm256_fmadd_pd(bhi, bhi, nb_hi);
  }
  double dot = Hsum256d(_mm256_add_pd(dot_lo, dot_hi));
  double na = Hsum256d(_mm256_add_pd(na_lo, na_hi));
  double nb = Hsum256d(_mm256_add_pd(nb_lo, nb_hi));
  for (; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Avx2CosineF64(const double* a, const double* b, size_t n) {
  __m256d dot = _mm256_setzero_pd();
  __m256d na = _mm256_setzero_pd();
  __m256d nb = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256d va = _mm256_loadu_pd(a + i);
    __m256d vb = _mm256_loadu_pd(b + i);
    dot = _mm256_fmadd_pd(va, vb, dot);
    na = _mm256_fmadd_pd(va, va, na);
    nb = _mm256_fmadd_pd(vb, vb, nb);
  }
  double d = Hsum256d(dot), sa = Hsum256d(na), sb = Hsum256d(nb);
  for (; i < n; ++i) {
    d += a[i] * b[i];
    sa += a[i] * a[i];
    sb += b[i] * b[i];
  }
  if (sa <= 0.0 || sb <= 0.0) return 0.0;
  return d / (std::sqrt(sa) * std::sqrt(sb));
}

void Avx2AxpyF32(float alpha, const float* x, float* y, size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], y[i]);
}

void Avx2ScaleAddF32(float alpha, const float* x, float beta, float* y,
                     size_t n) {
  __m256 va = _mm256_set1_ps(alpha);
  __m256 vb = _mm256_set1_ps(beta);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 by = _mm256_mul_ps(vb, _mm256_loadu_ps(y + i));
    _mm256_storeu_ps(y + i,
                     _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i), by));
  }
  for (; i < n; ++i) y[i] = std::fmaf(alpha, x[i], beta * y[i]);
}

void Avx2ScaleF32(float s, float* y, size_t n) {
  __m256 vs = _mm256_set1_ps(s);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, _mm256_mul_ps(vs, _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= s;
}

void Avx2MulF32(const float* x, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_mul_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] *= x[i];
}

void Avx2MulAddF32(const float* a, const float* b, float* y, size_t n) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] = std::fmaf(a[i], b[i], y[i]);
}

void Avx2ClampF32(float lo, float hi, float* y, size_t n) {
  __m256 vlo = _mm256_set1_ps(lo);
  __m256 vhi = _mm256_set1_ps(hi);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(y + i);
    _mm256_storeu_ps(y + i, _mm256_min_ps(_mm256_max_ps(v, vlo), vhi));
  }
  for (; i < n; ++i) y[i] = std::clamp(y[i], lo, hi);
}

void Avx2AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                       float lr, float beta1, float beta2, float eps,
                       float bc1, float bc2) {
  __m256 vb1 = _mm256_set1_ps(beta1);
  __m256 vb2 = _mm256_set1_ps(beta2);
  __m256 v1mb1 = _mm256_set1_ps(1.0f - beta1);
  __m256 v1mb2 = _mm256_set1_ps(1.0f - beta2);
  __m256 vlr = _mm256_set1_ps(lr);
  __m256 veps = _mm256_set1_ps(eps);
  __m256 vbc1 = _mm256_set1_ps(bc1);
  __m256 vbc2 = _mm256_set1_ps(bc2);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 vg = _mm256_loadu_ps(g + i);
    __m256 vm = _mm256_fmadd_ps(vb1, _mm256_loadu_ps(m + i),
                                _mm256_mul_ps(v1mb1, vg));
    __m256 vv = _mm256_fmadd_ps(vb2, _mm256_loadu_ps(v + i),
                                _mm256_mul_ps(v1mb2, _mm256_mul_ps(vg, vg)));
    _mm256_storeu_ps(m + i, vm);
    _mm256_storeu_ps(v + i, vv);
    __m256 mhat = _mm256_div_ps(vm, vbc1);
    __m256 vhat = _mm256_div_ps(vv, vbc2);
    __m256 denom = _mm256_add_ps(_mm256_sqrt_ps(vhat), veps);
    __m256 step = _mm256_div_ps(_mm256_mul_ps(vlr, mhat), denom);
    _mm256_storeu_ps(p + i, _mm256_sub_ps(_mm256_loadu_ps(p + i), step));
  }
  for (; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    float mhat = m[i] / bc1;
    float vhat = v[i] / bc2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// ---- Low-precision ----------------------------------------------------

inline std::int32_t Hsum256i(__m256i v) {
  __m128i lo = _mm256_castsi256_si128(v);
  __m128i hi = _mm256_extracti128_si256(v, 1);
  __m128i s = _mm_add_epi32(lo, hi);
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x4E));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0xB1));
  return _mm_cvtsi128_si32(s);
}

// Exact i32 pair-dot of 32 int8 lanes: |a| as u8 against sign(b, a) as
// i8 through maddubs (i16 pair sums, saturation impossible while
// |q| <= 127), widened to i32 lanes by madd against ones.
inline __m256i DotI8Block(__m256i va, __m256i vb, __m256i ones16) {
  __m256i abs_a = _mm256_abs_epi8(va);
  __m256i sgn_b = _mm256_sign_epi8(vb, va);
  return _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, sgn_b), ones16);
}

// Sum of 32 signed int8 lanes as i32 lanes (two epi8->epi16 widenings).
inline __m256i SumI8Block(__m256i v, __m256i ones16) {
  __m256i lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(v));
  __m256i hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(v, 1));
  return _mm256_add_epi32(_mm256_madd_epi16(lo, ones16),
                          _mm256_madd_epi16(hi, ones16));
}

void Avx2QuantizeI8F32(const float* x, size_t n, Int8Params p,
                       std::int8_t* q) {
  const float inv = 1.0f / p.scale;
  const __m256 vinv = _mm256_set1_ps(inv);
  const __m256i vzp = _mm256_set1_epi32(p.zero_point);
  const __m256i vlo = _mm256_set1_epi32(-127);
  const __m256i vhi = _mm256_set1_epi32(127);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256i v = _mm256_cvtps_epi32(_mm256_mul_ps(_mm256_loadu_ps(x + i),
                                                 vinv));
    v = _mm256_add_epi32(v, vzp);
    v = _mm256_min_epi32(_mm256_max_epi32(v, vlo), vhi);
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i packed16 = _mm_packs_epi32(lo, hi);
    __m128i packed8 = _mm_packs_epi16(packed16, packed16);
    _mm_storel_epi64(reinterpret_cast<__m128i*>(q + i), packed8);
  }
  for (; i < n; ++i) {
    // Same rounding contract as the vector lanes (and the scalar
    // table): RNE via cvtss, out-of-range -> INT32_MIN.
    std::int32_t v =
        _mm_cvtss_si32(_mm_set_ss(x[i] * inv)) + p.zero_point;
    q[i] = static_cast<std::int8_t>(std::clamp(v, -127, 127));
  }
}

void Avx2DequantizeI8F32(const std::int8_t* q, size_t n, Int8Params p,
                         float* x) {
  const __m256 vs = _mm256_set1_ps(p.scale);
  const __m256i vzp = _mm256_set1_epi32(p.zero_point);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(q + i));
    __m256i w = _mm256_sub_epi32(_mm256_cvtepi8_epi32(raw), vzp);
    _mm256_storeu_ps(x + i, _mm256_mul_ps(vs, _mm256_cvtepi32_ps(w)));
  }
  for (; i < n; ++i) {
    x[i] = p.scale * static_cast<float>(q[i] - p.zero_point);
  }
}

std::int32_t Avx2DotI8I32(const std::int8_t* a, const std::int8_t* b,
                          size_t n) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(acc, DotI8Block(va, vb, ones16));
  }
  std::int32_t s = Hsum256i(acc);
  for (; i < n; ++i) s += static_cast<std::int32_t>(a[i]) * b[i];
  return s;
}

std::int32_t Avx2SumI8I32(const std::int8_t* x, size_t n) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    acc = _mm256_add_epi32(acc, SumI8Block(v, ones16));
  }
  std::int32_t s = Hsum256i(acc);
  for (; i < n; ++i) s += x[i];
  return s;
}

// Fused integer moments (dot, sums, sums of squares) for the cosine /
// sqdist combine. Every accumulator is exact, so the doubles produced
// by the shared dequant algebra match the scalar table bit-for-bit.
struct Avx2Int8Moments {
  std::int32_t dot, sa, sb;
  std::int64_t saa, sbb;
};

Avx2Int8Moments Int8MomentsImpl(const std::int8_t* a, const std::int8_t* b,
                                size_t n) {
  const __m256i ones16 = _mm256_set1_epi16(1);
  __m256i acc_dot = _mm256_setzero_si256();
  __m256i acc_sa = _mm256_setzero_si256();
  __m256i acc_sb = _mm256_setzero_si256();
  __m256i acc_saa = _mm256_setzero_si256();
  __m256i acc_sbb = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i abs_a = _mm256_abs_epi8(va);
    __m256i abs_b = _mm256_abs_epi8(vb);
    acc_dot = _mm256_add_epi32(acc_dot, DotI8Block(va, vb, ones16));
    acc_saa = _mm256_add_epi32(
        acc_saa,
        _mm256_madd_epi16(_mm256_maddubs_epi16(abs_a, abs_a), ones16));
    acc_sbb = _mm256_add_epi32(
        acc_sbb,
        _mm256_madd_epi16(_mm256_maddubs_epi16(abs_b, abs_b), ones16));
    acc_sa = _mm256_add_epi32(acc_sa, SumI8Block(va, ones16));
    acc_sb = _mm256_add_epi32(acc_sb, SumI8Block(vb, ones16));
  }
  Avx2Int8Moments m;
  m.dot = Hsum256i(acc_dot);
  m.sa = Hsum256i(acc_sa);
  m.sb = Hsum256i(acc_sb);
  m.saa = Hsum256i(acc_saa);
  m.sbb = Hsum256i(acc_sbb);
  for (; i < n; ++i) {
    std::int32_t av = a[i], bv = b[i];
    m.dot += av * bv;
    m.sa += av;
    m.sb += bv;
    m.saa += av * av;
    m.sbb += bv * bv;
  }
  return m;
}

double Avx2CosineI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                    Int8Params pb, size_t n) {
  Avx2Int8Moments m = Int8MomentsImpl(a, b, n);
  double na = DequantNormSqD(m.saa, pa, m.sa, n);
  double nb = DequantNormSqD(m.sbb, pb, m.sb, n);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double dot = DequantDotD(m.dot, pa, m.sa, pb, m.sb, n);
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Avx2SqDistI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                    Int8Params pb, size_t n) {
  Avx2Int8Moments m = Int8MomentsImpl(a, b, n);
  double na = DequantNormSqD(m.saa, pa, m.sa, n);
  double nb = DequantNormSqD(m.sbb, pb, m.sb, n);
  double dot = DequantDotD(m.dot, pa, m.sa, pb, m.sb, n);
  // Out-of-line combine: see DequantSqDistCombineD's doc for why
  // inlining it here would break bit-identity.
  return DequantSqDistCombineD(na, nb, dot);
}

// Same rounding/NaN contract as the scalar table's F32ToBf16One.
inline std::uint16_t Bf16One(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  std::uint32_t r = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(r >> 16);
}

inline float Bf16ToFloatOne(std::uint16_t h) {
  std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// Widens 8 bf16 lanes to packed f32 (exact: shift into the high half).
inline __m256 Bf16Load8(const std::uint16_t* p) {
  __m128i h = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_cvtepu16_epi32(h), 16));
}

void Avx2F32ToBf16(const float* x, size_t n, std::uint16_t* y) {
  const __m256i bias = _mm256_set1_epi32(0x7FFF);
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i qnan = _mm256_set1_epi32(0x0040);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_loadu_ps(x + i);
    __m256i bits = _mm256_castps_si256(v);
    __m256i lsb = _mm256_and_si256(_mm256_srli_epi32(bits, 16), one);
    __m256i rounded = _mm256_srli_epi32(
        _mm256_add_epi32(_mm256_add_epi32(bits, bias), lsb), 16);
    // NaN lanes (v != v) keep their truncated pattern with the quiet
    // bit forced, instead of rounding into infinity.
    __m256i nan_val =
        _mm256_or_si256(_mm256_srli_epi32(bits, 16), qnan);
    __m256i is_nan =
        _mm256_castps_si256(_mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    __m256i out = _mm256_blendv_epi8(rounded, nan_val, is_nan);
    // Pack 8 u32 (each <= 0xFFFF) to 8 u16; packus interleaves 128-bit
    // lanes, so restore order with a 64-bit permute.
    __m256i packed = _mm256_packus_epi32(out, out);
    packed = _mm256_permute4x64_epi64(packed, 0x08);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm256_castsi256_si128(packed));
  }
  for (; i < n; ++i) y[i] = Bf16One(x[i]);
}

void Avx2Bf16ToF32(const std::uint16_t* x, size_t n, float* y) {
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(y + i, Bf16Load8(x + i));
  }
  for (; i < n; ++i) y[i] = Bf16ToFloatOne(x[i]);
}

double Avx2DotBf16D(const std::uint16_t* a, const std::uint16_t* b,
                    size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(Bf16Load8(a + i), &alo, &ahi);
    CvtPd(Bf16Load8(b + i), &blo, &bhi);
    acc_lo = _mm256_fmadd_pd(alo, blo, acc_lo);
    acc_hi = _mm256_fmadd_pd(ahi, bhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    s += static_cast<double>(Bf16ToFloatOne(a[i])) * Bf16ToFloatOne(b[i]);
  }
  return s;
}

double Avx2CosineBf16(const std::uint16_t* a, const std::uint16_t* b,
                      size_t n) {
  __m256d dot_lo = _mm256_setzero_pd(), dot_hi = _mm256_setzero_pd();
  __m256d na_lo = _mm256_setzero_pd(), na_hi = _mm256_setzero_pd();
  __m256d nb_lo = _mm256_setzero_pd(), nb_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(Bf16Load8(a + i), &alo, &ahi);
    CvtPd(Bf16Load8(b + i), &blo, &bhi);
    dot_lo = _mm256_fmadd_pd(alo, blo, dot_lo);
    dot_hi = _mm256_fmadd_pd(ahi, bhi, dot_hi);
    na_lo = _mm256_fmadd_pd(alo, alo, na_lo);
    na_hi = _mm256_fmadd_pd(ahi, ahi, na_hi);
    nb_lo = _mm256_fmadd_pd(blo, blo, nb_lo);
    nb_hi = _mm256_fmadd_pd(bhi, bhi, nb_hi);
  }
  double dot = Hsum256d(_mm256_add_pd(dot_lo, dot_hi));
  double na = Hsum256d(_mm256_add_pd(na_lo, na_hi));
  double nb = Hsum256d(_mm256_add_pd(nb_lo, nb_hi));
  for (; i < n; ++i) {
    double av = Bf16ToFloatOne(a[i]), bv = Bf16ToFloatOne(b[i]);
    dot += av * bv;
    na += av * av;
    nb += bv * bv;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double Avx2SqDistBf16(const std::uint16_t* a, const std::uint16_t* b,
                      size_t n) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256d alo, ahi, blo, bhi;
    CvtPd(Bf16Load8(a + i), &alo, &ahi);
    CvtPd(Bf16Load8(b + i), &blo, &bhi);
    __m256d dlo = _mm256_sub_pd(alo, blo);
    __m256d dhi = _mm256_sub_pd(ahi, bhi);
    acc_lo = _mm256_fmadd_pd(dlo, dlo, acc_lo);
    acc_hi = _mm256_fmadd_pd(dhi, dhi, acc_hi);
  }
  double s = Hsum256d(_mm256_add_pd(acc_lo, acc_hi));
  for (; i < n; ++i) {
    double d = static_cast<double>(Bf16ToFloatOne(a[i])) - Bf16ToFloatOne(b[i]);
    s += d * d;
  }
  return s;
}

void Avx2GemmI8TransBPanelF32(const std::int8_t* a, const Int8Params* a_params,
                              const std::int32_t* a_sums,
                              const std::int8_t* b,
                              const Int8Params* b_params,
                              const std::int32_t* b_sums, float* c, size_t r0,
                              size_t r1, size_t m, size_t k) {
  for (size_t i = r0; i < r1; ++i) {
    const std::int8_t* arow = a + i * m;
    float* crow = c + i * k;
    for (size_t t = 0; t < k; ++t) {
      std::int32_t idot = Avx2DotI8I32(arow, b + t * m, m);
      crow[t] = static_cast<float>(
          DequantDotD(idot, a_params[i], a_sums[i], b_params[t], b_sums[t],
                      m));
    }
  }
}

// ---- Level-3 ----------------------------------------------------------

// C[8x8] += A[8 x kc] * B[kc x 8]. The 8x8 C block lives in eight ymm
// accumulators; each B row is loaded once and feeds eight FMAs (one per
// A row broadcast).
void Avx2Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                    float* c, size_t ldc, size_t kc) {
  __m256 c0 = _mm256_loadu_ps(c + 0 * ldc);
  __m256 c1 = _mm256_loadu_ps(c + 1 * ldc);
  __m256 c2 = _mm256_loadu_ps(c + 2 * ldc);
  __m256 c3 = _mm256_loadu_ps(c + 3 * ldc);
  __m256 c4 = _mm256_loadu_ps(c + 4 * ldc);
  __m256 c5 = _mm256_loadu_ps(c + 5 * ldc);
  __m256 c6 = _mm256_loadu_ps(c + 6 * ldc);
  __m256 c7 = _mm256_loadu_ps(c + 7 * ldc);
  for (size_t j = 0; j < kc; ++j) {
    __m256 brow = _mm256_loadu_ps(b + j * ldb);
    c0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 0 * lda + j), brow, c0);
    c1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 1 * lda + j), brow, c1);
    c2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 2 * lda + j), brow, c2);
    c3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 3 * lda + j), brow, c3);
    c4 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 4 * lda + j), brow, c4);
    c5 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 5 * lda + j), brow, c5);
    c6 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 6 * lda + j), brow, c6);
    c7 = _mm256_fmadd_ps(_mm256_broadcast_ss(a + 7 * lda + j), brow, c7);
  }
  _mm256_storeu_ps(c + 0 * ldc, c0);
  _mm256_storeu_ps(c + 1 * ldc, c1);
  _mm256_storeu_ps(c + 2 * ldc, c2);
  _mm256_storeu_ps(c + 3 * ldc, c3);
  _mm256_storeu_ps(c + 4 * ldc, c4);
  _mm256_storeu_ps(c + 5 * ldc, c5);
  _mm256_storeu_ps(c + 6 * ldc, c6);
  _mm256_storeu_ps(c + 7 * ldc, c7);
}

// One output row: crow[0:k] += arow[0:m] * B, j ascending. Same
// per-element fma sequence as the micro-kernel, so a row computed here
// matches one computed inside an 8-row block bit-for-bit.
inline void Avx2GemmRow(const float* arow, const float* b, float* crow,
                        size_t m, size_t k) {
  for (size_t j = 0; j < m; ++j) {
    __m256 av = _mm256_broadcast_ss(arow + j);
    const float* brow = b + j * k;
    size_t t = 0;
    for (; t + 8 <= k; t += 8) {
      _mm256_storeu_ps(crow + t,
                       _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + t),
                                       _mm256_loadu_ps(crow + t)));
    }
    for (; t < k; ++t) crow[t] = std::fmaf(arow[j], brow[t], crow[t]);
  }
}

void Avx2GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                      size_t r1, size_t m, size_t k) {
  size_t i0 = r0;
  for (; i0 + 8 <= r1; i0 += 8) {
    size_t t = 0;
    for (; t + 8 <= k; t += 8) {
      Avx2Gemm8x8F32(a + i0 * m, m, b + t, k, c + i0 * k + t, k, m);
    }
    if (t < k) {
      for (size_t i = i0; i < i0 + 8; ++i) {
        const float* arow = a + i * m;
        float* crow = c + i * k;
        for (size_t j = 0; j < m; ++j) {
          float av = arow[j];
          const float* brow = b + j * k;
          for (size_t tt = t; tt < k; ++tt) {
            crow[tt] = std::fmaf(av, brow[tt], crow[tt]);
          }
        }
      }
    }
  }
  for (; i0 < r1; ++i0) {
    Avx2GemmRow(a + i0 * m, b, c + i0 * k, m, k);
  }
}

void Avx2GemmTransAPanelF32(const float* a, const float* b, float* c,
                            size_t c0, size_t c1, size_t m, size_t n,
                            size_t k) {
  // Output row j of C is column j of A against all of B: an axpy
  // accumulation over A's rows, i ascending, vectorized over C's
  // columns.
  for (size_t j = c0; j < c1; ++j) {
    float* crow = c + j * k;
    for (size_t i = 0; i < m; ++i) {
      __m256 av = _mm256_broadcast_ss(a + i * n + j);
      const float* brow = b + i * k;
      size_t t = 0;
      for (; t + 8 <= k; t += 8) {
        _mm256_storeu_ps(crow + t,
                         _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + t),
                                         _mm256_loadu_ps(crow + t)));
      }
      for (; t < k; ++t) crow[t] = std::fmaf(a[i * n + j], brow[t], crow[t]);
    }
  }
}

void Avx2GemmTransBPanelF32(const float* a, const float* b, float* c,
                            size_t r0, size_t r1, size_t m, size_t k) {
  // Row of A against rows of B: independent float-accumulated dots. The
  // float (vs. the scalar path's double) accumulation stays within the
  // documented 1e-5 cross-path tolerance at the matrix sizes the models
  // use.
  for (size_t i = r0; i < r1; ++i) {
    const float* arow = a + i * m;
    float* crow = c + i * k;
    for (size_t t = 0; t < k; ++t) {
      crow[t] = Avx2DotF32(arow, b + t * m, m);
    }
  }
}

constexpr KernelOps kAvx2Ops = {
    "avx2+fma",
    Avx2DotF32,
    Avx2DotF32D,
    Avx2SumF32,
    Avx2SumSqF32,
    Avx2SqDistF32,
    Avx2CosineF32,
    Avx2CosineF64,
    Avx2AxpyF32,
    Avx2ScaleAddF32,
    Avx2ScaleF32,
    Avx2MulF32,
    Avx2MulAddF32,
    Avx2ClampF32,
    Avx2AdamUpdateF32,
    Avx2Gemm8x8F32,
    Avx2GemmPanelF32,
    Avx2GemmTransAPanelF32,
    Avx2GemmTransBPanelF32,
    Avx2QuantizeI8F32,
    Avx2DequantizeI8F32,
    Avx2DotI8I32,
    Avx2SumI8I32,
    Avx2CosineI8,
    Avx2SqDistI8,
    Avx2F32ToBf16,
    Avx2Bf16ToF32,
    Avx2DotBf16D,
    Avx2CosineBf16,
    Avx2SqDistBf16,
    Avx2GemmI8TransBPanelF32,
};

}  // namespace

const KernelOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace autodc::nn::kernels

#else  // !__AVX2__

namespace autodc::nn::kernels {

const KernelOps* Avx2Ops() { return nullptr; }

}  // namespace autodc::nn::kernels

#endif  // __AVX2__
