#ifndef AUTODC_NN_TENSOR_POOL_H_
#define AUTODC_NN_TENSOR_POOL_H_

#include <atomic>
#include <cstddef>
#include <mutex>
#include <vector>

// Buffer pooling for the training hot paths. Every autograd op used to
// malloc a fresh std::vector<float> per node per step; under a
// WorkspaceScope those allocations come from (and return to) a
// free-list pool instead, so steady-state training does no heap churn.
//
// Lifetime rules (see DESIGN.md "Tensor pooling"):
//   * Pooling is opt-in per thread: Tensors allocated while a
//     WorkspaceScope is live on the current thread draw from the pool
//     and return their buffer on destruction. Tensors allocated outside
//     any scope use plain vectors, as before.
//   * A pooled Tensor OWNS its buffer like any other Tensor — it may
//     outlive the scope, move across threads, and be destroyed anywhere;
//     "pooled" only changes where the buffer goes when the Tensor dies.
//   * Buffers are bucketed by power-of-two capacity. Acquire returns a
//     zero-filled buffer (same semantics as a fresh Tensor), Release
//     clears the buffer before caching it.
//   * Each thread keeps a small lock-free cache per bucket in front of a
//     mutex-protected global free list; caches flush to the global list
//     at thread exit. The global pool is never destroyed (leaky
//     singleton), so late releases during shutdown are always safe.
namespace autodc::nn {

class TensorPool {
 public:
  struct Stats {
    size_t hits = 0;          // Acquire served from a free list
    size_t misses = 0;        // Acquire had to heap-allocate
    size_t releases = 0;      // buffers returned to the pool
    size_t bytes_cached = 0;  // bytes currently held in free lists
  };

  /// The process-wide pool (leaky singleton).
  static TensorPool& Global();

  /// A zero-filled buffer of size n with capacity >= the power-of-two
  /// bucket of n. n == 0 returns an empty, unpooled buffer.
  std::vector<float> Acquire(size_t n);

  /// Returns a buffer to the pool. Accepts ANY vector (not just ones
  /// that came from Acquire); it is bucketed by its capacity. Buffers
  /// too large to pool are simply freed.
  void Release(std::vector<float>&& buf);

  Stats GetStats() const;
  void ResetStats();

  /// Drops every buffer on the GLOBAL free lists (thread caches keep
  /// theirs until thread exit). For tests and memory-pressure hooks.
  void Clear();

  // Buffers above 2^kMaxBucket floats (64 MiB) are never pooled.
  static constexpr size_t kMaxBucket = 24;
  static constexpr size_t kNumBuckets = kMaxBucket + 1;
  static constexpr size_t kThreadCacheCap = 8;   // buffers/bucket/thread
  static constexpr size_t kGlobalCap = 64;       // buffers/bucket global

 private:
  friend struct TensorPoolThreadCache;

  TensorPool() = default;

  // Global-list halves of Acquire/Release; return success.
  bool AcquireGlobal(size_t bucket, std::vector<float>* out);
  bool ReleaseGlobal(size_t bucket, std::vector<float>&& buf);
  void FlushThreadCache(struct TensorPoolThreadCache* cache);

  mutable std::mutex mu_;
  std::vector<std::vector<float>> free_[kNumBuckets];
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
  std::atomic<size_t> releases_{0};
  // Bytes held by free lists (thread caches + global). Signed so a
  // transiently interleaved add/sub never wraps.
  std::atomic<long long> bytes_cached_{0};
};

/// RAII switch for autograd workspace mode: while at least one
/// WorkspaceScope is live on the current thread, Tensor allocations on
/// that thread draw from TensorPool::Global(). Scopes nest; the flag is
/// per-thread, so a ParallelFor worker is only in workspace mode if the
/// worker's own lambda opens a scope.
class WorkspaceScope {
 public:
  WorkspaceScope();
  ~WorkspaceScope();
  WorkspaceScope(const WorkspaceScope&) = delete;
  WorkspaceScope& operator=(const WorkspaceScope&) = delete;
};

/// True when a WorkspaceScope is live on the current thread.
bool WorkspaceActive();

}  // namespace autodc::nn

#endif  // AUTODC_NN_TENSOR_POOL_H_
