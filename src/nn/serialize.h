#ifndef AUTODC_NN_SERIALIZE_H_
#define AUTODC_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/nn/autograd.h"

namespace autodc::nn {

/// Writes parameter tensors to a stream in a simple binary format
/// (magic, count, then rank/dims/float data per tensor).
Status SaveParameters(const std::vector<VarPtr>& params, std::ostream* out);

/// Reads tensors back into the given parameters. Shapes must match the
/// saved checkpoint exactly — this restores weights into an
/// already-constructed model (the usual pre-trained-model workflow of
/// Sec. 3.3).
Status LoadParameters(const std::vector<VarPtr>& params, std::istream* in);

/// File-path conveniences.
Status SaveParametersToFile(const std::vector<VarPtr>& params,
                            const std::string& path);
Status LoadParametersFromFile(const std::vector<VarPtr>& params,
                              const std::string& path);

}  // namespace autodc::nn

#endif  // AUTODC_NN_SERIALIZE_H_
