#ifndef AUTODC_NN_TENSOR_H_
#define AUTODC_NN_TENSOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/rng.h"

namespace autodc::nn {

/// Non-owning view of a contiguous float span (one tensor/matrix row).
/// Replaces per-row copies in nearest-neighbour search and SGNS inner
/// loops; valid only while the owning storage is alive and unresized.
struct RowView {
  const float* data = nullptr;
  size_t size = 0;

  float operator[](size_t i) const { return data[i]; }
  const float* begin() const { return data; }
  const float* end() const { return data + size; }
  bool empty() const { return size == 0; }
};

/// Dense float32 tensor of rank 1 or 2. This is the numeric workhorse of
/// the from-scratch deep-learning substrate: small, contiguous, row-major.
/// Rank-2 shape is {rows, cols}; rank-1 is {n}.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<size_t> shape);
  Tensor(std::vector<size_t> shape, std::vector<float> data);

  // Rule of five: a Tensor allocated while a WorkspaceScope is live on
  // the current thread (see tensor_pool.h) draws its buffer from
  // TensorPool::Global() and returns it on destruction. pooled_ only
  // changes where the buffer goes when the Tensor dies; ownership is
  // ordinary value semantics either way.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  static Tensor Zeros(std::vector<size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor Full(std::vector<size_t> shape, float v);
  static Tensor Ones(std::vector<size_t> shape) { return Full(std::move(shape), 1.0f); }
  /// i.i.d. Uniform(-scale, scale).
  static Tensor RandomUniform(std::vector<size_t> shape, float scale, Rng* rng);
  /// i.i.d. Normal(0, stddev).
  static Tensor RandomNormal(std::vector<size_t> shape, float stddev, Rng* rng);
  /// Xavier/Glorot uniform for a {fan_out, fan_in} weight matrix.
  static Tensor Xavier(size_t fan_out, size_t fan_in, Rng* rng);
  /// Rank-1 tensor from values.
  static Tensor FromVector(const std::vector<float>& v);

  const std::vector<size_t>& shape() const { return shape_; }
  size_t rank() const { return shape_.size(); }
  size_t size() const { return data_.size(); }
  size_t rows() const { return shape_.empty() ? 0 : shape_[0]; }
  size_t cols() const { return shape_.size() < 2 ? 1 : shape_[1]; }

  float& operator[](size_t i) { return data_[i]; }
  float operator[](size_t i) const { return data_[i]; }
  float& at(size_t r, size_t c) { return data_[r * cols() + c]; }
  float at(size_t r, size_t c) const { return data_[r * cols() + c]; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  const std::vector<float>& vec() const { return data_; }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Sets every element to v.
  void Fill(float v);
  /// Sum of elements.
  double Sum() const;
  /// Mean of elements (0 for empty).
  double Mean() const;
  /// L2 norm.
  double Norm() const;
  /// Index of the maximum element (row-major; 0 for empty).
  size_t ArgMax() const;
  /// View of row r of a rank-2 tensor as a rank-1 tensor (copies).
  Tensor RowCopy(size_t r) const;
  /// Non-owning view of row r; valid while this Tensor is alive.
  RowView Row(size_t r) const { return {data_.data() + r * cols(), cols()}; }

  std::string ShapeString() const;

 private:
  void ReleaseBuffer();

  std::vector<size_t> shape_;
  std::vector<float> data_;
  bool pooled_ = false;
};

/// In-place a += b * scale (shapes must match).
void Axpy(const Tensor& b, float scale, Tensor* a);

/// {rows.size(), src.cols()} tensor whose i-th row copies src row
/// rows[i] (indices may repeat).
Tensor GatherRows(const Tensor& src, const std::vector<size_t>& rows);

/// Scatter-add: dst row rows[i] += src row i * scale. The batched-rows
/// counterpart of Axpy used by embedding lookups and row-slice backward
/// passes.
void AxpyRows(const Tensor& src, const std::vector<size_t>& rows, float scale,
              Tensor* dst);

/// C = A * B for rank-2 A {n,m} and B {m,k}. Aborts on shape mismatch in
/// debug; callers validate shapes at graph-construction time.
/// The matmul family is cache-blocked and runs on the autodc::ThreadPool
/// (row blocks in parallel); per-element accumulation order is fixed, so
/// results do not depend on the thread count.
Tensor MatMul(const Tensor& a, const Tensor& b);

/// C = A^T * B for A {m,n}, B {m,k} -> {n,k}.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);

/// C = A * B^T for A {n,m}, B {k,m} -> {n,k}.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

}  // namespace autodc::nn

#endif  // AUTODC_NN_TENSOR_H_
