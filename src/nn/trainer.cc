#include "src/nn/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "src/nn/serialize.h"
#include "src/nn/tensor_pool.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::nn {

namespace {

float ScheduledLr(const TrainOptions& options, float base_lr, size_t epoch) {
  if (options.lr_schedule == LrSchedule::kConstant || options.epochs <= 1) {
    return base_lr;
  }
  double progress = static_cast<double>(epoch) /
                    static_cast<double>(options.epochs - 1);
  double f = options.lr_final_factor;
  double factor = 1.0;
  switch (options.lr_schedule) {
    case LrSchedule::kConstant:
      break;
    case LrSchedule::kLinear:
      factor = 1.0 - (1.0 - f) * progress;
      break;
    case LrSchedule::kCosine:
      factor = f + (1.0 - f) * 0.5 * (1.0 + std::cos(3.14159265358979323846 *
                                                     progress));
      break;
  }
  return static_cast<float>(base_lr * factor);
}

std::vector<Tensor> SnapshotValues(const std::vector<VarPtr>& params) {
  std::vector<Tensor> out;
  out.reserve(params.size());
  for (const VarPtr& p : params) out.push_back(p->value);
  return out;
}

void RestoreValues(const std::vector<VarPtr>& params,
                   const std::vector<Tensor>& snapshot) {
  for (size_t i = 0; i < params.size() && i < snapshot.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

}  // namespace

TrainResult Trainer::Fit(size_t num_examples, Rng* rng, Optimizer* optimizer,
                         const BatchLossFn& batch_loss) {
  return Run(num_examples, rng, optimizer,
             optimizer != nullptr ? optimizer->params()
                                  : std::vector<VarPtr>{},
             batch_loss, nullptr);
}

TrainResult Trainer::FitSteps(size_t num_examples, Rng* rng,
                              std::vector<VarPtr> params,
                              const BatchStepFn& batch_step) {
  return Run(num_examples, rng, /*optimizer=*/nullptr, params, nullptr,
             batch_step);
}

TrainResult Trainer::Run(size_t num_examples, Rng* rng, Optimizer* optimizer,
                         const std::vector<VarPtr>& params,
                         const BatchLossFn& batch_loss,
                         const BatchStepFn& batch_step) {
  TrainResult result;
  if (num_examples == 0 || options_.epochs == 0) return result;
  AUTODC_OBS_SPAN(fit_span, "trainer.fit");
  const size_t batch_size = std::max<size_t>(1, options_.batch_size);

  // ---- Validation split (loss mode only). Drawn once, up front, from
  // the caller's RNG — with validation off this consumes nothing, so the
  // shuffle stream matches the seed loops exactly.
  std::vector<size_t> train_idx(num_examples);
  std::iota(train_idx.begin(), train_idx.end(), 0);
  std::vector<size_t> val_idx;
  if (options_.validation_fraction > 0.0 && batch_loss != nullptr) {
    if (num_examples < 2) {
      // A split needs at least one example on each side.
      result.diagnostics.push_back(
          "validation disabled: need >= 2 examples to split, have " +
          std::to_string(num_examples));
      AUTODC_LOG(WARN) << "trainer: " << result.diagnostics.back();
    } else {
      size_t val_n = static_cast<size_t>(
          static_cast<double>(num_examples) * options_.validation_fraction);
      // `num_examples * fraction` can round to 0 (tiny datasets / small
      // fractions) or swallow the whole training set (fractions near 1).
      // Clamp to [1, num_examples - 1] so both sides stay non-empty, and
      // say so instead of silently training without validation.
      if (val_n == 0) {
        val_n = 1;
        result.diagnostics.push_back(
            "validation fraction " +
            std::to_string(options_.validation_fraction) + " rounded to 0 of " +
            std::to_string(num_examples) + " examples; clamped to 1");
        AUTODC_LOG(WARN) << "trainer: " << result.diagnostics.back();
      } else if (val_n >= num_examples) {
        val_n = num_examples - 1;
        result.diagnostics.push_back(
            "validation fraction " +
            std::to_string(options_.validation_fraction) +
            " would leave no training examples; clamped to " +
            std::to_string(val_n) + " of " + std::to_string(num_examples));
        AUTODC_LOG(WARN) << "trainer: " << result.diagnostics.back();
      }
      rng->Shuffle(&train_idx);
      val_idx.assign(train_idx.end() - static_cast<ptrdiff_t>(val_n),
                     train_idx.end());
      train_idx.resize(num_examples - val_n);
      // Stable index order so batching depends only on the per-epoch
      // shuffles, not on the split draw.
      std::sort(train_idx.begin(), train_idx.end());
      std::sort(val_idx.begin(), val_idx.end());
    }
  }
  const bool monitor_val = !val_idx.empty();
  const bool early_stopping = options_.early_stopping_patience > 0;

  // Persistent-shuffle order survives across epochs; fresh mode resets
  // it to train_idx at the top of every epoch.
  std::vector<size_t> order = train_idx;

  const float base_lr =
      optimizer != nullptr ? optimizer->learning_rate() : 0.0f;
  size_t epochs_without_improvement = 0;
  std::vector<Tensor> best_weights;

  for (size_t epoch = 0; epoch < options_.epochs; ++epoch) {
    AUTODC_OBS_SPAN(epoch_span, "trainer.epoch");
    auto epoch_start = std::chrono::steady_clock::now();
    float lr = base_lr;
    if (optimizer != nullptr &&
        options_.lr_schedule != LrSchedule::kConstant) {
      lr = ScheduledLr(options_, base_lr, epoch);
      optimizer->set_learning_rate(lr);
    }

    // Per-batch graph temporaries of this epoch draw from the tensor
    // pool (the seed loops opened the same scope).
    WorkspaceScope workspace;
    if (options_.shuffle == ShuffleMode::kFreshEachEpoch) order = train_idx;
    rng->Shuffle(&order);

    double total = 0.0;
    size_t batches = 0;
    for (size_t start = 0; start < order.size(); start += batch_size) {
      size_t end = std::min(order.size(), start + batch_size);
      std::vector<size_t> idx(order.begin() + static_cast<ptrdiff_t>(start),
                              order.begin() + static_cast<ptrdiff_t>(end));
#ifndef AUTODC_DISABLE_OBS
      auto batch_start = std::chrono::steady_clock::now();
#endif
      if (batch_loss != nullptr) {
        VarPtr loss = batch_loss(idx, /*train=*/true);
        total += loss->value[0];
        Backward(loss);
        if (options_.grad_clip > 0.0f) {
          optimizer->ClipGradients(options_.grad_clip);
          AUTODC_OBS_INC("trainer.grad_clip_batches");
        }
        optimizer->Step();
      } else {
        total += batch_step(idx);
      }
      ++batches;
      AUTODC_OBS_INC("trainer.batches");
#ifndef AUTODC_DISABLE_OBS
      if (obs::Enabled()) {
        double batch_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - batch_start)
                              .count();
        AUTODC_OBS_HIST("trainer.batch_ms", batch_ms);
      }
#endif
    }
    double train_loss =
        batches > 0 ? total / static_cast<double>(batches) : 0.0;

    // ---- Deterministic validation pass (train=false: no dropout, no
    // corruption, no sampling — and no RNG draws).
    double val_loss = std::numeric_limits<double>::quiet_NaN();
    if (monitor_val) {
      double val_total = 0.0;
      size_t val_batches = 0;
      for (size_t start = 0; start < val_idx.size(); start += batch_size) {
        size_t end = std::min(val_idx.size(), start + batch_size);
        std::vector<size_t> idx(
            val_idx.begin() + static_cast<ptrdiff_t>(start),
            val_idx.begin() + static_cast<ptrdiff_t>(end));
        VarPtr loss = batch_loss(idx, /*train=*/false);
        val_total += loss->value[0];
        ++val_batches;
      }
      val_loss = val_batches > 0
                     ? val_total / static_cast<double>(val_batches)
                     : 0.0;
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss = train_loss;
    stats.val_loss = val_loss;
    stats.lr = lr;
    stats.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - epoch_start)
                        .count();
    result.history.push_back(stats);
    result.final_train_loss = train_loss;
    result.epochs_run = epoch + 1;
    // EpochStats double as a registry client: every epoch publishes its
    // telemetry so a snapshot taken mid-training reflects the run.
    AUTODC_OBS_INC("trainer.epochs");
    AUTODC_OBS_HIST("trainer.epoch_ms", stats.wall_ms);
    AUTODC_OBS_GAUGE_SET("trainer.train_loss", stats.train_loss);
    if (monitor_val) {
      AUTODC_OBS_GAUGE_SET("trainer.val_loss", stats.val_loss);
    }
    AUTODC_OBS_GAUGE_SET("trainer.lr", static_cast<double>(stats.lr));
    AUTODC_LOG(DEBUG) << "trainer: epoch " << epoch + 1 << "/"
                      << options_.epochs << " train_loss=" << train_loss
                      << (monitor_val
                              ? " val_loss=" + std::to_string(val_loss)
                              : std::string())
                      << " lr=" << lr << " wall_ms=" << stats.wall_ms;
    if (options_.epoch_callback) options_.epoch_callback(stats);

    if (options_.checkpoint_every > 0 && !options_.checkpoint_path.empty() &&
        (epoch + 1) % options_.checkpoint_every == 0 && !params.empty()) {
      Status s = SaveParametersToFile(params, options_.checkpoint_path);
      if (s.ok()) {
        AUTODC_OBS_INC("trainer.checkpoints_saved");
      } else {
        AUTODC_OBS_INC("trainer.checkpoint_failures");
        AUTODC_LOG(WARN) << "trainer: checkpoint save to '"
                         << options_.checkpoint_path
                         << "' failed: " << s.ToString();
        result.checkpoint_status = s;
      }
    }

    if (early_stopping) {
      double monitored = monitor_val ? val_loss : train_loss;
      if (monitored < result.best_loss - options_.early_stopping_min_delta) {
        result.best_loss = monitored;
        result.best_epoch = epoch;
        epochs_without_improvement = 0;
        if (options_.restore_best_weights && !params.empty()) {
          best_weights = SnapshotValues(params);
        }
      } else if (++epochs_without_improvement >=
                 options_.early_stopping_patience) {
        result.stopped_early = true;
        AUTODC_OBS_INC("trainer.early_stop_events");
        AUTODC_LOG(INFO) << "trainer: early stop after epoch " << epoch + 1
                         << " (best " << result.best_loss << " at epoch "
                         << result.best_epoch + 1 << ")";
        break;
      }
    }
  }

  if (early_stopping && options_.restore_best_weights &&
      !best_weights.empty()) {
    RestoreValues(params, best_weights);
  }
  if (optimizer != nullptr && options_.lr_schedule != LrSchedule::kConstant) {
    optimizer->set_learning_rate(base_lr);  // leave the optimizer reusable
  }
  return result;
}

}  // namespace autodc::nn
