#include "src/nn/autograd.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "src/nn/kernels.h"

namespace autodc::nn {

VarPtr Constant(Tensor value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/false);
}

VarPtr Parameter(Tensor value) {
  return std::make_shared<Variable>(std::move(value), /*requires_grad=*/true);
}

namespace {

// A node needs gradient flow if it is a parameter or any ancestor is.
bool NeedsGrad(const std::vector<VarPtr>& parents) {
  for (const VarPtr& p : parents) {
    if (p->requires_grad) return true;
  }
  return false;
}

VarPtr MakeOp(Tensor value, std::vector<VarPtr> parents,
              std::function<void()> backward) {
  auto out = std::make_shared<Variable>(std::move(value));
  out->requires_grad = NeedsGrad(parents);
  if (out->requires_grad) {
    out->parents = std::move(parents);
    out->backward_fn = std::move(backward);
  }
  return out;
}

}  // namespace

void Backward(const VarPtr& root) {
  assert(root->value.size() == 1 && "Backward requires a scalar root");
  // Iterative topological sort (graphs can be deep for unrolled RNNs).
  std::vector<Variable*> order;
  std::unordered_set<Variable*> visited;
  std::vector<std::pair<Variable*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (child < node->parents.size()) {
      Variable* parent = node->parents[child].get();
      ++child;
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // `order` is parents-before-children; walk it children-first.
  root->EnsureGrad();
  root->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Variable* node = *it;
    // Nodes without gradient flow keep no parent ownership; never run
    // their (inert) backward closures.
    if (node->requires_grad && node->backward_fn) {
      for (const VarPtr& p : node->parents) {
        if (p->requires_grad) p->EnsureGrad();
      }
      node->backward_fn();
    }
  }
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  Axpy(b->value, 1.0f, &out);
  auto result = MakeOp(std::move(out), {a, b}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  Variable* pb = b.get();
  result->backward_fn = [r, pa, pb]() {
    if (pa->requires_grad) Axpy(r->grad, 1.0f, &pa->grad);
    if (pb->requires_grad) Axpy(r->grad, 1.0f, &pb->grad);
  };
  return result;
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  Axpy(b->value, -1.0f, &out);
  auto result = MakeOp(std::move(out), {a, b}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  Variable* pb = b.get();
  result->backward_fn = [r, pa, pb]() {
    if (pa->requires_grad) Axpy(r->grad, 1.0f, &pa->grad);
    if (pb->requires_grad) Axpy(r->grad, -1.0f, &pb->grad);
  };
  return result;
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  assert(a->value.SameShape(b->value));
  Tensor out = a->value;
  kernels::MulF32(b->value.data(), out.data(), out.size());
  auto result = MakeOp(std::move(out), {a, b}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  Variable* pb = b.get();
  result->backward_fn = [r, pa, pb]() {
    size_t n = r->grad.size();
    if (pa->requires_grad) {
      kernels::MulAddF32(r->grad.data(), pb->value.data(), pa->grad.data(), n);
    }
    if (pb->requires_grad) {
      kernels::MulAddF32(r->grad.data(), pa->value.data(), pb->grad.data(), n);
    }
  };
  return result;
}

VarPtr Scale(const VarPtr& a, float s) {
  Tensor out = a->value;
  kernels::ScaleF32(s, out.data(), out.size());
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  result->backward_fn = [r, pa, s]() {
    if (pa->requires_grad) Axpy(r->grad, s, &pa->grad);
  };
  return result;
}

VarPtr AddScalar(const VarPtr& a, float s) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] += s;
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  result->backward_fn = [r, pa]() {
    if (pa->requires_grad) Axpy(r->grad, 1.0f, &pa->grad);
  };
  return result;
}

VarPtr MatMulOp(const VarPtr& a, const VarPtr& b) {
  Tensor out = MatMul(a->value, b->value);
  auto result = MakeOp(std::move(out), {a, b}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  Variable* pb = b.get();
  result->backward_fn = [r, pa, pb]() {
    // dA = dC * B^T ; dB = A^T * dC
    if (pa->requires_grad) {
      Tensor da = MatMulTransB(r->grad, pb->value);
      Axpy(da, 1.0f, &pa->grad);
    }
    if (pb->requires_grad) {
      Tensor db = MatMulTransA(pa->value, r->grad);
      Axpy(db, 1.0f, &pb->grad);
    }
  };
  return result;
}

VarPtr AddBias(const VarPtr& a, const VarPtr& bias) {
  size_t n = a->value.rows();
  size_t k = a->value.cols();
  assert(bias->value.size() == k);
  Tensor out = a->value;
  for (size_t i = 0; i < n; ++i) {
    kernels::AxpyF32(1.0f, bias->value.data(), out.data() + i * k, k);
  }
  auto result = MakeOp(std::move(out), {a, bias}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  Variable* pbias = bias.get();
  result->backward_fn = [r, pa, pbias, n, k]() {
    if (pa->requires_grad) Axpy(r->grad, 1.0f, &pa->grad);
    if (pbias->requires_grad) {
      for (size_t i = 0; i < n; ++i) {
        kernels::AxpyF32(1.0f, r->grad.data() + i * k, pbias->grad.data(), k);
      }
    }
  };
  return result;
}

namespace {

// Generic unary elementwise op: forward maps x->y; backward_factor
// computes dy/dx from (x, y).
template <typename Fwd, typename Dfn>
VarPtr UnaryOp(const VarPtr& a, Fwd fwd, Dfn dydx) {
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(out[i]);
  auto result = std::make_shared<Variable>(std::move(out));
  result->requires_grad = a->requires_grad;
  if (result->requires_grad) {
    result->parents = {a};
    Variable* r = result.get();
    Variable* pa = a.get();
    result->backward_fn = [r, pa, dydx]() {
      for (size_t i = 0; i < r->grad.size(); ++i) {
        pa->grad[i] += r->grad[i] * dydx(pa->value[i], r->value[i]);
      }
    };
  }
  return result;
}

}  // namespace

VarPtr Sigmoid(const VarPtr& a) {
  return UnaryOp(
      a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
      [](float, float y) { return y * (1.0f - y); });
}

VarPtr Tanh(const VarPtr& a) {
  return UnaryOp(
      a, [](float x) { return std::tanh(x); },
      [](float, float y) { return 1.0f - y * y; });
}

VarPtr Relu(const VarPtr& a) {
  return UnaryOp(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x, float) { return x > 0.0f ? 1.0f : 0.0f; });
}

VarPtr LeakyRelu(const VarPtr& a, float alpha) {
  return UnaryOp(
      a, [alpha](float x) { return x > 0.0f ? x : alpha * x; },
      [alpha](float x, float) { return x > 0.0f ? 1.0f : alpha; });
}

VarPtr Exp(const VarPtr& a) {
  return UnaryOp(
      a, [](float x) { return std::exp(x); },
      [](float, float y) { return y; });
}

VarPtr Log(const VarPtr& a, float eps) {
  return UnaryOp(
      a, [eps](float x) { return std::log(std::max(x, eps)); },
      [eps](float x, float) { return 1.0f / std::max(x, eps); });
}

VarPtr Square(const VarPtr& a) {
  return UnaryOp(
      a, [](float x) { return x * x; },
      [](float x, float) { return 2.0f * x; });
}

VarPtr Sum(const VarPtr& a) {
  Tensor out({1});
  out[0] = static_cast<float>(a->value.Sum());
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  result->backward_fn = [r, pa]() {
    if (!pa->requires_grad) return;
    float g = r->grad[0];
    for (size_t i = 0; i < pa->grad.size(); ++i) pa->grad[i] += g;
  };
  return result;
}

VarPtr Mean(const VarPtr& a) {
  size_t n = std::max<size_t>(a->value.size(), 1);
  return Scale(Sum(a), 1.0f / static_cast<float>(n));
}

VarPtr Concat(const std::vector<VarPtr>& parts) {
  size_t total = 0;
  for (const VarPtr& p : parts) total += p->value.size();
  Tensor out({total});
  size_t off = 0;
  for (const VarPtr& p : parts) {
    std::copy(p->value.data(), p->value.data() + p->value.size(),
              out.data() + off);
    off += p->value.size();
  }
  std::vector<VarPtr> parents = parts;
  auto result = MakeOp(std::move(out), std::move(parents), nullptr);
  Variable* r = result.get();
  std::vector<Variable*> raw;
  raw.reserve(parts.size());
  for (const VarPtr& p : parts) raw.push_back(p.get());
  result->backward_fn = [r, raw]() {
    size_t off2 = 0;
    for (Variable* p : raw) {
      if (p->requires_grad) {
        kernels::AxpyF32(1.0f, r->grad.data() + off2, p->grad.data(),
                         p->value.size());
      }
      off2 += p->value.size();
    }
  };
  return result;
}

VarPtr Rows(const VarPtr& matrix, const std::vector<size_t>& indices) {
  auto result =
      MakeOp(GatherRows(matrix->value, indices), {matrix}, nullptr);
  Variable* r = result.get();
  Variable* pm = matrix.get();
  std::vector<size_t> idx = indices;
  result->backward_fn = [r, pm, idx]() {
    if (!pm->requires_grad) return;
    AxpyRows(r->grad, idx, 1.0f, &pm->grad);
  };
  return result;
}

VarPtr MeanRows(const VarPtr& a) {
  size_t n = a->value.rows();
  size_t d = a->value.cols();
  Tensor out({d});
  for (size_t i = 0; i < n; ++i) {
    kernels::AxpyF32(1.0f, a->value.data() + i * d, out.data(), d);
  }
  float inv = n > 0 ? 1.0f / static_cast<float>(n) : 0.0f;
  kernels::ScaleF32(inv, out.data(), d);
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  result->backward_fn = [r, pa, n, d, inv]() {
    if (!pa->requires_grad) return;
    for (size_t i = 0; i < n; ++i) {
      kernels::AxpyF32(inv, r->grad.data(), pa->grad.data() + i * d, d);
    }
  };
  return result;
}

VarPtr DropoutOp(const VarPtr& a, float p, bool train, Rng* rng) {
  if (!train || p <= 0.0f) return a;
  Tensor mask(a->value.shape());
  float keep = 1.0f - p;
  for (size_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng->Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor out = a->value;
  kernels::MulF32(mask.data(), out.data(), out.size());
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  auto mask_ptr = std::make_shared<Tensor>(std::move(mask));
  result->backward_fn = [r, pa, mask_ptr]() {
    if (!pa->requires_grad) return;
    kernels::MulAddF32(r->grad.data(), mask_ptr->data(), pa->grad.data(),
                       r->grad.size());
  };
  return result;
}

namespace {
// Fills `out` with row-wise softmax of `in` ({n,k} or rank-1 treated as
// one row).
void SoftmaxInto(const Tensor& in, Tensor* out) {
  size_t k = in.rank() == 2 ? in.cols() : in.size();
  size_t n = in.size() / std::max<size_t>(k, 1);
  for (size_t i = 0; i < n; ++i) {
    const float* row = in.data() + i * k;
    float* orow = out->data() + i * k;
    float mx = row[0];
    for (size_t j = 1; j < k; ++j) mx = std::max(mx, row[j]);
    double z = 0.0;
    for (size_t j = 0; j < k; ++j) {
      orow[j] = std::exp(row[j] - mx);
      z += orow[j];
    }
    for (size_t j = 0; j < k; ++j) {
      orow[j] = static_cast<float>(orow[j] / z);
    }
  }
}
}  // namespace

VarPtr SoftmaxRows(const VarPtr& a) {
  Tensor out(a->value.shape());
  SoftmaxInto(a->value, &out);
  auto result = MakeOp(std::move(out), {a}, nullptr);
  Variable* r = result.get();
  Variable* pa = a.get();
  result->backward_fn = [r, pa]() {
    if (!pa->requires_grad) return;
    size_t k = r->value.rank() == 2 ? r->value.cols() : r->value.size();
    size_t n = r->value.size() / std::max<size_t>(k, 1);
    for (size_t i = 0; i < n; ++i) {
      const float* y = r->value.data() + i * k;
      const float* dy = r->grad.data() + i * k;
      float* dx = pa->grad.data() + i * k;
      double dot = 0.0;
      for (size_t j = 0; j < k; ++j) dot += static_cast<double>(dy[j]) * y[j];
      for (size_t j = 0; j < k; ++j) {
        dx[j] += y[j] * (dy[j] - static_cast<float>(dot));
      }
    }
  };
  return result;
}

VarPtr MseLoss(const VarPtr& pred, const Tensor& target) {
  assert(pred->value.SameShape(target));
  Tensor out({1});
  double s = 0.0;
  for (size_t i = 0; i < target.size(); ++i) {
    double d = static_cast<double>(pred->value[i]) - target[i];
    s += d * d;
  }
  size_t n = std::max<size_t>(target.size(), 1);
  out[0] = static_cast<float>(s / static_cast<double>(n));
  auto result = MakeOp(std::move(out), {pred}, nullptr);
  Variable* r = result.get();
  Variable* pp = pred.get();
  auto tgt = std::make_shared<Tensor>(target);
  result->backward_fn = [r, pp, tgt, n]() {
    if (!pp->requires_grad) return;
    float g = r->grad[0] * 2.0f / static_cast<float>(n);
    for (size_t i = 0; i < tgt->size(); ++i) {
      pp->grad[i] += g * (pp->value[i] - (*tgt)[i]);
    }
  };
  return result;
}

VarPtr BceWithLogitsLoss(const VarPtr& logits, const Tensor& targets) {
  assert(logits->value.SameShape(targets));
  size_t n = std::max<size_t>(targets.size(), 1);
  Tensor out({1});
  double s = 0.0;
  for (size_t i = 0; i < targets.size(); ++i) {
    double x = logits->value[i];
    double t = targets[i];
    // log(1+exp(x)) computed stably: max(x,0) + log1p(exp(-|x|))
    double lse = std::max(x, 0.0) + std::log1p(std::exp(-std::fabs(x)));
    s += lse - t * x;
  }
  out[0] = static_cast<float>(s / static_cast<double>(n));
  auto result = MakeOp(std::move(out), {logits}, nullptr);
  Variable* r = result.get();
  Variable* pl = logits.get();
  auto tgt = std::make_shared<Tensor>(targets);
  result->backward_fn = [r, pl, tgt, n]() {
    if (!pl->requires_grad) return;
    float g = r->grad[0] / static_cast<float>(n);
    for (size_t i = 0; i < tgt->size(); ++i) {
      float sig = 1.0f / (1.0f + std::exp(-pl->value[i]));
      pl->grad[i] += g * (sig - (*tgt)[i]);
    }
  };
  return result;
}

VarPtr SoftmaxCrossEntropyLoss(const VarPtr& logits,
                               const std::vector<size_t>& labels) {
  size_t k = logits->value.cols();
  size_t n = logits->value.rows();
  assert(labels.size() == n);
  Tensor probs(logits->value.shape());
  SoftmaxInto(logits->value, &probs);
  Tensor out({1});
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s -= std::log(std::max(probs.at(i, labels[i]), 1e-12f));
  }
  out[0] = static_cast<float>(s / std::max<size_t>(n, 1));
  auto result = MakeOp(std::move(out), {logits}, nullptr);
  Variable* r = result.get();
  Variable* pl = logits.get();
  auto probs_ptr = std::make_shared<Tensor>(std::move(probs));
  std::vector<size_t> lab = labels;
  result->backward_fn = [r, pl, probs_ptr, lab, n, k]() {
    if (!pl->requires_grad) return;
    float g = r->grad[0] / static_cast<float>(std::max<size_t>(n, 1));
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < k; ++j) {
        float p = probs_ptr->at(i, j);
        pl->grad.at(i, j) += g * (p - (j == lab[i] ? 1.0f : 0.0f));
      }
    }
  };
  return result;
}

}  // namespace autodc::nn
