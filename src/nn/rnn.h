#ifndef AUTODC_NN_RNN_H_
#define AUTODC_NN_RNN_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"

namespace autodc::nn {

/// Elman RNN cell (Figure 2(d)): h' = tanh(x W_x + h W_h + b).
/// Inputs and states are rank-1 vectors; the cell is unrolled by the
/// caller one step at a time (define-by-run).
class RnnCell {
 public:
  RnnCell(size_t input_dim, size_t hidden_dim, Rng* rng);

  /// One step: consumes x {input_dim} and h {hidden_dim}, returns new h.
  VarPtr Step(const VarPtr& x, const VarPtr& h) const;

  /// Zero initial state.
  VarPtr InitialState() const;

  size_t hidden_dim() const { return hidden_dim_; }
  std::vector<VarPtr> Parameters() const;

 private:
  size_t input_dim_;
  size_t hidden_dim_;
  VarPtr wx_;  ///< {input_dim, hidden}
  VarPtr wh_;  ///< {hidden, hidden}
  VarPtr b_;   ///< {hidden}
};

/// LSTM cell with forget/input/output gates and cell memory, the paper's
/// recommended composition model for tuple embeddings (Sec. 3.1, Fig. 5).
class LstmCell {
 public:
  LstmCell(size_t input_dim, size_t hidden_dim, Rng* rng);

  struct State {
    VarPtr h;
    VarPtr c;
  };

  /// One step over input x.
  State Step(const VarPtr& x, const State& state) const;

  State InitialState() const;

  size_t hidden_dim() const { return hidden_dim_; }
  std::vector<VarPtr> Parameters() const;

 private:
  // One fused weight {input+hidden, 4*hidden} ordered [i, f, g, o].
  size_t input_dim_;
  size_t hidden_dim_;
  VarPtr w_;
  VarPtr b_;
};

/// Direction-aware sequence encoder: runs an LSTM over a sequence of
/// rank-1 input vectors and returns the final hidden state (or the
/// concatenation of both directions' final states when bidirectional).
/// This is DeepER's tuple-composition model.
class LstmEncoder {
 public:
  LstmEncoder(size_t input_dim, size_t hidden_dim, bool bidirectional,
              Rng* rng);

  /// Encodes the sequence; empty input yields the zero state.
  VarPtr Encode(const std::vector<VarPtr>& sequence) const;

  /// Output dimensionality: hidden (uni) or 2*hidden (bi).
  size_t output_dim() const;

  std::vector<VarPtr> Parameters() const;

 private:
  LstmCell forward_;
  std::unique_ptr<LstmCell> backward_;
  size_t hidden_dim_;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_RNN_H_
