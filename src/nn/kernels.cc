#include "src/nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/common/env.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"

// Portable scalar kernel table + runtime dispatch. The scalar loops here
// are operation-for-operation identical to the pre-kernel (seed) code
// they replaced, so forcing the scalar table reproduces seed results
// bit-for-bit. This translation unit is compiled WITHOUT -mavx2, so the
// compiler cannot auto-vectorize these loops into instructions that
// would fault on a non-AVX2 CPU.

namespace autodc::nn::kernels {

namespace {

// ---- Scalar level-1 ---------------------------------------------------

float ScalarDotF32(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double ScalarDotF32D(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double ScalarSumF32(const float* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double ScalarSumSqF32(const float* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return s;
}

double ScalarSqDistF32(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

// Matches the seed CosineImpl<T>: one pass accumulating dot/na/nb in
// doubles, interleaved in ascending index order.
template <typename T>
double ScalarCosine(const T* a, const T* b, size_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double ScalarCosineF32(const float* a, const float* b, size_t n) {
  return ScalarCosine(a, b, n);
}

double ScalarCosineF64(const double* a, const double* b, size_t n) {
  return ScalarCosine(a, b, n);
}

void ScalarAxpyF32(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i] * alpha;
}

void ScalarScaleAddF32(float alpha, const float* x, float beta, float* y,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void ScalarScaleF32(float s, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= s;
}

void ScalarMulF32(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void ScalarMulAddF32(const float* a, const float* b, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void ScalarClampF32(float lo, float hi, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::clamp(y[i], lo, hi);
}

// Replicates the seed Adam::ApplyStep element loop exactly.
void ScalarAdamUpdateF32(const float* g, float* m, float* v, float* p,
                         size_t n, float lr, float beta1, float beta2,
                         float eps, float bc1, float bc2) {
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    float mhat = m[i] / bc1;
    float vhat = v[i] / bc2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// ---- Scalar low-precision ---------------------------------------------

// Matches _mm256_cvtps_epi32 semantics: round-to-nearest-even, with
// out-of-range (and NaN) collapsing to INT32_MIN, so the scalar and
// AVX2 quantizers agree bit-for-bit even on out-of-contract inputs.
inline std::int32_t RoundF32ToI32(float r) {
  if (!(r >= -2147483648.0f && r < 2147483648.0f)) return INT32_MIN;
  return static_cast<std::int32_t>(std::nearbyintf(r));
}

void ScalarQuantizeI8F32(const float* x, size_t n, Int8Params p,
                         std::int8_t* q) {
  const float inv = 1.0f / p.scale;
  for (size_t i = 0; i < n; ++i) {
    std::int32_t v = RoundF32ToI32(x[i] * inv) + p.zero_point;
    q[i] = static_cast<std::int8_t>(std::clamp(v, -127, 127));
  }
}

void ScalarDequantizeI8F32(const std::int8_t* q, size_t n, Int8Params p,
                           float* x) {
  for (size_t i = 0; i < n; ++i) {
    x[i] = p.scale * static_cast<float>(q[i] - p.zero_point);
  }
}

std::int32_t ScalarDotI8I32(const std::int8_t* a, const std::int8_t* b,
                            size_t n) {
  std::int32_t s = 0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<std::int32_t>(a[i]) * b[i];
  }
  return s;
}

std::int32_t ScalarSumI8I32(const std::int8_t* x, size_t n) {
  std::int32_t s = 0;
  for (size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

// One fused integer pass: dot, element sums, sums of squares. All sums
// are exact, and the final combine goes through the shared inline
// dequant algebra in kernels.h, so the AVX2 twin produces bit-identical
// doubles.
struct Int8Moments {
  std::int32_t dot = 0, sa = 0, sb = 0;
  std::int64_t saa = 0, sbb = 0;
};

Int8Moments ScalarInt8Moments(const std::int8_t* a, const std::int8_t* b,
                              size_t n) {
  Int8Moments m;
  for (size_t i = 0; i < n; ++i) {
    std::int32_t av = a[i], bv = b[i];
    m.dot += av * bv;
    m.sa += av;
    m.sb += bv;
    m.saa += av * av;
    m.sbb += bv * bv;
  }
  return m;
}

double ScalarCosineI8(const std::int8_t* a, Int8Params pa,
                      const std::int8_t* b, Int8Params pb, size_t n) {
  Int8Moments m = ScalarInt8Moments(a, b, n);
  double na = DequantNormSqD(m.saa, pa, m.sa, n);
  double nb = DequantNormSqD(m.sbb, pb, m.sb, n);
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  double dot = DequantDotD(m.dot, pa, m.sa, pb, m.sb, n);
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double ScalarSqDistI8(const std::int8_t* a, Int8Params pa,
                      const std::int8_t* b, Int8Params pb, size_t n) {
  Int8Moments m = ScalarInt8Moments(a, b, n);
  double na = DequantNormSqD(m.saa, pa, m.sa, n);
  double nb = DequantNormSqD(m.sbb, pb, m.sb, n);
  double dot = DequantDotD(m.dot, pa, m.sa, pb, m.sb, n);
  return DequantSqDistCombineD(na, nb, dot);
}

// f32 -> bf16 round-to-nearest-even with NaN preserved (quiet bit
// forced so a NaN whose payload lives in the truncated bits does not
// round into infinity). Shared by the AVX2 translation unit's tail
// loops via the table entry.
inline std::uint16_t F32ToBf16One(float f) {
  std::uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  if ((bits & 0x7FFFFFFFu) > 0x7F800000u) {
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  std::uint32_t r = bits + 0x7FFFu + ((bits >> 16) & 1u);
  return static_cast<std::uint16_t>(r >> 16);
}

inline float Bf16ToF32One(std::uint16_t h) {
  std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

void ScalarF32ToBf16(const float* x, size_t n, std::uint16_t* y) {
  for (size_t i = 0; i < n; ++i) y[i] = F32ToBf16One(x[i]);
}

void ScalarBf16ToF32(const std::uint16_t* x, size_t n, float* y) {
  for (size_t i = 0; i < n; ++i) y[i] = Bf16ToF32One(x[i]);
}

double ScalarDotBf16D(const std::uint16_t* a, const std::uint16_t* b,
                      size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    s += static_cast<double>(Bf16ToF32One(a[i])) * Bf16ToF32One(b[i]);
  }
  return s;
}

double ScalarCosineBf16(const std::uint16_t* a, const std::uint16_t* b,
                        size_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double av = Bf16ToF32One(a[i]), bv = Bf16ToF32One(b[i]);
    dot += av * bv;
    na += av * av;
    nb += bv * bv;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double ScalarSqDistBf16(const std::uint16_t* a, const std::uint16_t* b,
                        size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(Bf16ToF32One(a[i])) - Bf16ToF32One(b[i]);
    s += d * d;
  }
  return s;
}

void ScalarGemmI8TransBPanelF32(const std::int8_t* a,
                                const Int8Params* a_params,
                                const std::int32_t* a_sums,
                                const std::int8_t* b,
                                const Int8Params* b_params,
                                const std::int32_t* b_sums, float* c,
                                size_t r0, size_t r1, size_t m, size_t k) {
  for (size_t i = r0; i < r1; ++i) {
    const std::int8_t* arow = a + i * m;
    float* crow = c + i * k;
    for (size_t t = 0; t < k; ++t) {
      std::int32_t idot = ScalarDotI8I32(arow, b + t * m, m);
      crow[t] = static_cast<float>(
          DequantDotD(idot, a_params[i], a_sums[i], b_params[t], b_sums[t],
                      m));
    }
  }
}

// ---- Scalar level-3 ---------------------------------------------------

// Tile edge shared with the seed Tensor matmuls: the inner dimension is
// walked in 64-wide slabs so the touched B rows stay cache-resident.
constexpr size_t kTileInner = 64;

void ScalarGemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                      float* c, size_t ldc, size_t kc) {
  for (size_t j = 0; j < kc; ++j) {
    const float* brow = b + j * ldb;
    for (size_t i = 0; i < 8; ++i) {
      float av = a[i * lda + j];
      float* crow = c + i * ldc;
      for (size_t t = 0; t < 8; ++t) crow[t] += av * brow[t];
    }
  }
}

// Identical to the seed MatMul row-block body (tiled axpy-rows).
void ScalarGemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k) {
  for (size_t jb = 0; jb < m; jb += kTileInner) {
    size_t jend = std::min(m, jb + kTileInner);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * m;
      float* crow = c + i * k;
      for (size_t j = jb; j < jend; ++j) {
        float av = arow[j];
        const float* brow = b + j * k;
        for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
      }
    }
  }
}

// Identical to the seed MatMulTransA column-block body.
void ScalarGemmTransAPanelF32(const float* a, const float* b, float* c,
                              size_t c0, size_t c1, size_t m, size_t n,
                              size_t k) {
  for (size_t ib = 0; ib < m; ib += kTileInner) {
    size_t iend = std::min(m, ib + kTileInner);
    for (size_t i = ib; i < iend; ++i) {
      const float* arow = a + i * n;
      const float* brow = b + i * k;
      for (size_t j = c0; j < c1; ++j) {
        float av = arow[j];
        float* crow = c + j * k;
        for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
      }
    }
  }
}

// Identical to the seed MatMulTransB row-block body (double-accum dots).
void ScalarGemmTransBPanelF32(const float* a, const float* b, float* c,
                              size_t r0, size_t r1, size_t m, size_t k) {
  for (size_t tb = 0; tb < k; tb += kTileInner) {
    size_t tend = std::min(k, tb + kTileInner);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * m;
      float* crow = c + i * k;
      for (size_t t = tb; t < tend; ++t) {
        const float* brow = b + t * m;
        double dot = 0.0;
        for (size_t j = 0; j < m; ++j) {
          dot += static_cast<double>(arow[j]) * brow[j];
        }
        crow[t] = static_cast<float>(dot);
      }
    }
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",
    ScalarDotF32,
    ScalarDotF32D,
    ScalarSumF32,
    ScalarSumSqF32,
    ScalarSqDistF32,
    ScalarCosineF32,
    ScalarCosineF64,
    ScalarAxpyF32,
    ScalarScaleAddF32,
    ScalarScaleF32,
    ScalarMulF32,
    ScalarMulAddF32,
    ScalarClampF32,
    ScalarAdamUpdateF32,
    ScalarGemm8x8F32,
    ScalarGemmPanelF32,
    ScalarGemmTransAPanelF32,
    ScalarGemmTransBPanelF32,
    ScalarQuantizeI8F32,
    ScalarDequantizeI8F32,
    ScalarDotI8I32,
    ScalarSumI8I32,
    ScalarCosineI8,
    ScalarSqDistI8,
    ScalarF32ToBf16,
    ScalarBf16ToF32,
    ScalarDotBf16D,
    ScalarCosineBf16,
    ScalarSqDistBf16,
    ScalarGemmI8TransBPanelF32,
};

// ---- Dispatch ---------------------------------------------------------

// The SIMD table is usable when compiled in AND the CPU reports both
// AVX2 and FMA (the kernels use fused multiply-adds).
const KernelOps* UsableSimdOps() {
  static const KernelOps* ops = [] {
    const KernelOps* avx2 = Avx2Ops();
    if (avx2 == nullptr) return static_cast<const KernelOps*>(nullptr);
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return static_cast<const KernelOps*>(nullptr);
    }
    return avx2;
  }();
  return ops;
}

bool EnvForcesScalar() {
  static const bool forced = EnvFlag("AUTODC_FORCE_SCALAR", false);
  return forced;
}

std::atomic<const KernelOps*>& ActiveOpsSlot() {
  static std::atomic<const KernelOps*> slot{nullptr};
  return slot;
}

const KernelOps* Active() {
  const KernelOps* ops = ActiveOpsSlot().load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  const KernelOps* resolved =
      EnvForcesScalar() ? &kScalarOps
                        : (UsableSimdOps() ? UsableSimdOps() : &kScalarOps);
  ActiveOpsSlot().store(resolved, std::memory_order_release);
  return resolved;
}

}  // namespace

bool SimdCompiledIn() { return Avx2Ops() != nullptr; }

bool SimdActive() { return Active() != &kScalarOps; }

void SetForceScalar(bool force) {
  const KernelOps* ops =
      force ? &kScalarOps : (UsableSimdOps() ? UsableSimdOps() : &kScalarOps);
  ActiveOpsSlot().store(ops, std::memory_order_release);
}

const char* ActiveIsaName() { return Active()->name; }


// Per-op dispatch counting for the obs layer: every public kernel entry
// bumps "kernels.<op>.scalar" or "kernels.<op>.simd", so one snapshot
// yields both the per-op call mix and the scalar-vs-AVX2 tally. The
// metric pointers are function-local statics — steady state is one
// predicted branch plus one relaxed fetch_add on a thread-private
// cache line.
#ifndef AUTODC_DISABLE_OBS
#define AUTODC_KERNEL_COUNT(op, ops)                                       \
  do {                                                                     \
    static obs::Counter* autodc_k_scalar =                                 \
        obs::MetricsRegistry::Global().GetCounter("kernels." #op           \
                                                  ".scalar");              \
    static obs::Counter* autodc_k_simd =                                   \
        obs::MetricsRegistry::Global().GetCounter("kernels." #op ".simd"); \
    ((ops) == &kScalarOps ? autodc_k_scalar : autodc_k_simd)->Inc();       \
  } while (0)
#else
#define AUTODC_KERNEL_COUNT(op, ops) ((void)0)
#endif

float DotF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_f32, ops);
  return ops->dot_f32(a, b, n);
}
double DotF32D(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_f32d, ops);
  return ops->dot_f32d(a, b, n);
}
double SumF32(const float* x, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sum_f32, ops);
  return ops->sum_f32(x, n);
}
double SumSqF32(const float* x, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sumsq_f32, ops);
  return ops->sumsq_f32(x, n);
}
double SqDistF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sqdist_f32, ops);
  return ops->sqdist_f32(a, b, n);
}
double CosineF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_f32, ops);
  return ops->cosine_f32(a, b, n);
}
double CosineF64(const double* a, const double* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_f64, ops);
  return ops->cosine_f64(a, b, n);
}
void AxpyF32(float alpha, const float* x, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(axpy_f32, ops);
  ops->axpy_f32(alpha, x, y, n);
}
void ScaleAddF32(float alpha, const float* x, float beta, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(scale_add_f32, ops);
  ops->scale_add_f32(alpha, x, beta, y, n);
}
void ScaleF32(float s, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(scale_f32, ops);
  ops->scale_f32(s, y, n);
}
void MulF32(const float* x, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(mul_f32, ops);
  ops->mul_f32(x, y, n);
}
void MulAddF32(const float* a, const float* b, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(mul_add_f32, ops);
  ops->mul_add_f32(a, b, y, n);
}
void ClampF32(float lo, float hi, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(clamp_f32, ops);
  ops->clamp_f32(lo, hi, y, n);
}
void AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                   float lr, float beta1, float beta2, float eps, float bc1,
                   float bc2) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(adam_update_f32, ops);
  ops->adam_update_f32(g, m, v, p, n, lr, beta1, beta2, eps, bc1, bc2);
}
void Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t kc) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm8x8_f32, ops);
  ops->gemm8x8_f32(a, lda, b, ldb, c, ldc, kc);
}
void GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                  size_t r1, size_t m, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_panel_f32, ops);
  ops->gemm_panel_f32(a, b, c, r0, r1, m, k);
}
void GemmTransAPanelF32(const float* a, const float* b, float* c, size_t c0,
                        size_t c1, size_t m, size_t n, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_ta_panel_f32, ops);
  ops->gemm_ta_panel_f32(a, b, c, c0, c1, m, n, k);
}
void GemmTransBPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_tb_panel_f32, ops);
  ops->gemm_tb_panel_f32(a, b, c, r0, r1, m, k);
}

// ---- Low-precision public API -----------------------------------------

const char* QuantName(Quant q) {
  switch (q) {
    case Quant::kInt8:
      return "int8";
    case Quant::kInt8Sym:
      return "int8sym";
    case Quant::kBf16:
      return "bf16";
    case Quant::kFp32:
      break;
  }
  return "fp32";
}

Quant ParseQuant(const char* value) {
  std::string v = value == nullptr ? "" : value;
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "int8") return Quant::kInt8;
  if (v == "int8sym") return Quant::kInt8Sym;
  if (v == "bf16") return Quant::kBf16;
  return Quant::kFp32;
}

Quant QuantFromEnv() {
  std::string value = EnvString("AUTODC_EMB_QUANT");
  Quant q = ParseQuant(value.c_str());
  if (q == Quant::kFp32 && !value.empty() && value != "fp32") {
    AUTODC_LOG(WARN) << "ignoring AUTODC_EMB_QUANT='" << value
                     << "' (expected int8, int8sym, bf16, or fp32); "
                     << "using fp32";
  }
  return q;
}

double DequantSqDistCombineD(double na, double nb, double dot) {
  // One compiled instance on purpose (see the header): this TU builds
  // without -mfma, so the subtractions can never contract with the
  // inlined dot product's final multiply, and both kernel paths get
  // the exact same last bit.
  return (na - dot) + (nb - dot);
}

Int8Params ComputeInt8Params(const float* x, size_t n, bool symmetric) {
  if (n == 0) return {1.0f, 0};
  float mn = x[0], mx = x[0];
  for (size_t i = 1; i < n; ++i) {
    mn = std::min(mn, x[i]);
    mx = std::max(mx, x[i]);
  }
  if (symmetric) {
    float amax = std::max(std::fabs(mn), std::fabs(mx));
    if (!(amax > 0.0f)) return {1.0f, 0};
    return {amax / 127.0f, 0};
  }
  // Extend the range to include 0 so zero is exactly representable and
  // the zero-point derivation below stays within [-127, 127].
  mn = std::min(mn, 0.0f);
  mx = std::max(mx, 0.0f);
  if (!(mx - mn > 0.0f)) return {1.0f, 0};
  float scale = (mx - mn) / 254.0f;
  std::int32_t zp = static_cast<std::int32_t>(
      std::nearbyintf(-127.0f - mn / scale));
  return {scale, std::clamp(zp, -127, 127)};
}

void QuantizeI8F32(const float* x, size_t n, Int8Params params,
                   std::int8_t* q) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(quantize_i8, ops);
  ops->quantize_i8(x, n, params, q);
}
void DequantizeI8F32(const std::int8_t* q, size_t n, Int8Params params,
                     float* x) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dequantize_i8, ops);
  ops->dequantize_i8(q, n, params, x);
}
std::int32_t DotI8I32(const std::int8_t* a, const std::int8_t* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_i8_i32, ops);
  return ops->dot_i8_i32(a, b, n);
}
std::int32_t SumI8I32(const std::int8_t* x, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sum_i8_i32, ops);
  return ops->sum_i8_i32(x, n);
}
double CosineI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                Int8Params pb, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_i8, ops);
  return ops->cosine_i8(a, pa, b, pb, n);
}
double SqDistI8(const std::int8_t* a, Int8Params pa, const std::int8_t* b,
                Int8Params pb, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sqdist_i8, ops);
  return ops->sqdist_i8(a, pa, b, pb, n);
}
void F32ToBf16(const float* x, size_t n, std::uint16_t* y) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(f32_to_bf16, ops);
  ops->f32_to_bf16(x, n, y);
}
void Bf16ToF32(const std::uint16_t* x, size_t n, float* y) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(bf16_to_f32, ops);
  ops->bf16_to_f32(x, n, y);
}
double DotBf16D(const std::uint16_t* a, const std::uint16_t* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_bf16d, ops);
  return ops->dot_bf16d(a, b, n);
}
double CosineBf16(const std::uint16_t* a, const std::uint16_t* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_bf16, ops);
  return ops->cosine_bf16(a, b, n);
}
double SqDistBf16(const std::uint16_t* a, const std::uint16_t* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sqdist_bf16, ops);
  return ops->sqdist_bf16(a, b, n);
}
void GemmI8TransBPanelF32(const std::int8_t* a, const Int8Params* a_params,
                          const std::int32_t* a_sums, const std::int8_t* b,
                          const Int8Params* b_params,
                          const std::int32_t* b_sums, float* c, size_t r0,
                          size_t r1, size_t m, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_i8_tb_panel_f32, ops);
  ops->gemm_i8_tb_panel_f32(a, a_params, a_sums, b, b_params, b_sums, c, r0,
                            r1, m, k);
}

}  // namespace autodc::nn::kernels
