#include "src/nn/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "src/common/env.h"
#include "src/obs/metrics.h"

// Portable scalar kernel table + runtime dispatch. The scalar loops here
// are operation-for-operation identical to the pre-kernel (seed) code
// they replaced, so forcing the scalar table reproduces seed results
// bit-for-bit. This translation unit is compiled WITHOUT -mavx2, so the
// compiler cannot auto-vectorize these loops into instructions that
// would fault on a non-AVX2 CPU.

namespace autodc::nn::kernels {

namespace {

// ---- Scalar level-1 ---------------------------------------------------

float ScalarDotF32(const float* a, const float* b, size_t n) {
  float s = 0.0f;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double ScalarDotF32D(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(a[i]) * b[i];
  return s;
}

double ScalarSumF32(const float* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += x[i];
  return s;
}

double ScalarSumSqF32(const float* x, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += static_cast<double>(x[i]) * x[i];
  return s;
}

double ScalarSqDistF32(const float* a, const float* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return s;
}

// Matches the seed CosineImpl<T>: one pass accumulating dot/na/nb in
// doubles, interleaved in ascending index order.
template <typename T>
double ScalarCosine(const T* a, const T* b, size_t n) {
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    na += static_cast<double>(a[i]) * a[i];
    nb += static_cast<double>(b[i]) * b[i];
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double ScalarCosineF32(const float* a, const float* b, size_t n) {
  return ScalarCosine(a, b, n);
}

double ScalarCosineF64(const double* a, const double* b, size_t n) {
  return ScalarCosine(a, b, n);
}

void ScalarAxpyF32(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += x[i] * alpha;
}

void ScalarScaleAddF32(float alpha, const float* x, float beta, float* y,
                       size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = alpha * x[i] + beta * y[i];
}

void ScalarScaleF32(float s, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= s;
}

void ScalarMulF32(const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] *= x[i];
}

void ScalarMulAddF32(const float* a, const float* b, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += a[i] * b[i];
}

void ScalarClampF32(float lo, float hi, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] = std::clamp(y[i], lo, hi);
}

// Replicates the seed Adam::ApplyStep element loop exactly.
void ScalarAdamUpdateF32(const float* g, float* m, float* v, float* p,
                         size_t n, float lr, float beta1, float beta2,
                         float eps, float bc1, float bc2) {
  for (size_t i = 0; i < n; ++i) {
    m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
    v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
    float mhat = m[i] / bc1;
    float vhat = v[i] / bc2;
    p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
  }
}

// ---- Scalar level-3 ---------------------------------------------------

// Tile edge shared with the seed Tensor matmuls: the inner dimension is
// walked in 64-wide slabs so the touched B rows stay cache-resident.
constexpr size_t kTileInner = 64;

void ScalarGemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                      float* c, size_t ldc, size_t kc) {
  for (size_t j = 0; j < kc; ++j) {
    const float* brow = b + j * ldb;
    for (size_t i = 0; i < 8; ++i) {
      float av = a[i * lda + j];
      float* crow = c + i * ldc;
      for (size_t t = 0; t < 8; ++t) crow[t] += av * brow[t];
    }
  }
}

// Identical to the seed MatMul row-block body (tiled axpy-rows).
void ScalarGemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k) {
  for (size_t jb = 0; jb < m; jb += kTileInner) {
    size_t jend = std::min(m, jb + kTileInner);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * m;
      float* crow = c + i * k;
      for (size_t j = jb; j < jend; ++j) {
        float av = arow[j];
        const float* brow = b + j * k;
        for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
      }
    }
  }
}

// Identical to the seed MatMulTransA column-block body.
void ScalarGemmTransAPanelF32(const float* a, const float* b, float* c,
                              size_t c0, size_t c1, size_t m, size_t n,
                              size_t k) {
  for (size_t ib = 0; ib < m; ib += kTileInner) {
    size_t iend = std::min(m, ib + kTileInner);
    for (size_t i = ib; i < iend; ++i) {
      const float* arow = a + i * n;
      const float* brow = b + i * k;
      for (size_t j = c0; j < c1; ++j) {
        float av = arow[j];
        float* crow = c + j * k;
        for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
      }
    }
  }
}

// Identical to the seed MatMulTransB row-block body (double-accum dots).
void ScalarGemmTransBPanelF32(const float* a, const float* b, float* c,
                              size_t r0, size_t r1, size_t m, size_t k) {
  for (size_t tb = 0; tb < k; tb += kTileInner) {
    size_t tend = std::min(k, tb + kTileInner);
    for (size_t i = r0; i < r1; ++i) {
      const float* arow = a + i * m;
      float* crow = c + i * k;
      for (size_t t = tb; t < tend; ++t) {
        const float* brow = b + t * m;
        double dot = 0.0;
        for (size_t j = 0; j < m; ++j) {
          dot += static_cast<double>(arow[j]) * brow[j];
        }
        crow[t] = static_cast<float>(dot);
      }
    }
  }
}

constexpr KernelOps kScalarOps = {
    "scalar",
    ScalarDotF32,
    ScalarDotF32D,
    ScalarSumF32,
    ScalarSumSqF32,
    ScalarSqDistF32,
    ScalarCosineF32,
    ScalarCosineF64,
    ScalarAxpyF32,
    ScalarScaleAddF32,
    ScalarScaleF32,
    ScalarMulF32,
    ScalarMulAddF32,
    ScalarClampF32,
    ScalarAdamUpdateF32,
    ScalarGemm8x8F32,
    ScalarGemmPanelF32,
    ScalarGemmTransAPanelF32,
    ScalarGemmTransBPanelF32,
};

// ---- Dispatch ---------------------------------------------------------

// The SIMD table is usable when compiled in AND the CPU reports both
// AVX2 and FMA (the kernels use fused multiply-adds).
const KernelOps* UsableSimdOps() {
  static const KernelOps* ops = [] {
    const KernelOps* avx2 = Avx2Ops();
    if (avx2 == nullptr) return static_cast<const KernelOps*>(nullptr);
    if (!__builtin_cpu_supports("avx2") || !__builtin_cpu_supports("fma")) {
      return static_cast<const KernelOps*>(nullptr);
    }
    return avx2;
  }();
  return ops;
}

bool EnvForcesScalar() {
  static const bool forced = EnvFlag("AUTODC_FORCE_SCALAR", false);
  return forced;
}

std::atomic<const KernelOps*>& ActiveOpsSlot() {
  static std::atomic<const KernelOps*> slot{nullptr};
  return slot;
}

const KernelOps* Active() {
  const KernelOps* ops = ActiveOpsSlot().load(std::memory_order_acquire);
  if (ops != nullptr) return ops;
  const KernelOps* resolved =
      EnvForcesScalar() ? &kScalarOps
                        : (UsableSimdOps() ? UsableSimdOps() : &kScalarOps);
  ActiveOpsSlot().store(resolved, std::memory_order_release);
  return resolved;
}

}  // namespace

bool SimdCompiledIn() { return Avx2Ops() != nullptr; }

bool SimdActive() { return Active() != &kScalarOps; }

void SetForceScalar(bool force) {
  const KernelOps* ops =
      force ? &kScalarOps : (UsableSimdOps() ? UsableSimdOps() : &kScalarOps);
  ActiveOpsSlot().store(ops, std::memory_order_release);
}

const char* ActiveIsaName() { return Active()->name; }


// Per-op dispatch counting for the obs layer: every public kernel entry
// bumps "kernels.<op>.scalar" or "kernels.<op>.simd", so one snapshot
// yields both the per-op call mix and the scalar-vs-AVX2 tally. The
// metric pointers are function-local statics — steady state is one
// predicted branch plus one relaxed fetch_add on a thread-private
// cache line.
#ifndef AUTODC_DISABLE_OBS
#define AUTODC_KERNEL_COUNT(op, ops)                                       \
  do {                                                                     \
    static obs::Counter* autodc_k_scalar =                                 \
        obs::MetricsRegistry::Global().GetCounter("kernels." #op           \
                                                  ".scalar");              \
    static obs::Counter* autodc_k_simd =                                   \
        obs::MetricsRegistry::Global().GetCounter("kernels." #op ".simd"); \
    ((ops) == &kScalarOps ? autodc_k_scalar : autodc_k_simd)->Inc();       \
  } while (0)
#else
#define AUTODC_KERNEL_COUNT(op, ops) ((void)0)
#endif

float DotF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_f32, ops);
  return ops->dot_f32(a, b, n);
}
double DotF32D(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(dot_f32d, ops);
  return ops->dot_f32d(a, b, n);
}
double SumF32(const float* x, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sum_f32, ops);
  return ops->sum_f32(x, n);
}
double SumSqF32(const float* x, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sumsq_f32, ops);
  return ops->sumsq_f32(x, n);
}
double SqDistF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(sqdist_f32, ops);
  return ops->sqdist_f32(a, b, n);
}
double CosineF32(const float* a, const float* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_f32, ops);
  return ops->cosine_f32(a, b, n);
}
double CosineF64(const double* a, const double* b, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(cosine_f64, ops);
  return ops->cosine_f64(a, b, n);
}
void AxpyF32(float alpha, const float* x, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(axpy_f32, ops);
  ops->axpy_f32(alpha, x, y, n);
}
void ScaleAddF32(float alpha, const float* x, float beta, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(scale_add_f32, ops);
  ops->scale_add_f32(alpha, x, beta, y, n);
}
void ScaleF32(float s, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(scale_f32, ops);
  ops->scale_f32(s, y, n);
}
void MulF32(const float* x, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(mul_f32, ops);
  ops->mul_f32(x, y, n);
}
void MulAddF32(const float* a, const float* b, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(mul_add_f32, ops);
  ops->mul_add_f32(a, b, y, n);
}
void ClampF32(float lo, float hi, float* y, size_t n) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(clamp_f32, ops);
  ops->clamp_f32(lo, hi, y, n);
}
void AdamUpdateF32(const float* g, float* m, float* v, float* p, size_t n,
                   float lr, float beta1, float beta2, float eps, float bc1,
                   float bc2) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(adam_update_f32, ops);
  ops->adam_update_f32(g, m, v, p, n, lr, beta1, beta2, eps, bc1, bc2);
}
void Gemm8x8F32(const float* a, size_t lda, const float* b, size_t ldb,
                float* c, size_t ldc, size_t kc) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm8x8_f32, ops);
  ops->gemm8x8_f32(a, lda, b, ldb, c, ldc, kc);
}
void GemmPanelF32(const float* a, const float* b, float* c, size_t r0,
                  size_t r1, size_t m, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_panel_f32, ops);
  ops->gemm_panel_f32(a, b, c, r0, r1, m, k);
}
void GemmTransAPanelF32(const float* a, const float* b, float* c, size_t c0,
                        size_t c1, size_t m, size_t n, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_ta_panel_f32, ops);
  ops->gemm_ta_panel_f32(a, b, c, c0, c1, m, n, k);
}
void GemmTransBPanelF32(const float* a, const float* b, float* c, size_t r0,
                        size_t r1, size_t m, size_t k) {
  const KernelOps* ops = Active();
  AUTODC_KERNEL_COUNT(gemm_tb_panel_f32, ops);
  ops->gemm_tb_panel_f32(a, b, c, r0, r1, m, k);
}

}  // namespace autodc::nn::kernels
