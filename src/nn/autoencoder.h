#ifndef AUTODC_NN_AUTOENCODER_H_
#define AUTODC_NN_AUTOENCODER_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/optimizer.h"
#include "src/nn/trainer.h"

namespace autodc::nn {

/// Variants of the autoencoder family the paper singles out as relevant to
/// data curation (Sec. 2.1, Figure 2(e)-(h)).
enum class AutoencoderKind {
  kPlain = 0,   ///< reconstruction loss only
  kSparse,      ///< + L1 penalty on the code (Figure 2(f))
  kDenoising,   ///< reconstructs clean input from corrupted input (2(g))
  kVariational  ///< probabilistic latent with KL regularizer (2(h))
};

struct AutoencoderConfig {
  size_t input_dim = 0;
  size_t hidden_dim = 0;          ///< code dimensionality (d' < d)
  Activation activation = Activation::kRelu;
  float sparsity_weight = 1e-3f;  ///< sparse: L1 coefficient on the code
  float corruption = 0.3f;        ///< denoising: per-element zeroing prob
  float kl_weight = 1.0f;         ///< variational: KL term weight
  float learning_rate = 1e-2f;
};

/// A single-hidden-layer autoencoder covering all four paper variants.
/// Encoder: code = act(x W1 + b1); decoder: x' = code W2 + b2 (VAE uses a
/// {mu, logvar} head and the reparameterization trick).
class Autoencoder {
 public:
  Autoencoder(AutoencoderKind kind, const AutoencoderConfig& config,
              Rng* rng);

  /// One pass over `data` in minibatches; returns the mean loss.
  double TrainEpoch(const Batch& data, size_t batch_size = 16);

  /// Trains for `epochs` passes; returns the final epoch's mean loss.
  double Train(const Batch& data, size_t epochs, size_t batch_size = 16);

  /// Full-control training on the shared Trainer runtime (validation,
  /// early stopping, checkpoints, telemetry). In eval mode (validation
  /// passes) denoising corruption and the VAE's sampling are disabled,
  /// so the validation loss is deterministic.
  TrainResult Train(const Batch& data, const TrainOptions& options);

  /// Deterministic code for x (VAE returns the mean).
  std::vector<float> Encode(const std::vector<float>& x) const;

  /// Round trip through the bottleneck.
  std::vector<float> Reconstruct(const std::vector<float>& x) const;

  /// Mean squared reconstruction error of x — the anomaly score used by
  /// the cleaning module's autoencoder outlier detector.
  double ReconstructionError(const std::vector<float>& x) const;

  AutoencoderKind kind() const { return kind_; }
  const AutoencoderConfig& config() const { return config_; }
  std::vector<VarPtr> Parameters() const;

 private:
  // Builds the tape for one batch and returns (loss, reconstruction).
  VarPtr BuildLoss(const Tensor& input, const Tensor& target, bool train);

  AutoencoderKind kind_;
  AutoencoderConfig config_;
  Rng* rng_;
  VarPtr enc_w_, enc_b_;            // {in, hidden}, {hidden}
  VarPtr mu_w_, mu_b_;              // VAE heads {hidden, hidden}
  VarPtr logvar_w_, logvar_b_;
  VarPtr dec_w_, dec_b_;            // {hidden, in}, {in}
  std::unique_ptr<Adam> optimizer_;
};

}  // namespace autodc::nn

#endif  // AUTODC_NN_AUTOENCODER_H_
