#include "src/nn/classifier.h"

#include <cassert>
#include <cmath>

#include "src/nn/tensor_pool.h"

namespace autodc::nn {

namespace {
Tensor RowsToTensor(const Batch& data, const std::vector<size_t>& idx) {
  size_t d = data.empty() ? 0 : data[0].size();
  Tensor t({idx.size(), d});
  for (size_t i = 0; i < idx.size(); ++i) {
    for (size_t j = 0; j < d; ++j) t.at(i, j) = data[idx[i]][j];
  }
  return t;
}

/// Seed-equivalent options for the epochs/batch_size signatures.
TrainOptions LegacyOptions(size_t epochs, size_t batch_size) {
  TrainOptions options;
  options.epochs = epochs;
  options.batch_size = batch_size;
  options.grad_clip = 5.0f;
  return options;
}
}  // namespace

BinaryClassifier::BinaryClassifier(const ClassifierConfig& config, Rng* rng)
    : config_(config), rng_(rng) {
  assert(config.input_dim > 0);
  auto seq = std::make_unique<Sequential>();
  size_t prev = config.input_dim;
  for (size_t h : config.hidden) {
    seq->Add(std::make_unique<Linear>(prev, h, rng));
    seq->Add(std::make_unique<ActivationLayer>(config.activation));
    if (config.dropout > 0.0f) {
      seq->Add(std::make_unique<Dropout>(config.dropout, rng));
    }
    prev = h;
  }
  seq->Add(std::make_unique<Linear>(prev, 1, rng));
  model_ = std::move(seq);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(),
                                      config.learning_rate);
}

TrainResult BinaryClassifier::Fit(const Batch& features,
                                  const std::vector<float>& targets,
                                  const TrainOptions& options) {
  Trainer trainer(options);
  return trainer.Fit(
      features.size(), rng_, optimizer_.get(),
      [&](const std::vector<size_t>& idx, bool train) {
        Tensor x = RowsToTensor(features, idx);
        size_t n = idx.size();
        Tensor y({n, 1});
        for (size_t i = 0; i < n; ++i) y.at(i, 0) = targets[idx[i]];

        VarPtr logits = model_->Forward(Constant(x), train);
        VarPtr loss = BceWithLogitsLoss(logits, y);
        if (config_.positive_weight != 1.0f) {
          // Weighted BCE: standard BCE on all rows plus an extra
          // (w-1)-weighted BCE on the positive rows only — equivalent
          // to scaling the positives' per-example loss by w.
          std::vector<size_t> pos;
          for (size_t i = 0; i < n; ++i) {
            if (y.at(i, 0) > 0.5f) pos.push_back(i);
          }
          if (!pos.empty()) {
            VarPtr pos_logits = Rows(logits, pos);
            Tensor pos_y({pos.size(), 1});
            pos_y.Fill(1.0f);
            VarPtr extra = BceWithLogitsLoss(pos_logits, pos_y);
            loss = Add(loss, Scale(extra, config_.positive_weight - 1.0f));
          }
        }
        return loss;
      });
}

double BinaryClassifier::TrainEpoch(const Batch& features,
                                    const std::vector<int>& labels,
                                    size_t batch_size) {
  return Train(features, labels, 1, batch_size);
}

double BinaryClassifier::Train(const Batch& features,
                               const std::vector<int>& labels, size_t epochs,
                               size_t batch_size) {
  return Train(features, labels, LegacyOptions(epochs, batch_size))
      .final_train_loss;
}

TrainResult BinaryClassifier::Train(const Batch& features,
                                    const std::vector<int>& labels,
                                    const TrainOptions& options) {
  std::vector<float> targets(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) {
    targets[i] = labels[i] > 0 ? 1.0f : 0.0f;
  }
  return Fit(features, targets, options);
}

double BinaryClassifier::TrainSoft(const Batch& features,
                                   const std::vector<double>& probs,
                                   size_t epochs, size_t batch_size) {
  return TrainSoft(features, probs, LegacyOptions(epochs, batch_size))
      .final_train_loss;
}

TrainResult BinaryClassifier::TrainSoft(const Batch& features,
                                        const std::vector<double>& probs,
                                        const TrainOptions& options) {
  std::vector<float> targets(probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    targets[i] = static_cast<float>(probs[i]);
  }
  return Fit(features, targets, options);
}

double BinaryClassifier::PredictProba(const std::vector<float>& x) const {
  Tensor t({1, x.size()}, x);
  VarPtr logits = model_->Forward(Constant(t), /*train=*/false);
  return 1.0 / (1.0 + std::exp(-static_cast<double>(logits->value[0])));
}

std::vector<double> BinaryClassifier::PredictProbaBatch(const Batch& xs) const {
  std::vector<double> out;
  out.reserve(xs.size());
  if (xs.empty()) return out;
  WorkspaceScope workspace;
  std::vector<size_t> idx(xs.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  Tensor t = RowsToTensor(xs, idx);
  VarPtr logits = model_->Forward(Constant(t), /*train=*/false);
  for (size_t i = 0; i < xs.size(); ++i) {
    out.push_back(1.0 /
                  (1.0 + std::exp(-static_cast<double>(logits->value.at(i, 0)))));
  }
  return out;
}

int BinaryClassifier::Predict(const std::vector<float>& x,
                              double threshold) const {
  return PredictProba(x) >= threshold ? 1 : 0;
}

MulticlassClassifier::MulticlassClassifier(size_t input_dim,
                                           const std::vector<size_t>& hidden,
                                           size_t num_classes, float lr,
                                           Rng* rng)
    : rng_(rng), num_classes_(num_classes) {
  std::vector<size_t> widths;
  widths.push_back(input_dim);
  for (size_t h : hidden) widths.push_back(h);
  widths.push_back(num_classes);
  model_ = Sequential::Mlp(widths, Activation::kRelu, rng);
  optimizer_ = std::make_unique<Adam>(model_->Parameters(), lr);
}

double MulticlassClassifier::TrainEpoch(const Batch& features,
                                        const std::vector<size_t>& labels,
                                        size_t batch_size) {
  return Train(features, labels, 1, batch_size);
}

double MulticlassClassifier::Train(const Batch& features,
                                   const std::vector<size_t>& labels,
                                   size_t epochs, size_t batch_size) {
  return Train(features, labels, LegacyOptions(epochs, batch_size))
      .final_train_loss;
}

TrainResult MulticlassClassifier::Train(const Batch& features,
                                        const std::vector<size_t>& labels,
                                        const TrainOptions& options) {
  Trainer trainer(options);
  return trainer.Fit(
      features.size(), rng_, optimizer_.get(),
      [&](const std::vector<size_t>& idx, bool train) {
        Tensor x = RowsToTensor(features, idx);
        std::vector<size_t> y;
        y.reserve(idx.size());
        for (size_t i : idx) y.push_back(labels[i]);
        VarPtr logits = model_->Forward(Constant(x), train);
        return SoftmaxCrossEntropyLoss(logits, y);
      });
}

std::vector<double> MulticlassClassifier::PredictProba(
    const std::vector<float>& x) const {
  Tensor t({1, x.size()}, x);
  VarPtr logits = model_->Forward(Constant(t), /*train=*/false);
  VarPtr probs = SoftmaxRows(logits);
  std::vector<double> out(num_classes_);
  for (size_t j = 0; j < num_classes_; ++j) out[j] = probs->value[j];
  return out;
}

size_t MulticlassClassifier::Predict(const std::vector<float>& x) const {
  Tensor t({1, x.size()}, x);
  VarPtr logits = model_->Forward(Constant(t), /*train=*/false);
  return logits->value.ArgMax();
}

double MulticlassClassifier::Accuracy(const Batch& features,
                                      const std::vector<size_t>& labels) const {
  if (features.empty()) return 0.0;
  size_t correct = 0;
  for (size_t i = 0; i < features.size(); ++i) {
    if (Predict(features[i]) == labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(features.size());
}

}  // namespace autodc::nn
