#include "src/nn/tensor.h"

#include <cassert>
#include <cmath>
#include <sstream>

namespace autodc::nn {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  if (shape.empty()) n = 0;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == NumElements(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::RandomUniform(std::vector<size_t> shape, float scale,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(size_t fan_out, size_t fan_in, Rng* rng) {
  float scale = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_out, fan_in}, scale, rng);
}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  return Tensor({v.size()}, v);
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::Mean() const {
  if (data_.empty()) return 0.0;
  return Sum() / static_cast<double>(data_.size());
}

double Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

size_t Tensor::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

Tensor Tensor::RowCopy(size_t r) const {
  size_t c = cols();
  Tensor out({c});
  for (size_t j = 0; j < c; ++j) out[j] = at(r, j);
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void Axpy(const Tensor& b, float scale, Tensor* a) {
  assert(a->size() == b.size());
  float* ad = a->data();
  const float* bd = b.data();
  for (size_t i = 0; i < b.size(); ++i) ad[i] += bd[i] * scale;
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      float av = a.at(i, j);
      if (av == 0.0f) continue;
      const float* brow = b.data() + j * k;
      float* crow = c.data() + i * k;
      for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  size_t m = a.rows(), n = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  for (size_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * n;
    const float* brow = b.data() + i * k;
    for (size_t j = 0; j < n; ++j) {
      float av = arow[j];
      if (av == 0.0f) continue;
      float* crow = c.data() + j * k;
      for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.rows();
  assert(b.cols() == m);
  Tensor c({n, k});
  for (size_t i = 0; i < n; ++i) {
    const float* arow = a.data() + i * m;
    float* crow = c.data() + i * k;
    for (size_t t = 0; t < k; ++t) {
      const float* brow = b.data() + t * m;
      double dot = 0.0;
      for (size_t j = 0; j < m; ++j) dot += static_cast<double>(arow[j]) * brow[j];
      crow[t] = static_cast<float>(dot);
    }
  }
  return c;
}

}  // namespace autodc::nn
