#include "src/nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/nn/tensor_pool.h"

namespace autodc::nn {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  if (shape.empty()) n = 0;
  return n;
}

std::vector<float> AllocBuffer(size_t n, bool* pooled) {
  if (n > 0 && WorkspaceActive()) {
    *pooled = true;
    return TensorPool::Global().Acquire(n);
  }
  *pooled = false;
  return std::vector<float>(n, 0.0f);
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape) : shape_(std::move(shape)) {
  data_ = AllocBuffer(NumElements(shape_), &pooled_);
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  if (!other.data_.empty() && WorkspaceActive()) {
    pooled_ = true;
    data_ = TensorPool::Global().Acquire(other.data_.size());
    std::copy(other.data_.begin(), other.data_.end(), data_.begin());
  } else {
    data_ = other.data_;
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  // Vector assignment reuses this Tensor's buffer when its capacity
  // suffices, so pooled_ keeps describing the buffer we actually hold.
  data_ = other.data_;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      pooled_(other.pooled_) {
  other.shape_.clear();
  other.pooled_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  ReleaseBuffer();
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  pooled_ = other.pooled_;
  other.shape_.clear();
  other.pooled_ = false;
  return *this;
}

Tensor::~Tensor() { ReleaseBuffer(); }

void Tensor::ReleaseBuffer() {
  if (pooled_) {
    TensorPool::Global().Release(std::move(data_));
    data_ = std::vector<float>();
    pooled_ = false;
  }
}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == NumElements(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::RandomUniform(std::vector<size_t> shape, float scale,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(size_t fan_out, size_t fan_in, Rng* rng) {
  float scale = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_out, fan_in}, scale, rng);
}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  return Tensor({v.size()}, v);
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

double Tensor::Sum() const {
  return kernels::SumF32(data_.data(), data_.size());
}

double Tensor::Mean() const {
  if (data_.empty()) return 0.0;
  return Sum() / static_cast<double>(data_.size());
}

double Tensor::Norm() const {
  return std::sqrt(kernels::SumSqF32(data_.data(), data_.size()));
}

size_t Tensor::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

Tensor Tensor::RowCopy(size_t r) const {
  size_t c = cols();
  Tensor out({c});
  for (size_t j = 0; j < c; ++j) out[j] = at(r, j);
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void Axpy(const Tensor& b, float scale, Tensor* a) {
  assert(a->size() == b.size());
  kernels::AxpyF32(scale, b.data(), a->data(), b.size());
}

Tensor GatherRows(const Tensor& src, const std::vector<size_t>& rows) {
  size_t d = src.cols();
  Tensor out({rows.size(), d});
  float* od = out.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < src.rows());
    const float* srow = src.data() + rows[i] * d;
    std::copy(srow, srow + d, od + i * d);
  }
  return out;
}

void AxpyRows(const Tensor& src, const std::vector<size_t>& rows, float scale,
              Tensor* dst) {
  size_t d = dst->cols();
  assert(src.cols() == d && src.rows() == rows.size());
  float* dd = dst->data();
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < dst->rows());
    kernels::AxpyF32(scale, src.data() + i * d, dd + rows[i] * d, d);
  }
}

namespace {

// Row-block grain for ParallelFor: small matrices stay serial, large
// ones split into at most NumThreads() blocks. The per-panel compute
// lives in kernels::Gemm*PanelF32 (scalar path identical to the old
// cache-blocked loops here; AVX2 path register-blocked on the 8x8
// micro-kernel). Per output element the accumulation order over the
// inner dimension is fixed on both paths, so results do not depend on
// the thread count.
constexpr size_t kRowGrain = 8;

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  ParallelFor(0, n, kRowGrain, [&](size_t r0, size_t r1) {
    kernels::GemmPanelF32(ad, bd, cd, r0, r1, m, k);
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  size_t m = a.rows(), n = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  // Output rows of C correspond to columns of A, so parallelizing over
  // them keeps the accumulation over A's rows private to one thread.
  ParallelFor(0, n, kRowGrain, [&](size_t c0, size_t c1) {
    kernels::GemmTransAPanelF32(ad, bd, cd, c0, c1, m, n, k);
  });
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.rows();
  assert(b.cols() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  ParallelFor(0, n, kRowGrain, [&](size_t r0, size_t r1) {
    kernels::GemmTransBPanelF32(ad, bd, cd, r0, r1, m, k);
  });
  return c;
}

}  // namespace autodc::nn
