#include "src/nn/tensor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "src/common/parallel.h"

namespace autodc::nn {

namespace {
size_t NumElements(const std::vector<size_t>& shape) {
  size_t n = 1;
  for (size_t d : shape) n *= d;
  if (shape.empty()) n = 0;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<size_t> shape)
    : shape_(std::move(shape)), data_(NumElements(shape_), 0.0f) {}

Tensor::Tensor(std::vector<size_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  assert(data_.size() == NumElements(shape_));
}

Tensor Tensor::Full(std::vector<size_t> shape, float v) {
  Tensor t(std::move(shape));
  t.Fill(v);
  return t;
}

Tensor Tensor::RandomUniform(std::vector<size_t> shape, float scale,
                             Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

Tensor Tensor::RandomNormal(std::vector<size_t> shape, float stddev,
                            Rng* rng) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Normal(0.0, stddev));
  }
  return t;
}

Tensor Tensor::Xavier(size_t fan_out, size_t fan_in, Rng* rng) {
  float scale = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_out, fan_in}, scale, rng);
}

Tensor Tensor::FromVector(const std::vector<float>& v) {
  return Tensor({v.size()}, v);
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float x : data_) s += x;
  return s;
}

double Tensor::Mean() const {
  if (data_.empty()) return 0.0;
  return Sum() / static_cast<double>(data_.size());
}

double Tensor::Norm() const {
  double s = 0.0;
  for (float x : data_) s += static_cast<double>(x) * x;
  return std::sqrt(s);
}

size_t Tensor::ArgMax() const {
  size_t best = 0;
  for (size_t i = 1; i < data_.size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

Tensor Tensor::RowCopy(size_t r) const {
  size_t c = cols();
  Tensor out({c});
  for (size_t j = 0; j < c; ++j) out[j] = at(r, j);
  return out;
}

std::string Tensor::ShapeString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ",";
    os << shape_[i];
  }
  os << "]";
  return os.str();
}

void Axpy(const Tensor& b, float scale, Tensor* a) {
  assert(a->size() == b.size());
  float* ad = a->data();
  const float* bd = b.data();
  for (size_t i = 0; i < b.size(); ++i) ad[i] += bd[i] * scale;
}

Tensor GatherRows(const Tensor& src, const std::vector<size_t>& rows) {
  size_t d = src.cols();
  Tensor out({rows.size(), d});
  float* od = out.data();
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < src.rows());
    const float* srow = src.data() + rows[i] * d;
    float* orow = od + i * d;
    for (size_t j = 0; j < d; ++j) orow[j] = srow[j];
  }
  return out;
}

void AxpyRows(const Tensor& src, const std::vector<size_t>& rows, float scale,
              Tensor* dst) {
  size_t d = dst->cols();
  assert(src.cols() == d && src.rows() == rows.size());
  float* dd = dst->data();
  for (size_t i = 0; i < rows.size(); ++i) {
    assert(rows[i] < dst->rows());
    const float* srow = src.data() + i * d;
    float* drow = dd + rows[i] * d;
    for (size_t j = 0; j < d; ++j) drow[j] += srow[j] * scale;
  }
}

namespace {

// Tile edges for the cache-blocked matmul kernels. The inner dimension
// is walked in kTileInner-sized slabs so the touched rows of B stay in
// L1/L2 while a block of output rows accumulates. Per output element the
// accumulation order over the inner dimension is unchanged from the
// naive kernels (tiles are visited in increasing order), so results are
// bit-identical for any tile size and any thread count.
constexpr size_t kTileInner = 64;

// Row-block grain for ParallelFor: small matrices stay serial, large
// ones split into at most NumThreads() blocks.
constexpr size_t kRowGrain = 8;

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  ParallelFor(0, n, kRowGrain, [&](size_t r0, size_t r1) {
    for (size_t jb = 0; jb < m; jb += kTileInner) {
      size_t jend = std::min(m, jb + kTileInner);
      for (size_t i = r0; i < r1; ++i) {
        const float* arow = ad + i * m;
        float* crow = cd + i * k;
        for (size_t j = jb; j < jend; ++j) {
          float av = arow[j];
          const float* brow = bd + j * k;
          for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
        }
      }
    }
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  size_t m = a.rows(), n = a.cols(), k = b.cols();
  assert(b.rows() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  // Output rows of C correspond to columns of A, so parallelizing over
  // them keeps the accumulation over A's rows private to one thread.
  ParallelFor(0, n, kRowGrain, [&](size_t c0, size_t c1) {
    for (size_t ib = 0; ib < m; ib += kTileInner) {
      size_t iend = std::min(m, ib + kTileInner);
      for (size_t i = ib; i < iend; ++i) {
        const float* arow = ad + i * n;
        const float* brow = bd + i * k;
        for (size_t j = c0; j < c1; ++j) {
          float av = arow[j];
          float* crow = cd + j * k;
          for (size_t t = 0; t < k; ++t) crow[t] += av * brow[t];
        }
      }
    }
  });
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  size_t n = a.rows(), m = a.cols(), k = b.rows();
  assert(b.cols() == m);
  Tensor c({n, k});
  const float* ad = a.data();
  const float* bd = b.data();
  float* cd = c.data();
  ParallelFor(0, n, kRowGrain, [&](size_t r0, size_t r1) {
    // Tile over B's rows so a slab of B is reused across the whole row
    // block of A before being evicted.
    for (size_t tb = 0; tb < k; tb += kTileInner) {
      size_t tend = std::min(k, tb + kTileInner);
      for (size_t i = r0; i < r1; ++i) {
        const float* arow = ad + i * m;
        float* crow = cd + i * k;
        for (size_t t = tb; t < tend; ++t) {
          const float* brow = bd + t * m;
          double dot = 0.0;
          for (size_t j = 0; j < m; ++j) {
            dot += static_cast<double>(arow[j]) * brow[j];
          }
          crow[t] = static_cast<float>(dot);
        }
      }
    }
  });
  return c;
}

}  // namespace autodc::nn
