#include "src/nn/optimizer.h"

#include <algorithm>
#include <cmath>

namespace autodc::nn {

void Optimizer::ClipGradients(float limit) {
  for (const VarPtr& p : params_) {
    if (p->grad.size() != p->value.size()) continue;
    for (size_t i = 0; i < p->grad.size(); ++i) {
      p->grad[i] = std::clamp(p->grad[i], -limit, limit);
    }
  }
}

void Sgd::ApplyStep() {
  for (const VarPtr& p : params_) {
    if (p->grad.size() != p->value.size()) continue;
    for (size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i] + weight_decay_ * p->value[i];
      p->value[i] -= lr_ * g;
    }
  }
}

Momentum::Momentum(std::vector<VarPtr> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Momentum::ApplyStep() {
  for (size_t k = 0; k < params_.size(); ++k) {
    const VarPtr& p = params_[k];
    if (p->grad.size() != p->value.size()) continue;
    Tensor& v = velocity_[k];
    for (size_t i = 0; i < p->value.size(); ++i) {
      v[i] = momentum_ * v[i] - lr_ * p->grad[i];
      p->value[i] += v[i];
    }
  }
}

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::ApplyStep() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    const VarPtr& p = params_[k];
    if (p->grad.size() != p->value.size()) continue;
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    for (size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * g;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * g * g;
      float mhat = m[i] / bc1;
      float vhat = v[i] / bc2;
      p->value[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace autodc::nn
