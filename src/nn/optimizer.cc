#include "src/nn/optimizer.h"

#include <algorithm>
#include <cmath>

#include "src/nn/kernels.h"

namespace autodc::nn {

void Optimizer::ClipGradients(float limit) {
  for (const VarPtr& p : params_) {
    if (p->grad.size() != p->value.size()) continue;
    kernels::ClampF32(-limit, limit, p->grad.data(), p->grad.size());
  }
}

void Sgd::ApplyStep() {
  for (const VarPtr& p : params_) {
    if (p->grad.size() != p->value.size()) continue;
    if (weight_decay_ == 0.0f) {
      // p -= lr*g as one axpy; (-lr)*g == -(lr*g) exactly in IEEE, so
      // this is bit-identical to the decay-free element loop below.
      kernels::AxpyF32(-lr_, p->grad.data(), p->value.data(),
                       p->value.size());
      continue;
    }
    for (size_t i = 0; i < p->value.size(); ++i) {
      float g = p->grad[i] + weight_decay_ * p->value[i];
      p->value[i] -= lr_ * g;
    }
  }
}

Momentum::Momentum(std::vector<VarPtr> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    velocity_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Momentum::ApplyStep() {
  for (size_t k = 0; k < params_.size(); ++k) {
    const VarPtr& p = params_[k];
    if (p->grad.size() != p->value.size()) continue;
    Tensor& v = velocity_[k];
    // v = momentum*v - lr*g, then p += v.
    kernels::ScaleAddF32(-lr_, p->grad.data(), momentum_, v.data(), v.size());
    kernels::AxpyF32(1.0f, v.data(), p->value.data(), p->value.size());
  }
}

Adam::Adam(std::vector<VarPtr> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const VarPtr& p : params_) {
    m_.push_back(Tensor::Zeros(p->value.shape()));
    v_.push_back(Tensor::Zeros(p->value.shape()));
  }
}

void Adam::ApplyStep() {
  ++t_;
  float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t k = 0; k < params_.size(); ++k) {
    const VarPtr& p = params_[k];
    if (p->grad.size() != p->value.size()) continue;
    Tensor& m = m_[k];
    Tensor& v = v_[k];
    kernels::AdamUpdateF32(p->grad.data(), m.data(), v.data(),
                           p->value.data(), p->value.size(), lr_, beta1_,
                           beta2_, eps_, bc1, bc2);
  }
}

}  // namespace autodc::nn
