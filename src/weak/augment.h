#ifndef AUTODC_WEAK_AUGMENT_H_
#define AUTODC_WEAK_AUGMENT_H_

#include <cstdint>
#include <vector>

#include "src/data/table.h"
#include "src/er/deeper.h"

namespace autodc::weak {

struct AugmentConfig {
  /// Synthetic variants generated per labeled positive pair.
  size_t copies_per_positive = 3;
  /// Per-cell perturbation probability for each synthetic copy.
  double cell_perturb_prob = 0.4;
  uint64_t seed = 42;
};

/// Data augmentation for entity resolution (Sec. 6.2.2): every labeled
/// MATCH (l, r) spawns extra training rows by applying label-preserving
/// transformations (typos, abbreviation, word swap/drop, case, jitter)
/// to copies of the right-hand tuple — the pair stays a match by
/// construction. Negative pairs are left alone (perturbing them cannot
/// flip them to matches, but adds no signal either).
///
/// Appends the synthetic right-hand tuples to `*right` and returns the
/// enlarged training-pair list.
std::vector<er::PairLabel> AugmentErTrainingPairs(
    const data::Table& left, data::Table* right,
    const std::vector<er::PairLabel>& pairs, const AugmentConfig& config);

}  // namespace autodc::weak

#endif  // AUTODC_WEAK_AUGMENT_H_
