#include "src/weak/augment.h"

#include "src/datagen/perturb.h"

namespace autodc::weak {

std::vector<er::PairLabel> AugmentErTrainingPairs(
    const data::Table& left, data::Table* right,
    const std::vector<er::PairLabel>& pairs, const AugmentConfig& config) {
  Rng rng(config.seed);
  std::vector<er::PairLabel> out = pairs;
  for (const er::PairLabel& p : pairs) {
    if (p.label != 1) continue;
    for (size_t k = 0; k < config.copies_per_positive; ++k) {
      data::Row copy = right->row(p.right);
      datagen::PerturbRow(&copy, config.cell_perturb_prob, &rng);
      size_t new_row = right->num_rows();
      if (!right->AppendRow(std::move(copy)).ok()) continue;
      out.push_back(er::PairLabel{p.left, new_row, 1});
    }
  }
  (void)left;
  return out;
}

}  // namespace autodc::weak
