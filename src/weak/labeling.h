#ifndef AUTODC_WEAK_LABELING_H_
#define AUTODC_WEAK_LABELING_H_

#include <functional>
#include <string>
#include <vector>

namespace autodc::weak {

/// A labeling function's vote on one item: 0/1, or kAbstain.
constexpr int kAbstain = -1;

/// A Snorkel-style labeling function [47]: a cheap, noisy heuristic the
/// domain expert writes instead of hand-labeling ("if two tuples have
/// the same country but different capitals, they are in error").
/// The item is abstract (index into the caller's dataset).
struct LabelingFunction {
  std::string name;
  std::function<int(size_t item)> vote;
};

/// Dense matrix of votes: votes[i][j] = LF j's vote on item i.
std::vector<std::vector<int>> ApplyLabelingFunctions(
    const std::vector<LabelingFunction>& lfs, size_t num_items);

/// Majority-vote baseline: probabilistic label = fraction of non-
/// abstaining LFs voting 1 (0.5 when all abstain).
std::vector<double> MajorityVote(const std::vector<std::vector<int>>& votes);

struct LabelModelConfig {
  size_t em_iterations = 30;
  double smoothing = 1.0;      ///< Laplace smoothing of accuracy counts
  double initial_accuracy = 0.7;
};

/// The generative label model: learns each LF's accuracy via EM under
/// the conditionally-independent-LFs assumption and outputs calibrated
/// probabilistic labels. Accurate LFs get more weight than noisy ones —
/// the improvement over majority vote that Snorkel demonstrated.
class LabelModel {
 public:
  explicit LabelModel(const LabelModelConfig& config = {})
      : config_(config) {}

  /// Fits accuracies and returns P(y=1 | votes) per item.
  std::vector<double> FitPredict(
      const std::vector<std::vector<int>>& votes);

  /// Estimated accuracy per LF (valid after FitPredict).
  const std::vector<double>& accuracies() const { return accuracies_; }
  /// Estimated class prior P(y=1).
  double prior() const { return prior_; }

 private:
  std::vector<double> EStep(const std::vector<std::vector<int>>& votes) const;

  LabelModelConfig config_;
  std::vector<double> accuracies_;
  double prior_ = 0.5;
};

}  // namespace autodc::weak

#endif  // AUTODC_WEAK_LABELING_H_
