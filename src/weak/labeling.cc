#include "src/weak/labeling.h"

#include <algorithm>
#include <cmath>

namespace autodc::weak {

std::vector<std::vector<int>> ApplyLabelingFunctions(
    const std::vector<LabelingFunction>& lfs, size_t num_items) {
  std::vector<std::vector<int>> votes(num_items,
                                      std::vector<int>(lfs.size(), kAbstain));
  for (size_t i = 0; i < num_items; ++i) {
    for (size_t j = 0; j < lfs.size(); ++j) {
      votes[i][j] = lfs[j].vote(i);
    }
  }
  return votes;
}

std::vector<double> MajorityVote(const std::vector<std::vector<int>>& votes) {
  std::vector<double> out;
  out.reserve(votes.size());
  for (const std::vector<int>& row : votes) {
    size_t ones = 0, total = 0;
    for (int v : row) {
      if (v == kAbstain) continue;
      ++total;
      if (v == 1) ++ones;
    }
    out.push_back(total == 0
                      ? 0.5
                      : static_cast<double>(ones) / static_cast<double>(total));
  }
  return out;
}

std::vector<double> LabelModel::EStep(
    const std::vector<std::vector<int>>& votes) const {
  std::vector<double> probs;
  probs.reserve(votes.size());
  for (const std::vector<int>& row : votes) {
    // log P(y=1, votes) vs log P(y=0, votes) under independent LFs with
    // per-LF accuracy a_j: P(vote=y | y) = a_j, P(vote!=y | y) = 1-a_j.
    double log1 = std::log(std::max(prior_, 1e-9));
    double log0 = std::log(std::max(1.0 - prior_, 1e-9));
    for (size_t j = 0; j < row.size(); ++j) {
      if (row[j] == kAbstain) continue;
      double a = std::clamp(accuracies_[j], 1e-6, 1.0 - 1e-6);
      if (row[j] == 1) {
        log1 += std::log(a);
        log0 += std::log(1.0 - a);
      } else {
        log1 += std::log(1.0 - a);
        log0 += std::log(a);
      }
    }
    double mx = std::max(log1, log0);
    double p1 = std::exp(log1 - mx);
    double p0 = std::exp(log0 - mx);
    probs.push_back(p1 / (p1 + p0));
  }
  return probs;
}

std::vector<double> LabelModel::FitPredict(
    const std::vector<std::vector<int>>& votes) {
  size_t num_lfs = votes.empty() ? 0 : votes[0].size();
  accuracies_.assign(num_lfs, config_.initial_accuracy);
  prior_ = 0.5;
  std::vector<double> probs;
  for (size_t iter = 0; iter < config_.em_iterations; ++iter) {
    probs = EStep(votes);
    // M step: re-estimate accuracies and prior from soft labels.
    std::vector<double> correct(num_lfs, config_.smoothing);
    std::vector<double> total(num_lfs, 2.0 * config_.smoothing);
    double prior_sum = 0.0;
    for (size_t i = 0; i < votes.size(); ++i) {
      prior_sum += probs[i];
      for (size_t j = 0; j < num_lfs; ++j) {
        int v = votes[i][j];
        if (v == kAbstain) continue;
        // Expected correctness: P(y=v) given the soft label.
        correct[j] += v == 1 ? probs[i] : 1.0 - probs[i];
        total[j] += 1.0;
      }
    }
    for (size_t j = 0; j < num_lfs; ++j) {
      accuracies_[j] = correct[j] / total[j];
    }
    prior_ = votes.empty()
                 ? 0.5
                 : std::clamp(prior_sum / static_cast<double>(votes.size()),
                              0.05, 0.95);
  }
  return EStep(votes);
}

}  // namespace autodc::weak
