#include "src/common/json_parse.h"

#include <cctype>
#include <cstdlib>

namespace autodc {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

constexpr size_t kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    Status s = ParseValue(&v, 0);
    if (!s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, size_t depth) {
    if (depth > kMaxDepth) return Fail("nesting deeper than 64 levels");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
        return ParseLiteral("true", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = true;
        });
      case 'f':
        return ParseLiteral("false", [out] {
          out->kind = JsonValue::Kind::kBool;
          out->bool_value = false;
        });
      case 'n':
        return ParseLiteral("null",
                            [out] { out->kind = JsonValue::Kind::kNull; });
      default:
        return ParseNumber(out);
    }
  }

  template <typename Fn>
  Status ParseLiteral(const char* word, Fn&& apply) {
    size_t n = std::char_traits<char>::length(word);
    if (text_.compare(pos_, n, word) != 0) {
      return Fail(std::string("invalid literal (expected '") + word + "')");
    }
    pos_ += n;
    apply();
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Fail("malformed number '" + token + "'");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number_value = v;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected '\"'");
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("non-hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point. Surrogate pairs are not
          // combined (the in-tree writer only emits \u00xx controls).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail(std::string("invalid escape '\\") + e + "'");
      }
    }
  }

  Status ParseObject(JsonValue* out, size_t depth) {
    Consume('{');
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      Status s = ParseString(&key);
      if (!s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' after object key");
      JsonValue child;
      s = ParseValue(&child, depth + 1);
      if (!s.ok()) return s;
      out->object[key] = std::move(child);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, size_t depth) {
    Consume('[');
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue child;
      Status s = ParseValue(&child, depth + 1);
      if (!s.ok()) return s;
      out->array.push_back(std::move(child));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']' in array");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace autodc
