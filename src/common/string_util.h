#ifndef AUTODC_COMMON_STRING_UTIL_H_
#define AUTODC_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace autodc {

/// Splits `s` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits `s` on runs of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `delim`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// ASCII uppercase copy.
std::string ToUpper(std::string_view s);

/// Strips leading and trailing whitespace.
std::string Trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Capitalizes the first character, lowercases the rest ("john" -> "John").
std::string Capitalize(std::string_view s);

}  // namespace autodc

#endif  // AUTODC_COMMON_STRING_UTIL_H_
