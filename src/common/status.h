#ifndef AUTODC_COMMON_STATUS_H_
#define AUTODC_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace autodc {

/// Error categories used across the library. Follows the Arrow/RocksDB
/// convention of a small closed set of machine-readable codes plus a
/// free-form human-readable message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kNotImplemented,
  kInternal,
};

/// Returns a stable lowercase name for `code` (e.g. "invalid_argument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// AutoDC library code does not throw exceptions across API boundaries;
/// every operation that can fail returns a `Status` (or a `Result<T>`,
/// see result.h). A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace autodc

/// Propagates a non-OK Status to the caller. Usable in functions
/// returning Status or Result<T>.
#define AUTODC_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::autodc::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (false)

#endif  // AUTODC_COMMON_STATUS_H_
