#include "src/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>

#include "src/common/env.h"
#include "src/obs/metrics.h"

namespace autodc {

namespace {

thread_local bool t_in_worker = false;

// Global pool storage. Guarded by a mutex only at (re)creation;
// steady-state access is a relaxed pointer load.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::atomic<ThreadPool*> g_pool_ptr{nullptr};

// Absurd thread counts (beyond any plausible machine) fall back to the
// hardware default with a warning instead of spawning thousands of
// workers; so do non-numeric, negative, and zero values.
constexpr size_t kMaxReasonableThreads = 1024;

size_t DefaultThreads() {
  size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  return EnvSizeT("AUTODC_NUM_THREADS", hw, 1, kMaxReasonableThreads);
}

}  // namespace

ThreadPool::ThreadPool(size_t threads) {
  size_t workers = threads <= 1 ? 0 : threads - 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i]() { WorkerLoop(i); });
  }
  AUTODC_OBS_GAUGE_SET("threadpool.workers", static_cast<double>(workers));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  Task task{std::move(fn), {}};
#ifndef AUTODC_DISABLE_OBS
  AUTODC_OBS_INC("threadpool.tasks_submitted");
  if (obs::Enabled()) task.enqueued = std::chrono::steady_clock::now();
#endif
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  t_in_worker = true;
#ifndef AUTODC_DISABLE_OBS
  // Per-worker busy time, published as a gauge after every task. The
  // registration is per worker thread, not per task.
  obs::Gauge* busy_gauge = obs::MetricsRegistry::Global().GetGauge(
      "threadpool.worker." + std::to_string(worker_index) + ".busy_ms");
  double busy_ms = 0.0;
#else
  (void)worker_index;
#endif
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
#ifndef AUTODC_DISABLE_OBS
    if (obs::Enabled() &&
        task.enqueued != std::chrono::steady_clock::time_point{}) {
      auto start = std::chrono::steady_clock::now();
      double wait_ms = std::chrono::duration<double, std::milli>(
                           start - task.enqueued)
                           .count();
      AUTODC_OBS_HIST("threadpool.queue_wait_ms", wait_ms);
      task.fn();
      double ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
      busy_ms += ms;
      busy_gauge->Set(busy_ms);
      AUTODC_OBS_COUNT("threadpool.busy_us",
                       static_cast<uint64_t>(ms * 1e3));
      continue;
    }
#endif
    task.fn();
  }
}

ThreadPool* ThreadPool::Global() {
  ThreadPool* p = g_pool_ptr.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) {
    g_pool = std::make_unique<ThreadPool>(DefaultThreads());
    g_pool_ptr.store(g_pool.get(), std::memory_order_release);
  }
  return g_pool.get();
}

size_t NumThreads() { return ThreadPool::Global()->concurrency(); }

void SetNumThreads(size_t n) {
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_pool_ptr.store(nullptr, std::memory_order_release);
  g_pool.reset();  // joins old workers before the new pool exists
  g_pool = std::make_unique<ThreadPool>(std::max<size_t>(n, 1));
  g_pool_ptr.store(g_pool.get(), std::memory_order_release);
}

bool InParallelWorker() { return t_in_worker; }

namespace {

// Latch counting outstanding chunks of one ParallelFor call.
struct ForState {
  std::mutex mu;
  std::condition_variable done;
  size_t remaining = 0;
};

}  // namespace

void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  if (end <= begin) return;
  size_t n = end - begin;
  if (grain == 0) grain = 1;
  ThreadPool* pool = ThreadPool::Global();
  size_t threads = pool->concurrency();
  if (threads <= 1 || InParallelWorker() || n <= grain) {
    AUTODC_OBS_INC("parallel.for_inline");
    fn(begin, end);
    return;
  }
  AUTODC_OBS_INC("parallel.for_pooled");
  size_t chunks = std::min(threads, (n + grain - 1) / grain);
  size_t chunk = (n + chunks - 1) / chunks;

  // The caller is one of the pool's logical threads: it runs chunk 0
  // inline while the workers take the rest.
  ForState state;
  state.remaining = chunks - 1;
  for (size_t c = 1; c < chunks; ++c) {
    size_t lo = begin + c * chunk;
    size_t hi = std::min(end, lo + chunk);
    pool->Submit([&state, &fn, lo, hi]() {
      fn(lo, hi);
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.remaining == 0) state.done.notify_one();
    });
  }
  fn(begin, std::min(end, begin + chunk));
  std::unique_lock<std::mutex> lock(state.mu);
  state.done.wait(lock, [&state]() { return state.remaining == 0; });
}

double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& fn) {
  if (end <= begin) return 0.0;
  size_t n = end - begin;
  if (grain == 0) grain = 1;
  size_t threads = NumThreads();
  if (threads <= 1 || InParallelWorker() || n <= grain) {
    return fn(begin, end);
  }
  size_t chunks = std::min(threads, (n + grain - 1) / grain);
  std::vector<double> partial(chunks, 0.0);
  size_t chunk = (n + chunks - 1) / chunks;
  ParallelFor(begin, end, grain, [&](size_t lo, size_t hi) {
    // Recover the chunk index from the (static, deterministic) layout so
    // partials combine in chunk order regardless of scheduling.
    size_t c = (lo - begin) / chunk;
    partial[c] += fn(lo, hi);
  });
  double total = 0.0;
  for (double p : partial) total += p;
  return total;
}

}  // namespace autodc
