#ifndef AUTODC_COMMON_ENV_H_
#define AUTODC_COMMON_ENV_H_

#include <cstddef>
#include <string>

// Hardened environment-variable parsing shared by every AUTODC_* knob
// (AUTODC_NUM_THREADS, AUTODC_METRICS, AUTODC_FORCE_SCALAR, ...).
// Malformed input never produces UB, silent zeros, or absurd values:
// each helper falls back to the caller's default and emits one warning
// line on stderr naming the variable and the reason.
namespace autodc {

/// Parses `name` as a base-10 integer. Returns `fallback` (with a
/// stderr warning) when the variable is unset-and-empty, non-numeric,
/// has trailing garbage, is negative, overflows, or falls outside
/// [min_value, max_value]. Leading/trailing ASCII whitespace is
/// tolerated. An unset variable returns `fallback` silently.
size_t EnvSizeT(const char* name, size_t fallback, size_t min_value,
                size_t max_value);

/// Boolean flag semantics shared with AUTODC_FORCE_SCALAR: unset or
/// empty returns `fallback`; "0", "false", "off", "no" (case-insensitive)
/// are false; anything else is true.
bool EnvFlag(const char* name, bool fallback);

/// Parses `name` as a double with the same hardening as EnvSizeT:
/// unset returns `fallback` silently; empty, non-numeric, trailing
/// garbage, non-finite, or outside [min_value, max_value] warn and
/// fall back. (SLO thresholds like AUTODC_SLO_REJECT_RATE are ratios.)
double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value);

/// Raw string value, or `fallback` when unset or empty.
std::string EnvString(const char* name, const std::string& fallback = "");

}  // namespace autodc

#endif  // AUTODC_COMMON_ENV_H_
