#ifndef AUTODC_COMMON_JSON_PARSE_H_
#define AUTODC_COMMON_JSON_PARSE_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/result.h"

// The read half of common/json.h: a small strict RFC 8259 parser for
// the JSON this tree itself emits (RESULT_JSON envelopes, BENCH_*.json
// baseline files, METRICS_JSON snapshots, Chrome trace files). Parses
// into a plain value tree; no streaming, no comments, no trailing
// commas. Errors come back as Status with a byte offset so a truncated
// or hand-mangled baseline file names its own corruption.
namespace autodc {

/// One parsed JSON value. Numbers are always doubles (the writers in
/// common/json.h emit %.6g, so nothing in-tree needs 64-bit exactness).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience accessors with fallbacks (never throw).
  double NumberOr(double fallback) const {
    return is_number() ? number_value : fallback;
  }
  std::string StringOr(const std::string& fallback) const {
    return is_string() ? string_value : fallback;
  }
};

/// Parses one complete JSON document. Trailing non-whitespace after the
/// document, unterminated strings, bad escapes, and nesting deeper than
/// 64 levels are all kInvalidArgument with a byte offset in the message.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace autodc

#endif  // AUTODC_COMMON_JSON_PARSE_H_
