#ifndef AUTODC_COMMON_PARALLEL_H_
#define AUTODC_COMMON_PARALLEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace autodc {

/// Fixed-size worker pool behind the ParallelFor/ParallelReduce
/// primitives. One lazily-initialized global instance serves the whole
/// library; tests and benches may construct their own.
///
/// Sizing of the global pool: `AUTODC_NUM_THREADS` env var if set,
/// otherwise `std::thread::hardware_concurrency()`. A size of 0 or 1
/// means "no workers": every parallel primitive then runs inline on the
/// calling thread, which keeps single-threaded runs bit-identical to the
/// pre-pool implementation (determinism-sensitive tests pin 1 thread).
class ThreadPool {
 public:
  /// Spawns `threads` workers (0 and 1 both mean zero workers — the
  /// caller always participates, so one worker thread would only add a
  /// handoff).
  explicit ThreadPool(size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Number of worker threads (0 when serial).
  size_t num_workers() const { return workers_.size(); }

  /// Logical concurrency this pool provides: workers + the calling
  /// thread, i.e. at least 1.
  size_t concurrency() const { return workers_.size() + 1; }

  /// The process-wide pool. First call initializes it from
  /// AUTODC_NUM_THREADS / hardware_concurrency.
  static ThreadPool* Global();

 private:
  // A queued task plus its enqueue time, so the obs layer can report
  // queue-wait latency (the timestamp is only taken when obs is
  // compiled in and enabled; otherwise it is default-constructed).
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop(size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Logical thread count of the global runtime (>= 1).
size_t NumThreads();

/// Replaces the global pool with one of logical size `n` (n threads
/// total including the caller; n <= 1 disables workers). Intended for
/// bench/test setup — must not race with in-flight parallel work.
void SetNumThreads(size_t n);

/// True when called from inside a pool worker. Parallel primitives use
/// this to degrade to serial execution instead of deadlocking on nested
/// parallelism (a worker waiting on subtasks that only it could run).
bool InParallelWorker();

/// Splits [begin, end) into at most NumThreads() contiguous chunks of at
/// least `grain` elements and runs `fn(chunk_begin, chunk_end)` on the
/// pool, blocking until every chunk finished. Runs `fn(begin, end)`
/// inline when the range is empty-adjacent small, the runtime is serial,
/// or the caller is already a pool worker. Chunking is static and
/// depends only on (range, grain, thread count), never on scheduling.
void ParallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// ParallelFor that sums one double per chunk. Partial sums are
/// combined in chunk order, so the result is deterministic for a fixed
/// thread count.
double ParallelReduce(size_t begin, size_t end, size_t grain,
                      const std::function<double(size_t, size_t)>& fn);

}  // namespace autodc

#endif  // AUTODC_COMMON_PARALLEL_H_
