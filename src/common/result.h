#ifndef AUTODC_COMMON_RESULT_H_
#define AUTODC_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace autodc {

/// Either a value of type T or a non-OK Status explaining why the value
/// could not be produced. Mirrors arrow::Result.
///
/// Typical use:
///   Result<Table> r = Table::FromCsv(path);
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit so AUTODC_RETURN_NOT_OK and
  /// `return Status::...;` work). Storing an OK status is a programming
  /// error and is reported as kInternal.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    if (std::get<Status>(repr_).ok()) {
      repr_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Returns the value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    DieIfError();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    DieIfError();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    DieIfError();
    return std::move(std::get<T>(repr_));
  }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(repr_);
    return fallback;
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: "
                << std::get<Status>(repr_).ToString() << std::endl;
      std::abort();
    }
  }

  std::variant<T, Status> repr_;
};

}  // namespace autodc

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error to the caller.
#define AUTODC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define AUTODC_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define AUTODC_ASSIGN_OR_RETURN_NAME(a, b) AUTODC_ASSIGN_OR_RETURN_CONCAT(a, b)
#define AUTODC_ASSIGN_OR_RETURN(lhs, expr)                                  \
  AUTODC_ASSIGN_OR_RETURN_IMPL(                                             \
      AUTODC_ASSIGN_OR_RETURN_NAME(_autodc_result_, __COUNTER__), lhs, expr)

#endif  // AUTODC_COMMON_RESULT_H_
