#ifndef AUTODC_COMMON_RNG_H_
#define AUTODC_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace autodc {

/// Deterministic random number generator used by every stochastic component
/// in the library. All samplers, trainers, and data generators take an
/// explicit seed so experiments are reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal scaled to (mean, stddev).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Index drawn from the (unnormalized, non-negative) weights.
  /// Returns 0 for an all-zero weight vector.
  size_t Categorical(const std::vector<double>& weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) return 0;
    double r = Uniform(0.0, total);
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
      acc += weights[i];
      if (r < acc) return i;
    }
    return weights.size() - 1;
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k clamped to n).
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    if (k > n) k = n;
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    // Partial Fisher-Yates: only the first k positions need to be shuffled.
    for (size_t i = 0; i < k; ++i) {
      size_t j = static_cast<size_t>(
          UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(n) - 1));
      std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace autodc

#endif  // AUTODC_COMMON_RNG_H_
