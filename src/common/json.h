#ifndef AUTODC_COMMON_JSON_H_
#define AUTODC_COMMON_JSON_H_

#include <cmath>
#include <cstdio>
#include <string>

// The one JSON writer in the tree. Both the bench harnesses'
// RESULT_JSON lines (bench/bench_util.h) and the obs snapshot exporter
// (src/obs/export.cc) emit through JsonObject, so escaping and
// non-finite handling are fixed in exactly one place.
namespace autodc {

/// JSON string escaping per RFC 8259: backslash, quote, and all control
/// characters (U+0000..U+001F) must be escaped. Applied to keys and
/// string values alike — a key with a tab or newline in it used to
/// produce an unparseable RESULT_JSON line.
inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Formats one JSON number. JSON has no NaN/Infinity literals — a bare
/// `nan` used to make the whole RESULT_JSON line unparseable — so
/// non-finite values are emitted as `null` (documented lossy mapping;
/// consumers treat null as "not measured").
inline std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

/// Tiny JSON object builder so every emitter produces one
/// machine-readable line. Values are inserted in call order; nested
/// objects and arrays go in via SetRaw(child.str()).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    return SetRaw(key, JsonNumber(v));
  }
  JsonObject& Set(const std::string& key, size_t v) {
    return SetRaw(key, std::to_string(v));
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return SetRaw(key, "\"" + JsonEscape(v) + "\"");
  }
  /// Inserts `raw` verbatim — for numbers formatted elsewhere or nested
  /// JsonObject::str() payloads. The key is still escaped.
  JsonObject& SetRaw(const std::string& key, const std::string& raw) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + JsonEscape(key) + "\":" + raw;
    return *this;
  }
  bool empty() const { return body_.empty(); }
  std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

}  // namespace autodc

#endif  // AUTODC_COMMON_JSON_H_
