#include "src/common/string_util.h"

#include <cctype>

namespace autodc {

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view delim) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(delim);
    out.append(parts[i]);
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string Capitalize(std::string_view s) {
  std::string out = ToLower(s);
  if (!out.empty()) {
    out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

}  // namespace autodc
