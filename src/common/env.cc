#include "src/common/env.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/obs/log.h"

namespace autodc {

namespace {

void Warn(const char* name, const char* value, const char* reason,
          size_t fallback) {
  AUTODC_LOG(WARN) << "ignoring " << name << "='" << value << "' (" << reason
                   << "); using default " << fallback;
}

void WarnDouble(const char* name, const char* value, const char* reason,
                double fallback) {
  AUTODC_LOG(WARN) << "ignoring " << name << "='" << value << "' (" << reason
                   << "); using default " << fallback;
}

}  // namespace

size_t EnvSizeT(const char* name, size_t fallback, size_t min_value,
                size_t max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const char* p = raw;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') {
    Warn(name, raw, "empty value", fallback);
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(p, &end, 10);
  if (end == p) {
    Warn(name, raw, "not a number", fallback);
    return fallback;
  }
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') {
    Warn(name, raw, "trailing garbage", fallback);
    return fallback;
  }
  if (errno == ERANGE) {
    Warn(name, raw, "out of integer range", fallback);
    return fallback;
  }
  if (v < 0) {
    Warn(name, raw, "negative", fallback);
    return fallback;
  }
  unsigned long long u = static_cast<unsigned long long>(v);
  if (u < min_value || u > max_value) {
    Warn(name, raw, "outside the supported range", fallback);
    return fallback;
  }
  return static_cast<size_t>(u);
}

double EnvDouble(const char* name, double fallback, double min_value,
                 double max_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const char* p = raw;
  while (std::isspace(static_cast<unsigned char>(*p))) ++p;
  if (*p == '\0') {
    WarnDouble(name, raw, "empty value", fallback);
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(p, &end);
  if (end == p) {
    WarnDouble(name, raw, "not a number", fallback);
    return fallback;
  }
  while (std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') {
    WarnDouble(name, raw, "trailing garbage", fallback);
    return fallback;
  }
  if (errno == ERANGE || !std::isfinite(v)) {
    WarnDouble(name, raw, "out of range", fallback);
    return fallback;
  }
  if (v < min_value || v > max_value) {
    WarnDouble(name, raw, "outside the supported range", fallback);
    return fallback;
  }
  return v;
}

bool EnvFlag(const char* name, bool fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  std::string v;
  for (const char* p = raw; *p != '\0'; ++p) {
    v.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(*p))));
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") return false;
  return true;
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  return raw;
}

}  // namespace autodc
