#include "src/core/pipeline.h"

#include <chrono>

#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::core {

void PipelineContext::Metric(const std::string& key, double value) {
  metrics[key] = value;
#ifndef AUTODC_DISABLE_OBS
  if (obs::Enabled()) {
    obs::MetricsRegistry::Global().GetGauge("pipeline." + key)->Set(value);
  }
#endif
}

Pipeline& Pipeline::Add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::Add(std::string name,
                        std::function<Status(PipelineContext*)> fn) {
  stages_.push_back(
      std::make_unique<LambdaStage>(std::move(name), std::move(fn)));
  return *this;
}

Status Pipeline::Run(PipelineContext* context) const {
  AUTODC_OBS_SPAN(run_span, "pipeline.run");
  for (const auto& stage : stages_) {
    Status s;
    {
      obs::Span stage_span("pipeline.stage." + stage->name());
#ifndef AUTODC_DISABLE_OBS
      auto start = std::chrono::steady_clock::now();
#endif
      s = stage->Run(context);
#ifndef AUTODC_DISABLE_OBS
      if (obs::Enabled()) {
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        AUTODC_OBS_HIST("pipeline.stage_ms", ms);
        obs::MetricsRegistry::Global()
            .GetGauge("pipeline.stage." + stage->name() + ".wall_ms")
            ->Set(ms);
        AUTODC_LOG(INFO) << "pipeline: stage '" << stage->name() << "' "
                         << (s.ok() ? "done" : "FAILED") << " in " << ms
                         << " ms";
      }
#endif
    }
    if (!s.ok()) {
      AUTODC_LOG(ERROR) << "pipeline: stage '" << stage->name()
                        << "' failed: " << s.message();
      return Status(s.code(),
                    "stage '" + stage->name() + "': " + s.message());
    }
    context->Log("[stage done] " + stage->name());
  }
  return Status::OK();
}

std::vector<std::string> Pipeline::StageNames() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.push_back(s->name());
  return names;
}

}  // namespace autodc::core
