#include "src/core/pipeline.h"

namespace autodc::core {

Pipeline& Pipeline::Add(std::unique_ptr<Stage> stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Pipeline& Pipeline::Add(std::string name,
                        std::function<Status(PipelineContext*)> fn) {
  stages_.push_back(
      std::make_unique<LambdaStage>(std::move(name), std::move(fn)));
  return *this;
}

Status Pipeline::Run(PipelineContext* context) const {
  for (const auto& stage : stages_) {
    Status s = stage->Run(context);
    if (!s.ok()) {
      return Status(s.code(),
                    "stage '" + stage->name() + "': " + s.message());
    }
    context->Log("[stage done] " + stage->name());
  }
  return Status::OK();
}

std::vector<std::string> Pipeline::StageNames() const {
  std::vector<std::string> names;
  names.reserve(stages_.size());
  for (const auto& s : stages_) names.push_back(s->name());
  return names;
}

}  // namespace autodc::core
