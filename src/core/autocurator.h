#ifndef AUTODC_CORE_AUTOCURATOR_H_
#define AUTODC_CORE_AUTOCURATOR_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/pipeline.h"
#include "src/data/table.h"

namespace autodc::core {

/// Configuration of the self-driving curation run.
struct AutoCuratorConfig {
  /// The analyst's free-text description of the data they need.
  std::string task_query;
  /// Tables discovery may select (the best match plus schema-compatible
  /// relatives get unioned).
  size_t max_tables = 2;
  /// Semantic-match score required to align a column across tables.
  double schema_match_threshold = 0.35;
  /// DeepER match-probability threshold for intra-table deduplication.
  double dedup_threshold = 0.9;
  /// Training pairs for the self-supervised dedup model come from exact/
  /// near-exact duplicates (weak supervision); this many noisy negatives
  /// are sampled per positive.
  size_t negatives_per_positive = 4;
  /// Discover FDs with LHS up to this size and repair their violations.
  size_t fd_max_lhs = 1;
  /// Only repair FDs whose confidence on the dirty data is at least this
  /// (a true dependency dirtied a little stays above; coincidences don't).
  double fd_min_confidence = 0.9;
  uint64_t seed = 42;
};

/// Outcome of a curation run, for reporting and assertions.
struct CurationResult {
  data::Table curated;
  PipelineContext context;  ///< per-stage report and metrics
};

/// The AutoDC end-to-end driver (Figure 1): given an ocean of source
/// tables and an analytic task description, it
///   1. learns distributed representations over the whole lake,
///   2. DISCOVERS the relevant table(s) via embedding search,
///   3. INTEGRATES schema-compatible relatives (semantic column match +
///      union) and deduplicates entities (DeepER + LSH blocking +
///      golden-record fusion),
///   4. CLEANS the result (FD discovery + repair, DAE imputation),
/// producing one analysis-ready table.
class AutoCurator {
 public:
  explicit AutoCurator(const AutoCuratorConfig& config) : config_(config) {}

  Result<CurationResult> Curate(
      const std::vector<data::Table>& sources) const;

 private:
  AutoCuratorConfig config_;
};

}  // namespace autodc::core

#endif  // AUTODC_CORE_AUTOCURATOR_H_
