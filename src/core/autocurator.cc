#include "src/core/autocurator.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <unordered_map>

#include "src/cleaning/imputation.h"
#include "src/cleaning/repair.h"
#include "src/data/dependencies.h"
#include "src/discovery/schema_mapping.h"
#include "src/discovery/search.h"
#include "src/discovery/semantic_matcher.h"
#include "src/embedding/word2vec.h"
#include "src/er/blocking.h"
#include "src/er/deeper.h"
#include "src/text/similarity.h"

namespace autodc::core {

namespace {

// Minimal union-find for duplicate clustering.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

std::string RowText(data::RowView row) {
  std::string out;
  for (size_t c = 0; c < row.size(); ++c) {
    if (row.is_null(c)) continue;
    out += row.Text(c);
    out += " ";
  }
  return out;
}

}  // namespace

Result<CurationResult> AutoCurator::Curate(
    const std::vector<data::Table>& sources) const {
  if (sources.empty()) {
    return Status::InvalidArgument("no source tables");
  }
  CurationResult result;
  PipelineContext& ctx = result.context;
  ctx.tables = sources;

  AutoCuratorConfig cfg = config_;
  Pipeline pipeline;

  // ---- 1. Representation learning over the whole lake ------------------
  pipeline.Add("representation", [&cfg](PipelineContext* c) -> Status {
    std::vector<const data::Table*> ptrs;
    for (const data::Table& t : c->tables) ptrs.push_back(&t);
    embedding::Word2VecConfig wcfg;
    wcfg.sgns.dim = 32;
    wcfg.sgns.epochs = 6;
    wcfg.sgns.seed = cfg.seed;
    c->words = std::make_shared<embedding::EmbeddingStore>(
        embedding::TrainWordEmbeddingsFromTables(ptrs, wcfg));
    c->Log("trained " + std::to_string(c->words->size()) +
           " word embeddings over " + std::to_string(ptrs.size()) +
           " tables");
    return Status::OK();
  });

  // ---- 2. Discovery: select the task-relevant tables -------------------
  data::Table working;
  pipeline.Add("discovery", [&cfg, &working](PipelineContext* c) -> Status {
    std::vector<const data::Table*> ptrs;
    for (const data::Table& t : c->tables) ptrs.push_back(&t);
    discovery::TableSearchEngine engine(c->words.get());
    engine.Index(ptrs);
    auto hits = engine.Search(cfg.task_query);
    if (hits.empty()) return Status::NotFound("no table matches the query");
    const data::Table* primary = nullptr;
    for (const data::Table& t : c->tables) {
      if (t.name() == hits[0].table) primary = &t;
    }
    if (primary == nullptr) return Status::Internal("search index stale");
    working = *primary;
    c->Log("selected table '" + primary->name() + "' (score " +
           std::to_string(hits[0].score) + ") for query '" + cfg.task_query +
           "'");
    c->Metric("discovery.top_score", hits[0].score);

    // Integrate schema-compatible relatives by semantic column mapping.
    discovery::SemanticColumnMatcher matcher(c->words.get());
    size_t merged = 0;
    for (size_t h = 1; h < hits.size() && merged + 1 < cfg.max_tables; ++h) {
      const data::Table* other = nullptr;
      for (const data::Table& t : c->tables) {
        if (t.name() == hits[h].table) other = &t;
      }
      if (other == nullptr) continue;
      discovery::SchemaMapping mapping = discovery::MapSchema(
          matcher, working, *other, cfg.schema_match_threshold);
      // Union only when most of the schema aligns.
      if (mapping.num_mapped() * 2 < working.num_columns()) continue;
      AUTODC_RETURN_NOT_OK(
          discovery::UnionInto(&working, *other, mapping));
      ++merged;
      c->Log("unioned table '" + other->name() + "' into '" +
             working.name() + "' (" + std::to_string(mapping.num_mapped()) +
             " columns mapped)");
    }
    c->Metric("discovery.tables_merged", static_cast<double>(merged));
    return Status::OK();
  });

  // ---- 3. Entity resolution: dedup + golden-record fusion --------------
  pipeline.Add("dedup", [&cfg, &working](PipelineContext* c) -> Status {
    er::DeepErConfig dcfg;
    dcfg.epochs = 25;
    dcfg.learning_rate = 1e-2f;
    dcfg.seed = cfg.seed;
    // Per-epoch training curve from the Trainer runtime (loss under the
    // weak labels, epochs run, cumulative wall time).
    auto dedup_wall = std::make_shared<double>(0.0);
    dcfg.epoch_callback = [c, dedup_wall](const nn::EpochStats& s) {
      *dedup_wall += s.wall_ms;
      c->Metric("dedup.train_loss.epoch" + std::to_string(s.epoch),
                s.train_loss);
      c->Metric("dedup.train_epochs", static_cast<double>(s.epoch + 1));
      c->Metric("dedup.train_wall_ms", *dedup_wall);
    };
    er::DeepEr model(c->words.get(), dcfg);
    model.FitWeights({&working});

    // Blocking within the table.
    std::vector<std::vector<float>> vecs;
    vecs.reserve(working.num_rows());
    for (size_t r = 0; r < working.num_rows(); ++r) {
      vecs.push_back(model.EmbedTupleVector(working.row(r)));
    }
    er::LshBlocker lsh(c->words->dim(), 4, 12, cfg.seed);
    std::vector<er::RowPair> candidates;
    for (const er::RowPair& p : lsh.Candidates(vecs, vecs)) {
      if (p.first < p.second) candidates.push_back(p);
    }
    c->Metric("dedup.candidates", static_cast<double>(candidates.size()));

    // Weak supervision: near-identical candidates are positives; very
    // dissimilar random pairs are negatives. No hand labels needed.
    std::vector<er::PairLabel> train;
    Rng rng(cfg.seed);
    for (const er::RowPair& p : candidates) {
      double sim = text::TokenJaccard(RowText(working.row(p.first)),
                                      RowText(working.row(p.second)));
      if (sim > 0.75) train.push_back({p.first, p.second, 1});
    }
    size_t want_neg = train.size() * cfg.negatives_per_positive;
    size_t attempts = 0;
    while (train.size() < want_neg + want_neg / cfg.negatives_per_positive &&
           attempts < want_neg * 30 && working.num_rows() > 1) {
      ++attempts;
      size_t a = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(working.num_rows()) - 1));
      size_t b = static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(working.num_rows()) - 1));
      if (a == b) continue;
      double sim = text::TokenJaccard(RowText(working.row(a)),
                                      RowText(working.row(b)));
      if (sim < 0.3) train.push_back({a, b, 0});
    }
    if (train.empty()) {
      c->Log("dedup: no weak labels found; skipping");
      return Status::OK();
    }
    model.Train(working, working, train);

    // Match and cluster.
    std::vector<er::RowPair> matches =
        model.Match(working, working, candidates, cfg.dedup_threshold);
    UnionFind uf(working.num_rows());
    for (const er::RowPair& m : matches) uf.Union(m.first, m.second);
    std::unordered_map<size_t, std::vector<size_t>> clusters;
    for (size_t r = 0; r < working.num_rows(); ++r) {
      clusters[uf.Find(r)].push_back(r);
    }
    std::vector<std::vector<size_t>> cluster_list;
    cluster_list.reserve(clusters.size());
    for (auto& [root, rows] : clusters) {
      (void)root;
      cluster_list.push_back(std::move(rows));
    }
    size_t before = working.num_rows();
    working = cleaning::FuseClusters(working, cluster_list);
    c->Log("dedup: " + std::to_string(before) + " rows -> " +
           std::to_string(working.num_rows()) + " entities");
    c->Metric("dedup.rows_before", static_cast<double>(before));
    c->Metric("dedup.rows_after", static_cast<double>(working.num_rows()));
    return Status::OK();
  });

  // ---- 4. Cleaning: FD repair + imputation ----------------------------
  pipeline.Add("repair", [&cfg, &working](PipelineContext* c) -> Status {
    // Approximate single-attribute FDs with high confidence are treated
    // as intended constraints; their violations are majority-repaired.
    std::vector<data::FunctionalDependency> fds;
    for (size_t lhs = 0; lhs < working.num_columns(); ++lhs) {
      for (size_t rhs = 0; rhs < working.num_columns(); ++rhs) {
        if (lhs == rhs) continue;
        data::FunctionalDependency fd{{lhs}, rhs};
        double conf = data::Confidence(working, fd);
        if (conf >= cfg.fd_min_confidence && conf < 1.0) fds.push_back(fd);
      }
    }
    auto repairs = cleaning::RepairFdViolations(&working, fds);
    c->Log("repair: " + std::to_string(fds.size()) + " constraints, " +
           std::to_string(repairs.size()) + " cells repaired");
    c->Metric("repair.cells", static_cast<double>(repairs.size()));
    return Status::OK();
  });

  pipeline.Add("impute", [&cfg, &working](PipelineContext* c) -> Status {
    cleaning::DaeImputerConfig icfg;
    icfg.seed = cfg.seed;
    // Per-epoch training curve of the DAE from the Trainer runtime.
    auto impute_wall = std::make_shared<double>(0.0);
    icfg.epoch_callback = [c, impute_wall](const nn::EpochStats& s) {
      *impute_wall += s.wall_ms;
      c->Metric("impute.train_loss.epoch" + std::to_string(s.epoch),
                s.train_loss);
      c->Metric("impute.train_epochs", static_cast<double>(s.epoch + 1));
      c->Metric("impute.train_wall_ms", *impute_wall);
    };
    cleaning::DaeImputer imputer(icfg);
    size_t filled = imputer.FitAndFillAll(&working);
    // The DAE abstains on cells it decodes into the "other" bucket; a
    // mean/mode pass guarantees a complete output table.
    cleaning::MeanModeImputer fallback;
    filled += fallback.FitAndFillAll(&working);
    c->Log("impute: " + std::to_string(filled) + " missing cells filled");
    c->Metric("impute.cells", static_cast<double>(filled));
    return Status::OK();
  });

  AUTODC_RETURN_NOT_OK(pipeline.Run(&ctx));
  result.curated = std::move(working);
  return result;
}

}  // namespace autodc::core
