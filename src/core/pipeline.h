#ifndef AUTODC_CORE_PIPELINE_H_
#define AUTODC_CORE_PIPELINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/table.h"
#include "src/embedding/embedding_store.h"

namespace autodc::core {

/// Shared mutable state flowing through a curation pipeline: the working
/// table set, the pre-trained embedding store (the "holistic knowledge"
/// of Sec. 3.3 every downstream stage reuses), and a free-form report.
struct PipelineContext {
  std::vector<data::Table> tables;
  std::shared_ptr<embedding::EmbeddingStore> words;
  /// Stage-emitted human-readable findings, in execution order.
  std::vector<std::string> report;
  /// Stage-emitted numeric metrics ("stage.key" -> value).
  std::map<std::string, double> metrics;

  void Log(const std::string& line) { report.push_back(line); }
  /// Records a stage metric and mirrors it into the global obs registry
  /// as gauge "pipeline.<key>" (defined in pipeline.cc).
  void Metric(const std::string& key, double value);
};

/// One step of the DC pipeline of Figure 1 (discovery, integration,
/// cleaning, ...). Stages are composable and reorderable.
class Stage {
 public:
  virtual ~Stage() = default;
  virtual std::string name() const = 0;
  virtual Status Run(PipelineContext* context) = 0;
};

/// Adapter for building stages from lambdas.
class LambdaStage : public Stage {
 public:
  LambdaStage(std::string name,
              std::function<Status(PipelineContext*)> body)
      : name_(std::move(name)), body_(std::move(body)) {}
  std::string name() const override { return name_; }
  Status Run(PipelineContext* context) override { return body_(context); }

 private:
  std::string name_;
  std::function<Status(PipelineContext*)> body_;
};

/// Linear orchestration of stages — the automatic end-to-end DC pipeline
/// the paper's "promised land" describes (Sec. 3). Execution stops at
/// the first failing stage; the error names the stage.
class Pipeline {
 public:
  Pipeline& Add(std::unique_ptr<Stage> stage);
  Pipeline& Add(std::string name, std::function<Status(PipelineContext*)> fn);

  /// Runs every stage over `context`.
  Status Run(PipelineContext* context) const;

  size_t num_stages() const { return stages_.size(); }
  std::vector<std::string> StageNames() const;

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
};

}  // namespace autodc::core

#endif  // AUTODC_CORE_PIPELINE_H_
