#include "src/text/tokenizer.h"

#include <cctype>

#include "src/common/string_util.h"

namespace autodc::text {

std::vector<std::string> Tokenize(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char raw : s) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      cur.push_back(static_cast<char>(std::tolower(c)));
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> TokenizeKeepCase(std::string_view s) {
  std::vector<std::string> out;
  std::string cur;
  for (char raw : s) {
    if (std::isalnum(static_cast<unsigned char>(raw))) {
      cur.push_back(raw);
    } else if (!cur.empty()) {
      out.push_back(std::move(cur));
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<std::string> out;
  if (n == 0) return out;
  std::string padded(n - 1, '#');
  padded += autodc::ToLower(s);
  padded.append(n - 1, '#');
  if (padded.size() < n) return out;
  for (size_t i = 0; i + n <= padded.size(); ++i) {
    out.push_back(padded.substr(i, n));
  }
  return out;
}

std::vector<std::string> WordNgrams(std::string_view s, size_t n) {
  std::vector<std::string> tokens = Tokenize(s);
  std::vector<std::string> out;
  if (n == 0 || tokens.size() < n) return out;
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    std::string gram = tokens[i];
    for (size_t j = 1; j < n; ++j) {
      gram += "_" + tokens[i + j];
    }
    out.push_back(std::move(gram));
  }
  return out;
}

}  // namespace autodc::text
