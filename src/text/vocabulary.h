#ifndef AUTODC_TEXT_VOCABULARY_H_
#define AUTODC_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace autodc::text {

/// Bidirectional token <-> dense-id map with frequency counts. The id
/// space is what embedding matrices are indexed by.
class Vocabulary {
 public:
  /// Adds one occurrence of `token`, creating an id on first sight.
  size_t Add(const std::string& token);

  /// Adds every token of `tokens`.
  void AddAll(const std::vector<std::string>& tokens);

  /// Id of `token`, or -1 if unknown.
  int64_t IdOf(const std::string& token) const;

  const std::string& TokenOf(size_t id) const { return tokens_[id]; }
  size_t size() const { return tokens_.size(); }
  uint64_t CountOf(size_t id) const { return counts_[id]; }
  uint64_t total_count() const { return total_; }

  /// Unigram distribution raised to `power` (word2vec uses 0.75 for the
  /// negative-sampling table).
  std::vector<double> UnigramWeights(double power = 0.75) const;

  /// Drops tokens seen fewer than `min_count` times, reassigning ids.
  /// Returns old-id -> new-id (or -1 for dropped tokens).
  std::vector<int64_t> PruneRare(uint64_t min_count);

 private:
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::string> tokens_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Term-frequency / inverse-document-frequency weighting over a corpus of
/// token lists. Produces sparse document vectors used by the discovery
/// module's syntactic ranking baseline.
class TfIdf {
 public:
  /// Builds document frequencies from the corpus (one token vector per
  /// document).
  void Fit(const std::vector<std::vector<std::string>>& docs);

  /// Sparse tf-idf vector for a document: token-id -> weight.
  std::unordered_map<size_t, double> Transform(
      const std::vector<std::string>& doc) const;

  /// Cosine similarity between two sparse vectors.
  static double SparseCosine(const std::unordered_map<size_t, double>& a,
                             const std::unordered_map<size_t, double>& b);

  const Vocabulary& vocabulary() const { return vocab_; }

 private:
  Vocabulary vocab_;
  std::vector<double> idf_;
  size_t num_docs_ = 0;
};

}  // namespace autodc::text

#endif  // AUTODC_TEXT_VOCABULARY_H_
