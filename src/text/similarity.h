#ifndef AUTODC_TEXT_SIMILARITY_H_
#define AUTODC_TEXT_SIMILARITY_H_

#include <string>
#include <string_view>
#include <vector>

namespace autodc::text {

/// Edit distance (insert/delete/substitute, unit costs).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// 1 - edit_distance / max(len); 1.0 for two empty strings.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// Jaro-Winkler similarity with standard prefix scaling (p=0.1, max 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// Jaccard similarity of the word-token sets of a and b.
double TokenJaccard(std::string_view a, std::string_view b);

/// Jaccard similarity of character trigram sets.
double TrigramJaccard(std::string_view a, std::string_view b);

/// Monge-Elkan: average over tokens of `a` of the best Jaro-Winkler match
/// in `b`'s tokens. Asymmetric; good for multi-word names.
double MongeElkan(std::string_view a, std::string_view b);

/// Cosine similarity of two dense vectors (0 if either has zero norm or
/// lengths differ).
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b);

/// Euclidean distance between two dense vectors of equal length.
double EuclideanDistance(const std::vector<float>& a,
                         const std::vector<float>& b);

}  // namespace autodc::text

#endif  // AUTODC_TEXT_SIMILARITY_H_
