#ifndef AUTODC_TEXT_TOKENIZER_H_
#define AUTODC_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace autodc::text {

/// Splits text into lowercase word tokens. Alphanumeric runs form tokens;
/// everything else is a separator. "J. Smith, Ph.D" -> {"j","smith","ph","d"}.
std::vector<std::string> Tokenize(std::string_view s);

/// Like Tokenize but preserves the original character case — needed by
/// the synthesis DSL whose case operators must see the raw tokens.
std::vector<std::string> TokenizeKeepCase(std::string_view s);

/// Character n-grams of `s` (lowercased), padded with '#'.
/// Trigrams of "abc" -> {"##a","#ab","abc","bc#","c##"}.
std::vector<std::string> CharNgrams(std::string_view s, size_t n = 3);

/// Word n-grams over Tokenize(s), joined by '_'.
std::vector<std::string> WordNgrams(std::string_view s, size_t n);

}  // namespace autodc::text

#endif  // AUTODC_TEXT_TOKENIZER_H_
