#include "src/text/vocabulary.h"

#include <cmath>
#include <unordered_set>

namespace autodc::text {

size_t Vocabulary::Add(const std::string& token) {
  ++total_;
  auto it = index_.find(token);
  if (it != index_.end()) {
    ++counts_[it->second];
    return it->second;
  }
  size_t id = tokens_.size();
  index_.emplace(token, id);
  tokens_.push_back(token);
  counts_.push_back(1);
  return id;
}

void Vocabulary::AddAll(const std::vector<std::string>& tokens) {
  for (const std::string& t : tokens) Add(t);
}

int64_t Vocabulary::IdOf(const std::string& token) const {
  auto it = index_.find(token);
  if (it == index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

std::vector<double> Vocabulary::UnigramWeights(double power) const {
  std::vector<double> w(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    w[i] = std::pow(static_cast<double>(counts_[i]), power);
  }
  return w;
}

std::vector<int64_t> Vocabulary::PruneRare(uint64_t min_count) {
  std::vector<int64_t> remap(tokens_.size(), -1);
  std::vector<std::string> new_tokens;
  std::vector<uint64_t> new_counts;
  std::unordered_map<std::string, size_t> new_index;
  uint64_t new_total = 0;
  for (size_t i = 0; i < tokens_.size(); ++i) {
    if (counts_[i] < min_count) continue;
    remap[i] = static_cast<int64_t>(new_tokens.size());
    new_index.emplace(tokens_[i], new_tokens.size());
    new_tokens.push_back(tokens_[i]);
    new_counts.push_back(counts_[i]);
    new_total += counts_[i];
  }
  tokens_ = std::move(new_tokens);
  counts_ = std::move(new_counts);
  index_ = std::move(new_index);
  total_ = new_total;
  return remap;
}

void TfIdf::Fit(const std::vector<std::vector<std::string>>& docs) {
  num_docs_ = docs.size();
  std::vector<uint64_t> doc_freq;
  for (const auto& doc : docs) {
    std::unordered_set<size_t> seen;
    for (const std::string& tok : doc) {
      size_t id = vocab_.Add(tok);
      if (id >= doc_freq.size()) doc_freq.resize(id + 1, 0);
      seen.insert(id);
    }
    for (size_t id : seen) ++doc_freq[id];
  }
  idf_.resize(vocab_.size());
  for (size_t i = 0; i < idf_.size(); ++i) {
    // Smoothed idf, never negative.
    idf_[i] = std::log((1.0 + static_cast<double>(num_docs_)) /
                       (1.0 + static_cast<double>(doc_freq[i]))) +
              1.0;
  }
}

std::unordered_map<size_t, double> TfIdf::Transform(
    const std::vector<std::string>& doc) const {
  std::unordered_map<size_t, double> tf;
  for (const std::string& tok : doc) {
    int64_t id = vocab_.IdOf(tok);
    if (id < 0) continue;  // out-of-vocabulary tokens are dropped
    tf[static_cast<size_t>(id)] += 1.0;
  }
  for (auto& [id, weight] : tf) {
    weight *= idf_[id];
  }
  return tf;
}

double TfIdf::SparseCosine(const std::unordered_map<size_t, double>& a,
                           const std::unordered_map<size_t, double>& b) {
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double dot = 0.0;
  for (const auto& [id, w] : small) {
    auto it = large.find(id);
    if (it != large.end()) dot += w * it->second;
  }
  double na = 0.0, nb = 0.0;
  for (const auto& [id, w] : a) {
    (void)id;
    na += w * w;
  }
  for (const auto& [id, w] : b) {
    (void)id;
    nb += w * w;
  }
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace autodc::text
