#include "src/text/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/nn/kernels.h"
#include "src/text/tokenizer.h"

namespace autodc::text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  size_t n = a.size();
  size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<size_t> prev(m + 1);
  std::vector<size_t> cur(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, prev[j - 1] + cost});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t maxlen = std::max(a.size(), b.size());
  if (maxlen == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(maxlen);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  size_t n = a.size();
  size_t m = b.size();
  if (n == 0 && m == 0) return 1.0;
  if (n == 0 || m == 0) return 0.0;
  size_t window = std::max(n, m) / 2;
  if (window > 0) window -= 1;
  std::vector<bool> a_match(n, false), b_match(m, false);
  size_t matches = 0;
  for (size_t i = 0; i < n; ++i) {
    size_t lo = (i > window) ? i - window : 0;
    size_t hi = std::min(m, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (b_match[j] || a[i] != b[j]) continue;
      a_match[i] = b_match[j] = true;
      ++matches;
      break;
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t t = 0;
  size_t j = 0;
  for (size_t i = 0; i < n; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[j]) ++j;
    if (a[i] != b[j]) ++t;
    ++j;
  }
  double dm = static_cast<double>(matches);
  return (dm / n + dm / m + (dm - t / 2.0) / dm) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = 0;
  size_t maxp = std::min({a.size(), b.size(), static_cast<size_t>(4)});
  while (prefix < maxp && a[prefix] == b[prefix]) ++prefix;
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

namespace {
double SetJaccard(const std::vector<std::string>& xs,
                  const std::vector<std::string>& ys) {
  if (xs.empty() && ys.empty()) return 1.0;
  std::unordered_set<std::string> sa(xs.begin(), xs.end());
  std::unordered_set<std::string> sb(ys.begin(), ys.end());
  size_t inter = 0;
  for (const std::string& s : sa) {
    if (sb.count(s) > 0) ++inter;
  }
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}
}  // namespace

double TokenJaccard(std::string_view a, std::string_view b) {
  return SetJaccard(Tokenize(a), Tokenize(b));
}

double TrigramJaccard(std::string_view a, std::string_view b) {
  return SetJaccard(CharNgrams(a, 3), CharNgrams(b, 3));
}

double MongeElkan(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty()) return tb.empty() ? 1.0 : 0.0;
  if (tb.empty()) return 0.0;
  double sum = 0.0;
  for (const std::string& x : ta) {
    double best = 0.0;
    for (const std::string& y : tb) {
      best = std::max(best, JaroWinklerSimilarity(x, y));
    }
    sum += best;
  }
  return sum / static_cast<double>(ta.size());
}

// Both overloads share the fused kernel (one pass computing dot and the
// two norms); the size checks live here, the zero-norm guard inside the
// kernel.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  return nn::kernels::CosineF64(a.data(), b.data(), a.size());
}
double CosineSimilarity(const std::vector<float>& a,
                        const std::vector<float>& b) {
  if (a.size() != b.size() || a.empty()) return 0.0;
  return nn::kernels::CosineF32(a.data(), b.data(), a.size());
}

double EuclideanDistance(const std::vector<float>& a,
                         const std::vector<float>& b) {
  size_t n = std::min(a.size(), b.size());
  return std::sqrt(nn::kernels::SqDistF32(a.data(), b.data(), n));
}

}  // namespace autodc::text
