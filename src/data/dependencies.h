#ifndef AUTODC_DATA_DEPENDENCIES_H_
#define AUTODC_DATA_DEPENDENCIES_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/table.h"

namespace autodc::data {

/// A functional dependency lhs -> rhs over column indices: any two tuples
/// agreeing on every lhs attribute must agree on the rhs attribute.
/// These are the integrity constraints Figure 4 of the paper adds as
/// directed edges to the heterogeneous table graph.
struct FunctionalDependency {
  std::vector<size_t> lhs;
  size_t rhs = 0;

  std::string ToString(const Schema& schema) const;
};

/// A pair of row indices that jointly violate a dependency, plus which
/// dependency they violate.
struct Violation {
  size_t fd_index = 0;
  size_t row_a = 0;
  size_t row_b = 0;
};

/// Returns every violating row pair for `fd` in `table`. Null values on the
/// LHS never match (SQL semantics); null RHS values conflict with non-null
/// ones.
std::vector<Violation> FindViolations(const Table& table,
                                      const FunctionalDependency& fd,
                                      size_t fd_index = 0);

/// Returns violations of all `fds`.
std::vector<Violation> FindAllViolations(
    const Table& table, const std::vector<FunctionalDependency>& fds);

/// True if `fd` holds exactly on `table`.
bool Holds(const Table& table, const FunctionalDependency& fd);

/// Fraction of row pairs sharing an LHS value that also agree on RHS
/// (1.0 = exact FD). Used to rank approximate dependencies.
double Confidence(const Table& table, const FunctionalDependency& fd);

/// Discovers all minimal FDs with |LHS| <= max_lhs that hold exactly on
/// `table` (a small TANE-style levelwise search; exponential in max_lhs,
/// intended for the narrow relations used in curation experiments).
std::vector<FunctionalDependency> DiscoverFds(const Table& table,
                                              size_t max_lhs = 2);

/// A conditional functional dependency: an embedded FD plus a pattern
/// tableau restricting it to tuples matching constant patterns.
/// A pattern value of "_" (kWildcard) matches anything.
struct ConditionalFd {
  FunctionalDependency fd;
  /// One pattern per lhs attribute plus one for rhs, aligned with
  /// fd.lhs order then fd.rhs. "_" is a wildcard; anything else must equal
  /// the cell's string rendering.
  std::vector<std::string> pattern;

  static constexpr const char* kWildcard = "_";
};

/// Returns violating row pairs for a CFD: both rows must match the pattern
/// on the lhs, agree on lhs, and then disagree on rhs (or disagree with a
/// constant rhs pattern — single-row violations are reported as (r, r)).
std::vector<Violation> FindCfdViolations(const Table& table,
                                         const ConditionalFd& cfd,
                                         size_t fd_index = 0);

}  // namespace autodc::data

#endif  // AUTODC_DATA_DEPENDENCIES_H_
