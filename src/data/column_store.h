#ifndef AUTODC_DATA_COLUMN_STORE_H_
#define AUTODC_DATA_COLUMN_STORE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/data/schema.h"
#include "src/data/value.h"

// Columnar backing store for Table (DESIGN.md §12): per-column typed
// arrays (int64 / double / dictionary-encoded string codes) with null
// bitmaps, organized into fixed-size row chunks. Chunks either own
// their arrays (tables built in memory) or borrow them from a binary
// table file (table_file.h), which is what makes reopen O(1): the
// arrays ARE the file bytes, mapped or bulk-read, never parsed.
//
// Cells whose value type disagrees with the column's storage type (a
// string written into an int column, say) land in a tiny per-column
// overflow map keyed by row, preserving the old row-store's full
// heterogeneity without taxing the typed hot path: a column with an
// empty overflow map is "uniform" and safe for raw array scans.
namespace autodc::data {

/// A tuple materialized as owned values (defined here so ColumnStore
/// can append one; Table re-exports it as the legacy row type).
using Row = std::vector<Value>;

/// Default rows per chunk; override with AUTODC_TABLE_CHUNK_ROWS.
inline constexpr size_t kDefaultChunkRows = 65536;

/// Rows per chunk from the environment (AUTODC_TABLE_CHUNK_ROWS,
/// clamped to [64, 1<<22]); kDefaultChunkRows when unset.
size_t ChunkRowsFromEnv();

/// Per-column string dictionary: distinct strings get dense uint32
/// codes; cells store codes. Backing bytes are either owned (built in
/// memory) or borrowed from a table file's dict blob; strings appended
/// after a borrow go to an owned side arena, so mixed backing is fine.
class StringDict {
 public:
  StringDict() = default;
  // Codes index into backing arenas via string_views; default copies
  // would leave views dangling, so the store deep-copies by re-encoding.
  StringDict(const StringDict&) = delete;
  StringDict& operator=(const StringDict&) = delete;
  StringDict(StringDict&&) = default;
  StringDict& operator=(StringDict&&) = default;

  /// Code of `s`, interning it on first sight. Builds the lookup index
  /// lazily (a file-borrowed dict pays for the index only if written to).
  uint32_t GetOrAdd(std::string_view s);

  std::string_view str(uint32_t code) const { return views_[code]; }
  size_t size() const { return views_.size(); }

  /// Adopts `views` (pointing into caller-kept backing, e.g. an mmap)
  /// as codes 0..n-1. Only valid on an empty dict.
  void ResetBorrowed(std::vector<std::string_view> views);

  /// Bytes of string payload plus per-entry bookkeeping.
  size_t ByteSize() const;

 private:
  void BuildIndex();

  std::vector<std::string_view> views_;
  /// Stable-address arena for strings interned at runtime (deque never
  /// relocates elements, so views_ entries stay valid as it grows).
  std::deque<std::string> owned_;
  std::unordered_map<std::string_view, uint32_t> index_;
  bool index_valid_ = true;  ///< empty dict has a (trivially) valid index
};

/// One fixed-size run of rows of one column. Arrays are exposed as raw
/// pointers; `owned` says whether they live in the vectors below or are
/// borrowed from a table file kept alive by the store.
struct ColumnChunk {
  size_t n = 0;  ///< rows in this chunk
  bool owned = true;

  // Owned backing (exactly one data vector is used, per column type).
  std::vector<uint64_t> nulls;  ///< bit set ⇒ null; ceil(n/64) words
  std::vector<int64_t> i64;
  std::vector<double> f64;
  std::vector<uint32_t> codes;

  // Borrowed backing (table file bytes; see table_file.cc).
  const uint64_t* b_nulls = nullptr;
  const int64_t* b_i64 = nullptr;
  const double* b_f64 = nullptr;
  const uint32_t* b_codes = nullptr;

  const uint64_t* null_words() const { return owned ? nulls.data() : b_nulls; }
  const int64_t* i64_data() const { return owned ? i64.data() : b_i64; }
  const double* f64_data() const { return owned ? f64.data() : b_f64; }
  const uint32_t* code_data() const { return owned ? codes.data() : b_codes; }

  bool is_null(size_t i) const {
    return (null_words()[i >> 6] >> (i & 63)) & 1u;
  }
};

/// A read-only, typed view of one chunk of one column — what hot loops
/// and ParallelFor-over-chunks consumers iterate. `base` is the store
/// row index of element 0.
struct TypedChunkRef {
  size_t base = 0;
  size_t n = 0;
  const uint64_t* nulls = nullptr;  ///< bit set ⇒ null
  const int64_t* i64 = nullptr;     ///< set iff column stores int64
  const double* f64 = nullptr;      ///< set iff column stores double
  const uint32_t* codes = nullptr;  ///< set iff column stores dict codes

  bool is_null(size_t i) const { return (nulls[i >> 6] >> (i & 63)) & 1u; }
};

class ColumnStore {
 public:
  ColumnStore(const Schema& schema, size_t chunk_rows);
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;

  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }
  size_t chunk_rows() const { return chunk_rows_; }
  size_t num_chunks() const {
    return num_rows_ == 0 ? 0 : (num_rows_ + chunk_rows_ - 1) / chunk_rows_;
  }

  /// Physical storage type of column `c`: kInt, kDouble, or kString
  /// (dict codes). Schema-typed kNull columns store as kString.
  ValueType storage_type(size_t c) const { return columns_[c].type; }

  /// True when every cell of `c` matches the storage type (no overflow
  /// entries) — the precondition for raw typed-array scans.
  bool uniform(size_t c) const { return columns_[c].overflow.empty(); }

  /// Appends one row; arity must already match (Table checks).
  void AppendRow(const Row& row);
  /// Appends a single cell to column `c` (bulk builders append
  /// column-at-a-time; every column must end the batch at equal length).
  void AppendCell(size_t c, const Value& v);
  /// Appends a null / int / double / string cell without building a
  /// Value — the CSV ingest fast path.
  void AppendNull(size_t c);
  void AppendInt(size_t c, int64_t v);
  void AppendDouble(size_t c, double v);
  void AppendString(size_t c, std::string_view v);
  /// Called by column-at-a-time builders after appending cells directly:
  /// adopts the (equal) column lengths as the row count.
  void FinishColumnBatch();

  Value GetValue(size_t r, size_t c) const;
  bool IsNull(size_t r, size_t c) const;
  /// Value type of the cell (overflow-aware), without materializing it.
  ValueType CellType(size_t r, size_t c) const;
  /// Canonical text of the cell, identical to GetValue(r,c).ToString()
  /// but skipping the variant for the common typed cases.
  std::string CellText(size_t r, size_t c) const;
  /// Dict string payload of a uniform string cell. Preconditions:
  /// storage_type(c)==kString, !IsNull(r,c), uniform(c).
  std::string_view CellStringView(size_t r, size_t c) const;
  /// Dict code of a uniform string cell (same preconditions).
  uint32_t CellCode(size_t r, size_t c) const;

  void SetValue(size_t r, size_t c, Value v);

  const StringDict& dict(size_t c) const { return columns_[c].dict; }
  TypedChunkRef chunk(size_t c, size_t k) const;

  /// Heap/map bytes held by arrays, dicts, and overflow (borrowed file
  /// bytes count too: they are resident once touched).
  size_t ResidentBytes() const;

  /// Overflow cells of column c (row -> value), for serialization.
  const std::unordered_map<uint64_t, Value>& overflow(size_t c) const {
    return columns_[c].overflow;
  }

  // --- table_file.cc hooks ---------------------------------------------
  /// Installs a borrowed chunk (pointers into `backing`) during open.
  void AdoptBorrowedChunk(size_t c, ColumnChunk chunk);
  void AdoptBorrowedDict(size_t c, std::vector<std::string_view> views);
  void AdoptOverflowCell(size_t c, uint64_t row, Value v);
  void SetRowCount(size_t n) { num_rows_ = n; }
  /// Keeps the mapped/bulk-read file bytes alive for borrowed chunks.
  void HoldBacking(std::shared_ptr<const void> backing) {
    backing_ = std::move(backing);
  }

 private:
  struct ColumnData {
    ValueType type = ValueType::kString;  ///< storage type, never kNull
    std::vector<ColumnChunk> chunks;
    StringDict dict;  ///< used iff type == kString
    /// Cells whose value type mismatches `type`; never holds nulls.
    std::unordered_map<uint64_t, Value> overflow;
  };

  /// Tail chunk of column `c` with room for one more row.
  ColumnChunk& WritableTail(size_t c);
  /// Total rows appended to column `c` (may differ from num_rows_
  /// mid-batch during column-at-a-time building).
  size_t ColumnLength(size_t c) const;
  /// Copies a borrowed chunk's arrays into owned vectors (pre-write).
  void EnsureOwned(size_t c, size_t k);
  void SetNullBit(ColumnChunk* ch, size_t i, bool null);

  std::vector<ColumnData> columns_;
  size_t num_rows_ = 0;
  size_t chunk_rows_;
  /// Backing blob for borrowed chunks (mmap or bulk-read file image).
  std::shared_ptr<const void> backing_;
};

}  // namespace autodc::data

#endif  // AUTODC_DATA_COLUMN_STORE_H_
