#include "src/data/column_store.h"

#include <cassert>
#include <sstream>

#include "src/common/env.h"
#include "src/obs/metrics.h"

namespace autodc::data {

size_t ChunkRowsFromEnv() {
  return EnvSizeT("AUTODC_TABLE_CHUNK_ROWS", kDefaultChunkRows, 64,
                  size_t{1} << 22);
}

// ---- StringDict ------------------------------------------------------

uint32_t StringDict::GetOrAdd(std::string_view s) {
  if (!index_valid_) BuildIndex();
  auto it = index_.find(s);
  if (it != index_.end()) {
    AUTODC_OBS_INC("data.dict_hits");
    return it->second;
  }
  AUTODC_OBS_INC("data.dict_misses");
  owned_.emplace_back(s);
  uint32_t code = static_cast<uint32_t>(views_.size());
  std::string_view stable(owned_.back());
  views_.push_back(stable);
  index_.emplace(stable, code);
  return code;
}

void StringDict::ResetBorrowed(std::vector<std::string_view> views) {
  assert(views_.empty());
  views_ = std::move(views);
  index_valid_ = false;  // built lazily on first GetOrAdd
}

void StringDict::BuildIndex() {
  index_.reserve(views_.size());
  for (uint32_t i = 0; i < views_.size(); ++i) {
    index_.emplace(views_[i], i);
  }
  index_valid_ = true;
}

size_t StringDict::ByteSize() const {
  size_t bytes = views_.size() * sizeof(std::string_view);
  for (std::string_view v : views_) bytes += v.size();
  return bytes;
}

// ---- ColumnStore -----------------------------------------------------

namespace {

/// Storage type for a schema-declared column type. Columns declared
/// kNull (the CSV reader's "all cells empty" inference) store as
/// strings: codes cost 4 bytes/row and accept late-arriving text.
ValueType StorageTypeFor(ValueType declared) {
  switch (declared) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return declared;
    default:
      return ValueType::kString;
  }
}

}  // namespace

ColumnStore::ColumnStore(const Schema& schema, size_t chunk_rows)
    : chunk_rows_(chunk_rows == 0 ? kDefaultChunkRows : chunk_rows) {
  columns_.resize(schema.num_columns());
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].type = StorageTypeFor(schema.column(c).type);
  }
}

ColumnChunk& ColumnStore::WritableTail(size_t c) {
  auto& chunks = columns_[c].chunks;
  if (chunks.empty() || chunks.back().n >= chunk_rows_ ||
      !chunks.back().owned) {
    if (!chunks.empty() && !chunks.back().owned &&
        chunks.back().n < chunk_rows_) {
      // Appending past a short borrowed tail (a reopened file): own it
      // first so it can grow.
      EnsureOwned(c, chunks.size() - 1);
    } else {
      chunks.emplace_back();
    }
  }
  ColumnChunk& ch = chunks.back();
  if ((ch.n & 63) == 0 && ch.nulls.size() <= (ch.n >> 6)) {
    ch.nulls.push_back(0);
  }
  return ch;
}

void ColumnStore::EnsureOwned(size_t c, size_t k) {
  ColumnChunk& ch = columns_[c].chunks[k];
  if (ch.owned) return;
  size_t words = (ch.n + 63) / 64;
  ch.nulls.assign(ch.b_nulls, ch.b_nulls + words);
  switch (columns_[c].type) {
    case ValueType::kInt:
      ch.i64.assign(ch.b_i64, ch.b_i64 + ch.n);
      break;
    case ValueType::kDouble:
      ch.f64.assign(ch.b_f64, ch.b_f64 + ch.n);
      break;
    default:
      ch.codes.assign(ch.b_codes, ch.b_codes + ch.n);
      break;
  }
  ch.b_nulls = nullptr;
  ch.b_i64 = nullptr;
  ch.b_f64 = nullptr;
  ch.b_codes = nullptr;
  ch.owned = true;
}

void ColumnStore::SetNullBit(ColumnChunk* ch, size_t i, bool null) {
  uint64_t mask = uint64_t{1} << (i & 63);
  if (null) {
    ch->nulls[i >> 6] |= mask;
  } else {
    ch->nulls[i >> 6] &= ~mask;
  }
}

void ColumnStore::AppendRow(const Row& row) {
  for (size_t c = 0; c < row.size(); ++c) AppendCell(c, row[c]);
  ++num_rows_;
}

void ColumnStore::AppendCell(size_t c, const Value& v) {
  ColumnData& col = columns_[c];
  switch (v.type()) {
    case ValueType::kNull:
      AppendNull(c);
      return;
    case ValueType::kInt:
      if (col.type == ValueType::kInt) {
        AppendInt(c, v.AsInt());
        return;
      }
      break;
    case ValueType::kDouble:
      if (col.type == ValueType::kDouble) {
        AppendDouble(c, v.AsDouble());
        return;
      }
      break;
    case ValueType::kString:
      if (col.type == ValueType::kString) {
        AppendString(c, v.AsString());
        return;
      }
      break;
  }
  // Type mismatch with the column's storage: record in the overflow
  // map and mark the slot null so typed scans skip it.
  uint64_t row = ColumnLength(c);
  AppendNull(c);
  col.overflow.emplace(row, v);
}

void ColumnStore::AppendNull(size_t c) {
  ColumnChunk& ch = WritableTail(c);
  SetNullBit(&ch, ch.n, true);
  switch (columns_[c].type) {
    case ValueType::kInt: ch.i64.push_back(0); break;
    case ValueType::kDouble: ch.f64.push_back(0.0); break;
    default: ch.codes.push_back(0); break;
  }
  ++ch.n;
}

void ColumnStore::AppendInt(size_t c, int64_t v) {
  ColumnChunk& ch = WritableTail(c);
  SetNullBit(&ch, ch.n, false);
  ch.i64.push_back(v);
  ++ch.n;
}

void ColumnStore::AppendDouble(size_t c, double v) {
  ColumnChunk& ch = WritableTail(c);
  SetNullBit(&ch, ch.n, false);
  ch.f64.push_back(v);
  ++ch.n;
}

void ColumnStore::AppendString(size_t c, std::string_view v) {
  uint32_t code = columns_[c].dict.GetOrAdd(v);
  ColumnChunk& ch = WritableTail(c);
  SetNullBit(&ch, ch.n, false);
  ch.codes.push_back(code);
  ++ch.n;
}

size_t ColumnStore::ColumnLength(size_t c) const {
  size_t n = 0;
  for (const ColumnChunk& ch : columns_[c].chunks) n += ch.n;
  return n;
}

void ColumnStore::FinishColumnBatch() {
  num_rows_ = columns_.empty() ? 0 : ColumnLength(0);
#ifndef NDEBUG
  for (size_t c = 0; c < columns_.size(); ++c) {
    assert(ColumnLength(c) == num_rows_ && "ragged column batch");
  }
#endif
}

Value ColumnStore::GetValue(size_t r, size_t c) const {
  const ColumnData& col = columns_[c];
  if (!col.overflow.empty()) {
    auto it = col.overflow.find(r);
    if (it != col.overflow.end()) return it->second;
  }
  size_t k = r / chunk_rows_;
  size_t i = r % chunk_rows_;
  const ColumnChunk& ch = col.chunks[k];
  if (ch.is_null(i)) return Value();
  switch (col.type) {
    case ValueType::kInt:
      return Value(ch.i64_data()[i]);
    case ValueType::kDouble:
      return Value(ch.f64_data()[i]);
    default:
      return Value(std::string(col.dict.str(ch.code_data()[i])));
  }
}

bool ColumnStore::IsNull(size_t r, size_t c) const {
  const ColumnData& col = columns_[c];
  if (!col.overflow.empty() && col.overflow.count(r)) return false;
  return col.chunks[r / chunk_rows_].is_null(r % chunk_rows_);
}

ValueType ColumnStore::CellType(size_t r, size_t c) const {
  const ColumnData& col = columns_[c];
  if (!col.overflow.empty()) {
    auto it = col.overflow.find(r);
    if (it != col.overflow.end()) return it->second.type();
  }
  if (col.chunks[r / chunk_rows_].is_null(r % chunk_rows_)) {
    return ValueType::kNull;
  }
  return col.type;
}

std::string ColumnStore::CellText(size_t r, size_t c) const {
  const ColumnData& col = columns_[c];
  if (!col.overflow.empty()) {
    auto it = col.overflow.find(r);
    if (it != col.overflow.end()) return it->second.ToString();
  }
  size_t k = r / chunk_rows_;
  size_t i = r % chunk_rows_;
  const ColumnChunk& ch = col.chunks[k];
  if (ch.is_null(i)) return "";
  switch (col.type) {
    case ValueType::kInt:
      return std::to_string(ch.i64_data()[i]);
    case ValueType::kDouble: {
      // Must match Value::ToString exactly (round-trip goldens).
      std::ostringstream os;
      os << ch.f64_data()[i];
      return os.str();
    }
    default:
      return std::string(col.dict.str(ch.code_data()[i]));
  }
}

std::string_view ColumnStore::CellStringView(size_t r, size_t c) const {
  const ColumnData& col = columns_[c];
  const ColumnChunk& ch = col.chunks[r / chunk_rows_];
  return col.dict.str(ch.code_data()[r % chunk_rows_]);
}

uint32_t ColumnStore::CellCode(size_t r, size_t c) const {
  return columns_[c].chunks[r / chunk_rows_].code_data()[r % chunk_rows_];
}

void ColumnStore::SetValue(size_t r, size_t c, Value v) {
  ColumnData& col = columns_[c];
  size_t k = r / chunk_rows_;
  size_t i = r % chunk_rows_;
  EnsureOwned(c, k);
  ColumnChunk& ch = col.chunks[k];
  col.overflow.erase(r);
  switch (v.type()) {
    case ValueType::kNull:
      SetNullBit(&ch, i, true);
      return;
    case ValueType::kInt:
      if (col.type == ValueType::kInt) {
        ch.i64[i] = v.AsInt();
        SetNullBit(&ch, i, false);
        return;
      }
      break;
    case ValueType::kDouble:
      if (col.type == ValueType::kDouble) {
        ch.f64[i] = v.AsDouble();
        SetNullBit(&ch, i, false);
        return;
      }
      break;
    case ValueType::kString:
      if (col.type == ValueType::kString) {
        ch.codes[i] = col.dict.GetOrAdd(v.AsString());
        SetNullBit(&ch, i, false);
        return;
      }
      break;
  }
  SetNullBit(&ch, i, true);  // typed slot reads as null; value lives aside
  col.overflow.emplace(r, std::move(v));
}

TypedChunkRef ColumnStore::chunk(size_t c, size_t k) const {
  AUTODC_OBS_INC("data.chunk_scans");
  const ColumnData& col = columns_[c];
  const ColumnChunk& ch = col.chunks[k];
  TypedChunkRef ref;
  ref.base = k * chunk_rows_;
  ref.n = ch.n;
  ref.nulls = ch.null_words();
  switch (col.type) {
    case ValueType::kInt: ref.i64 = ch.i64_data(); break;
    case ValueType::kDouble: ref.f64 = ch.f64_data(); break;
    default: ref.codes = ch.code_data(); break;
  }
  return ref;
}

size_t ColumnStore::ResidentBytes() const {
  size_t bytes = 0;
  for (const ColumnData& col : columns_) {
    for (const ColumnChunk& ch : col.chunks) {
      size_t words = (ch.n + 63) / 64;
      bytes += words * sizeof(uint64_t);
      switch (col.type) {
        case ValueType::kInt: bytes += ch.n * sizeof(int64_t); break;
        case ValueType::kDouble: bytes += ch.n * sizeof(double); break;
        default: bytes += ch.n * sizeof(uint32_t); break;
      }
    }
    bytes += col.dict.ByteSize();
    bytes += col.overflow.size() * (sizeof(uint64_t) + sizeof(Value));
  }
  return bytes;
}

void ColumnStore::AdoptBorrowedChunk(size_t c, ColumnChunk chunk) {
  columns_[c].chunks.push_back(std::move(chunk));
}

void ColumnStore::AdoptBorrowedDict(size_t c,
                                    std::vector<std::string_view> views) {
  columns_[c].dict.ResetBorrowed(std::move(views));
}

void ColumnStore::AdoptOverflowCell(size_t c, uint64_t row, Value v) {
  columns_[c].overflow.emplace(row, std::move(v));
}

}  // namespace autodc::data
