#include "src/data/dependencies.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace autodc::data {

namespace {

// Builds the grouping key of a row restricted to `cols`: per-column text
// joined with a \x01 sentinel, nulls flagged (null LHS never matches).
// On chunk-scannable tables, uniform string columns render each DISTINCT
// value's key segment once (cached by dictionary code), so grouping a
// column costs one dict lookup per row instead of a Value + ToString.
// The produced keys are byte-identical to the legacy per-row path, so
// group contents — and violation output order — are unchanged.
class LhsKeyBuilder {
 public:
  LhsKeyBuilder(const Table& table, const std::vector<size_t>& cols)
      : table_(table), cols_(cols), fast_(cols.size(), 0),
        cached_(cols.size()), have_(cols.size()) {
    if (!table.ChunkScannable()) return;
    for (size_t i = 0; i < cols.size(); ++i) {
      size_t c = cols[i];
      if (table.ColumnUniform(c) &&
          table.storage_type(c) == ValueType::kString) {
        fast_[i] = 1;
        cached_[i].resize(table.dict(c).size());
        have_[i].assign(table.dict(c).size(), 0);
      }
    }
  }

  std::string Key(size_t r, bool* has_null) {
    std::string key;
    *has_null = false;
    for (size_t i = 0; i < cols_.size(); ++i) {
      size_t c = cols_[i];
      if (table_.IsNull(r, c)) {
        *has_null = true;
        return key;  // callers skip null-LHS rows; key content unused
      }
      if (fast_[i]) {
        uint32_t code = table_.DictCode(r, c);
        if (!have_[i][code]) {
          cached_[i][code] =
              std::string("\x01") + std::string(table_.dict(c).str(code));
          have_[i][code] = 1;
        }
        key += cached_[i][code];
      } else {
        key += "\x01" + table_.CellText(r, c);
      }
    }
    return key;
  }

 private:
  const Table& table_;
  const std::vector<size_t>& cols_;
  std::vector<char> fast_;
  std::vector<std::vector<std::string>> cached_;  ///< per col: per-code segment
  std::vector<std::vector<char>> have_;
};

}  // namespace

std::string FunctionalDependency::ToString(const Schema& schema) const {
  std::ostringstream os;
  for (size_t i = 0; i < lhs.size(); ++i) {
    if (i > 0) os << ",";
    os << schema.column(lhs[i]).name;
  }
  os << " -> " << schema.column(rhs).name;
  return os.str();
}

std::vector<Violation> FindViolations(const Table& table,
                                      const FunctionalDependency& fd,
                                      size_t fd_index) {
  std::vector<Violation> out;
  // Group rows by LHS key; within a group, any two rows with differing RHS
  // violate. To keep output size linear-ish we report each offending row
  // paired with the group's first row holding a different RHS value.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  LhsKeyBuilder keys(table, fd.lhs);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool has_null = false;
    std::string key = keys.Key(r, &has_null);
    if (has_null) continue;  // null LHS never matches anything
    groups[std::move(key)].push_back(r);
  }
  for (const auto& [key, rows] : groups) {
    (void)key;
    if (rows.size() < 2) continue;
    for (size_t i = 1; i < rows.size(); ++i) {
      const Value a = table.at(rows[0], fd.rhs);
      const Value b = table.at(rows[i], fd.rhs);
      if (a != b) {
        out.push_back(Violation{fd_index, rows[0], rows[i]});
      }
    }
  }
  return out;
}

std::vector<Violation> FindAllViolations(
    const Table& table, const std::vector<FunctionalDependency>& fds) {
  std::vector<Violation> out;
  for (size_t i = 0; i < fds.size(); ++i) {
    std::vector<Violation> v = FindViolations(table, fds[i], i);
    out.insert(out.end(), v.begin(), v.end());
  }
  return out;
}

bool Holds(const Table& table, const FunctionalDependency& fd) {
  return FindViolations(table, fd).empty();
}

double Confidence(const Table& table, const FunctionalDependency& fd) {
  // For each LHS group, the best single RHS value "explains"
  // max_count rows; confidence = sum(max_count) / total grouped rows.
  std::unordered_map<std::string, std::map<std::string, size_t>> groups;
  size_t total = 0;
  LhsKeyBuilder keys(table, fd.lhs);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool has_null = false;
    std::string key = keys.Key(r, &has_null);
    if (has_null) continue;
    groups[std::move(key)][table.CellText(r, fd.rhs)]++;
    ++total;
  }
  if (total == 0) return 1.0;
  size_t kept = 0;
  for (const auto& [key, counts] : groups) {
    (void)key;
    size_t best = 0;
    for (const auto& [v, n] : counts) {
      (void)v;
      best = std::max(best, n);
    }
    kept += best;
  }
  return static_cast<double>(kept) / static_cast<double>(total);
}

std::vector<FunctionalDependency> DiscoverFds(const Table& table,
                                              size_t max_lhs) {
  std::vector<FunctionalDependency> found;
  size_t n = table.num_columns();
  if (n == 0) return found;

  // Levelwise: all LHS subsets of size 1..max_lhs (by index combinations).
  std::vector<std::vector<size_t>> level;
  for (size_t c = 0; c < n; ++c) level.push_back({c});

  auto lhs_subsumed = [&](const std::vector<size_t>& lhs, size_t rhs) {
    // Minimality: skip if a known FD's LHS is a subset of this lhs with the
    // same rhs.
    for (const FunctionalDependency& f : found) {
      if (f.rhs != rhs) continue;
      bool subset = std::all_of(f.lhs.begin(), f.lhs.end(), [&](size_t a) {
        return std::find(lhs.begin(), lhs.end(), a) != lhs.end();
      });
      if (subset) return true;
    }
    return false;
  };

  for (size_t size = 1; size <= max_lhs && !level.empty(); ++size) {
    for (const std::vector<size_t>& lhs : level) {
      for (size_t rhs = 0; rhs < n; ++rhs) {
        if (std::find(lhs.begin(), lhs.end(), rhs) != lhs.end()) continue;
        if (lhs_subsumed(lhs, rhs)) continue;
        FunctionalDependency fd{lhs, rhs};
        if (Holds(table, fd)) found.push_back(fd);
      }
    }
    // Build the next level: extend each LHS with a strictly larger index.
    std::vector<std::vector<size_t>> next;
    for (const std::vector<size_t>& lhs : level) {
      for (size_t c = lhs.back() + 1; c < n; ++c) {
        std::vector<size_t> ext = lhs;
        ext.push_back(c);
        next.push_back(std::move(ext));
      }
    }
    level = std::move(next);
  }
  return found;
}

std::vector<Violation> FindCfdViolations(const Table& table,
                                         const ConditionalFd& cfd,
                                         size_t fd_index) {
  std::vector<Violation> out;
  const FunctionalDependency& fd = cfd.fd;
  auto matches_lhs_pattern = [&](size_t r) {
    for (size_t i = 0; i < fd.lhs.size(); ++i) {
      const std::string& p = cfd.pattern[i];
      if (p == ConditionalFd::kWildcard) continue;
      if (table.CellText(r, fd.lhs[i]) != p) return false;
    }
    return true;
  };
  const std::string& rhs_pattern = cfd.pattern.back();

  // Single-row violations against a constant RHS pattern.
  if (rhs_pattern != ConditionalFd::kWildcard) {
    for (size_t r = 0; r < table.num_rows(); ++r) {
      if (!matches_lhs_pattern(r)) continue;
      if (table.CellText(r, fd.rhs) != rhs_pattern) {
        out.push_back(Violation{fd_index, r, r});
      }
    }
    return out;
  }

  // Pairwise violations within the pattern-restricted subset.
  std::unordered_map<std::string, std::vector<size_t>> groups;
  LhsKeyBuilder keys(table, fd.lhs);
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (!matches_lhs_pattern(r)) continue;
    bool has_null = false;
    std::string key = keys.Key(r, &has_null);
    if (has_null) continue;
    groups[std::move(key)].push_back(r);
  }
  for (const auto& [key, rows] : groups) {
    (void)key;
    for (size_t i = 1; i < rows.size(); ++i) {
      if (table.at(rows[0], fd.rhs) != table.at(rows[i], fd.rhs)) {
        out.push_back(Violation{fd_index, rows[0], rows[i]});
      }
    }
  }
  return out;
}

}  // namespace autodc::data
