#include "src/data/table_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>

#include "src/common/env.h"
#include "src/obs/metrics.h"

namespace autodc::data {

namespace {

constexpr char kMagic[4] = {'A', 'D', 'C', 'T'};
constexpr uint32_t kVersion = 1;

// Overflow-cell payload tags (nulls never overflow).
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagString = 3;

// ---- Writer ----------------------------------------------------------

class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : out_(path, std::ios::binary | std::ios::trunc) {}

  bool ok() const { return out_.good(); }

  void Bytes(const void* p, size_t n) {
    out_.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    off_ += n;
  }

  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&v, sizeof(T));
  }

  void Str(const std::string& s) {
    Pod(static_cast<uint32_t>(s.size()));
    Bytes(s.data(), s.size());
  }

  void Align8() {
    static const char zeros[8] = {0};
    size_t pad = (8 - (off_ & 7)) & 7;
    if (pad != 0) Bytes(zeros, pad);
  }

 private:
  std::ofstream out_;
  uint64_t off_ = 0;
};

void WriteValue(FileWriter* w, const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      w->Pod(kTagInt);
      w->Pod(v.AsInt());
      break;
    case ValueType::kDouble:
      w->Pod(kTagDouble);
      w->Pod(v.AsDouble());
      break;
    default:
      w->Pod(kTagString);
      w->Pod(static_cast<uint64_t>(v.AsString().size()));
      w->Bytes(v.AsString().data(), v.AsString().size());
      break;
  }
}

// ---- Reader ----------------------------------------------------------

/// Bounds-checked cursor over the file image. All reads of multi-byte
/// values memcpy (arrays are 8-aligned by construction, but the header
/// fields are packed).
class FileReader {
 public:
  FileReader(const char* data, size_t size) : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  size_t offset() const { return off_; }

  template <typename T>
  bool Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (!Ensure(sizeof(T))) return false;
    std::memcpy(v, data_ + off_, sizeof(T));
    off_ += sizeof(T);
    return true;
  }

  bool Str(std::string* s) {
    uint32_t n = 0;
    if (!Pod(&n) || !Ensure(n)) return false;
    s->assign(data_ + off_, n);
    off_ += n;
    return true;
  }

  /// Pointer to `bytes` bytes in place, advancing the cursor.
  const char* Borrow(size_t bytes) {
    if (!Ensure(bytes)) return nullptr;
    const char* p = data_ + off_;
    off_ += bytes;
    return p;
  }

  bool Align8() {
    size_t pad = (8 - (off_ & 7)) & 7;
    return pad == 0 || Borrow(pad) != nullptr;
  }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || size_ - off_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const char* data_;
  size_t size_;
  size_t off_ = 0;
  bool ok_ = true;
};

ValueType StorageTypeForDeclared(ValueType declared) {
  switch (declared) {
    case ValueType::kInt:
    case ValueType::kDouble:
      return declared;
    default:
      return ValueType::kString;
  }
}

/// Holds the file image (mapping or owned buffer) alive for borrowed
/// chunks. Registered with the ColumnStore via HoldBacking.
struct Mapping {
  const char* data = nullptr;
  size_t size = 0;
  bool mapped = false;
  std::vector<char> owned;

  ~Mapping() {
    if (mapped && data != nullptr) {
      ::munmap(const_cast<char*>(data), size);
    }
  }
};

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path) {
  // Serialize the logical view: a filtered/projected table is compacted
  // into a private flat store first; an already-flat table serializes
  // straight from its (shared) store with no copy.
  Table flat = table;
  if (!flat.IsFlatView() || !flat.has_store()) flat.Compact();

  FileWriter w(path);
  if (!w.ok()) {
    return Status::IoError("cannot open '" + path + "' for writing");
  }

  uint64_t rows = flat.num_rows();
  uint32_t cols = static_cast<uint32_t>(flat.num_columns());
  uint64_t chunk_rows = flat.chunk_rows();

  w.Bytes(kMagic, 4);
  w.Pod(kVersion);
  w.Pod(rows);
  w.Pod(chunk_rows);
  w.Pod(cols);
  w.Str(flat.name());
  for (uint32_t c = 0; c < cols; ++c) {
    w.Str(flat.schema().column(c).name);
    w.Pod(static_cast<uint8_t>(flat.schema().column(c).type));
    w.Pod(static_cast<uint8_t>(flat.storage_type(c)));
  }

  uint64_t num_chunks = flat.num_chunks();
  for (uint32_t c = 0; c < cols; ++c) {
    for (uint64_t k = 0; k < num_chunks; ++k) {
      TypedChunkRef ch = flat.column_chunk(c, k);
      size_t words = (ch.n + 63) / 64;
      w.Align8();
      w.Bytes(ch.nulls, words * sizeof(uint64_t));
      w.Align8();
      if (ch.i64 != nullptr) {
        w.Bytes(ch.i64, ch.n * sizeof(int64_t));
      } else if (ch.f64 != nullptr) {
        w.Bytes(ch.f64, ch.n * sizeof(double));
      } else {
        w.Bytes(ch.codes, ch.n * sizeof(uint32_t));
      }
    }
    if (flat.storage_type(c) == ValueType::kString) {
      const StringDict& d = flat.dict(c);
      uint64_t count = d.size();
      std::vector<uint64_t> offsets(count + 1, 0);
      for (uint64_t i = 0; i < count; ++i) {
        offsets[i + 1] = offsets[i] + d.str(static_cast<uint32_t>(i)).size();
      }
      w.Align8();
      w.Pod(count);
      w.Bytes(offsets.data(), offsets.size() * sizeof(uint64_t));
      for (uint64_t i = 0; i < count; ++i) {
        std::string_view s = d.str(static_cast<uint32_t>(i));
        w.Bytes(s.data(), s.size());
      }
    }
  }

  // Overflow trailer, sorted (col, row) so files are byte-reproducible
  // despite unordered_map iteration order.
  std::vector<std::pair<std::pair<uint64_t, uint64_t>, const Value*>> cells;
  for (uint32_t c = 0; c < cols; ++c) {
    for (const auto& [row, v] : flat.store().overflow(c)) {
      cells.push_back({{c, row}, &v});
    }
  }
  std::sort(cells.begin(), cells.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.Align8();
  w.Pod(static_cast<uint64_t>(cells.size()));
  for (const auto& [key, v] : cells) {
    w.Pod(key.first);
    w.Pod(key.second);
    WriteValue(&w, *v);
  }

  if (!w.ok()) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

Result<Table> OpenTableFile(const std::string& path) {
  AUTODC_OBS_INC("data.table_file_opens");
  auto mapping = std::make_shared<Mapping>();

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat '" + path + "'");
  }
  size_t size = static_cast<size_t>(st.st_size);

  bool use_mmap = EnvFlag("AUTODC_TABLE_MMAP", true);
  if (use_mmap && size > 0) {
    void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      mapping->data = static_cast<const char*>(p);
      mapping->size = size;
      mapping->mapped = true;
      AUTODC_OBS_INC("data.table_file_mmap_opens");
    } else {
      use_mmap = false;
    }
  }
  if (!mapping->mapped) {
    mapping->owned.resize(size);
    size_t got = 0;
    while (got < size) {
      ssize_t n = ::read(fd, mapping->owned.data() + got, size - got);
      if (n <= 0) {
        ::close(fd);
        return Status::IoError("short read from '" + path + "'");
      }
      got += static_cast<size_t>(n);
    }
    mapping->data = mapping->owned.data();
    mapping->size = size;
  }
  ::close(fd);  // the mapping (or buffer) outlives the descriptor

  FileReader r(mapping->data, mapping->size);
  char magic[4];
  uint32_t version = 0;
  uint64_t rows = 0, chunk_rows = 0;
  uint32_t cols = 0;
  std::string name;
  if (!r.Pod(&magic) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a table file");
  }
  if (!r.Pod(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported table file version " +
                                   std::to_string(version) + " in '" + path +
                                   "'");
  }
  if (!r.Pod(&rows) || !r.Pod(&chunk_rows) || !r.Pod(&cols) || !r.Str(&name) ||
      chunk_rows == 0) {
    return Status::IoError("truncated table file header in '" + path + "'");
  }

  std::vector<Column> columns(cols);
  std::vector<ValueType> storage(cols);
  for (uint32_t c = 0; c < cols; ++c) {
    uint8_t declared = 0, stored = 0;
    if (!r.Str(&columns[c].name) || !r.Pod(&declared) || !r.Pod(&stored)) {
      return Status::IoError("truncated schema in '" + path + "'");
    }
    columns[c].type = static_cast<ValueType>(declared);
    storage[c] = static_cast<ValueType>(stored);
    if (storage[c] != StorageTypeForDeclared(columns[c].type)) {
      return Status::InvalidArgument("column storage type mismatch in '" +
                                     path + "'");
    }
  }

  Schema schema{std::move(columns)};
  auto store = std::make_shared<ColumnStore>(schema, chunk_rows);
  uint64_t num_chunks = rows == 0 ? 0 : (rows + chunk_rows - 1) / chunk_rows;

  for (uint32_t c = 0; c < cols; ++c) {
    for (uint64_t k = 0; k < num_chunks; ++k) {
      size_t n = static_cast<size_t>(
          std::min<uint64_t>(chunk_rows, rows - k * chunk_rows));
      size_t words = (n + 63) / 64;
      ColumnChunk ch;
      ch.n = n;
      ch.owned = false;
      if (!r.Align8()) break;
      ch.b_nulls = reinterpret_cast<const uint64_t*>(
          r.Borrow(words * sizeof(uint64_t)));
      if (!r.Align8()) break;
      switch (storage[c]) {
        case ValueType::kInt:
          ch.b_i64 =
              reinterpret_cast<const int64_t*>(r.Borrow(n * sizeof(int64_t)));
          break;
        case ValueType::kDouble:
          ch.b_f64 =
              reinterpret_cast<const double*>(r.Borrow(n * sizeof(double)));
          break;
        default:
          ch.b_codes = reinterpret_cast<const uint32_t*>(
              r.Borrow(n * sizeof(uint32_t)));
          break;
      }
      if (!r.ok()) break;
      store->AdoptBorrowedChunk(c, std::move(ch));
    }
    if (storage[c] == ValueType::kString) {
      uint64_t count = 0;
      if (!r.Align8() || !r.Pod(&count)) break;
      const char* offs_bytes = r.Borrow((count + 1) * sizeof(uint64_t));
      if (offs_bytes == nullptr) break;
      const uint64_t* offsets = reinterpret_cast<const uint64_t*>(offs_bytes);
      const char* blob = r.Borrow(static_cast<size_t>(offsets[count]));
      if (blob == nullptr && offsets[count] != 0) break;
      std::vector<std::string_view> views;
      views.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        views.emplace_back(blob + offsets[i],
                           static_cast<size_t>(offsets[i + 1] - offsets[i]));
      }
      store->AdoptBorrowedDict(c, std::move(views));
    }
    if (!r.ok()) {
      return Status::IoError("truncated column data in '" + path + "'");
    }
  }
  if (!r.ok()) {
    return Status::IoError("truncated column data in '" + path + "'");
  }

  uint64_t overflow_count = 0;
  if (!r.Align8() || !r.Pod(&overflow_count)) {
    return Status::IoError("truncated overflow trailer in '" + path + "'");
  }
  for (uint64_t i = 0; i < overflow_count; ++i) {
    uint64_t col = 0, row = 0;
    uint8_t tag = 0;
    if (!r.Pod(&col) || !r.Pod(&row) || !r.Pod(&tag) || col >= cols) {
      return Status::IoError("corrupt overflow cell in '" + path + "'");
    }
    switch (tag) {
      case kTagInt: {
        int64_t v = 0;
        if (!r.Pod(&v)) break;
        store->AdoptOverflowCell(col, row, Value(v));
        break;
      }
      case kTagDouble: {
        double v = 0;
        if (!r.Pod(&v)) break;
        store->AdoptOverflowCell(col, row, Value(v));
        break;
      }
      case kTagString: {
        uint64_t len = 0;
        if (!r.Pod(&len)) break;
        const char* p = r.Borrow(static_cast<size_t>(len));
        if (p == nullptr) break;
        store->AdoptOverflowCell(col, row,
                                 Value(std::string(p, static_cast<size_t>(len))));
        break;
      }
      default:
        return Status::IoError("corrupt overflow tag in '" + path + "'");
    }
    if (!r.ok()) {
      return Status::IoError("truncated overflow cell in '" + path + "'");
    }
  }

  store->SetRowCount(static_cast<size_t>(rows));
  store->HoldBacking(
      std::shared_ptr<const void>(mapping, mapping->data));
  AUTODC_OBS_GAUGE_SET("data.open_table_resident_bytes",
                       static_cast<double>(store->ResidentBytes()));

  Table table(std::move(schema), std::move(name));
  table.AdoptStore(std::move(store));
  return table;
}

}  // namespace autodc::data
