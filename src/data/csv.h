#ifndef AUTODC_DATA_CSV_H_
#define AUTODC_DATA_CSV_H_

#include <string>

#include "src/common/result.h"
#include "src/data/table.h"

namespace autodc::data {

/// Options for CSV parsing and serialization.
struct CsvOptions {
  char delimiter = ',';
  /// When true (default) the first line supplies column names; otherwise
  /// columns are named c0, c1, ....
  bool has_header = true;
  /// When true, columns whose every non-empty field parses as a number are
  /// typed kInt/kDouble instead of kString. Empty fields become nulls.
  bool infer_types = true;
};

/// Parses RFC-4180-style CSV text (quotes, escaped quotes, embedded
/// delimiters and newlines inside quotes) into a Table.
Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options = {});

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path,
                          const CsvOptions& options = {});

/// Serializes `table` as CSV text (header included when
/// options.has_header). Fields containing the delimiter, quotes, or
/// newlines are quoted.
std::string WriteCsvString(const Table& table, const CsvOptions& options = {});

/// Writes `table` to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace autodc::data

#endif  // AUTODC_DATA_CSV_H_
