#ifndef AUTODC_DATA_TABLE_GRAPH_H_
#define AUTODC_DATA_TABLE_GRAPH_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/data/dependencies.h"
#include "src/data/table.h"

namespace autodc::data {

/// Kind of relationship an edge encodes (Figure 4 of the paper).
enum class EdgeKind {
  /// Two values co-occur in the same tuple (undirected; stored both ways).
  kCoOccurrence = 0,
  /// Directed edge u -> v induced by a functional dependency whose LHS
  /// attribute holds u and RHS attribute holds v.
  kFunctionalDependency,
};

/// The heterogeneous graph representation of a relation proposed in
/// Sec. 3.1 / Figure 4: each node is a distinct (attribute, value) pair;
/// edges carry co-occurrence and integrity-constraint relationships.
///
/// Qualifying nodes by attribute keeps "1" in Department ID distinct from
/// "1" in Employee ID, matching the figure, while `ValueNodes()` lets
/// callers look up every node carrying a given raw value.
class TableGraph {
 public:
  struct Node {
    size_t column = 0;      ///< attribute index in the source schema
    std::string value;      ///< canonical string rendering of the cell
  };
  struct Edge {
    size_t from = 0;
    size_t to = 0;
    EdgeKind kind = EdgeKind::kCoOccurrence;
    double weight = 1.0;    ///< co-occurrence count or FD support
  };

  /// Builds the graph for `table`: one node per distinct non-null
  /// (column, value) cell, undirected co-occurrence edges between all
  /// values of the same tuple (weight = #tuples they share), and directed
  /// FD edges for every supplied dependency (single-attribute LHS only;
  /// composite LHS dependencies contribute edges from each LHS attribute).
  static TableGraph Build(const Table& table,
                          const std::vector<FunctionalDependency>& fds = {});

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  const Node& node(size_t i) const { return nodes_[i]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Node id for (column, value), or -1.
  int64_t FindNode(size_t column, const std::string& value) const;

  /// All node ids whose value string equals `value` (any column).
  std::vector<size_t> ValueNodes(const std::string& value) const;

  /// Outgoing adjacency (includes both directions of undirected edges).
  const std::vector<size_t>& Neighbors(size_t node) const {
    return adjacency_[node];
  }
  /// Edge indices leaving `node`, aligned with Neighbors().
  const std::vector<size_t>& NeighborEdges(size_t node) const {
    return adjacency_edges_[node];
  }

  /// Human-readable label "<column_name>=<value>".
  std::string NodeLabel(size_t i, const Schema& schema) const;

 private:
  size_t GetOrAddNode(size_t column, const std::string& value);
  void AddEdge(size_t from, size_t to, EdgeKind kind, double weight);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<size_t>> adjacency_;
  std::vector<std::vector<size_t>> adjacency_edges_;
  std::unordered_map<std::string, size_t> node_index_;
  // (from, kind, to) -> edge index, for weight accumulation.
  std::unordered_map<std::string, size_t> edge_index_;
};

}  // namespace autodc::data

#endif  // AUTODC_DATA_TABLE_GRAPH_H_
