#include "src/data/schema.h"

namespace autodc::data {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, i);
  }
}

Schema Schema::OfStrings(const std::vector<std::string>& names) {
  std::vector<Column> cols;
  cols.reserve(names.size());
  for (const std::string& n : names) {
    cols.push_back(Column{n, ValueType::kString});
  }
  return Schema(std::move(cols));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> Schema::Names() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& c : columns_) names.push_back(c.name);
  return names;
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace autodc::data
