#include "src/data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace autodc::data {

namespace {

// Splits raw CSV text into records of fields, honoring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& text, char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool any_char = false;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      any_char = true;
      ++i;
      continue;
    }
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      any_char = true;
      ++i;
      continue;
    }
    if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      // CRLF line ending: consume the '\r' and let the '\n' terminate
      // the record. A bare '\r' (not followed by '\n') is field data —
      // stripping it would silently corrupt fields and break
      // reader<->writer round trips.
      ++i;
      continue;
    }
    if (c == '\n') {
      if (any_char || !field.empty() || !fields.empty()) {
        fields.push_back(std::move(field));
        field.clear();
        records.push_back(std::move(fields));
        fields.clear();
        any_char = false;
      }
      ++i;
      continue;
    }
    field.push_back(c);
    any_char = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV input");
  }
  if (any_char || !field.empty() || !fields.empty()) {
    fields.push_back(std::move(field));
    records.push_back(std::move(fields));
  }
  return records;
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

// GCC 12 emits a -Wmaybe-uninitialized false positive when a
// std::variant-holding Value temporary is inlined into vector::push_back
// (GCC PR 105562-family); the values below are always initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  AUTODC_ASSIGN_OR_RETURN(records, Tokenize(text, options.delimiter));
  if (records.empty()) return Table{};

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  size_t ncols = names.size();

  // Infer per-column types over the data records.
  std::vector<ValueType> types(ncols, ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (size_t r = first_data; r < records.size(); ++r) {
        if (c >= records[r].size()) continue;
        const std::string& f = records[r][c];
        if (f.empty()) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParseInt(f, &iv)) all_int = false;
        if (!ParseDouble(f, &dv)) all_double = false;
      }
      if (any_value && all_int) {
        types[c] = ValueType::kInt;
      } else if (any_value && all_double) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  std::vector<Column> cols;
  for (size_t c = 0; c < ncols; ++c) cols.push_back(Column{names[c], types[c]});
  Table table{Schema(std::move(cols))};

  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(ncols));
    }
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& f = records[r][c];
      if (f.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          int64_t iv = 0;
          ParseInt(f, &iv);
          row.push_back(Value(iv));
          break;
        }
        case ValueType::kDouble: {
          double dv = 0.0;
          ParseDouble(f, &dv);
          row.push_back(Value(dv));
          break;
        }
        default:
          row.push_back(Value(f));
      }
    }
    AUTODC_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

#pragma GCC diagnostic pop

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  auto result = ReadCsvString(buf.str(), options);
  if (result.ok()) {
    result.ValueOrDie().set_name(path);
  }
  return result;
}

namespace {
std::string EscapeField(const std::string& f, char delim) {
  bool needs_quote = f.find(delim) != std::string::npos ||
                     f.find('"') != std::string::npos ||
                     f.find('\n') != std::string::npos ||
                     f.find('\r') != std::string::npos;
  if (!needs_quote) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::ostringstream os;
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      os << EscapeField(table.schema().column(c).name, options.delimiter);
    }
    os << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // A single empty field would serialize as a blank line, which readers
    // (including ours) skip; quote it so the row survives a round trip.
    if (table.num_columns() == 1 && table.at(r, 0).ToString().empty()) {
      os << "\"\"\n";
      continue;
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      os << EscapeField(table.at(r, c).ToString(), options.delimiter);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, options);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace autodc::data
