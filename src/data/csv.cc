#include "src/data/csv.h"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>

#include "src/common/env.h"
#include "src/obs/metrics.h"

namespace autodc::data {

namespace {

// Splits raw CSV text into records of fields, honoring quotes.
Result<std::vector<std::vector<std::string>>> Tokenize(
    const std::string& text, char delim) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool any_char = false;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      any_char = true;
      ++i;
      continue;
    }
    if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
      any_char = true;
      ++i;
      continue;
    }
    if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') {
      // CRLF line ending: consume the '\r' and let the '\n' terminate
      // the record. A bare '\r' (not followed by '\n') is field data —
      // stripping it would silently corrupt fields and break
      // reader<->writer round trips.
      ++i;
      continue;
    }
    if (c == '\n') {
      if (any_char || !field.empty() || !fields.empty()) {
        fields.push_back(std::move(field));
        field.clear();
        records.push_back(std::move(fields));
        fields.clear();
        any_char = false;
      }
      ++i;
      continue;
    }
    field.push_back(c);
    any_char = true;
    ++i;
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quote in CSV input");
  }
  if (any_char || !field.empty() || !fields.empty()) {
    fields.push_back(std::move(field));
    records.push_back(std::move(fields));
  }
  return records;
}

// Incremental counterpart of Tokenize: accepts the input in arbitrary
// buffer slices and emits each complete record through a callback, so
// file ingest holds O(record) memory instead of O(file). The state
// machine mirrors Tokenize exactly — including the two lookaheads that
// can straddle a buffer boundary (`""` escape inside quotes, CRLF
// outside), which are carried as pending flags.
class StreamingCsvTokenizer {
 public:
  using RecordFn = std::function<Status(std::vector<std::string>&&)>;

  StreamingCsvTokenizer(char delim, RecordFn on_record)
      : delim_(delim), on_record_(std::move(on_record)) {}

  Status Feed(const char* data, size_t n) {
    size_t i = 0;
    while (i < n) {
      char c = data[i];
      if (pending_quote_) {
        // Previous buffer ended with '"' while in quotes.
        pending_quote_ = false;
        if (c == '"') {
          field_.push_back('"');
          ++i;
          continue;
        }
        in_quotes_ = false;
        continue;  // reprocess c outside quotes
      }
      if (pending_cr_) {
        // Previous buffer ended with '\r' outside quotes.
        pending_cr_ = false;
        if (c != '\n') {
          field_.push_back('\r');  // bare '\r' is field data
          any_char_ = true;
        }
        continue;  // reprocess c ('\n' terminates the record below)
      }
      if (in_quotes_) {
        if (c == '"') {
          if (i + 1 < n) {
            if (data[i + 1] == '"') {
              field_.push_back('"');
              i += 2;
              continue;
            }
            in_quotes_ = false;
            ++i;
            continue;
          }
          pending_quote_ = true;  // lookahead crosses the buffer edge
          ++i;
          continue;
        }
        field_.push_back(c);
        ++i;
        continue;
      }
      if (c == '"') {
        in_quotes_ = true;
        any_char_ = true;
        ++i;
        continue;
      }
      if (c == delim_) {
        fields_.push_back(std::move(field_));
        field_.clear();
        any_char_ = true;
        ++i;
        continue;
      }
      if (c == '\r') {
        if (i + 1 < n) {
          if (data[i + 1] == '\n') {
            ++i;  // CRLF: drop the '\r', '\n' terminates the record
            continue;
          }
          field_.push_back('\r');
          any_char_ = true;
          ++i;
          continue;
        }
        pending_cr_ = true;  // lookahead crosses the buffer edge
        ++i;
        continue;
      }
      if (c == '\n') {
        if (any_char_ || !field_.empty() || !fields_.empty()) {
          AUTODC_RETURN_NOT_OK(EmitRecord());
        }
        ++i;
        continue;
      }
      field_.push_back(c);
      any_char_ = true;
      ++i;
    }
    return Status::OK();
  }

  Status Finish() {
    if (pending_quote_) {
      in_quotes_ = false;  // closing quote at EOF
      pending_quote_ = false;
    }
    if (pending_cr_) {
      field_.push_back('\r');  // bare '\r' at EOF is field data
      any_char_ = true;
      pending_cr_ = false;
    }
    if (in_quotes_) {
      return Status::InvalidArgument("unterminated quote in CSV input");
    }
    if (any_char_ || !field_.empty() || !fields_.empty()) {
      AUTODC_RETURN_NOT_OK(EmitRecord());
    }
    return Status::OK();
  }

 private:
  Status EmitRecord() {
    fields_.push_back(std::move(field_));
    field_.clear();
    std::vector<std::string> rec = std::move(fields_);
    fields_.clear();
    any_char_ = false;
    return on_record_(std::move(rec));
  }

  char delim_;
  RecordFn on_record_;
  std::string field_;
  std::vector<std::string> fields_;
  bool in_quotes_ = false;
  bool any_char_ = false;
  bool pending_quote_ = false;
  bool pending_cr_ = false;
};

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

// GCC 12 emits a -Wmaybe-uninitialized false positive when a
// std::variant-holding Value temporary is inlined into vector::push_back
// (GCC PR 105562-family); the values below are always initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

Result<Table> ReadCsvString(const std::string& text,
                            const CsvOptions& options) {
  std::vector<std::vector<std::string>> records;
  AUTODC_ASSIGN_OR_RETURN(records, Tokenize(text, options.delimiter));
  if (records.empty()) return Table{};

  std::vector<std::string> names;
  size_t first_data = 0;
  if (options.has_header) {
    names = records[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < records[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  size_t ncols = names.size();

  // Infer per-column types over the data records.
  std::vector<ValueType> types(ncols, ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      bool all_int = true;
      bool all_double = true;
      bool any_value = false;
      for (size_t r = first_data; r < records.size(); ++r) {
        if (c >= records[r].size()) continue;
        const std::string& f = records[r][c];
        if (f.empty()) continue;
        any_value = true;
        int64_t iv;
        double dv;
        if (!ParseInt(f, &iv)) all_int = false;
        if (!ParseDouble(f, &dv)) all_double = false;
      }
      if (any_value && all_int) {
        types[c] = ValueType::kInt;
      } else if (any_value && all_double) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  std::vector<Column> cols;
  for (size_t c = 0; c < ncols; ++c) cols.push_back(Column{names[c], types[c]});
  Table table{Schema(std::move(cols))};

  for (size_t r = first_data; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::InvalidArgument(
          "CSV record " + std::to_string(r) + " has " +
          std::to_string(records[r].size()) + " fields, expected " +
          std::to_string(ncols));
    }
    Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& f = records[r][c];
      if (f.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (types[c]) {
        case ValueType::kInt: {
          int64_t iv = 0;
          ParseInt(f, &iv);
          row.push_back(Value(iv));
          break;
        }
        case ValueType::kDouble: {
          double dv = 0.0;
          ParseDouble(f, &dv);
          row.push_back(Value(dv));
          break;
        }
        default:
          row.push_back(Value(f));
      }
    }
    AUTODC_RETURN_NOT_OK(table.AppendRow(std::move(row)));
  }
  return table;
}

#pragma GCC diagnostic pop

namespace {

/// Streams `path` through a tokenizer in kCsvIoChunk-byte slices.
/// AUTODC_CSV_CHUNK_BYTES overrides the slice size — primarily a test
/// hook: a 1-byte chunk puts every quote/CR/LF boundary case (quoted
/// field at EOF, lone \r straddling the final chunk) on a read edge.
constexpr size_t kCsvIoChunk = size_t{1} << 20;

Status StreamFile(const std::string& path, StreamingCsvTokenizer* tok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  std::vector<char> buf(
      EnvSizeT("AUTODC_CSV_CHUNK_BYTES", kCsvIoChunk, 1, kCsvIoChunk));
  while (in) {
    in.read(buf.data(), static_cast<std::streamsize>(buf.size()));
    std::streamsize got = in.gcount();
    if (got > 0) {
      AUTODC_RETURN_NOT_OK(tok->Feed(buf.data(), static_cast<size_t>(got)));
    }
  }
  if (in.bad()) return Status::IoError("read failed for '" + path + "'");
  return tok->Finish();
}

}  // namespace

Result<Table> ReadCsvFile(const std::string& path, const CsvOptions& options) {
  // Two streaming passes, O(chunk) memory each: pass 1 collects column
  // names and type-inference evidence, pass 2 appends typed cells
  // straight into the column builders. Semantics match ReadCsvString.
  std::vector<std::string> names;
  size_t ncols = 0;
  std::vector<uint8_t> all_int, all_double, any_value;
  bool saw_record = false;

  {
    size_t ordinal = 0;
    StreamingCsvTokenizer tok(
        options.delimiter,
        [&](std::vector<std::string>&& rec) -> Status {
          size_t r = ordinal++;
          if (r == 0) {
            saw_record = true;
            if (options.has_header) {
              names = std::move(rec);
            } else {
              for (size_t c = 0; c < rec.size(); ++c) {
                names.push_back("c" + std::to_string(c));
              }
            }
            ncols = names.size();
            all_int.assign(ncols, 1);
            all_double.assign(ncols, 1);
            any_value.assign(ncols, 0);
            if (options.has_header) return Status::OK();
          }
          for (size_t c = 0; c < ncols && c < rec.size(); ++c) {
            const std::string& f = rec[c];
            if (f.empty()) continue;
            any_value[c] = 1;
            int64_t iv;
            double dv;
            if (!ParseInt(f, &iv)) all_int[c] = 0;
            if (!ParseDouble(f, &dv)) all_double[c] = 0;
          }
          return Status::OK();
        });
    AUTODC_RETURN_NOT_OK(StreamFile(path, &tok));
  }
  if (!saw_record) return Table{};

  std::vector<ValueType> types(ncols, ValueType::kString);
  if (options.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      if (any_value[c] && all_int[c]) {
        types[c] = ValueType::kInt;
      } else if (any_value[c] && all_double[c]) {
        types[c] = ValueType::kDouble;
      }
    }
  }

  std::vector<Column> cols;
  cols.reserve(ncols);
  for (size_t c = 0; c < ncols; ++c) cols.push_back(Column{names[c], types[c]});
  Schema schema{std::move(cols)};
  auto store = std::make_shared<ColumnStore>(schema, ChunkRowsFromEnv());

  {
    size_t ordinal = 0;
    size_t data_rows = 0;
    StreamingCsvTokenizer tok(
        options.delimiter,
        [&](std::vector<std::string>&& rec) -> Status {
          size_t r = ordinal++;
          if (options.has_header && r == 0) return Status::OK();
          if (rec.size() != ncols) {
            return Status::InvalidArgument(
                "CSV record " + std::to_string(r) + " has " +
                std::to_string(rec.size()) + " fields, expected " +
                std::to_string(ncols));
          }
          for (size_t c = 0; c < ncols; ++c) {
            const std::string& f = rec[c];
            if (f.empty()) {
              store->AppendNull(c);
              continue;
            }
            switch (types[c]) {
              case ValueType::kInt: {
                int64_t iv = 0;
                ParseInt(f, &iv);
                store->AppendInt(c, iv);
                break;
              }
              case ValueType::kDouble: {
                double dv = 0.0;
                ParseDouble(f, &dv);
                store->AppendDouble(c, dv);
                break;
              }
              default:
                store->AppendString(c, f);
            }
          }
          ++data_rows;
          return Status::OK();
        });
    AUTODC_RETURN_NOT_OK(StreamFile(path, &tok));
    store->FinishColumnBatch();
    AUTODC_OBS_COUNT("data.csv_rows", static_cast<uint64_t>(data_rows));
  }

  Table table{std::move(schema), path};
  table.AdoptStore(std::move(store));
  return table;
}

namespace {
std::string EscapeField(const std::string& f, char delim) {
  bool needs_quote = f.find(delim) != std::string::npos ||
                     f.find('"') != std::string::npos ||
                     f.find('\n') != std::string::npos ||
                     f.find('\r') != std::string::npos;
  if (!needs_quote) return f;
  std::string out = "\"";
  for (char c : f) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string WriteCsvString(const Table& table, const CsvOptions& options) {
  std::ostringstream os;
  if (options.has_header) {
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      os << EscapeField(table.schema().column(c).name, options.delimiter);
    }
    os << "\n";
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // A single empty field would serialize as a blank line, which readers
    // (including ours) skip; quote it so the row survives a round trip.
    if (table.num_columns() == 1 && table.CellText(r, 0).empty()) {
      os << "\"\"\n";
      continue;
    }
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) os << options.delimiter;
      os << EscapeField(table.CellText(r, c), options.delimiter);
    }
    os << "\n";
  }
  return os.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << WriteCsvString(table, options);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace autodc::data
