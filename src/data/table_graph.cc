#include "src/data/table_graph.h"

namespace autodc::data {

namespace {
std::string NodeKey(size_t column, const std::string& value) {
  return std::to_string(column) + "\x01" + value;
}
std::string EdgeKey(size_t from, size_t to, EdgeKind kind) {
  return std::to_string(from) + "\x01" + std::to_string(to) + "\x01" +
         std::to_string(static_cast<int>(kind));
}
}  // namespace

size_t TableGraph::GetOrAddNode(size_t column, const std::string& value) {
  std::string key = NodeKey(column, value);
  auto it = node_index_.find(key);
  if (it != node_index_.end()) return it->second;
  size_t id = nodes_.size();
  nodes_.push_back(Node{column, value});
  adjacency_.emplace_back();
  adjacency_edges_.emplace_back();
  node_index_.emplace(std::move(key), id);
  return id;
}

void TableGraph::AddEdge(size_t from, size_t to, EdgeKind kind,
                         double weight) {
  std::string key = EdgeKey(from, to, kind);
  auto it = edge_index_.find(key);
  if (it != edge_index_.end()) {
    edges_[it->second].weight += weight;
    return;
  }
  size_t id = edges_.size();
  edges_.push_back(Edge{from, to, kind, weight});
  adjacency_[from].push_back(to);
  adjacency_edges_[from].push_back(id);
  edge_index_.emplace(std::move(key), id);
}

TableGraph TableGraph::Build(const Table& table,
                             const std::vector<FunctionalDependency>& fds) {
  TableGraph g;
  size_t ncols = table.num_columns();
  for (size_t r = 0; r < table.num_rows(); ++r) {
    // Resolve node ids of this tuple's non-null cells.
    std::vector<int64_t> ids(ncols, -1);
    for (size_t c = 0; c < ncols; ++c) {
      const Value& v = table.at(r, c);
      if (v.is_null()) continue;
      ids[c] = static_cast<int64_t>(g.GetOrAddNode(c, v.ToString()));
    }
    // Undirected co-occurrence edges between every cell pair of the tuple,
    // stored in both directions so adjacency walks see them.
    for (size_t a = 0; a < ncols; ++a) {
      if (ids[a] < 0) continue;
      for (size_t b = a + 1; b < ncols; ++b) {
        if (ids[b] < 0) continue;
        g.AddEdge(static_cast<size_t>(ids[a]), static_cast<size_t>(ids[b]),
                  EdgeKind::kCoOccurrence, 1.0);
        g.AddEdge(static_cast<size_t>(ids[b]), static_cast<size_t>(ids[a]),
                  EdgeKind::kCoOccurrence, 1.0);
      }
    }
    // Directed FD edges from each LHS cell to the RHS cell.
    for (const FunctionalDependency& fd : fds) {
      if (ids[fd.rhs] < 0) continue;
      for (size_t lhs_col : fd.lhs) {
        if (ids[lhs_col] < 0) continue;
        g.AddEdge(static_cast<size_t>(ids[lhs_col]),
                  static_cast<size_t>(ids[fd.rhs]),
                  EdgeKind::kFunctionalDependency, 1.0);
      }
    }
  }
  return g;
}

int64_t TableGraph::FindNode(size_t column, const std::string& value) const {
  auto it = node_index_.find(NodeKey(column, value));
  if (it == node_index_.end()) return -1;
  return static_cast<int64_t>(it->second);
}

std::vector<size_t> TableGraph::ValueNodes(const std::string& value) const {
  std::vector<size_t> out;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].value == value) out.push_back(i);
  }
  return out;
}

std::string TableGraph::NodeLabel(size_t i, const Schema& schema) const {
  return schema.column(nodes_[i].column).name + "=" + nodes_[i].value;
}

}  // namespace autodc::data
