#include "src/data/value.h"

#include <functional>
#include <sstream>

namespace autodc::data {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "null";
    case ValueType::kInt: return "int";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

double Value::ToNumeric(bool* ok) const {
  if (ok != nullptr) *ok = true;
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    default:
      if (ok != nullptr) *ok = false;
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return AsString();
  }
  return "";
}

bool Value::operator==(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  bool a_num = a == ValueType::kInt || a == ValueType::kDouble;
  bool b_num = b == ValueType::kInt || b == ValueType::kDouble;
  if (a_num && b_num) {
    // Numeric values compare by value across the int/double divide, the
    // same equivalence operator< induces.
    return ToNumeric() == other.ToNumeric();
  }
  return repr_ == other.repr_;
}

bool Value::operator<(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull: return 0;
      case ValueType::kInt:
      case ValueType::kDouble: return 1;
      case ValueType::kString: return 2;
    }
    return 3;
  };
  if (rank(a) != rank(b)) return rank(a) < rank(b);
  if (rank(a) == 1) {
    return ToNumeric() < other.ToNumeric();
  }
  if (a == ValueType::kString) return AsString() < other.AsString();
  return false;  // both null
}

size_t ValueHash::operator()(const Value& v) const {
  switch (v.type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
    case ValueType::kDouble: {
      // Hash the numeric value so Value(1) and Value(1.0) (equal under
      // operator==) land in the same bucket. +0.0 canonicalizes -0.0.
      double d = v.ToNumeric();
      if (d == 0.0) d = 0.0;
      return std::hash<double>()(d);
    }
    case ValueType::kString:
      return std::hash<std::string>()(v.AsString());
  }
  return 0;
}

}  // namespace autodc::data
