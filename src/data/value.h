#ifndef AUTODC_DATA_VALUE_H_
#define AUTODC_DATA_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace autodc::data {

/// Physical type of a cell value.
enum class ValueType { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeName(ValueType t);

/// A single cell: the smallest data element in a relation (Sec. 3.1 of the
/// paper). Values are immutable once constructed and cheap to copy for the
/// non-string types.
class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(double v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}
  explicit Value(const char* v) : repr_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (repr_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors. Calling the wrong accessor is a programming error
  /// (checked via std::get, which throws std::bad_variant_access in debug
  /// use; library code always checks type() first).
  int64_t AsInt() const { return std::get<int64_t>(repr_); }
  double AsDouble() const { return std::get<double>(repr_); }
  const std::string& AsString() const { return std::get<std::string>(repr_); }

  /// Numeric view: ints and doubles convert; everything else yields 0 and
  /// `ok=false` if provided.
  double ToNumeric(bool* ok = nullptr) const;

  /// Canonical text rendering used for hashing, embeddings, and CSV output.
  /// Null renders as the empty string.
  std::string ToString() const;

  /// Equality is the equivalence of the documented total order below:
  /// ints and doubles compare BY NUMERIC VALUE, so Value(1) == Value(1.0).
  /// (Historically int/double pairs were unequal under == while equivalent
  /// under <, which broke hash-set/sort agreement.)
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order: nulls < ints/doubles (by numeric value) < strings.
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> repr_;
};

/// Hash functor so Value can key unordered containers. Consistent with
/// operator==: numerically equal ints and doubles hash identically.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

}  // namespace autodc::data

#endif  // AUTODC_DATA_VALUE_H_
