#ifndef AUTODC_DATA_SCHEMA_H_
#define AUTODC_DATA_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/data/value.h"

namespace autodc::data {

/// A named, typed attribute of a relation.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
};

/// Ordered list of columns describing a relation's shape.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience: all-string schema from names.
  static Schema OfStrings(const std::vector<std::string>& names);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Column names in order.
  std::vector<std::string> Names() const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace autodc::data

#endif  // AUTODC_DATA_SCHEMA_H_
