#ifndef AUTODC_DATA_TABLE_FILE_H_
#define AUTODC_DATA_TABLE_FILE_H_

#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/data/table.h"

// Versioned binary table format ("ADCT", DESIGN.md §12): the columnar
// store serialized layout-compatibly, so opening a file is O(1) in row
// count — the chunk arrays and dictionary blobs are used in place from
// an mmap (or one bulk read when AUTODC_TABLE_MMAP=0), never parsed.
// Convert a CSV once with WriteTableFile; every later OpenTableFile is
// instant and shares pages across processes.
//
// Layout (little-endian, arrays 8-byte aligned):
//   header: magic "ADCT", u32 version, u64 rows, u64 chunk_rows,
//           u32 cols, table name, per-column (name, declared type,
//           storage type)
//   per column: per-chunk null bitmap words, per-chunk typed data
//               (i64 | f64 | u32 dict codes), then for string columns
//               the dictionary (u64 count, u64 offsets[count+1], blob)
//   trailer: overflow cells (u64 count, then col/row/tag/payload each)
namespace autodc::data {

/// Writes `table` to `path`. The table's logical view is what is
/// written (selection/projection are applied, not stored).
Status WriteTableFile(const Table& table, const std::string& path);

/// Opens a table file in O(1): maps (or bulk-reads) the bytes and
/// points the column store's chunks at them. The mapping lives as long
/// as any Table sharing the store.
Result<Table> OpenTableFile(const std::string& path);

}  // namespace autodc::data

#endif  // AUTODC_DATA_TABLE_FILE_H_
