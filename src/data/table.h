#ifndef AUTODC_DATA_TABLE_H_
#define AUTODC_DATA_TABLE_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/data/schema.h"
#include "src/data/value.h"

namespace autodc::data {

/// A tuple: one row of a relation.
using Row = std::vector<Value>;

/// An in-memory relation: a schema plus a row store. This is the substrate
/// object every AutoDC task (discovery, ER, cleaning, imputation) operates
/// on. Row-major storage keeps tuple-level operations (the dominant access
/// pattern in curation) cache-friendly and simple.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row; fails if the arity does not match the schema.
  Status AppendRow(Row row);

  const Row& row(size_t i) const { return rows_[i]; }
  Row* mutable_row(size_t i) { return &rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }
  void Set(size_t row, size_t col, Value v) { rows_[row][col] = std::move(v); }

  /// Cell addressed by column name; error if the column does not exist or
  /// the row is out of range.
  Result<Value> Get(size_t row, const std::string& column) const;

  /// All values of one column, in row order.
  std::vector<Value> ColumnValues(size_t col) const;

  /// Distinct non-null values of one column.
  std::vector<Value> DistinctColumnValues(size_t col) const;

  /// Rows for which `predicate` returns true, as a new table.
  template <typename Pred>
  Table Filter(Pred predicate) const {
    Table out(schema_, name_);
    for (const Row& r : rows_) {
      if (predicate(r)) out.rows_.push_back(r);
    }
    return out;
  }

  /// New table with only the given column indices (in the given order).
  Result<Table> Project(const std::vector<size_t>& cols) const;

  /// Fraction of cells that are null.
  double NullFraction() const;

  /// Human-readable rendering of the first `max_rows` rows.
  std::string ToString(size_t max_rows = 10) const;

 private:
  Schema schema_;
  std::string name_;
  std::vector<Row> rows_;
};

}  // namespace autodc::data

#endif  // AUTODC_DATA_TABLE_H_
