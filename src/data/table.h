#ifndef AUTODC_DATA_TABLE_H_
#define AUTODC_DATA_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/data/column_store.h"
#include "src/data/schema.h"
#include "src/data/value.h"

namespace autodc::data {

// Row (std::vector<Value>) comes from column_store.h: the legacy tuple
// type, still the unit of AppendRow and of code that mutates rows
// before insert.

class Table;

/// A lightweight, non-owning view of one tuple. Reading a cell builds
/// the Value on the fly from the columnar store — no per-row
/// std::vector<Value> exists on read paths. Also binds (implicitly) to
/// a materialized Row so helpers taking RowView accept both.
///
/// Validity: a table-backed view borrows the Table; a Row-backed view
/// borrows the Row. Neither may outlive its source.
class RowView {
 public:
  RowView() = default;
  RowView(const Table* table, size_t row) : table_(table), row_(row) {}
  // NOLINTNEXTLINE(google-explicit-constructor): Row must convert freely.
  RowView(const Row& row) : values_(row.data()), size_(row.size()) {}

  size_t size() const;
  /// Cell value, BY VALUE (built from column storage on demand).
  Value operator[](size_t c) const;
  bool is_null(size_t c) const;
  /// Canonical text of cell `c` (Value::ToString semantics) without
  /// materializing a Value for typed columns.
  std::string Text(size_t c) const;

  /// Materializes an owned Row (copies every cell).
  // NOLINTNEXTLINE(google-explicit-constructor): legacy call sites copy rows.
  operator Row() const { return Materialize(); }
  Row Materialize() const;

  /// Forward iterator yielding Value by value (supports range-for).
  class const_iterator {
   public:
    using value_type = Value;
    using difference_type = std::ptrdiff_t;
    const_iterator(const RowView* view, size_t i) : view_(view), i_(i) {}
    Value operator*() const { return (*view_)[i_]; }
    const_iterator& operator++() { ++i_; return *this; }
    bool operator!=(const const_iterator& o) const { return i_ != o.i_; }
    bool operator==(const const_iterator& o) const { return i_ == o.i_; }
   private:
    const RowView* view_;
    size_t i_;
  };
  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  // Exactly one mode is active: table-backed (table_ != nullptr) or
  // span-backed over a materialized Row.
  const Table* table_ = nullptr;
  size_t row_ = 0;
  const Value* values_ = nullptr;
  size_t size_ = 0;
};

/// An in-memory relation: a schema plus a columnar chunk store
/// (column_store.h). The substrate object every AutoDC task
/// (discovery, ER, cleaning, imputation) operates on.
///
/// Tables are cheap value types: copies share the immutable store;
/// `Filter` returns a selection vector over it and `Project` a column
/// remap, so neither copies cell data. The first mutation (Set /
/// AppendRow) on a shared or view table materializes a private store
/// (copy-on-write), preserving the old deep-copy semantics exactly.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = "")
      : schema_(std::move(schema)), name_(std::move(name)) {}

  const Schema& schema() const { return schema_; }
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  size_t num_rows() const {
    if (!sel_identity_) return sel_.size();
    return store_ ? store_->num_rows() : 0;
  }
  size_t num_columns() const { return schema_.num_columns(); }

  /// Appends a row; fails if the arity does not match the schema.
  Status AppendRow(Row row);

  /// View of row `i`. Cells are built on demand; no Row is allocated.
  RowView row(size_t i) const { return RowView(this, i); }

  /// Cell value, BY VALUE (assembled from column storage). Callers that
  /// held `const Value&` keep working via lifetime extension.
  Value at(size_t row, size_t col) const {
    return store_->GetValue(PhysRow(row), PhysCol(col));
  }
  bool IsNull(size_t row, size_t col) const {
    return store_->IsNull(PhysRow(row), PhysCol(col));
  }
  /// Canonical text of a cell — equals at(row, col).ToString() but skips
  /// the Value materialization for typed columns.
  std::string CellText(size_t row, size_t col) const {
    return store_->CellText(PhysRow(row), PhysCol(col));
  }

  void Set(size_t row, size_t col, Value v);

  /// Cell addressed by column name; error if the column does not exist or
  /// the row is out of range.
  Result<Value> Get(size_t row, const std::string& column) const;

  /// All values of one column, in row order.
  std::vector<Value> ColumnValues(size_t col) const;

  /// Distinct non-null values of one column, in first-seen row order.
  std::vector<Value> DistinctColumnValues(size_t col) const;

  /// Rows for which `predicate` returns true, as a new table. O(selected)
  /// extra memory: the result shares this table's column store.
  template <typename Pred>
  Table Filter(Pred predicate) const {
    Table out(schema_, name_);
    out.store_ = store_;
    out.colmap_ = colmap_;
    out.col_identity_ = col_identity_;
    out.sel_identity_ = false;
    size_t n = num_rows();
    out.sel_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (predicate(row(i))) out.sel_.push_back(PhysRow(i));
    }
    return out;
  }

  /// New table with only the given column indices (in the given order;
  /// duplicates allowed). Shares the column store — no cell copies.
  Result<Table> Project(const std::vector<size_t>& cols) const;

  /// Fraction of cells that are null.
  double NullFraction() const;

  /// Human-readable rendering of the first `max_rows` rows.
  std::string ToString(size_t max_rows = 10) const;

  // ---- Columnar access (the hot-path API) -----------------------------
  //
  // Chunk scans address physical rows 0..store rows, so they require a
  // table with no row selection (`ChunkScannable()`): either a freshly
  // built/loaded table or one after Compact(). Column remaps (Project)
  // are fine — indices pass through PhysCol.

  /// True when logical rows coincide with physical store rows, i.e.
  /// chunk iteration sees exactly this table's rows, in order.
  bool ChunkScannable() const { return store_ != nullptr && sel_identity_; }
  /// True when this table is a direct, unshared image of its store
  /// (no row selection, no column remap).
  bool IsFlatView() const { return sel_identity_ && col_identity_; }

  size_t num_chunks() const { return store_ ? store_->num_chunks() : 0; }
  size_t chunk_rows() const {
    return store_ ? store_->chunk_rows() : kDefaultChunkRows;
  }
  /// Typed view of chunk `k` of logical column `c` (ChunkScannable only).
  TypedChunkRef column_chunk(size_t c, size_t k) const {
    return store_->chunk(PhysCol(c), k);
  }
  /// Physical storage type of logical column `c`.
  ValueType storage_type(size_t c) const {
    return store_ ? store_->storage_type(PhysCol(c)) : ValueType::kString;
  }
  /// True when every cell of `c` matches the storage type — the gate for
  /// raw typed-array scans (mixed-type columns fall back to at()).
  bool ColumnUniform(size_t c) const {
    return store_ != nullptr && store_->uniform(PhysCol(c));
  }
  /// Dictionary of a string-typed column.
  const StringDict& dict(size_t c) const { return store_->dict(PhysCol(c)); }
  /// Dict code of a non-null cell (uniform string columns only) — lets
  /// consumers key per-distinct-value caches without building strings.
  uint32_t DictCode(size_t row, size_t col) const {
    return store_->CellCode(PhysRow(row), PhysCol(col));
  }

  /// Materializes the logical view (selection + remap) into a private
  /// flat store. No-op when already exclusive and flat.
  void Compact();

  /// Bytes resident in column arrays, dictionaries, and overflow maps.
  size_t ResidentBytes() const {
    return store_ ? store_->ResidentBytes() : 0;
  }

  /// The backing store (table_file.cc serialization; requires a store —
  /// call Compact() first on possibly-empty tables).
  const ColumnStore& store() const { return *store_; }
  bool has_store() const { return store_ != nullptr; }
  /// Installs a store built externally (CSV ingest, file open).
  void AdoptStore(std::shared_ptr<ColumnStore> store) {
    store_ = std::move(store);
    sel_.clear();
    colmap_.clear();
    sel_identity_ = true;
    col_identity_ = true;
  }

  size_t PhysRow(size_t i) const { return sel_identity_ ? i : sel_[i]; }
  size_t PhysCol(size_t c) const { return col_identity_ ? c : colmap_[c]; }

 private:
  /// Copy-on-write gate: after this, store_ is exclusively owned and the
  /// view is flat, so in-place mutation is safe.
  void EnsureExclusive();
  void EnsureStore();

  Schema schema_;
  std::string name_;
  std::shared_ptr<ColumnStore> store_;
  /// Row selection: logical row i is store row sel_[i]. Identity when
  /// sel_identity_ (sel_ empty ≠ empty selection, hence the flag).
  std::vector<uint32_t> sel_;
  /// Column remap: logical column c is store column colmap_[c].
  std::vector<uint32_t> colmap_;
  bool sel_identity_ = true;
  bool col_identity_ = true;
};

// ---- RowView inline definitions (need complete Table) -----------------

inline size_t RowView::size() const {
  return table_ != nullptr ? table_->num_columns() : size_;
}

inline Value RowView::operator[](size_t c) const {
  return table_ != nullptr ? table_->at(row_, c) : values_[c];
}

inline bool RowView::is_null(size_t c) const {
  return table_ != nullptr ? table_->IsNull(row_, c) : values_[c].is_null();
}

inline std::string RowView::Text(size_t c) const {
  return table_ != nullptr ? table_->CellText(row_, c)
                           : values_[c].ToString();
}

inline Row RowView::Materialize() const {
  Row out;
  size_t n = size();
  out.reserve(n);
  for (size_t c = 0; c < n; ++c) out.push_back((*this)[c]);
  return out;
}

}  // namespace autodc::data

#endif  // AUTODC_DATA_TABLE_H_
