#include "src/data/table.h"

#include <sstream>
#include <unordered_set>

namespace autodc::data {

void Table::EnsureStore() {
  if (store_ == nullptr) {
    store_ = std::make_shared<ColumnStore>(schema_, ChunkRowsFromEnv());
  }
}

void Table::EnsureExclusive() {
  EnsureStore();
  if (store_.use_count() == 1 && IsFlatView()) return;
  auto fresh =
      std::make_shared<ColumnStore>(schema_, store_->chunk_rows());
  size_t n = num_rows();
  size_t cols = num_columns();
  for (size_t r = 0; r < n; ++r) {
    size_t pr = PhysRow(r);
    for (size_t c = 0; c < cols; ++c) {
      fresh->AppendCell(c, store_->GetValue(pr, PhysCol(c)));
    }
  }
  fresh->FinishColumnBatch();
  store_ = std::move(fresh);
  sel_.clear();
  colmap_.clear();
  sel_identity_ = true;
  col_identity_ = true;
}

void Table::Compact() { EnsureExclusive(); }

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table '" + name_ + "'");
  }
  EnsureExclusive();
  store_->AppendRow(row);
  return Status::OK();
}

void Table::Set(size_t row, size_t col, Value v) {
  EnsureExclusive();
  store_->SetValue(row, col, std::move(v));
}

Result<Value> Table::Get(size_t row, const std::string& column) const {
  auto idx = schema_.IndexOf(column);
  if (!idx.has_value()) {
    return Status::NotFound("no column '" + column + "' in table '" + name_ +
                            "'");
  }
  if (row >= num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " >= " +
                              std::to_string(num_rows()));
  }
  return at(row, *idx);
}

std::vector<Value> Table::ColumnValues(size_t col) const {
  size_t n = num_rows();
  std::vector<Value> out;
  out.reserve(n);
  for (size_t r = 0; r < n; ++r) out.push_back(at(r, col));
  return out;
}

std::vector<Value> Table::DistinctColumnValues(size_t col) const {
  size_t n = num_rows();
  std::vector<Value> out;
  if (n == 0) return out;
  // Dictionary fast path: on a scannable uniform string column, distinct
  // values are distinct codes — dedup with a flat bitmap over the dict
  // instead of hashing every string.
  if (ChunkScannable() && storage_type(col) == ValueType::kString &&
      ColumnUniform(col)) {
    const StringDict& d = dict(col);
    std::vector<uint8_t> seen(d.size(), 0);
    for (size_t k = 0; k < num_chunks(); ++k) {
      TypedChunkRef ch = column_chunk(col, k);
      for (size_t i = 0; i < ch.n; ++i) {
        if (ch.is_null(i)) continue;
        uint32_t code = ch.codes[i];
        if (seen[code] == 0) {
          seen[code] = 1;
          out.push_back(Value(std::string(d.str(code))));
        }
      }
    }
    return out;
  }
  std::unordered_set<Value, ValueHash> dedup;
  for (size_t r = 0; r < n; ++r) {
    Value v = at(r, col);
    if (v.is_null()) continue;
    if (dedup.insert(v).second) out.push_back(std::move(v));
  }
  return out;
}

Result<Table> Table::Project(const std::vector<size_t>& cols) const {
  std::vector<Column> out_cols;
  std::vector<uint32_t> remap;
  out_cols.reserve(cols.size());
  remap.reserve(cols.size());
  for (size_t c : cols) {
    if (c >= schema_.num_columns()) {
      return Status::OutOfRange("column index " + std::to_string(c));
    }
    out_cols.push_back(schema_.column(c));
    remap.push_back(static_cast<uint32_t>(PhysCol(c)));
  }
  Table out{Schema(std::move(out_cols)), name_};
  out.store_ = store_;
  out.sel_ = sel_;
  out.sel_identity_ = sel_identity_;
  out.colmap_ = std::move(remap);
  out.col_identity_ = false;
  return out;
}

double Table::NullFraction() const {
  size_t n = num_rows();
  size_t cols = schema_.num_columns();
  if (n == 0 || cols == 0) return 0.0;
  size_t nulls = 0;
  if (ChunkScannable()) {
    // Bitmap popcount per chunk; overflow cells were stored with the
    // null bit set but hold real values, so subtract them back out.
    for (size_t c = 0; c < cols; ++c) {
      for (size_t k = 0; k < num_chunks(); ++k) {
        TypedChunkRef ch = column_chunk(c, k);
        size_t words = (ch.n + 63) / 64;
        for (size_t w = 0; w < words; ++w) {
          uint64_t word = ch.nulls[w];
          // Mask tail bits beyond ch.n in the last word.
          if (w == words - 1 && (ch.n & 63) != 0) {
            word &= (uint64_t{1} << (ch.n & 63)) - 1;
          }
          nulls += static_cast<size_t>(__builtin_popcountll(word));
        }
      }
      nulls -= store_->overflow(PhysCol(c)).size();
    }
  } else {
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < cols; ++c) {
        if (IsNull(r, c)) ++nulls;
      }
    }
  }
  return static_cast<double>(nulls) / static_cast<double>(n * cols);
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Table '" << name_ << "' (" << num_rows() << " rows)\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) os << " | ";
    os << schema_.column(c).name;
  }
  os << "\n";
  size_t n = num_rows();
  for (size_t r = 0; r < n && r < max_rows; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      if (c > 0) os << " | ";
      os << CellText(r, c);
    }
    os << "\n";
  }
  if (n > max_rows) os << "... (" << n - max_rows << " more)\n";
  return os.str();
}

}  // namespace autodc::data
