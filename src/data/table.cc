#include "src/data/table.h"

#include <sstream>
#include <unordered_set>

namespace autodc::data {

Status Table::AppendRow(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_columns()) + " for table '" + name_ + "'");
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Table::Get(size_t row, const std::string& column) const {
  auto idx = schema_.IndexOf(column);
  if (!idx.has_value()) {
    return Status::NotFound("no column '" + column + "' in table '" + name_ +
                            "'");
  }
  if (row >= rows_.size()) {
    return Status::OutOfRange("row " + std::to_string(row) + " >= " +
                              std::to_string(rows_.size()));
  }
  return rows_[row][*idx];
}

std::vector<Value> Table::ColumnValues(size_t col) const {
  std::vector<Value> out;
  out.reserve(rows_.size());
  for (const Row& r : rows_) out.push_back(r[col]);
  return out;
}

std::vector<Value> Table::DistinctColumnValues(size_t col) const {
  std::unordered_set<Value, ValueHash> seen;
  std::vector<Value> out;
  for (const Row& r : rows_) {
    const Value& v = r[col];
    if (v.is_null()) continue;
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

Result<Table> Table::Project(const std::vector<size_t>& cols) const {
  std::vector<Column> out_cols;
  for (size_t c : cols) {
    if (c >= schema_.num_columns()) {
      return Status::OutOfRange("column index " + std::to_string(c));
    }
    out_cols.push_back(schema_.column(c));
  }
  Table out{Schema(std::move(out_cols)), name_};
  for (const Row& r : rows_) {
    Row nr;
    nr.reserve(cols.size());
    for (size_t c : cols) nr.push_back(r[c]);
    AUTODC_RETURN_NOT_OK(out.AppendRow(std::move(nr)));
  }
  return out;
}

double Table::NullFraction() const {
  if (rows_.empty() || schema_.num_columns() == 0) return 0.0;
  size_t nulls = 0;
  for (const Row& r : rows_) {
    for (const Value& v : r) {
      if (v.is_null()) ++nulls;
    }
  }
  return static_cast<double>(nulls) /
         static_cast<double>(rows_.size() * schema_.num_columns());
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << "Table '" << name_ << "' (" << num_rows() << " rows)\n";
  for (size_t c = 0; c < schema_.num_columns(); ++c) {
    if (c > 0) os << " | ";
    os << schema_.column(c).name;
  }
  os << "\n";
  for (size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      if (c > 0) os << " | ";
      os << rows_[r][c].ToString();
    }
    os << "\n";
  }
  if (rows_.size() > max_rows) os << "... (" << rows_.size() - max_rows
                                  << " more)\n";
  return os.str();
}

}  // namespace autodc::data
