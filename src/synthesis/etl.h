#ifndef AUTODC_SYNTHESIS_ETL_H_
#define AUTODC_SYNTHESIS_ETL_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/data/table.h"
#include "src/synthesis/dsl.h"

namespace autodc::synthesis {

/// How one target column is produced from the source table.
struct ColumnRule {
  enum class Kind {
    kCopy = 0,     ///< verbatim copy of source column
    kTransform,    ///< string program applied to source column
    kConstant,     ///< same constant for every row
  };
  Kind kind = Kind::kCopy;
  size_t source_column = 0;
  Program program;       ///< kTransform payload
  std::string constant;  ///< kConstant payload
};

/// A synthesized ETL mapping: per target column, a rule telling how to
/// derive it from the source table (Sec. 4 "Program Synthesis from ETL
/// Scripts": given input-output tuples, identify the series of
/// operations generating the virtual relation).
struct EtlPipeline {
  data::Schema target_schema;
  std::vector<ColumnRule> rules;

  /// Applies the pipeline to a (full) source table.
  data::Table Apply(const data::Table& source) const;

  std::string ToString(const data::Schema& source_schema) const;
};

struct EtlSynthesisConfig {
  SynthesisConfig string_synthesis;
  /// How many example rows to use (rows beyond this validate only).
  size_t max_example_rows = 5;
};

/// Synthesizes an ETL pipeline from a source table and an example target
/// table whose row i is the desired output for source row i. Fails with
/// kNotFound when some target column cannot be explained by any source
/// column under the DSL.
Result<EtlPipeline> SynthesizeEtl(const data::Table& source,
                                  const data::Table& target_example,
                                  const EtlSynthesisConfig& config = {});

}  // namespace autodc::synthesis

#endif  // AUTODC_SYNTHESIS_ETL_H_
