#ifndef AUTODC_SYNTHESIS_DSL_H_
#define AUTODC_SYNTHESIS_DSL_H_

#include <string>
#include <vector>

#include "src/common/result.h"

namespace autodc::synthesis {

/// Case transform applied to a token.
enum class CaseKind { kIdentity = 0, kLower, kUpper, kTitle };

/// One atom of the FlashFill-style string DSL (Sec. 4 / [27]): a program
/// is a concatenation of atoms, each emitting a piece of the output.
/// Token indices may be negative (-1 = last token).
struct Atom {
  enum class Kind {
    kConst = 0,  ///< emit `text` verbatim
    kToken,      ///< emit input token `token` under `case_kind`
    kInitial,    ///< emit the uppercase first character of token `token`
  };
  Kind kind = Kind::kConst;
  std::string text;                         ///< kConst payload
  int token = 0;                            ///< kToken/kInitial index
  CaseKind case_kind = CaseKind::kIdentity; ///< kToken transform

  std::string ToString() const;
};

/// A synthesized string-transformation program.
struct Program {
  std::vector<Atom> atoms;

  /// Runs the program on `input`; atoms referencing out-of-range tokens
  /// emit nothing.
  std::string Apply(const std::string& input) const;

  /// Human-readable rendering, e.g. `Initial(0) + "." + " " + Token(1)`.
  std::string ToString() const;

  /// Ranking cost: fewer atoms and fewer constant characters are
  /// preferred (constants overfit the examples).
  size_t Cost() const;
};

/// One input-output example.
struct Example {
  std::string input;
  std::string output;
};

struct SynthesisConfig {
  size_t max_atoms = 6;
  size_t max_const_len = 3;   ///< longest non-whole-output constant
  size_t beam = 5000;         ///< search-state budget
};

/// Enumerative synthesis: finds the lowest-cost program consistent with
/// every example, searching decompositions of the first example's output
/// into atom emissions and validating against the rest. Returns
/// kNotFound when no program within the budget explains all examples.
Result<Program> SynthesizeStringProgram(const std::vector<Example>& examples,
                                        const SynthesisConfig& config = {});

}  // namespace autodc::synthesis

#endif  // AUTODC_SYNTHESIS_DSL_H_
