#include "src/synthesis/dsl.h"

#include <algorithm>
#include <cctype>

#include "src/common/string_util.h"
#include "src/text/tokenizer.h"

namespace autodc::synthesis {

namespace {

std::string ApplyCase(const std::string& token, CaseKind kind) {
  switch (kind) {
    case CaseKind::kIdentity: return token;
    case CaseKind::kLower: return ToLower(token);
    case CaseKind::kUpper: return ToUpper(token);
    case CaseKind::kTitle: return Capitalize(token);
  }
  return token;
}

// Resolves a possibly-negative token index; returns -1 if out of range.
int ResolveIndex(int index, size_t ntokens) {
  int n = static_cast<int>(ntokens);
  int i = index < 0 ? n + index : index;
  if (i < 0 || i >= n) return -1;
  return i;
}

std::string EmitAtom(const Atom& atom, const std::vector<std::string>& tokens) {
  switch (atom.kind) {
    case Atom::Kind::kConst:
      return atom.text;
    case Atom::Kind::kToken: {
      int i = ResolveIndex(atom.token, tokens.size());
      if (i < 0) return "";
      return ApplyCase(tokens[static_cast<size_t>(i)], atom.case_kind);
    }
    case Atom::Kind::kInitial: {
      int i = ResolveIndex(atom.token, tokens.size());
      if (i < 0 || tokens[static_cast<size_t>(i)].empty()) return "";
      return std::string(
          1, static_cast<char>(std::toupper(static_cast<unsigned char>(
                 tokens[static_cast<size_t>(i)][0]))));
    }
  }
  return "";
}

const char* CaseName(CaseKind k) {
  switch (k) {
    case CaseKind::kIdentity: return "";
    case CaseKind::kLower: return ".lower";
    case CaseKind::kUpper: return ".upper";
    case CaseKind::kTitle: return ".title";
  }
  return "";
}

}  // namespace

std::string Atom::ToString() const {
  switch (kind) {
    case Kind::kConst:
      return "\"" + text + "\"";
    case Kind::kToken:
      return "Token(" + std::to_string(token) + ")" + CaseName(case_kind);
    case Kind::kInitial:
      return "Initial(" + std::to_string(token) + ")";
  }
  return "?";
}

std::string Program::Apply(const std::string& input) const {
  std::vector<std::string> tokens = text::TokenizeKeepCase(input);
  std::string out;
  for (const Atom& atom : atoms) out += EmitAtom(atom, tokens);
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i > 0) out += " + ";
    out += atoms[i].ToString();
  }
  return out;
}

size_t Program::Cost() const {
  size_t cost = 0;
  for (const Atom& atom : atoms) {
    cost += 10;
    if (atom.kind == Atom::Kind::kConst) {
      cost += 2;
      for (char c : atom.text) {
        // Alphanumeric constants almost certainly overfit the examples
        // (they copy content); separator/punctuation constants are the
        // legitimate use. Price them accordingly.
        cost += std::isalnum(static_cast<unsigned char>(c)) ? 30 : 1;
      }
    }
    if (atom.case_kind != CaseKind::kIdentity) cost += 1;
  }
  return cost;
}

Result<Program> SynthesizeStringProgram(const std::vector<Example>& examples,
                                        const SynthesisConfig& config) {
  if (examples.empty()) {
    return Status::InvalidArgument("need at least one example");
  }
  const Example& first = examples[0];
  std::vector<std::string> tokens = text::TokenizeKeepCase(first.input);
  const std::string& target = first.output;

  // Candidate non-const atoms, each paired with its emission on the
  // first example.
  struct Cand {
    Atom atom;
    std::string emission;
  };
  std::vector<Cand> cands;
  int n = static_cast<int>(tokens.size());
  for (int sign = 0; sign < 2; ++sign) {
    for (int i = 0; i < n; ++i) {
      int index = sign == 0 ? i : i - n;  // 0..n-1 and -n..-1
      for (CaseKind ck : {CaseKind::kIdentity, CaseKind::kLower,
                          CaseKind::kUpper, CaseKind::kTitle}) {
        Atom a{Atom::Kind::kToken, "", index, ck};
        std::string e = EmitAtom(a, tokens);
        if (!e.empty()) cands.push_back({a, e});
      }
      Atom init{Atom::Kind::kInitial, "", index, CaseKind::kIdentity};
      std::string ie = EmitAtom(init, tokens);
      if (!ie.empty()) cands.push_back({init, ie});
    }
  }

  // DFS over output positions, extending with candidate atoms whose
  // emission matches, or short constants copied from the output.
  struct State {
    size_t pos = 0;
    Program program;
  };
  std::vector<Program> complete;
  std::vector<State> stack = {State{}};
  size_t visited = 0;
  while (!stack.empty() && visited < config.beam) {
    State s = std::move(stack.back());
    stack.pop_back();
    ++visited;
    if (s.pos == target.size()) {
      if (!s.program.atoms.empty() || target.empty()) {
        complete.push_back(s.program);
      }
      continue;
    }
    if (s.program.atoms.size() >= config.max_atoms) continue;
    bool prev_const = !s.program.atoms.empty() &&
                      s.program.atoms.back().kind == Atom::Kind::kConst;
    // Constants first (pushed first = popped last, so token atoms are
    // explored before constants — they generalize better). Never emit two
    // consecutive constants (a single longer constant covers that).
    if (!prev_const) {
      size_t max_len = std::min(config.max_const_len,
                                target.size() - s.pos);
      for (size_t len = 1; len <= max_len; ++len) {
        State next = s;
        next.program.atoms.push_back(
            Atom{Atom::Kind::kConst, target.substr(s.pos, len), 0,
                 CaseKind::kIdentity});
        next.pos = s.pos + len;
        stack.push_back(std::move(next));
      }
      // Whole-remaining-output constant (covers constant-only programs).
      if (target.size() - s.pos > config.max_const_len) {
        State next = s;
        next.program.atoms.push_back(
            Atom{Atom::Kind::kConst, target.substr(s.pos), 0,
                 CaseKind::kIdentity});
        next.pos = target.size();
        stack.push_back(std::move(next));
      }
    }
    for (const Cand& cand : cands) {
      if (target.compare(s.pos, cand.emission.size(), cand.emission) != 0) {
        continue;
      }
      State next = s;
      next.program.atoms.push_back(cand.atom);
      next.pos = s.pos + cand.emission.size();
      stack.push_back(std::move(next));
    }
  }

  // Keep programs consistent with every example; pick the cheapest.
  const Program* best = nullptr;
  for (const Program& p : complete) {
    bool ok = true;
    for (size_t e = 1; e < examples.size(); ++e) {
      if (p.Apply(examples[e].input) != examples[e].output) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (best == nullptr || p.Cost() < best->Cost()) best = &p;
  }
  if (best == nullptr) {
    return Status::NotFound("no program within budget explains all examples");
  }
  return *best;
}

}  // namespace autodc::synthesis
