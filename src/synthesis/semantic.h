#ifndef AUTODC_SYNTHESIS_SEMANTIC_H_
#define AUTODC_SYNTHESIS_SEMANTIC_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/embedding/embedding_store.h"
#include "src/synthesis/dsl.h"

namespace autodc::synthesis {

/// Learner for *semantic* transformations (Sec. 4): from example pairs
/// like {(France, Paris), (Germany, Berlin)} it learns the relation as an
/// average embedding offset and applies it to new inputs by nearest-
/// neighbour lookup — the transformation "is the capital of" is not
/// expressible as any syntactic string program.
class SemanticTransformLearner {
 public:
  /// `store` provides both the relation geometry and the output
  /// vocabulary; it must outlive the learner.
  explicit SemanticTransformLearner(const embedding::EmbeddingStore* store)
      : store_(store) {}

  /// Learns the offset vector from example pairs (inputs/outputs are
  /// single tokens, lowercased). Fails if no example has both ends in
  /// the store.
  Status Fit(const std::vector<Example>& examples);

  /// Applies the relation: nearest store key to v(input) + offset,
  /// excluding the input itself and any training strings. Memorized
  /// training pairs are answered exactly.
  Result<std::string> Transform(const std::string& input) const;

  /// Top-k candidates with scores (for inspection).
  Result<std::vector<embedding::Neighbor>> TransformTopK(
      const std::string& input, size_t k) const;

 private:
  const embedding::EmbeddingStore* store_;
  std::vector<float> offset_;
  std::unordered_map<std::string, std::string> memorized_;
};

}  // namespace autodc::synthesis

#endif  // AUTODC_SYNTHESIS_SEMANTIC_H_
