#include "src/synthesis/etl.h"

#include <algorithm>

namespace autodc::synthesis {

data::Table EtlPipeline::Apply(const data::Table& source) const {
  data::Table out(target_schema, source.name() + "_etl");
  for (size_t r = 0; r < source.num_rows(); ++r) {
    data::Row row;
    row.reserve(rules.size());
    for (const ColumnRule& rule : rules) {
      switch (rule.kind) {
        case ColumnRule::Kind::kCopy:
          row.push_back(source.at(r, rule.source_column));
          break;
        case ColumnRule::Kind::kTransform: {
          const data::Value& v = source.at(r, rule.source_column);
          if (v.is_null()) {
            row.push_back(data::Value::Null());
          } else {
            row.push_back(data::Value(rule.program.Apply(v.ToString())));
          }
          break;
        }
        case ColumnRule::Kind::kConstant:
          row.push_back(data::Value(rule.constant));
          break;
      }
    }
    out.AppendRow(std::move(row));
  }
  return out;
}

std::string EtlPipeline::ToString(const data::Schema& source_schema) const {
  std::string out;
  for (size_t c = 0; c < rules.size(); ++c) {
    const ColumnRule& rule = rules[c];
    out += target_schema.column(c).name + " <- ";
    switch (rule.kind) {
      case ColumnRule::Kind::kCopy:
        out += "copy(" + source_schema.column(rule.source_column).name + ")";
        break;
      case ColumnRule::Kind::kTransform:
        out += "transform(" +
               source_schema.column(rule.source_column).name + ", " +
               rule.program.ToString() + ")";
        break;
      case ColumnRule::Kind::kConstant:
        out += "const(\"" + rule.constant + "\")";
        break;
    }
    out += "\n";
  }
  return out;
}

Result<EtlPipeline> SynthesizeEtl(const data::Table& source,
                                  const data::Table& target_example,
                                  const EtlSynthesisConfig& config) {
  if (target_example.num_rows() == 0 ||
      target_example.num_rows() > source.num_rows()) {
    return Status::InvalidArgument(
        "target example must be non-empty and no longer than the source");
  }
  size_t nrows = std::min(config.max_example_rows, target_example.num_rows());

  EtlPipeline pipeline;
  pipeline.target_schema = target_example.schema();

  for (size_t tc = 0; tc < target_example.num_columns(); ++tc) {
    bool solved = false;
    // 1) Constant column?
    bool all_same = true;
    std::string first = target_example.at(0, tc).ToString();
    for (size_t r = 1; r < target_example.num_rows(); ++r) {
      if (target_example.at(r, tc).ToString() != first) {
        all_same = false;
        break;
      }
    }
    // 2) Verbatim copy of some source column (checked over ALL example
    // rows).
    for (size_t sc = 0; sc < source.num_columns() && !solved; ++sc) {
      bool copies = true;
      for (size_t r = 0; r < target_example.num_rows(); ++r) {
        if (!(source.at(r, sc) == target_example.at(r, tc))) {
          copies = false;
          break;
        }
      }
      if (copies) {
        pipeline.rules.push_back(
            ColumnRule{ColumnRule::Kind::kCopy, sc, {}, ""});
        solved = true;
      }
    }
    if (solved) continue;
    // 3) Constant column (checked before transforms: a pure-constant
    // string program would otherwise masquerade as a transform).
    if (all_same) {
      pipeline.rules.push_back(
          ColumnRule{ColumnRule::Kind::kConstant, 0, {}, first});
      continue;
    }
    // 4) String program over some source column.
    Program best_program;
    size_t best_source = 0;
    size_t best_cost = SIZE_MAX;
    for (size_t sc = 0; sc < source.num_columns(); ++sc) {
      std::vector<Example> examples;
      bool usable = true;
      for (size_t r = 0; r < nrows; ++r) {
        const data::Value& in = source.at(r, sc);
        const data::Value& out = target_example.at(r, tc);
        if (in.is_null() || out.is_null()) {
          usable = false;
          break;
        }
        examples.push_back(Example{in.ToString(), out.ToString()});
      }
      if (!usable) continue;
      Result<Program> prog =
          SynthesizeStringProgram(examples, config.string_synthesis);
      if (!prog.ok()) continue;
      // Validate on the remaining example rows.
      bool valid = true;
      for (size_t r = nrows; r < target_example.num_rows(); ++r) {
        const data::Value& in = source.at(r, sc);
        if (in.is_null()) continue;
        if (prog.ValueOrDie().Apply(in.ToString()) !=
            target_example.at(r, tc).ToString()) {
          valid = false;
          break;
        }
      }
      if (!valid) continue;
      size_t cost = prog.ValueOrDie().Cost();
      if (cost < best_cost) {
        best_cost = cost;
        best_program = std::move(prog).ValueOrDie();
        best_source = sc;
      }
    }
    if (best_cost != SIZE_MAX) {
      pipeline.rules.push_back(ColumnRule{ColumnRule::Kind::kTransform,
                                          best_source, best_program, ""});
      solved = true;
    }
    if (!solved) {
      return Status::NotFound(
          "cannot explain target column '" +
          target_example.schema().column(tc).name + "'");
    }
  }
  return pipeline;
}

}  // namespace autodc::synthesis
