#include "src/synthesis/semantic.h"

#include "src/common/string_util.h"

namespace autodc::synthesis {

Status SemanticTransformLearner::Fit(const std::vector<Example>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument("need at least one example pair");
  }
  offset_.assign(store_->dim(), 0.0f);
  memorized_.clear();
  size_t used = 0;
  for (const Example& e : examples) {
    std::string in = ToLower(e.input);
    std::string out = ToLower(e.output);
    memorized_[in] = out;
    const std::vector<float>* vi = store_->Find(in);
    const std::vector<float>* vo = store_->Find(out);
    if (vi == nullptr || vo == nullptr) continue;
    for (size_t d = 0; d < offset_.size(); ++d) {
      offset_[d] += (*vo)[d] - (*vi)[d];
    }
    ++used;
  }
  if (used == 0) {
    return Status::FailedPrecondition(
        "no example pair has both sides in the embedding store");
  }
  for (float& x : offset_) x /= static_cast<float>(used);
  return Status::OK();
}

Result<std::vector<embedding::Neighbor>>
SemanticTransformLearner::TransformTopK(const std::string& input,
                                        size_t k) const {
  std::string in = ToLower(input);
  const std::vector<float>* vi = store_->Find(in);
  if (vi == nullptr) {
    return Status::NotFound("input '" + input + "' not in embedding store");
  }
  std::vector<float> q(offset_.size());
  for (size_t d = 0; d < q.size(); ++d) q[d] = (*vi)[d] + offset_[d];
  // Exclude the input and all training inputs (they are answered by
  // memorization, and their vectors sit close to the query).
  std::vector<std::string> exclude;
  exclude.reserve(memorized_.size() + 1);
  exclude.push_back(in);
  for (const auto& [train_in, train_out] : memorized_) {
    (void)train_out;
    exclude.push_back(train_in);
  }
  return store_->NearestToVector(q, k, exclude);
}

Result<std::string> SemanticTransformLearner::Transform(
    const std::string& input) const {
  std::string in = ToLower(input);
  auto it = memorized_.find(in);
  if (it != memorized_.end()) return it->second;
  std::vector<embedding::Neighbor> top;
  AUTODC_ASSIGN_OR_RETURN(top, TransformTopK(input, 1));
  if (top.empty()) return Status::NotFound("empty embedding store");
  return top[0].key;
}

}  // namespace autodc::synthesis
