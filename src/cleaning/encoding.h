#ifndef AUTODC_CLEANING_ENCODING_H_
#define AUTODC_CLEANING_ENCODING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/data/table.h"

namespace autodc::cleaning {

/// Bidirectional codec between table rows and dense float vectors, the
/// interface neural cleaning models need. Numeric columns are
/// standardized (z-score); categorical/string columns are one-hot over
/// their most frequent values (rarer values map to an "other" slot).
/// Nulls encode to zeros (with the caller tracking the missing mask).
struct TableEncoderOptions {
  /// Cap on one-hot width per categorical column.
  size_t max_categories = 20;
};

class TableEncoder {
 public:
  using Options = TableEncoderOptions;

  /// Learns per-column statistics from `table`.
  void Fit(const data::Table& table, const Options& options = {});

  /// Total encoded dimensionality.
  size_t dim() const { return dim_; }

  /// Encodes one row (nulls -> zero block).
  std::vector<float> EncodeRow(data::RowView row) const;

  /// Encodes every row of `table` — the batch path the cleaning models
  /// use. On a chunk-scannable table this runs column-at-a-time over the
  /// typed chunks (dictionary codes resolved to one-hot slots once per
  /// distinct string) on the thread pool; output is identical to calling
  /// EncodeRow per row.
  std::vector<std::vector<float>> EncodeAll(const data::Table& table) const;

  /// The [begin, end) slice of the encoding belonging to column `c`.
  std::pair<size_t, size_t> ColumnSpan(size_t c) const {
    return {offsets_[c], offsets_[c] + widths_[c]};
  }

  /// Decodes the value of column `c` from an encoded vector: numeric
  /// columns un-standardize; categorical columns take the arg-max slot.
  data::Value DecodeColumn(const std::vector<float>& encoded,
                           size_t c) const;

  size_t num_columns() const { return widths_.size(); }
  bool IsNumeric(size_t c) const { return numeric_[c]; }

 private:
  struct ColumnStats {
    double mean = 0.0;
    double stddev = 1.0;
    std::vector<std::string> categories;  ///< slot -> value
    std::unordered_map<std::string, size_t> category_index;
  };

  size_t dim_ = 0;
  std::vector<bool> numeric_;
  std::vector<size_t> offsets_;
  std::vector<size_t> widths_;
  std::vector<ColumnStats> stats_;
  data::Schema schema_;
};

}  // namespace autodc::cleaning

#endif  // AUTODC_CLEANING_ENCODING_H_
