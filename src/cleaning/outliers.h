#ifndef AUTODC_CLEANING_OUTLIERS_H_
#define AUTODC_CLEANING_OUTLIERS_H_

#include <cstdint>
#include <vector>

#include "src/data/table.h"
#include "src/nn/trainer.h"

namespace autodc::cleaning {

/// One flagged cell.
struct OutlierCell {
  size_t row = 0;
  size_t col = 0;
  double score = 0.0;  ///< detector-specific severity (higher = worse)
};

/// Z-score detector over one numeric column: |x - mean| / stddev >
/// threshold flags the cell.
std::vector<OutlierCell> ZScoreOutliers(const data::Table& table, size_t col,
                                        double threshold = 3.0);

/// Tukey IQR fence detector: x outside [Q1 - k*IQR, Q3 + k*IQR].
std::vector<OutlierCell> IqrOutliers(const data::Table& table, size_t col,
                                     double k = 1.5);

struct AutoencoderOutlierConfig {
  size_t hidden_dim = 4;
  size_t epochs = 40;
  /// Rows whose reconstruction error exceeds mean + `sigma` * stddev of
  /// training errors are flagged.
  double sigma = 3.0;
  uint64_t seed = 42;

  // ---- Trainer runtime knobs (defaults reproduce seed behaviour). ----
  size_t batch_size = 16;
  double validation_fraction = 0.0;
  size_t early_stopping_patience = 0;
  double early_stopping_min_delta = 0.0;
  /// Per-epoch telemetry: {epoch, train_loss, val_loss, lr, wall_ms}.
  nn::EpochCallback epoch_callback;
};

/// Row-level anomaly detection via autoencoder reconstruction error
/// (Sec. 3.1's "detect anomalous data that does not match a group of
/// values" through the representation-learning lens). Returns row
/// indices with scores (the reconstruction error).
std::vector<OutlierCell> AutoencoderRowOutliers(
    const data::Table& table, const AutoencoderOutlierConfig& config = {});

}  // namespace autodc::cleaning

#endif  // AUTODC_CLEANING_OUTLIERS_H_
