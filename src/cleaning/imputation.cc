#include "src/cleaning/imputation.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/text/similarity.h"

namespace autodc::cleaning {

size_t Imputer::FitAndFillAll(data::Table* table) {
  Fit(*table);
  size_t filled = 0;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    for (size_t c = 0; c < table->num_columns(); ++c) {
      if (!table->at(r, c).is_null()) continue;
      data::Value v = Impute(*table, r, c);
      if (!v.is_null()) {
        table->Set(r, c, std::move(v));
        ++filled;
      }
    }
  }
  return filled;
}

void MeanModeImputer::Fit(const data::Table& table) {
  fill_values_.assign(table.num_columns(), data::Value::Null());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    data::ValueType ty = table.schema().column(c).type;
    if (ty == data::ValueType::kInt || ty == data::ValueType::kDouble) {
      double sum = 0.0;
      size_t n = 0;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        bool ok = false;
        double v = table.at(r, c).ToNumeric(&ok);
        if (ok) {
          sum += v;
          ++n;
        }
      }
      if (n > 0) {
        double mean = sum / static_cast<double>(n);
        fill_values_[c] = ty == data::ValueType::kInt
                              ? data::Value(static_cast<int64_t>(
                                    std::llround(mean)))
                              : data::Value(mean);
      }
    } else {
      std::map<std::string, size_t> counts;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const data::Value& v = table.at(r, c);
        if (!v.is_null()) counts[v.ToString()]++;
      }
      size_t best = 0;
      for (const auto& [value, n] : counts) {
        if (n > best) {
          best = n;
          fill_values_[c] = data::Value(value);
        }
      }
    }
  }
}

data::Value MeanModeImputer::Impute(const data::Table& /*table*/,
                                    size_t /*row*/, size_t col) const {
  return fill_values_[col];
}

void KnnImputer::Fit(const data::Table& table) {
  encoder_.Fit(table);
  encoded_rows_ = encoder_.EncodeAll(table);
  row_ids_.resize(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) row_ids_[r] = r;
}

data::Value KnnImputer::Impute(const data::Table& table, size_t row,
                               size_t col) const {
  // Distance over the columns observed in the query row, excluding the
  // target column.
  std::vector<float> query = encoder_.EncodeRow(table.row(row));
  auto [t_begin, t_end] = encoder_.ColumnSpan(col);

  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < encoded_rows_.size(); ++i) {
    size_t r = row_ids_[i];
    if (r == row) continue;
    if (table.at(r, col).is_null()) continue;  // neighbour must observe col
    double d2 = 0.0;
    for (size_t j = 0; j < query.size(); ++j) {
      if (j >= t_begin && j < t_end) continue;
      double d = static_cast<double>(query[j]) - encoded_rows_[i][j];
      d2 += d * d;
    }
    scored.emplace_back(d2, r);
  }
  if (scored.empty()) return data::Value::Null();
  size_t take = std::min(k_, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end());

  if (encoder_.IsNumeric(col)) {
    double sum = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < take; ++i) {
      bool ok = false;
      double v = table.at(scored[i].second, col).ToNumeric(&ok);
      if (ok) {
        sum += v;
        ++n;
      }
    }
    if (n == 0) return data::Value::Null();
    double mean = sum / static_cast<double>(n);
    if (table.schema().column(col).type == data::ValueType::kInt) {
      return data::Value(static_cast<int64_t>(std::llround(mean)));
    }
    return data::Value(mean);
  }
  // Majority vote among the neighbours.
  std::map<std::string, size_t> votes;
  for (size_t i = 0; i < take; ++i) {
    votes[table.at(scored[i].second, col).ToString()]++;
  }
  std::string best;
  size_t best_n = 0;
  for (const auto& [value, n] : votes) {
    if (n > best_n) {
      best_n = n;
      best = value;
    }
  }
  if (best_n == 0) return data::Value::Null();
  return data::Value(best);
}

void DaeImputer::Fit(const data::Table& table) {
  encoder_.Fit(table);
  rng_ = std::make_unique<Rng>(config_.seed);
  nn::AutoencoderConfig acfg;
  acfg.input_dim = encoder_.dim();
  acfg.hidden_dim = config_.hidden_dim;
  acfg.corruption = config_.corruption;
  acfg.learning_rate = config_.learning_rate;
  acfg.activation = nn::Activation::kTanh;
  dae_ = std::make_unique<nn::Autoencoder>(nn::AutoencoderKind::kDenoising,
                                           acfg, rng_.get());
  // Train on rows with no missing values (complete cases); the DAE's own
  // corruption teaches it to restore masked blocks.
  std::vector<std::vector<float>> all = encoder_.EncodeAll(table);
  nn::Batch complete;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool has_null = false;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (table.IsNull(r, c)) {
        has_null = true;
        break;
      }
    }
    if (!has_null) complete.push_back(std::move(all[r]));
  }
  if (complete.empty()) return;
  nn::TrainOptions options;
  options.epochs = config_.epochs;
  options.batch_size = config_.batch_size;
  options.grad_clip = 5.0f;
  options.validation_fraction = config_.validation_fraction;
  options.early_stopping_patience = config_.early_stopping_patience;
  options.early_stopping_min_delta = config_.early_stopping_min_delta;
  options.epoch_callback = config_.epoch_callback;
  dae_->Train(complete, options);
}

data::Value DaeImputer::Impute(const data::Table& table, size_t row,
                               size_t col) const {
  if (dae_ == nullptr) return data::Value::Null();
  std::vector<float> encoded = encoder_.EncodeRow(table.row(row));
  std::vector<float> reconstructed = dae_->Reconstruct(encoded);
  return encoder_.DecodeColumn(reconstructed, col);
}

}  // namespace autodc::cleaning
