#include "src/cleaning/outliers.h"

#include <algorithm>
#include <cmath>

#include "src/cleaning/encoding.h"
#include "src/nn/autoencoder.h"

namespace autodc::cleaning {

namespace {

/// Invokes fn(row, value) for every numeric cell of `col`, in row
/// order. On a chunk-scannable uniform column this reads the typed
/// arrays directly (no Value materialization); the fallback matches the
/// legacy at()/ToNumeric loop, so both paths visit identical values in
/// identical order.
template <typename Fn>
void ForEachNumeric(const data::Table& table, size_t col, Fn fn) {
  data::ValueType st = table.storage_type(col);
  if (table.ChunkScannable() && table.ColumnUniform(col) &&
      (st == data::ValueType::kInt || st == data::ValueType::kDouble)) {
    bool ints = st == data::ValueType::kInt;
    for (size_t k = 0; k < table.num_chunks(); ++k) {
      data::TypedChunkRef ch = table.column_chunk(col, k);
      for (size_t i = 0; i < ch.n; ++i) {
        if (ch.is_null(i)) continue;
        fn(ch.base + i, ints ? static_cast<double>(ch.i64[i]) : ch.f64[i]);
      }
    }
    return;
  }
  for (size_t r = 0; r < table.num_rows(); ++r) {
    bool ok = false;
    double v = table.at(r, col).ToNumeric(&ok);
    if (ok) fn(r, v);
  }
}

}  // namespace

std::vector<OutlierCell> ZScoreOutliers(const data::Table& table, size_t col,
                                        double threshold) {
  std::vector<OutlierCell> out;
  double sum = 0.0, sq = 0.0;
  size_t n = 0;
  ForEachNumeric(table, col, [&](size_t, double v) {
    sum += v;
    sq += v * v;
    ++n;
  });
  if (n < 2) return out;
  double mean = sum / static_cast<double>(n);
  double var = sq / static_cast<double>(n) - mean * mean;
  double stddev = var > 1e-12 ? std::sqrt(var) : 0.0;
  if (stddev == 0.0) return out;
  ForEachNumeric(table, col, [&](size_t r, double v) {
    double z = std::fabs(v - mean) / stddev;
    if (z > threshold) out.push_back(OutlierCell{r, col, z});
  });
  return out;
}

std::vector<OutlierCell> IqrOutliers(const data::Table& table, size_t col,
                                     double k) {
  std::vector<OutlierCell> out;
  std::vector<double> values;
  ForEachNumeric(table, col, [&](size_t, double v) { values.push_back(v); });
  if (values.size() < 4) return out;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double q1 = sorted[sorted.size() / 4];
  double q3 = sorted[(sorted.size() * 3) / 4];
  double iqr = q3 - q1;
  double lo = q1 - k * iqr;
  double hi = q3 + k * iqr;
  ForEachNumeric(table, col, [&](size_t r, double v) {
    if (v < lo || v > hi) {
      double severity = v < lo ? (lo - v) / std::max(iqr, 1e-9)
                               : (v - hi) / std::max(iqr, 1e-9);
      out.push_back(OutlierCell{r, col, severity});
    }
  });
  return out;
}

std::vector<OutlierCell> AutoencoderRowOutliers(
    const data::Table& table, const AutoencoderOutlierConfig& config) {
  std::vector<OutlierCell> out;
  if (table.num_rows() < 8) return out;
  TableEncoder encoder;
  encoder.Fit(table);
  nn::Batch rows = encoder.EncodeAll(table);
  Rng rng(config.seed);
  nn::AutoencoderConfig acfg;
  acfg.input_dim = encoder.dim();
  acfg.hidden_dim = config.hidden_dim;
  acfg.activation = nn::Activation::kTanh;
  nn::Autoencoder ae(nn::AutoencoderKind::kPlain, acfg, &rng);
  nn::TrainOptions topt;
  topt.epochs = config.epochs;
  topt.batch_size = config.batch_size;
  topt.grad_clip = 5.0f;
  topt.validation_fraction = config.validation_fraction;
  topt.early_stopping_patience = config.early_stopping_patience;
  topt.early_stopping_min_delta = config.early_stopping_min_delta;
  topt.epoch_callback = config.epoch_callback;
  ae.Train(rows, topt);

  std::vector<double> errors;
  errors.reserve(rows.size());
  for (const auto& row : rows) {
    errors.push_back(ae.ReconstructionError(row));
  }
  double mean = 0.0;
  for (double e : errors) mean += e;
  mean /= static_cast<double>(errors.size());
  double var = 0.0;
  for (double e : errors) var += (e - mean) * (e - mean);
  var /= static_cast<double>(errors.size());
  double cutoff = mean + config.sigma * std::sqrt(var);
  for (size_t r = 0; r < errors.size(); ++r) {
    if (errors[r] > cutoff) {
      out.push_back(OutlierCell{r, 0, errors[r]});
    }
  }
  return out;
}

}  // namespace autodc::cleaning
