#ifndef AUTODC_CLEANING_REPAIR_H_
#define AUTODC_CLEANING_REPAIR_H_

#include <vector>

#include "src/data/dependencies.h"
#include "src/data/table.h"

namespace autodc::cleaning {

/// One cell change applied by a repair.
struct CellRepair {
  size_t row = 0;
  size_t col = 0;
  data::Value old_value;
  data::Value new_value;
};

/// Minimal FD repair by majority vote: for every LHS group violating an
/// FD, every RHS cell is rewritten to the group's most frequent RHS value
/// (the fewest-changes repair under value-equality cost). Repairs are
/// applied in place; the change list is returned.
std::vector<CellRepair> RepairFdViolations(
    data::Table* table, const std::vector<data::FunctionalDependency>& fds);

/// Golden-record consolidation (the entity-consolidation problem of
/// Sec. 4): given a cluster of rows referring to the same entity, build
/// the single best record — per attribute, the most frequent non-null
/// value; ties break to the LONGEST value (more information), matching
/// the "John Smith" over "J Smith" preference example.
data::Row ConsolidateCluster(const data::Table& table,
                             const std::vector<size_t>& cluster_rows);

/// Knowledge fusion as imputation (Sec. 5.3): in each cluster, attributes
/// with conflicting values are treated as missing and re-predicted; here
/// conflicts resolve by consolidation into a fused output table with one
/// row per cluster.
data::Table FuseClusters(const data::Table& table,
                         const std::vector<std::vector<size_t>>& clusters);

}  // namespace autodc::cleaning

#endif  // AUTODC_CLEANING_REPAIR_H_
