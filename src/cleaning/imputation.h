#ifndef AUTODC_CLEANING_IMPUTATION_H_
#define AUTODC_CLEANING_IMPUTATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cleaning/encoding.h"
#include "src/data/table.h"
#include "src/nn/autoencoder.h"

namespace autodc::cleaning {

/// Fills every null cell of `table` in place (derived classes decide
/// how) and reports how many cells were filled.
class Imputer {
 public:
  virtual ~Imputer() = default;

  /// Learns whatever statistics/model the method needs from the observed
  /// (non-null) parts of `table`.
  virtual void Fit(const data::Table& table) = 0;

  /// Predicts a value for cell (row, col); the cell is known to be null.
  virtual data::Value Impute(const data::Table& table, size_t row,
                             size_t col) const = 0;

  /// Fit + fill all nulls; returns the number of imputed cells.
  size_t FitAndFillAll(data::Table* table);
};

/// Column mean (numeric) / mode (categorical) — the simple baseline the
/// paper calls "not applicable to DC tasks" in its naive form.
class MeanModeImputer : public Imputer {
 public:
  void Fit(const data::Table& table) override;
  data::Value Impute(const data::Table& table, size_t row,
                     size_t col) const override;

 private:
  std::vector<data::Value> fill_values_;
};

/// k-nearest-neighbour imputation: the missing cell takes the
/// mean/majority of the k most similar complete rows (similarity over
/// the encoded observed attributes).
class KnnImputer : public Imputer {
 public:
  explicit KnnImputer(size_t k = 5) : k_(k) {}
  void Fit(const data::Table& table) override;
  data::Value Impute(const data::Table& table, size_t row,
                     size_t col) const override;

 private:
  size_t k_;
  TableEncoder encoder_;
  std::vector<std::vector<float>> encoded_rows_;
  std::vector<size_t> row_ids_;
};

struct DaeImputerConfig {
  size_t hidden_dim = 16;
  size_t epochs = 60;
  float corruption = 0.25f;
  float learning_rate = 1e-2f;
  uint64_t seed = 42;

  // ---- Trainer runtime knobs (defaults reproduce seed behaviour). ----
  size_t batch_size = 16;
  /// Fraction of complete rows held out for validation (0 disables).
  /// Validation reconstructs uncorrupted, so the monitored loss is
  /// deterministic.
  double validation_fraction = 0.0;
  /// Early stopping patience in epochs (0 disables, best weights kept).
  size_t early_stopping_patience = 0;
  double early_stopping_min_delta = 0.0;
  /// Per-epoch telemetry: {epoch, train_loss, val_loss, lr, wall_ms}.
  nn::EpochCallback epoch_callback;
};

/// MIDA-style multiple imputation with a denoising autoencoder [25]
/// (Sec. 5.3): train a DAE on encoded rows with stochastic corruption;
/// at imputation time the row (nulls zeroed) is reconstructed and the
/// missing column decoded from the reconstruction. Captures local
/// (tuple-level) and global (relation-level) patterns jointly.
class DaeImputer : public Imputer {
 public:
  explicit DaeImputer(const DaeImputerConfig& config = {})
      : config_(config) {}
  void Fit(const data::Table& table) override;
  data::Value Impute(const data::Table& table, size_t row,
                     size_t col) const override;

 private:
  DaeImputerConfig config_;
  TableEncoder encoder_;
  std::unique_ptr<Rng> rng_;
  std::unique_ptr<nn::Autoencoder> dae_;
};

}  // namespace autodc::cleaning

#endif  // AUTODC_CLEANING_IMPUTATION_H_
