#include "src/cleaning/encoding.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/parallel.h"

namespace autodc::cleaning {

namespace {

/// Numeric column moments via a typed chunk scan. Accumulation order is
/// element order within each chunk, chunks in order — identical to the
/// row-major loop, so the statistics are bit-for-bit unchanged.
void NumericStatsColumnar(const data::Table& table, size_t c, double* sum,
                          double* sq, size_t* n) {
  bool ints = table.storage_type(c) == data::ValueType::kInt;
  for (size_t k = 0; k < table.num_chunks(); ++k) {
    data::TypedChunkRef ch = table.column_chunk(c, k);
    for (size_t i = 0; i < ch.n; ++i) {
      if (ch.is_null(i)) continue;
      double v = ints ? static_cast<double>(ch.i64[i]) : ch.f64[i];
      *sum += v;
      *sq += v * v;
      ++*n;
    }
  }
}

/// Categorical counts via dictionary codes: one array slot per distinct
/// string instead of a map probe per row.
void CategoryCountsColumnar(const data::Table& table, size_t c,
                            std::map<std::string, size_t>* counts) {
  const data::StringDict& dict = table.dict(c);
  std::vector<size_t> per_code(dict.size(), 0);
  for (size_t k = 0; k < table.num_chunks(); ++k) {
    data::TypedChunkRef ch = table.column_chunk(c, k);
    for (size_t i = 0; i < ch.n; ++i) {
      if (!ch.is_null(i)) ++per_code[ch.codes[i]];
    }
  }
  for (uint32_t code = 0; code < per_code.size(); ++code) {
    if (per_code[code] > 0) {
      (*counts)[std::string(dict.str(code))] = per_code[code];
    }
  }
}

}  // namespace

void TableEncoder::Fit(const data::Table& table, const Options& options) {
  size_t ncols = table.num_columns();
  numeric_.assign(ncols, false);
  offsets_.assign(ncols, 0);
  widths_.assign(ncols, 0);
  stats_.assign(ncols, ColumnStats{});
  schema_ = table.schema();
  dim_ = 0;

  // Columns are independent, so the per-column scans run on the thread
  // pool. Parallelism is across columns only — within a column the
  // accumulation order is fixed — so results do not depend on the
  // thread count.
  std::vector<ColumnStats> fitted(ncols);
  std::vector<size_t> width(ncols, 0);
  ParallelFor(0, ncols, 1, [&](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      data::ValueType ty = table.schema().column(c).type;
      bool numeric =
          ty == data::ValueType::kInt || ty == data::ValueType::kDouble;
      ColumnStats& st = fitted[c];
      bool scannable = table.ChunkScannable() && table.ColumnUniform(c);
      if (numeric) {
        double sum = 0.0, sq = 0.0;
        size_t n = 0;
        if (scannable && (table.storage_type(c) == data::ValueType::kInt ||
                          table.storage_type(c) == data::ValueType::kDouble)) {
          NumericStatsColumnar(table, c, &sum, &sq, &n);
        } else {
          for (size_t r = 0; r < table.num_rows(); ++r) {
            bool ok = false;
            double v = table.at(r, c).ToNumeric(&ok);
            if (!ok) continue;
            sum += v;
            sq += v * v;
            ++n;
          }
        }
        if (n > 0) {
          st.mean = sum / static_cast<double>(n);
          double var = sq / static_cast<double>(n) - st.mean * st.mean;
          st.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
        }
        width[c] = 1;
      } else {
        // Most frequent values get dedicated one-hot slots.
        std::map<std::string, size_t> counts;
        if (scannable && table.storage_type(c) == data::ValueType::kString) {
          CategoryCountsColumnar(table, c, &counts);
        } else {
          for (size_t r = 0; r < table.num_rows(); ++r) {
            const data::Value v = table.at(r, c);
            if (!v.is_null()) counts[v.ToString()]++;
          }
        }
        std::vector<std::pair<std::string, size_t>> ranked(counts.begin(),
                                                           counts.end());
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) {
                    if (a.second != b.second) return a.second > b.second;
                    return a.first < b.first;
                  });
        size_t k = std::min(options.max_categories, ranked.size());
        for (size_t i = 0; i < k; ++i) {
          st.category_index.emplace(ranked[i].first, i);
          st.categories.push_back(ranked[i].first);
        }
        width[c] = k + 1;  // +1 "other" slot
      }
    }
  });

  for (size_t c = 0; c < ncols; ++c) {
    numeric_[c] = table.schema().column(c).type == data::ValueType::kInt ||
                  table.schema().column(c).type == data::ValueType::kDouble;
    offsets_[c] = dim_;
    widths_[c] = width[c];
    stats_[c] = std::move(fitted[c]);
    dim_ += widths_[c];
  }
}

std::vector<float> TableEncoder::EncodeRow(data::RowView row) const {
  std::vector<float> out(dim_, 0.0f);
  for (size_t c = 0; c < widths_.size(); ++c) {
    const data::Value v = row[c];
    if (v.is_null()) continue;
    if (numeric_[c]) {
      bool ok = false;
      double x = v.ToNumeric(&ok);
      if (ok) {
        out[offsets_[c]] = static_cast<float>(
            (x - stats_[c].mean) / stats_[c].stddev);
      }
    } else {
      auto it = stats_[c].category_index.find(v.ToString());
      size_t slot = it != stats_[c].category_index.end()
                        ? it->second
                        : widths_[c] - 1;  // "other"
      out[offsets_[c] + slot] = 1.0f;
    }
  }
  return out;
}

std::vector<std::vector<float>> TableEncoder::EncodeAll(
    const data::Table& table) const {
  size_t n = table.num_rows();
  size_t ncols = widths_.size();
  std::vector<std::vector<float>> out(n);
  if (n == 0) return out;
  if (!table.ChunkScannable()) {
    ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
      for (size_t r = lo; r < hi; ++r) out[r] = EncodeRow(table.row(r));
    });
    return out;
  }

  // Column-at-a-time batch path: each string column resolves its
  // dictionary codes to one-hot slots ONCE, then every row's encoding is
  // a couple of array reads per column. Bitwise-identical to EncodeRow.
  std::vector<std::vector<uint32_t>> code_slot(ncols);
  for (size_t c = 0; c < ncols; ++c) {
    if (!numeric_[c] && table.ColumnUniform(c) &&
        table.storage_type(c) == data::ValueType::kString) {
      const data::StringDict& dict = table.dict(c);
      code_slot[c].resize(dict.size());
      for (uint32_t code = 0; code < dict.size(); ++code) {
        auto it = stats_[c].category_index.find(std::string(dict.str(code)));
        code_slot[c][code] =
            it != stats_[c].category_index.end()
                ? static_cast<uint32_t>(it->second)
                : static_cast<uint32_t>(widths_[c] - 1);  // "other"
      }
    }
  }

  ParallelFor(0, n, 256, [&](size_t lo, size_t hi) {
    for (size_t r = lo; r < hi; ++r) out[r].assign(dim_, 0.0f);
  });
  for (size_t c = 0; c < ncols; ++c) {
    bool fast_numeric = numeric_[c] && table.ColumnUniform(c) &&
                        (table.storage_type(c) == data::ValueType::kInt ||
                         table.storage_type(c) == data::ValueType::kDouble);
    bool fast_string = !code_slot[c].empty();
    if (!fast_numeric && !fast_string) {
      ParallelFor(0, n, 64, [&](size_t lo, size_t hi) {
        for (size_t r = lo; r < hi; ++r) {
          const data::Value v = table.at(r, c);
          if (v.is_null()) continue;
          if (numeric_[c]) {
            bool ok = false;
            double x = v.ToNumeric(&ok);
            if (ok) {
              out[r][offsets_[c]] = static_cast<float>(
                  (x - stats_[c].mean) / stats_[c].stddev);
            }
          } else {
            auto it = stats_[c].category_index.find(v.ToString());
            size_t slot = it != stats_[c].category_index.end()
                              ? it->second
                              : widths_[c] - 1;
            out[r][offsets_[c] + slot] = 1.0f;
          }
        }
      });
      continue;
    }
    bool ints = table.storage_type(c) == data::ValueType::kInt;
    ParallelFor(0, table.num_chunks(), 1, [&](size_t klo, size_t khi) {
      for (size_t k = klo; k < khi; ++k) {
        data::TypedChunkRef ch = table.column_chunk(c, k);
        for (size_t i = 0; i < ch.n; ++i) {
          if (ch.is_null(i)) continue;
          size_t r = ch.base + i;
          if (fast_numeric) {
            double x = ints ? static_cast<double>(ch.i64[i]) : ch.f64[i];
            out[r][offsets_[c]] = static_cast<float>(
                (x - stats_[c].mean) / stats_[c].stddev);
          } else {
            out[r][offsets_[c] + code_slot[c][ch.codes[i]]] = 1.0f;
          }
        }
      }
    });
  }
  return out;
}

data::Value TableEncoder::DecodeColumn(const std::vector<float>& encoded,
                                       size_t c) const {
  if (numeric_[c]) {
    double x = static_cast<double>(encoded[offsets_[c]]) * stats_[c].stddev +
               stats_[c].mean;
    if (schema_.column(c).type == data::ValueType::kInt) {
      return data::Value(static_cast<int64_t>(std::llround(x)));
    }
    return data::Value(x);
  }
  size_t best = 0;
  float best_v = encoded[offsets_[c]];
  for (size_t i = 1; i < widths_[c]; ++i) {
    if (encoded[offsets_[c] + i] > best_v) {
      best_v = encoded[offsets_[c] + i];
      best = i;
    }
  }
  if (best < stats_[c].categories.size()) {
    return data::Value(stats_[c].categories[best]);
  }
  return data::Value::Null();  // "other" slot decodes to null
}

}  // namespace autodc::cleaning
