#include "src/cleaning/encoding.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace autodc::cleaning {

void TableEncoder::Fit(const data::Table& table, const Options& options) {
  size_t ncols = table.num_columns();
  numeric_.assign(ncols, false);
  offsets_.assign(ncols, 0);
  widths_.assign(ncols, 0);
  stats_.assign(ncols, ColumnStats{});
  schema_ = table.schema();
  dim_ = 0;

  for (size_t c = 0; c < ncols; ++c) {
    data::ValueType ty = table.schema().column(c).type;
    bool numeric =
        ty == data::ValueType::kInt || ty == data::ValueType::kDouble;
    numeric_[c] = numeric;
    offsets_[c] = dim_;
    ColumnStats& st = stats_[c];
    if (numeric) {
      double sum = 0.0, sq = 0.0;
      size_t n = 0;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        bool ok = false;
        double v = table.at(r, c).ToNumeric(&ok);
        if (!ok) continue;
        sum += v;
        sq += v * v;
        ++n;
      }
      if (n > 0) {
        st.mean = sum / static_cast<double>(n);
        double var = sq / static_cast<double>(n) - st.mean * st.mean;
        st.stddev = var > 1e-12 ? std::sqrt(var) : 1.0;
      }
      widths_[c] = 1;
    } else {
      // Most frequent values get dedicated one-hot slots.
      std::map<std::string, size_t> counts;
      for (size_t r = 0; r < table.num_rows(); ++r) {
        const data::Value& v = table.at(r, c);
        if (!v.is_null()) counts[v.ToString()]++;
      }
      std::vector<std::pair<std::string, size_t>> ranked(counts.begin(),
                                                         counts.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      size_t k = std::min(options.max_categories, ranked.size());
      for (size_t i = 0; i < k; ++i) {
        st.category_index.emplace(ranked[i].first, i);
        st.categories.push_back(ranked[i].first);
      }
      widths_[c] = k + 1;  // +1 "other" slot
    }
    dim_ += widths_[c];
  }
}

std::vector<float> TableEncoder::EncodeRow(const data::Row& row) const {
  std::vector<float> out(dim_, 0.0f);
  for (size_t c = 0; c < widths_.size(); ++c) {
    const data::Value& v = row[c];
    if (v.is_null()) continue;
    if (numeric_[c]) {
      bool ok = false;
      double x = v.ToNumeric(&ok);
      if (ok) {
        out[offsets_[c]] = static_cast<float>(
            (x - stats_[c].mean) / stats_[c].stddev);
      }
    } else {
      auto it = stats_[c].category_index.find(v.ToString());
      size_t slot = it != stats_[c].category_index.end()
                        ? it->second
                        : widths_[c] - 1;  // "other"
      out[offsets_[c] + slot] = 1.0f;
    }
  }
  return out;
}

data::Value TableEncoder::DecodeColumn(const std::vector<float>& encoded,
                                       size_t c) const {
  if (numeric_[c]) {
    double x = static_cast<double>(encoded[offsets_[c]]) * stats_[c].stddev +
               stats_[c].mean;
    if (schema_.column(c).type == data::ValueType::kInt) {
      return data::Value(static_cast<int64_t>(std::llround(x)));
    }
    return data::Value(x);
  }
  size_t best = 0;
  float best_v = encoded[offsets_[c]];
  for (size_t i = 1; i < widths_[c]; ++i) {
    if (encoded[offsets_[c] + i] > best_v) {
      best_v = encoded[offsets_[c] + i];
      best = i;
    }
  }
  if (best < stats_[c].categories.size()) {
    return data::Value(stats_[c].categories[best]);
  }
  return data::Value::Null();  // "other" slot decodes to null
}

}  // namespace autodc::cleaning
