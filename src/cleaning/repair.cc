#include "src/cleaning/repair.h"

#include <map>
#include <unordered_map>

namespace autodc::cleaning {

std::vector<CellRepair> RepairFdViolations(
    data::Table* table, const std::vector<data::FunctionalDependency>& fds) {
  std::vector<CellRepair> repairs;
  for (const data::FunctionalDependency& fd : fds) {
    // Group rows by LHS rendering (nulls never group).
    std::unordered_map<std::string, std::vector<size_t>> groups;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      bool has_null = false;
      std::string key;
      for (size_t c : fd.lhs) {
        const data::Value& v = table->at(r, c);
        if (v.is_null()) {
          has_null = true;
          break;
        }
        key += "\x01" + v.ToString();
      }
      if (!has_null) groups[key].push_back(r);
    }
    for (const auto& [key, rows] : groups) {
      (void)key;
      if (rows.size() < 2) continue;
      // Majority RHS value; ties break to the first-seen value so the
      // repair is deterministic.
      std::map<std::string, size_t> counts;
      std::map<std::string, data::Value> values;
      for (size_t r : rows) {
        const data::Value& v = table->at(r, fd.rhs);
        std::string s = v.ToString();
        counts[s]++;
        values.emplace(s, v);
      }
      if (counts.size() < 2) continue;  // already consistent
      std::string best;
      size_t best_n = 0;
      for (const auto& [s, n] : counts) {
        if (n > best_n) {
          best_n = n;
          best = s;
        }
      }
      const data::Value& target = values.at(best);
      for (size_t r : rows) {
        if (table->at(r, fd.rhs) == target) continue;
        repairs.push_back(
            CellRepair{r, fd.rhs, table->at(r, fd.rhs), target});
        table->Set(r, fd.rhs, target);
      }
    }
  }
  return repairs;
}

data::Row ConsolidateCluster(const data::Table& table,
                             const std::vector<size_t>& cluster_rows) {
  data::Row out(table.num_columns(), data::Value::Null());
  for (size_t c = 0; c < table.num_columns(); ++c) {
    std::map<std::string, size_t> counts;
    std::map<std::string, data::Value> values;
    for (size_t r : cluster_rows) {
      const data::Value& v = table.at(r, c);
      if (v.is_null()) continue;
      std::string s = v.ToString();
      counts[s]++;
      values.emplace(s, v);
    }
    size_t best_n = 0;
    std::string best;
    for (const auto& [s, n] : counts) {
      // Majority wins; ties prefer the longer rendering ("John Smith"
      // over "J Smith").
      if (n > best_n || (n == best_n && s.size() > best.size())) {
        best_n = n;
        best = s;
      }
    }
    if (best_n > 0) out[c] = values.at(best);
  }
  return out;
}

data::Table FuseClusters(const data::Table& table,
                         const std::vector<std::vector<size_t>>& clusters) {
  data::Table out(table.schema(), table.name() + "_fused");
  for (const std::vector<size_t>& cluster : clusters) {
    if (cluster.empty()) continue;
    out.AppendRow(ConsolidateCluster(table, cluster));
  }
  return out;
}

}  // namespace autodc::cleaning
