#include "src/ann/hnsw.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <queue>

#include "src/common/env.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::ann {

namespace {

/// Epoch-stamped visited set, reused across queries per thread so a
/// search costs no allocation or memset in steady state. Shared by all
/// indexes on a thread (sized to the largest seen); stamps from one
/// query can never leak into another because the epoch advances first.
struct VisitedSet {
  std::vector<uint32_t> stamp;
  uint32_t epoch = 0;

  void Begin(size_t n) {
    if (stamp.size() < n) stamp.resize(n, 0);
    if (++epoch == 0) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      epoch = 1;
    }
  }
  bool TestAndSet(uint32_t id) {
    if (stamp[id] == epoch) return true;
    stamp[id] = epoch;
    return false;
  }
};

thread_local VisitedSet t_visited;

// Per-thread query-conversion scratch for quantized indexes: a search
// quantizes its query exactly once into these, then every distance
// evaluation runs on the converted form.
thread_local std::vector<std::int8_t> t_query_q8;
thread_local std::vector<std::uint16_t> t_query_bf16;

}  // namespace

HnswConfig ConfigFromEnv() {
  HnswConfig config;
  config.M = EnvSizeT("AUTODC_ANN_M", config.M, 2, 256);
  config.ef_construction = EnvSizeT("AUTODC_ANN_EF_CONSTRUCTION",
                                    config.ef_construction, 1, 1 << 20);
  config.ef_search =
      EnvSizeT("AUTODC_ANN_EF_SEARCH", config.ef_search, 1, 1 << 20);
  config.quant = nn::kernels::QuantFromEnv();
  return config;
}

bool AnnEnvEnabled() { return EnvFlag("AUTODC_ANN", false); }

HnswIndex::HnswIndex(size_t dim, const HnswConfig& config)
    : dim_(dim), config_(config) {
  if (config_.M < 2) config_.M = 2;
  if (config_.ef_construction < config_.M) config_.ef_construction = config_.M;
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.sequential_prefix == 0) config_.sequential_prefix = 1;
  level_mult_ = 1.0 / std::log(static_cast<double>(config_.M));
}

int HnswIndex::LevelFor(size_t id) const {
  // The level is a pure function of (seed, id): golden-ratio mixing
  // into an Rng draw, so bulk and incremental builds — and any insert
  // interleaving — assign identical levels.
  Rng rng(config_.seed ^ ((id + 1) * 0x9E3779B97F4A7C15ULL));
  double u = rng.Uniform();
  if (u < 1e-300) u = 1e-300;
  int level = static_cast<int>(-std::log(u) * level_mult_);
  return std::min(level, 30);
}

HnswIndex::QueryView HnswIndex::RowQuery(Id id) const {
  QueryView q;
  q.inv = inv_norms_[id];
  switch (config_.quant) {
    case nn::kernels::Quant::kFp32:
      q.f32 = Row(id);
      break;
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym:
      q.q8 = Q8Row(id);
      q.q8_params = q8_params_[id];
      q.q8_sum = q8_sums_[id];
      break;
    case nn::kernels::Quant::kBf16:
      q.bf16 = Bf16Row(id);
      break;
  }
  return q;
}

double HnswIndex::SimTo(const QueryView& q, Id id, size_t* evals) const {
  ++*evals;
  double dot;
  switch (config_.quant) {
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym:
      dot = nn::kernels::DequantDotD(
          nn::kernels::DotI8I32(q.q8, Q8Row(id), dim_), q.q8_params,
          q.q8_sum, q8_params_[id], q8_sums_[id], dim_);
      break;
    case nn::kernels::Quant::kBf16:
      dot = nn::kernels::DotBf16D(q.bf16, Bf16Row(id), dim_);
      break;
    case nn::kernels::Quant::kFp32:
    default:
      dot = nn::kernels::DotF32D(q.f32, Row(id), dim_);
      break;
  }
  return dot * q.inv * inv_norms_[id];
}

double HnswIndex::SimBetween(Id a, Id b, size_t* evals) const {
  ++*evals;
  double dot;
  switch (config_.quant) {
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym:
      dot = nn::kernels::DequantDotD(
          nn::kernels::DotI8I32(Q8Row(a), Q8Row(b), dim_), q8_params_[a],
          q8_sums_[a], q8_params_[b], q8_sums_[b], dim_);
      break;
    case nn::kernels::Quant::kBf16:
      dot = nn::kernels::DotBf16D(Bf16Row(a), Bf16Row(b), dim_);
      break;
    case nn::kernels::Quant::kFp32:
    default:
      dot = nn::kernels::DotF32D(Row(a), Row(b), dim_);
      break;
  }
  return dot * inv_norms_[a] * inv_norms_[b];
}

HnswIndex::Id HnswIndex::AppendRow(const float* v) {
  Id id = static_cast<Id>(size_);
  double norm_sq;
  switch (config_.quant) {
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym: {
      nn::kernels::Int8Params params = nn::kernels::ComputeInt8Params(
          v, dim_, config_.quant == nn::kernels::Quant::kInt8Sym);
      q8_data_.resize(q8_data_.size() + dim_);
      std::int8_t* row = q8_data_.data() + size_t(id) * dim_;
      nn::kernels::QuantizeI8F32(v, dim_, params, row);
      q8_params_.push_back(params);
      q8_sums_.push_back(nn::kernels::SumI8I32(row, dim_));
      // Norms come from the dequantized representation so graph sims
      // use the same geometry the stored rows actually encode.
      scratch_.resize(dim_);
      nn::kernels::DequantizeI8F32(row, dim_, params, scratch_.data());
      norm_sq = nn::kernels::SumSqF32(scratch_.data(), dim_);
      break;
    }
    case nn::kernels::Quant::kBf16: {
      bf16_data_.resize(bf16_data_.size() + dim_);
      std::uint16_t* row = bf16_data_.data() + size_t(id) * dim_;
      nn::kernels::F32ToBf16(v, dim_, row);
      scratch_.resize(dim_);
      nn::kernels::Bf16ToF32(row, dim_, scratch_.data());
      norm_sq = nn::kernels::SumSqF32(scratch_.data(), dim_);
      break;
    }
    case nn::kernels::Quant::kFp32:
    default:
      data_.insert(data_.end(), v, v + dim_);
      norm_sq = nn::kernels::SumSqF32(v, dim_);
      break;
  }
  inv_norms_.push_back(norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0);
  int level = LevelFor(id);
  levels_.push_back(level);
  links_.emplace_back(static_cast<size_t>(level) + 1);
  for (int lev = 0; lev <= level; ++lev) {
    links_.back()[lev].reserve((lev == 0 ? 2 * config_.M : config_.M) + 1);
  }
  ++size_;
  return id;
}

HnswIndex::Id HnswIndex::GreedyDescend(const QueryView& q, Id entry,
                                       int from_level, int to_level,
                                       size_t* evals) const {
  Id cur = entry;
  double best = SimTo(q, cur, evals);
  for (int lev = from_level; lev > to_level; --lev) {
    bool improved = true;
    while (improved) {
      improved = false;
      for (Id nb : links_[cur][lev]) {
        double s = SimTo(q, nb, evals);
        // Strictly increasing (sim, -id) keeps the walk terminating
        // and the chosen node independent of neighbour-list order.
        if (s > best || (s == best && nb < cur)) {
          best = s;
          cur = nb;
          improved = true;
        }
      }
    }
  }
  return cur;
}

std::vector<HnswIndex::Candidate> HnswIndex::SearchLayer(
    const QueryView& q, Id entry, int level, size_t ef,
    size_t* evals) const {
  auto closer = [](const Candidate& a, const Candidate& b) {
    return a.sim > b.sim || (a.sim == b.sim && a.id < b.id);
  };
  // Frontier: closest unexpanded first. Results: worst kept on top so
  // it pops first once the beam is full.
  auto frontier_order = [&](const Candidate& a, const Candidate& b) {
    return closer(b, a);
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      decltype(frontier_order)>
      frontier(frontier_order);
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(closer)>
      results(closer);

  VisitedSet& visited = t_visited;
  visited.Begin(size_);
  visited.TestAndSet(entry);
  Candidate first{SimTo(q, entry, evals), entry};
  frontier.push(first);
  results.push(first);

  while (!frontier.empty()) {
    Candidate c = frontier.top();
    if (results.size() >= ef && c.sim < results.top().sim) break;
    frontier.pop();
    for (Id nb : links_[c.id][level]) {
      if (visited.TestAndSet(nb)) continue;
      double s = SimTo(q, nb, evals);
      if (results.size() < ef || s > results.top().sim ||
          (s == results.top().sim && nb < results.top().id)) {
        frontier.push(Candidate{s, nb});
        results.push(Candidate{s, nb});
        if (results.size() > ef) results.pop();
      }
    }
  }

  std::vector<Candidate> out;
  out.reserve(results.size());
  while (!results.empty()) {
    out.push_back(results.top());
    results.pop();
  }
  std::reverse(out.begin(), out.end());  // best first
  return out;
}

std::vector<HnswIndex::Id> HnswIndex::SelectNeighbors(
    const std::vector<Candidate>& cands, size_t m, size_t* evals) const {
  std::vector<Id> out;
  if (cands.size() <= m) {
    out.reserve(cands.size());
    for (const Candidate& c : cands) out.push_back(c.id);
    return out;
  }
  out.reserve(m);
  // Diversity heuristic: keep a candidate only if it is closer to the
  // query than to every already-selected neighbour, so the kept edges
  // spread across directions instead of clustering. Pruned candidates
  // backfill remaining slots (hnswlib's keep-pruned-connections) to
  // hold degrees — and graph connectivity — up on clustered data.
  std::vector<Candidate> pruned;
  for (const Candidate& c : cands) {
    if (out.size() >= m) break;
    bool diverse = true;
    for (Id s : out) {
      if (SimBetween(c.id, s, evals) > c.sim) {
        diverse = false;
        break;
      }
    }
    if (diverse) {
      out.push_back(c.id);
    } else {
      pruned.push_back(c);
    }
  }
  for (size_t i = 0; i < pruned.size() && out.size() < m; ++i) {
    out.push_back(pruned[i].id);
  }
  return out;
}

HnswIndex::PendingLink HnswIndex::FindCandidates(Id id, size_t* evals) const {
  PendingLink pending;
  if (max_level_ < 0) return pending;  // first node: nothing to search
  QueryView q = RowQuery(id);
  int level = levels_[id];
  int top = std::min(level, max_level_);
  pending.per_level.resize(static_cast<size_t>(top) + 1);
  Id ep = entry_;
  if (max_level_ > level) {
    ep = GreedyDescend(q, entry_, max_level_, level, evals);
  }
  for (int lev = top; lev >= 0; --lev) {
    std::vector<Candidate> found =
        SearchLayer(q, ep, lev, config_.ef_construction, evals);
    ep = found.front().id;
    pending.per_level[static_cast<size_t>(lev)] = std::move(found);
  }
  return pending;
}

void HnswIndex::LinkNode(Id id, PendingLink&& pending, size_t* evals) {
  int level = levels_[id];
  if (max_level_ < 0) {
    entry_ = id;
    max_level_ = level;
    return;
  }
  for (int lev = static_cast<int>(pending.per_level.size()) - 1; lev >= 0;
       --lev) {
    std::vector<Candidate>& cands = pending.per_level[static_cast<size_t>(lev)];
    if (cands.empty()) continue;
    size_t m = lev == 0 ? 2 * config_.M : config_.M;
    std::vector<Id> neighbors = SelectNeighbors(cands, m, evals);
    links_[id][static_cast<size_t>(lev)] = neighbors;
    for (Id nb : neighbors) {
      std::vector<Id>& nb_links = links_[nb][static_cast<size_t>(lev)];
      nb_links.push_back(id);
      if (nb_links.size() <= m) continue;
      // Over-full neighbour: re-select its list with the same heuristic
      // over fresh similarities (best-first, deterministic tie-break).
      std::vector<Candidate> nb_cands;
      nb_cands.reserve(nb_links.size());
      for (Id other : nb_links) {
        nb_cands.push_back(Candidate{SimBetween(nb, other, evals), other});
      }
      std::sort(nb_cands.begin(), nb_cands.end(),
                [](const Candidate& a, const Candidate& b) {
                  return a.sim > b.sim || (a.sim == b.sim && a.id < b.id);
                });
      nb_links = SelectNeighbors(nb_cands, m, evals);
    }
  }
  if (level > max_level_) {
    entry_ = id;
    max_level_ = level;
  }
}

size_t HnswIndex::Add(const float* v) {
  size_t evals = 0;
  Id id = AppendRow(v);
  PendingLink pending = FindCandidates(id, &evals);
  LinkNode(id, std::move(pending), &evals);
  AUTODC_OBS_INC("ann.inserts");
  AUTODC_OBS_COUNT("ann.distance_evals", evals);
  return id;
}

void HnswIndex::Build(const std::vector<const float*>& rows) {
  AUTODC_OBS_SPAN(build_span, "ann.build");
  size_t start = size_;
  for (const float* v : rows) AppendRow(v);
  size_t end = size_;

  // Sequential prefix: grow the graph one node at a time until it is
  // connected enough for frozen-graph batch searches to find good
  // neighbourhoods.
  size_t i = start;
  size_t evals = 0;
  for (; i < end && i < config_.sequential_prefix; ++i) {
    Id id = static_cast<Id>(i);
    LinkNode(id, FindCandidates(id, &evals), &evals);
  }

  // Batched phase. Candidate search only reads the pre-batch graph, so
  // it parallelizes freely and results are independent of chunking;
  // linking then runs serially in id order. Batch boundaries are fixed
  // by config, never by thread count.
  while (i < end) {
    size_t batch_end = std::min(i + config_.batch_size, end);
    std::vector<PendingLink> found(batch_end - i);
    ParallelFor(i, batch_end, 1, [&](size_t b, size_t e) {
      size_t local_evals = 0;
      for (size_t j = b; j < e; ++j) {
        found[j - i] = FindCandidates(static_cast<Id>(j), &local_evals);
      }
      AUTODC_OBS_COUNT("ann.distance_evals", local_evals);
    });
    for (size_t j = i; j < batch_end; ++j) {
      LinkNode(static_cast<Id>(j), std::move(found[j - i]), &evals);
    }
    i = batch_end;
  }
  AUTODC_OBS_COUNT("ann.inserts", end - start);
  AUTODC_OBS_COUNT("ann.distance_evals", evals);
  PublishStats();
}

std::vector<ScoredId> HnswIndex::Search(const float* query, size_t k,
                                        size_t ef) const {
  std::vector<ScoredId> out;
  if (size_ == 0 || k == 0) return out;
#ifndef AUTODC_DISABLE_OBS
  auto t0 = std::chrono::steady_clock::now();
#endif
  size_t evals = 0;
  double norm_sq = nn::kernels::SumSqF32(query, dim_);
  QueryView q;
  q.inv = norm_sq > 0.0 ? 1.0 / std::sqrt(norm_sq) : 0.0;
  switch (config_.quant) {
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym: {
      // Quantize the query once; every graph hop then runs the exact
      // integer dot against stored rows.
      t_query_q8.resize(dim_);
      q.q8_params = nn::kernels::ComputeInt8Params(
          query, dim_, config_.quant == nn::kernels::Quant::kInt8Sym);
      nn::kernels::QuantizeI8F32(query, dim_, q.q8_params,
                                 t_query_q8.data());
      q.q8 = t_query_q8.data();
      q.q8_sum = nn::kernels::SumI8I32(t_query_q8.data(), dim_);
      break;
    }
    case nn::kernels::Quant::kBf16:
      t_query_bf16.resize(dim_);
      nn::kernels::F32ToBf16(query, dim_, t_query_bf16.data());
      q.bf16 = t_query_bf16.data();
      break;
    case nn::kernels::Quant::kFp32:
    default:
      q.f32 = query;
      break;
  }
  size_t beam = std::max(ef != 0 ? ef : config_.ef_search, k);
  Id ep = entry_;
  if (max_level_ > 0) {
    ep = GreedyDescend(q, entry_, max_level_, 0, &evals);
  }
  std::vector<Candidate> found = SearchLayer(q, ep, 0, beam, &evals);
  size_t take = std::min(k, found.size());
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredId{found[i].id, found[i].sim});
  }
  AUTODC_OBS_INC("ann.searches");
  AUTODC_OBS_COUNT("ann.distance_evals", evals);
#ifndef AUTODC_DISABLE_OBS
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  AUTODC_OBS_HIST("ann.search_ms", elapsed_ms);
#endif
  return out;
}

size_t HnswIndex::num_edges() const {
  size_t edges = 0;
  for (const auto& node : links_) {
    for (const auto& level : node) edges += level.size();
  }
  return edges;
}

size_t HnswIndex::resident_bytes() const {
  size_t bytes = data_.capacity() * sizeof(float) +
                 q8_data_.capacity() * sizeof(std::int8_t) +
                 q8_params_.capacity() * sizeof(nn::kernels::Int8Params) +
                 q8_sums_.capacity() * sizeof(std::int32_t) +
                 bf16_data_.capacity() * sizeof(std::uint16_t) +
                 inv_norms_.capacity() * sizeof(double) +
                 levels_.capacity() * sizeof(int);
  bytes += links_.capacity() * sizeof(std::vector<std::vector<Id>>);
  for (const auto& node : links_) {
    bytes += node.capacity() * sizeof(std::vector<Id>);
    for (const auto& level : node) bytes += level.capacity() * sizeof(Id);
  }
  return bytes;
}

void HnswIndex::PublishStats() const {
  AUTODC_OBS_GAUGE_SET("ann.nodes", static_cast<double>(size_));
  AUTODC_OBS_GAUGE_SET("ann.edges", static_cast<double>(num_edges()));
  AUTODC_OBS_GAUGE_SET("ann.max_level", static_cast<double>(max_level_));
  AUTODC_OBS_GAUGE_SET("ann.bytes", static_cast<double>(resident_bytes()));
}

}  // namespace autodc::ann
