#ifndef AUTODC_ANN_HNSW_H_
#define AUTODC_ANN_HNSW_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/nn/kernels.h"

// Sub-linear nearest-neighbour retrieval (ROADMAP item 3): an HNSW
// graph index over dense float vectors, scored by cosine similarity
// through the SIMD dot kernels with per-row inverse norms cached at
// insert time. Every retrieval-shaped consumer (LSH/kNN blocking,
// semantic schema matching, table search, analogy/synthesis lookup)
// can route through this instead of the O(n·dim) exact scan.
//
// Determinism contract: a node's level depends only on (seed, node id),
// never on insertion order or thread count. Bulk builds insert a
// sequential prefix one-by-one, then proceed in fixed-size batches:
// each batch searches the FROZEN pre-batch graph for candidate
// neighbours in parallel (pure reads), and links serially in id order.
// Chunking never feeds back into results, so an index built from the
// same (vectors, config) is identical for any thread count, and
// searches over it are reproducible bit-for-bit.
namespace autodc::ann {

struct HnswConfig {
  /// Max out-degree per node on levels > 0; level 0 allows 2*M.
  size_t M = 16;
  /// Beam width while inserting (recall/build-time trade-off).
  size_t ef_construction = 200;
  /// Default beam width while searching; raised per query when the
  /// caller asks for more than ef_search results.
  size_t ef_search = 64;
  /// Level-assignment seed (mixed with the node id, see LevelFor).
  uint64_t seed = 42;
  /// Bulk-build batch: candidate search parallelizes within a batch.
  /// Fixed independently of thread count so builds are reproducible.
  size_t batch_size = 256;
  /// Nodes inserted strictly one-by-one before batching starts, so
  /// early batches search a well-connected graph.
  size_t sequential_prefix = 1024;
  /// Row storage precision (DESIGN.md §11). Below fp32 every graph
  /// distance evaluation runs on the quantized rows (int8: exact
  /// integer dot + cached per-row scale/zero-point/sum; bf16: float dot
  /// on rounded values); similarities returned by Search are then the
  /// quantized-row cosines, and retrieval-quality consumers re-score
  /// their top-k in fp32 (EmbeddingStore does this automatically).
  nn::kernels::Quant quant = nn::kernels::Quant::kFp32;
};

/// HnswConfig with M / ef_construction / ef_search overridden by
/// AUTODC_ANN_M / AUTODC_ANN_EF_CONSTRUCTION / AUTODC_ANN_EF_SEARCH
/// (range-checked; out-of-range values warn and keep the default, per
/// the env.h contract), and quant by AUTODC_EMB_QUANT.
HnswConfig ConfigFromEnv();

/// True when AUTODC_ANN requests the index path (flag semantics of
/// EnvFlag; unset/empty means off — exact scans stay the default).
bool AnnEnvEnabled();

/// One search hit: row id in insertion order plus cosine similarity.
struct ScoredId {
  size_t id = 0;
  double similarity = 0.0;
};

class HnswIndex {
 public:
  explicit HnswIndex(size_t dim, const HnswConfig& config = {});

  /// Incremental insert (the streaming-arc path): links one vector of
  /// dim() floats into the graph and returns its id. Not thread-safe;
  /// callers serialize Add against Add/Build/Search.
  size_t Add(const float* v);

  /// Bulk append: inserts every row (each dim() floats) with the
  /// batched-parallel scheme described above. Equivalent to calling
  /// Add per row when the graph stays within sequential_prefix.
  void Build(const std::vector<const float*>& rows);

  /// Top-k by cosine similarity, best first (ties broken by lower id).
  /// `ef` overrides config().ef_search when nonzero; the effective beam
  /// is always at least k. Read-only and safe to call concurrently
  /// from many threads once construction is done.
  std::vector<ScoredId> Search(const float* query, size_t k,
                               size_t ef = 0) const;

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  const HnswConfig& config() const { return config_; }
  /// Highest populated level (-1 while empty).
  int max_level() const { return max_level_; }
  /// Directed edge count over all levels (O(n) walk; used by gauges).
  size_t num_edges() const;
  /// Heap bytes held by row storage + graph structure (O(n) walk; the
  /// memory half of the quantization bench gate).
  size_t resident_bytes() const;

  /// Publishes ann.nodes / ann.edges / ann.max_level / ann.bytes gauges.
  void PublishStats() const;

 private:
  using Id = uint32_t;

  /// (similarity, id) with a total order: higher similarity first,
  /// lower id on ties — the tie-break that makes every heap and sort
  /// in the index deterministic.
  struct Candidate {
    double sim;
    Id id;
  };

  /// Search candidates found for one node per level, computed against
  /// the frozen graph during a bulk-build batch.
  struct PendingLink {
    std::vector<std::vector<Candidate>> per_level;  // [level] best-first
  };

  /// A query in whatever representation the index's storage mode
  /// scores against, plus the fp32 inverse norm. Built once per search
  /// (quantizing the query a single time) or borrowed from a stored
  /// row during construction.
  struct QueryView {
    const float* f32 = nullptr;
    const std::int8_t* q8 = nullptr;
    nn::kernels::Int8Params q8_params;
    std::int32_t q8_sum = 0;
    const std::uint16_t* bf16 = nullptr;
    double inv = 0.0;  // 1/|q| (0 for zero-norm queries)
  };

  int LevelFor(size_t id) const;
  const float* Row(Id id) const { return data_.data() + size_t(id) * dim_; }
  const std::int8_t* Q8Row(Id id) const {
    return q8_data_.data() + size_t(id) * dim_;
  }
  const std::uint16_t* Bf16Row(Id id) const {
    return bf16_data_.data() + size_t(id) * dim_;
  }
  /// QueryView borrowing stored row `id` (cached params, no conversion).
  QueryView RowQuery(Id id) const;
  double SimTo(const QueryView& q, Id id, size_t* evals) const;
  double SimBetween(Id a, Id b, size_t* evals) const;

  /// Appends the raw vector (data in the configured precision, inverse
  /// norm of the stored representation, level, empty links).
  Id AppendRow(const float* v);
  /// Greedy single-entry descent from `from_level` down to just above
  /// `to_level`.
  Id GreedyDescend(const QueryView& q, Id entry, int from_level,
                   int to_level, size_t* evals) const;
  /// Beam search at one level; returns up to ef candidates, best first.
  std::vector<Candidate> SearchLayer(const QueryView& q, Id entry, int level,
                                     size_t ef, size_t* evals) const;
  /// The select-neighbours diversity heuristic (HNSW Algorithm 4), with
  /// pruned-candidate backfill to keep degrees full.
  std::vector<Id> SelectNeighbors(const std::vector<Candidate>& cands,
                                  size_t m, size_t* evals) const;
  /// Candidate search phase of one insert against the current graph
  /// (read-only; what bulk-build batches run in parallel).
  PendingLink FindCandidates(Id id, size_t* evals) const;
  /// Link phase: wires `id` into the graph from its candidate lists,
  /// prunes over-full neighbours, and updates the entry point.
  void LinkNode(Id id, PendingLink&& pending, size_t* evals);

  size_t dim_;
  HnswConfig config_;
  double level_mult_;  // 1 / ln(M)
  size_t size_ = 0;

  // Row storage: exactly one of data_ / q8_data_ / bf16_data_ is
  // populated, per config_.quant.
  std::vector<float> data_;            // fp32: size_ * dim_, row-major
  std::vector<std::int8_t> q8_data_;   // int8: size_ * dim_, row-major
  std::vector<nn::kernels::Int8Params> q8_params_;  // int8: per row
  std::vector<std::int32_t> q8_sums_;  // int8: per-row element sums
  std::vector<std::uint16_t> bf16_data_;  // bf16: size_ * dim_
  std::vector<float> scratch_;     // serial-phase dequant scratch
  std::vector<double> inv_norms_;  // 1/|v| of the STORED representation
  std::vector<int> levels_;
  /// links_[node][level] -> neighbour ids (level 0 capped at 2M, else M).
  std::vector<std::vector<std::vector<Id>>> links_;
  Id entry_ = 0;
  int max_level_ = -1;
};

}  // namespace autodc::ann

#endif  // AUTODC_ANN_HNSW_H_
