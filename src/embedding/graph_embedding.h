#ifndef AUTODC_EMBEDDING_GRAPH_EMBEDDING_H_
#define AUTODC_EMBEDDING_GRAPH_EMBEDDING_H_

#include <vector>

#include "src/data/table_graph.h"
#include "src/embedding/embedding_store.h"
#include "src/embedding/sgns.h"

namespace autodc::embedding {

/// Parameters for weighted random walks over the heterogeneous table
/// graph of Figure 4.
struct GraphEmbeddingConfig {
  SgnsConfig sgns;
  size_t walks_per_node = 10;
  size_t walk_length = 12;
  /// Multiplier applied to FD edges when sampling the next step: the
  /// paper's point is that integrity constraints are strong semantic
  /// hints, so walks should prefer them.
  double fd_edge_boost = 2.0;
  uint64_t seed = 42;
};

/// Generates `walks_per_node` weighted random walks from every node;
/// next-step probabilities are proportional to edge weight, with FD edges
/// boosted by `fd_edge_boost`. Dead-end nodes produce length-1 walks.
std::vector<std::vector<size_t>> GenerateWalks(
    const data::TableGraph& graph, const GraphEmbeddingConfig& config);

/// DeepWalk-style node embeddings: random walks become "sentences" and
/// SGNS learns node vectors. Keys in the returned store are
/// "<column_name>:<value>" labels (schema needed for naming).
EmbeddingStore TrainTableGraphEmbeddings(const data::TableGraph& graph,
                                         const data::Schema& schema,
                                         const GraphEmbeddingConfig& config);

/// Key helper matching TrainTableGraphEmbeddings' naming scheme.
std::string GraphNodeKey(const data::Schema& schema, size_t column,
                         const std::string& value);

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_GRAPH_EMBEDDING_H_
