#include "src/embedding/sgns.h"

#include <algorithm>
#include <cmath>

#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace autodc::embedding {

namespace {
constexpr size_t kNegativeTableSize = 1 << 17;

inline float FastSigmoid(float x) {
  if (x > 8.0f) return 1.0f;
  if (x < -8.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}
}  // namespace

SgnsModel::SgnsModel(size_t vocab_size, const SgnsConfig& config)
    : config_(config), rng_(config.seed), vocab_size_(vocab_size) {
  in_.assign(vocab_size * config.dim, 0.0f);
  out_.assign(vocab_size * config.dim, 0.0f);
  float scale = 0.5f / static_cast<float>(config.dim);
  // Same RNG consumption order as the old per-token init loop.
  for (size_t i = 0; i < in_.size(); ++i) {
    in_[i] = static_cast<float>(rng_.Uniform(-scale, scale));
  }
}

double SgnsModel::UpdatePair(size_t center, size_t context, double lr,
                             Rng* rng, float* scratch) {
  size_t dim = config_.dim;
  float* v = in_.data() + center * dim;
  std::fill(scratch, scratch + dim, 0.0f);
  double loss = 0.0;

  // One positive target plus `negatives` sampled non-targets.
  for (size_t k = 0; k <= config_.negatives; ++k) {
    size_t target;
    float label;
    if (k == 0) {
      target = context;
      label = 1.0f;
    } else {
      target = negative_table_[static_cast<size_t>(rng->UniformInt(
          0, static_cast<int64_t>(negative_table_.size()) - 1))];
      if (target == context) continue;
      label = 0.0f;
    }
    float* u = out_.data() + target * dim;
    float dot = nn::kernels::DotF32(v, u, dim);
    float pred = FastSigmoid(dot);
    loss += label > 0.5f ? -std::log(std::max(pred, 1e-7f))
                         : -std::log(std::max(1.0f - pred, 1e-7f));
    float g = static_cast<float>(lr) * (label - pred);
    // The old interleaved loop read u[d] for the center update before
    // writing it, so accumulating all of scratch first, then updating
    // u, is the identical computation split into two axpys.
    nn::kernels::AxpyF32(g, u, scratch, dim);
    nn::kernels::AxpyF32(g, v, u, dim);
  }
  nn::kernels::AxpyF32(1.0f, scratch, v, dim);
  return loss;
}

double SgnsModel::TrainRange(
    const std::vector<std::vector<size_t>>& sequences, size_t begin,
    size_t end, double lr, Rng* rng, size_t* pairs) {
  double loss = 0.0;
  std::vector<float> scratch(config_.dim);
  for (size_t s = begin; s < end; ++s) {
    const std::vector<size_t>& seq = sequences[s];
    for (size_t i = 0; i < seq.size(); ++i) {
      // Dynamic window as in word2vec: actual window in [1, W].
      size_t w = static_cast<size_t>(
          rng->UniformInt(1, static_cast<int64_t>(config_.window)));
      size_t lo = i >= w ? i - w : 0;
      size_t hi = std::min(seq.size(), i + w + 1);
      for (size_t j = lo; j < hi; ++j) {
        if (j == i) continue;
        loss += UpdatePair(seq[i], seq[j], lr, rng, scratch.data());
        ++*pairs;
      }
    }
  }
  return loss;
}

double SgnsModel::Train(const std::vector<std::vector<size_t>>& sequences,
                        const std::vector<double>& negative_weights) {
  AUTODC_OBS_SPAN(train_span, "sgns.train");
  // Build the cumulative negative-sampling table once.
  negative_table_.clear();
  negative_table_.reserve(kNegativeTableSize);
  double total = 0.0;
  for (double w : negative_weights) total += w;
  if (total <= 0.0 || negative_weights.empty()) {
    // Degenerate: uniform over vocab.
    for (size_t i = 0; i < kNegativeTableSize; ++i) {
      negative_table_.push_back(i % std::max<size_t>(vocab_size_, 1));
    }
  } else {
    size_t id = 0;
    double acc = negative_weights[0];
    for (size_t i = 0; i < kNegativeTableSize; ++i) {
      double pos = (static_cast<double>(i) + 0.5) / kNegativeTableSize * total;
      while (pos > acc && id + 1 < negative_weights.size()) {
        ++id;
        acc += negative_weights[id];
      }
      negative_table_.push_back(id);
    }
  }

  size_t threads =
      config_.num_threads == 0 ? NumThreads() : config_.num_threads;
  // No point sharding below one sequence per worker.
  threads = std::min(threads, std::max<size_t>(sequences.size(), 1));

  // Hogwild workers: one deterministic RNG stream per shard, reused
  // across epochs (matching the serial path, whose single stream also
  // spans epochs).
  std::vector<Rng> worker_rngs;
  if (threads > 1) {
    worker_rngs.reserve(threads);
    for (size_t t = 0; t < threads; ++t) {
      // SplitMix-style spread so adjacent worker seeds do not produce
      // correlated mt19937_64 init states.
      worker_rngs.emplace_back(config_.seed + 0x9E3779B97F4A7C15ull * (t + 1));
    }
  }

  double epoch_loss = 0.0;
  for (size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Linear learning-rate decay across epochs, as in word2vec.
    double lr = config_.learning_rate *
                (1.0 - static_cast<double>(epoch) /
                           static_cast<double>(config_.epochs));
    lr = std::max(lr, config_.learning_rate * 1e-2);
    epoch_loss = 0.0;
    size_t pairs = 0;
    if (threads <= 1) {
      // Serial path: bit-identical to the original single-threaded
      // implementation (same rng_ consumption, same update order).
      epoch_loss = TrainRange(sequences, 0, sequences.size(), lr, &rng_,
                              &pairs);
    } else {
      // Hogwild [40-style]: shards race on in_/out_ without locks.
      // Updates are sparse (one center + a handful of targets per pair),
      // so collisions are rare and SGD tolerates the occasional lost
      // write; see DESIGN.md "Parallel runtime".
      std::vector<double> shard_loss(threads, 0.0);
      std::vector<size_t> shard_pairs(threads, 0);
      size_t per = (sequences.size() + threads - 1) / threads;
      ParallelFor(0, threads, 1, [&](size_t t0, size_t t1) {
        for (size_t t = t0; t < t1; ++t) {
          size_t lo = t * per;
          size_t hi = std::min(sequences.size(), lo + per);
          if (lo >= hi) continue;
          shard_loss[t] = TrainRange(sequences, lo, hi, lr, &worker_rngs[t],
                                     &shard_pairs[t]);
        }
      });
      for (size_t t = 0; t < threads; ++t) {
        epoch_loss += shard_loss[t];
        pairs += shard_pairs[t];
      }
    }
    if (pairs > 0) epoch_loss /= static_cast<double>(pairs);
    AUTODC_OBS_INC("sgns.epochs");
    AUTODC_OBS_COUNT("sgns.pairs", pairs);
    AUTODC_OBS_GAUGE_SET("sgns.epoch_loss", epoch_loss);
  }
  if (config_.average_in_out) {
    // Stays a plain add-then-halve loop over the flat storage: the same
    // per-element expression as before flattening, so the bit-exactness
    // goldens hold.
    for (size_t i = 0; i < in_.size(); ++i) {
      in_[i] = 0.5f * (in_[i] + out_[i]);
    }
  }
  return epoch_loss;
}

}  // namespace autodc::embedding
