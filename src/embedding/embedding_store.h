#ifndef AUTODC_EMBEDDING_EMBEDDING_STORE_H_
#define AUTODC_EMBEDDING_EMBEDDING_STORE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"

namespace autodc::embedding {

/// A scored neighbour returned by similarity search.
struct Neighbor {
  std::string key;
  double similarity = 0.0;
};

/// Immutable-ish map from string keys (words, cells, "column:value" node
/// labels) to dense vectors, with cosine nearest-neighbour search and the
/// vector-arithmetic analogy queries of Sec. 2.2 (king - man + woman ≈
/// queen).
class EmbeddingStore {
 public:
  EmbeddingStore() = default;
  explicit EmbeddingStore(size_t dim) : dim_(dim) {}

  /// Inserts or overwrites a vector (must match the store dimensionality;
  /// the first Add fixes it when constructed with dim 0).
  Status Add(const std::string& key, std::vector<float> vector);

  /// Vector for key, or nullptr.
  const std::vector<float>* Find(const std::string& key) const;

  bool Contains(const std::string& key) const {
    return index_.count(key) > 0;
  }
  size_t size() const { return keys_.size(); }
  size_t dim() const { return dim_; }
  const std::vector<std::string>& keys() const { return keys_; }

  /// k nearest neighbours of `query` by cosine similarity, excluding the
  /// keys listed in `exclude`.
  std::vector<Neighbor> NearestToVector(
      const std::vector<float>& query, size_t k,
      const std::vector<std::string>& exclude = {}) const;

  /// k nearest neighbours of an existing key (itself excluded).
  Result<std::vector<Neighbor>> Nearest(const std::string& key,
                                        size_t k) const;

  /// Cosine similarity between two stored keys; error if either missing.
  Result<double> Similarity(const std::string& a, const std::string& b) const;

  /// Solves a : b :: c : ? via the offset method — returns the nearest
  /// key to (b - a + c), excluding a, b, c.
  Result<std::vector<Neighbor>> Analogy(const std::string& a,
                                        const std::string& b,
                                        const std::string& c,
                                        size_t k = 3) const;

  /// Mean vector of the keys that exist in the store; zero vector if none
  /// do. Used by coherent-group matching and query embedding.
  std::vector<float> AverageOf(const std::vector<std::string>& keys) const;

  /// Common-component removal: subtracts the store-wide mean vector from
  /// every embedding, then L2-normalizes each. Small-corpus embeddings
  /// share a large common direction that crushes all cosine similarities
  /// toward 1; removing it restores discriminative geometry (the SIF
  /// "common component" trick).
  void CenterAndNormalize();

 private:
  size_t dim_ = 0;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::string> keys_;
  std::vector<std::vector<float>> vectors_;
  // Cached squared L2 norm per vector, maintained by Add and
  // CenterAndNormalize, so nearest-neighbour search does one dot per
  // candidate instead of a full cosine (3 reductions).
  std::vector<double> norms_sq_;
};

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_EMBEDDING_STORE_H_
