#ifndef AUTODC_EMBEDDING_EMBEDDING_STORE_H_
#define AUTODC_EMBEDDING_EMBEDDING_STORE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/nn/kernels.h"

namespace autodc::ann {
struct HnswConfig;
}  // namespace autodc::ann

namespace autodc::embedding {

/// A scored neighbour returned by similarity search.
struct Neighbor {
  std::string key;
  double similarity = 0.0;
};

/// Immutable-ish map from string keys (words, cells, "column:value" node
/// labels) to dense vectors, with cosine nearest-neighbour search and the
/// vector-arithmetic analogy queries of Sec. 2.2 (king - man + woman ≈
/// queen).
///
/// Retrieval has two paths. The default is the exact scan: top-k
/// selection over every row (parallelized across row blocks for large
/// stores), bit-identical in scores to the seed implementation. Calling
/// EnableAnn() — or setting AUTODC_ANN=1, which builds the index lazily
/// on the first large-store query — routes NearestToVector through an
/// HNSW graph index (src/ann) instead: approximate results, sub-linear
/// query time. Mutating a vector that is already indexed (overwrite or
/// CenterAndNormalize) invalidates the index; queries fall back to the
/// exact scan until EnableAnn() is called again (appending new keys via
/// Add keeps the index live — they are inserted incrementally).
///
/// Storage precision (DESIGN.md §11): with AUTODC_EMB_QUANT=int8 (or
/// int8sym / bf16) — or the explicit quant constructor — rows are
/// quantized on insert and the fp32 copies are dropped, roughly halving
/// (bf16) or quartering (int8) row-storage bytes. Exact scans and HNSW
/// graph hops then score on the quantized rows directly, and the top-k
/// shortlist is re-scored in fp32 over the dequantized rows, so the
/// similarities returned stay on the exact-path formula. Find() on a
/// quantized store dequantizes the row on first access into a per-row
/// cache (pointers stay stable for the store's lifetime). The default
/// fp32 mode is bit-identical to the unquantized store.
class EmbeddingStore {
 public:
  EmbeddingStore() : EmbeddingStore(0) {}
  explicit EmbeddingStore(size_t dim)
      : EmbeddingStore(dim, nn::kernels::QuantFromEnv()) {}
  EmbeddingStore(size_t dim, nn::kernels::Quant quant)
      : dim_(dim), quant_(quant) {}
  ~EmbeddingStore();

  /// Copies duplicate the vectors but not the ANN index (the copy
  /// rebuilds on demand); moves carry the index along.
  EmbeddingStore(const EmbeddingStore& other);
  EmbeddingStore& operator=(const EmbeddingStore& other);
  EmbeddingStore(EmbeddingStore&& other) noexcept;
  EmbeddingStore& operator=(EmbeddingStore&& other) noexcept;

  /// Inserts or overwrites a vector (must match the store dimensionality;
  /// the first Add fixes it when constructed with dim 0).
  Status Add(const std::string& key, std::vector<float> vector);

  /// Vector for key, or nullptr. On a quantized store this dequantizes
  /// on first access and caches the fp32 row (thread-safe; the pointer
  /// stays valid and tracks later overwrites of the key).
  const std::vector<float>* Find(const std::string& key) const;

  bool Contains(const std::string& key) const {
    return index_.count(key) > 0;
  }
  size_t size() const { return keys_.size(); }
  size_t dim() const { return dim_; }
  const std::vector<std::string>& keys() const { return keys_; }
  /// Row storage precision.
  nn::kernels::Quant quant() const { return quant_; }
  /// Heap bytes of row storage + cached norms/params (keys and the key
  /// index excluded — they are identical across modes). The memory half
  /// of the quantization bench gate; published as the
  /// embedding.store.bytes gauge when an ANN index is built.
  size_t ResidentBytes() const;

  /// k nearest neighbours of `query` by cosine similarity, excluding the
  /// keys listed in `exclude`. Exact by default; approximate when the
  /// ANN index is active (see class comment).
  std::vector<Neighbor> NearestToVector(
      const std::vector<float>& query, size_t k,
      const std::vector<std::string>& exclude = {}) const;

  /// k nearest neighbours of an existing key (itself excluded).
  Result<std::vector<Neighbor>> Nearest(const std::string& key,
                                        size_t k) const;

  /// Cosine similarity between two stored keys; error if either missing.
  Result<double> Similarity(const std::string& a, const std::string& b) const;

  /// Solves a : b :: c : ? via the offset method — returns the nearest
  /// key to (b - a + c), excluding a, b, c.
  Result<std::vector<Neighbor>> Analogy(const std::string& a,
                                        const std::string& b,
                                        const std::string& c,
                                        size_t k = 3) const;

  /// Mean vector of the keys that exist in the store; zero vector if none
  /// do. Used by coherent-group matching and query embedding.
  std::vector<float> AverageOf(const std::vector<std::string>& keys) const;

  /// Common-component removal: subtracts the store-wide mean vector from
  /// every embedding, then L2-normalizes each. Small-corpus embeddings
  /// share a large common direction that crushes all cosine similarities
  /// toward 1; removing it restores discriminative geometry (the SIF
  /// "common component" trick). Invalidates a live ANN index.
  void CenterAndNormalize();

  /// Builds (or rebuilds) the HNSW index over the current contents and
  /// routes subsequent NearestToVector calls through it. The no-config
  /// overload takes defaults + AUTODC_ANN_EF_SEARCH from the
  /// environment.
  Status EnableAnn();
  Status EnableAnn(const ann::HnswConfig& config);

  /// Re-freshens a stale index in place: when an overwrite or
  /// CenterAndNormalize has invalidated the index, rebuilds it with the
  /// config it was originally built with (no-op when the index is still
  /// fresh). Unlike the lazy AUTODC_ANN path — which only ever builds a
  /// *first* index — this is the recovery call for long-running owners
  /// (the serve-layer session refresh): without it a store that took one
  /// in-place update silently serves exact-scan latency forever.
  /// FailedPrecondition when no index was ever built.
  Status RebuildAnn();

  /// Drops the index; queries return to the exact scan.
  void DisableAnn();

  /// True when the index is built and fresh (queries take the ANN path).
  bool AnnActive() const;

 private:
  struct AnnState;  // holds the index + lazy-build lock (see .cc)

  /// Exact top-k scan; `exclude_ids` are row ids, sorted ascending.
  std::vector<Neighbor> ExactNearest(
      const std::vector<float>& query, size_t k,
      const std::vector<size_t>& exclude_ids) const;
  std::vector<Neighbor> AnnNearest(const std::vector<float>& query, size_t k,
                                   const std::vector<size_t>& exclude_ids)
      const;
  /// Routes a query: lazily builds the index when AUTODC_ANN asks for
  /// it, and decides between the ANN path and the exact fallback.
  bool UseAnnFor(size_t k, size_t num_excluded) const;
  /// Builds and publishes a fresh index (const: the lazy env path runs
  /// under a query; publication is atomic).
  Status BuildAnn(const ann::HnswConfig& config) const;

  /// Materializes row `id` as fp32 into `out` (dim_ floats): a copy in
  /// fp32 mode, dequantization otherwise.
  void RowToF32(size_t id, float* out) const;
  /// Writes `v` into the quantized backing at row `id` (appending when
  /// id == current row count) and returns the squared norm of the
  /// stored (dequantized) representation.
  double WriteQuantRow(size_t id, const float* v);
  /// Exact-formula similarity against row `id`: fp32 dot over the
  /// dequantized row (via `scratch` on quantized stores). This is the
  /// rescoring contract — ANN hits and quantized-scan shortlists both
  /// come back through here so returned similarities are comparable
  /// across modes and paths.
  double RescoredSim(const float* query, double query_norm, size_t id,
                     std::vector<float>& scratch) const;

  size_t dim_ = 0;
  nn::kernels::Quant quant_ = nn::kernels::Quant::kFp32;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::string> keys_;
  // Row storage: vectors_ in fp32 mode, the flat arrays below in
  // quantized modes (per-row scale/zero-point + cached element sums for
  // the int8 zero-point correction).
  std::vector<std::vector<float>> vectors_;
  std::vector<std::int8_t> q8_data_;
  std::vector<nn::kernels::Int8Params> q8_params_;
  std::vector<std::int32_t> q8_sums_;
  std::vector<std::uint16_t> bf16_data_;
  std::vector<float> scratch_;  // non-const-path dequant scratch
  // Cached squared L2 norm per vector (of the stored representation),
  // maintained by Add and CenterAndNormalize, so nearest-neighbour
  // search does one dot per candidate instead of a full cosine (3
  // reductions).
  std::vector<double> norms_sq_;
  // Find() on a quantized store returns pointers into this per-row
  // dequant cache; unordered_map's node-based storage keeps mapped
  // vectors stable across rehash, and overwrites refresh entries in
  // place so held pointers track the latest value.
  mutable std::mutex dequant_mu_;
  mutable std::unordered_map<size_t, std::vector<float>> dequant_cache_;
  // Mutable + atomic: the AUTODC_ANN lazy build happens under a const
  // query, guarded by a build mutex and published with a release store,
  // so concurrent readers either see no index (exact scan) or a fully
  // built one — never a partial build. Owned; freed in the destructor.
  mutable std::atomic<AnnState*> ann_{nullptr};
};

}  // namespace autodc::embedding

#endif  // AUTODC_EMBEDDING_EMBEDDING_STORE_H_
