#include "src/embedding/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/nn/kernels.h"
#include "src/text/similarity.h"

namespace autodc::embedding {

Status EmbeddingStore::Add(const std::string& key, std::vector<float> vector) {
  if (dim_ == 0) dim_ = vector.size();
  if (vector.size() != dim_) {
    return Status::InvalidArgument(
        "vector for '" + key + "' has dim " + std::to_string(vector.size()) +
        ", store dim is " + std::to_string(dim_));
  }
  double norm_sq = nn::kernels::SumSqF32(vector.data(), vector.size());
  auto it = index_.find(key);
  if (it != index_.end()) {
    vectors_[it->second] = std::move(vector);
    norms_sq_[it->second] = norm_sq;
    return Status::OK();
  }
  index_.emplace(key, keys_.size());
  keys_.push_back(key);
  vectors_.push_back(std::move(vector));
  norms_sq_.push_back(norm_sq);
  return Status::OK();
}

const std::vector<float>* EmbeddingStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  return &vectors_[it->second];
}

std::vector<Neighbor> EmbeddingStore::NearestToVector(
    const std::vector<float>& query, size_t k,
    const std::vector<std::string>& exclude) const {
  std::unordered_set<std::string> skip(exclude.begin(), exclude.end());
  // The query norm is fixed across candidates and candidate norms are
  // cached, so each candidate costs one dot product. A dimension
  // mismatch scores 0, matching CosineSimilarity on unequal sizes.
  double query_norm_sq =
      query.size() == dim_
          ? nn::kernels::SumSqF32(query.data(), query.size())
          : -1.0;
  std::vector<Neighbor> scored;
  scored.reserve(keys_.size());
  for (size_t i = 0; i < keys_.size(); ++i) {
    if (skip.count(keys_[i]) > 0) continue;
    double sim = 0.0;
    if (query_norm_sq > 0.0 && norms_sq_[i] > 0.0) {
      double dot =
          nn::kernels::DotF32D(query.data(), vectors_[i].data(), dim_);
      sim = dot / (std::sqrt(query_norm_sq) * std::sqrt(norms_sq_[i]));
    }
    scored.push_back(Neighbor{keys_[i], sim});
  }
  size_t take = std::min(k, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + take, scored.end(),
                    [](const Neighbor& a, const Neighbor& b) {
                      return a.similarity > b.similarity;
                    });
  scored.resize(take);
  return scored;
}

Result<std::vector<Neighbor>> EmbeddingStore::Nearest(const std::string& key,
                                                      size_t k) const {
  const std::vector<float>* v = Find(key);
  if (v == nullptr) return Status::NotFound("no embedding for '" + key + "'");
  return NearestToVector(*v, k, {key});
}

Result<double> EmbeddingStore::Similarity(const std::string& a,
                                          const std::string& b) const {
  const std::vector<float>* va = Find(a);
  const std::vector<float>* vb = Find(b);
  if (va == nullptr) return Status::NotFound("no embedding for '" + a + "'");
  if (vb == nullptr) return Status::NotFound("no embedding for '" + b + "'");
  return text::CosineSimilarity(*va, *vb);
}

Result<std::vector<Neighbor>> EmbeddingStore::Analogy(const std::string& a,
                                                      const std::string& b,
                                                      const std::string& c,
                                                      size_t k) const {
  const std::vector<float>* va = Find(a);
  const std::vector<float>* vb = Find(b);
  const std::vector<float>* vc = Find(c);
  if (va == nullptr || vb == nullptr || vc == nullptr) {
    return Status::NotFound("analogy term missing from store");
  }
  std::vector<float> q(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    q[i] = (*vb)[i] - (*va)[i] + (*vc)[i];
  }
  return NearestToVector(q, k, {a, b, c});
}

void EmbeddingStore::CenterAndNormalize() {
  if (vectors_.empty() || dim_ == 0) return;
  std::vector<double> mean(dim_, 0.0);
  for (const auto& v : vectors_) {
    for (size_t i = 0; i < dim_; ++i) mean[i] += v[i];
  }
  for (double& m : mean) m /= static_cast<double>(vectors_.size());
  for (auto& v : vectors_) {
    double norm = 0.0;
    for (size_t i = 0; i < dim_; ++i) {
      v[i] = static_cast<float>(v[i] - mean[i]);
      norm += static_cast<double>(v[i]) * v[i];
    }
    norm = std::sqrt(norm);
    if (norm > 1e-12) {
      for (size_t i = 0; i < dim_; ++i) {
        v[i] = static_cast<float>(v[i] / norm);
      }
    }
  }
  for (size_t i = 0; i < vectors_.size(); ++i) {
    norms_sq_[i] =
        nn::kernels::SumSqF32(vectors_[i].data(), vectors_[i].size());
  }
}

std::vector<float> EmbeddingStore::AverageOf(
    const std::vector<std::string>& keys) const {
  std::vector<float> avg(dim_, 0.0f);
  size_t found = 0;
  for (const std::string& key : keys) {
    const std::vector<float>* v = Find(key);
    if (v == nullptr) continue;
    nn::kernels::AxpyF32(1.0f, v->data(), avg.data(), dim_);
    ++found;
  }
  if (found > 0) {
    for (float& x : avg) x /= static_cast<float>(found);
  }
  return avg;
}

}  // namespace autodc::embedding
