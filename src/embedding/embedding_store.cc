#include "src/embedding/embedding_store.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <utility>

#include "src/ann/hnsw.h"
#include "src/common/parallel.h"
#include "src/nn/kernels.h"
#include "src/obs/metrics.h"
#include "src/text/similarity.h"

namespace autodc::embedding {

namespace {

// Stores below this size never take the AUTODC_ANN lazy path: the exact
// scan is already microseconds there and stays the recall-1.0 baseline.
constexpr size_t kAnnAutoMinSize = 1024;
// The exact scan goes wide once a single thread would chew through this
// many rows; the grain keeps per-chunk top-k merge cost negligible.
constexpr size_t kParallelScanMin = 8192;
constexpr size_t kParallelScanGrain = 4096;

/// Serializes lazy index builds (a const-path side effect). Only the
/// build takes this lock; ready indexes are read lock-free.
std::mutex& AnnBuildMutex() {
  static std::mutex mu;
  return mu;
}

/// Top-k selector over (similarity, row id) with a total order — higher
/// similarity wins, lower id on ties — so results are deterministic for
/// any scan chunking. Keeps the current worst on top of a size-k heap:
/// O(n log k), and no per-candidate string copies (the old exact scan
/// materialized a Neighbor for every row before sorting).
struct TopK {
  explicit TopK(size_t k) : k(k) { heap.reserve(k + 1); }

  static bool Better(const std::pair<double, size_t>& a,
                     const std::pair<double, size_t>& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  }

  void Push(double sim, size_t id) {
    if (k == 0) return;
    std::pair<double, size_t> item{sim, id};
    if (heap.size() < k) {
      heap.push_back(item);
      std::push_heap(heap.begin(), heap.end(), Better);
      return;
    }
    if (Better(item, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), Better);
      heap.back() = item;
      std::push_heap(heap.begin(), heap.end(), Better);
    }
  }

  size_t k;
  std::vector<std::pair<double, size_t>> heap;
};

/// Exclusion lists are tiny (Analogy passes three keys), so a flat
/// probe over resolved row ids beats a hash lookup per candidate.
inline bool IsExcluded(const std::vector<size_t>& exclude_ids, size_t id) {
  for (size_t e : exclude_ids) {
    if (e == id) return true;
  }
  return false;
}

}  // namespace

struct EmbeddingStore::AnnState {
  std::unique_ptr<ann::HnswIndex> index;
  ann::HnswConfig config;
  /// Set when an indexed vector mutates under the index (overwrite,
  /// CenterAndNormalize). Queries fall back to the exact scan until
  /// EnableAnn() rebuilds.
  bool stale = false;
};

EmbeddingStore::~EmbeddingStore() {
  delete ann_.load(std::memory_order_acquire);
}

EmbeddingStore::EmbeddingStore(const EmbeddingStore& other)
    : dim_(other.dim_),
      quant_(other.quant_),
      index_(other.index_),
      keys_(other.keys_),
      vectors_(other.vectors_),
      q8_data_(other.q8_data_),
      q8_params_(other.q8_params_),
      q8_sums_(other.q8_sums_),
      bf16_data_(other.bf16_data_),
      norms_sq_(other.norms_sq_) {
  // The dequant cache is not copied: it rebuilds on demand like the ANN
  // index.
}

EmbeddingStore& EmbeddingStore::operator=(const EmbeddingStore& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  quant_ = other.quant_;
  index_ = other.index_;
  keys_ = other.keys_;
  vectors_ = other.vectors_;
  q8_data_ = other.q8_data_;
  q8_params_ = other.q8_params_;
  q8_sums_ = other.q8_sums_;
  bf16_data_ = other.bf16_data_;
  norms_sq_ = other.norms_sq_;
  {
    std::lock_guard<std::mutex> lock(dequant_mu_);
    dequant_cache_.clear();
  }
  delete ann_.exchange(nullptr, std::memory_order_acq_rel);
  return *this;
}

EmbeddingStore::EmbeddingStore(EmbeddingStore&& other) noexcept
    : dim_(other.dim_),
      quant_(other.quant_),
      index_(std::move(other.index_)),
      keys_(std::move(other.keys_)),
      vectors_(std::move(other.vectors_)),
      q8_data_(std::move(other.q8_data_)),
      q8_params_(std::move(other.q8_params_)),
      q8_sums_(std::move(other.q8_sums_)),
      bf16_data_(std::move(other.bf16_data_)),
      norms_sq_(std::move(other.norms_sq_)),
      dequant_cache_(std::move(other.dequant_cache_)) {
  ann_.store(other.ann_.exchange(nullptr), std::memory_order_release);
}

EmbeddingStore& EmbeddingStore::operator=(EmbeddingStore&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  quant_ = other.quant_;
  index_ = std::move(other.index_);
  keys_ = std::move(other.keys_);
  vectors_ = std::move(other.vectors_);
  q8_data_ = std::move(other.q8_data_);
  q8_params_ = std::move(other.q8_params_);
  q8_sums_ = std::move(other.q8_sums_);
  bf16_data_ = std::move(other.bf16_data_);
  norms_sq_ = std::move(other.norms_sq_);
  {
    std::lock_guard<std::mutex> lock(dequant_mu_);
    dequant_cache_ = std::move(other.dequant_cache_);
  }
  delete ann_.exchange(other.ann_.exchange(nullptr),
                       std::memory_order_acq_rel);
  return *this;
}

Status EmbeddingStore::Add(const std::string& key, std::vector<float> vector) {
  if (dim_ == 0) dim_ = vector.size();
  if (vector.size() != dim_) {
    return Status::InvalidArgument(
        "vector for '" + key + "' has dim " + std::to_string(vector.size()) +
        ", store dim is " + std::to_string(dim_));
  }
  const bool fp32 = quant_ == nn::kernels::Quant::kFp32;
  auto it = index_.find(key);
  if (it != index_.end()) {
    size_t id = it->second;
    if (fp32) {
      norms_sq_[id] = nn::kernels::SumSqF32(vector.data(), vector.size());
      vectors_[id] = std::move(vector);
    } else {
      norms_sq_[id] = WriteQuantRow(id, vector.data());
      // Refresh a cached dequant row in place so pointers handed out by
      // Find() keep tracking the key's latest value (fp32 semantics).
      std::lock_guard<std::mutex> lock(dequant_mu_);
      auto cached = dequant_cache_.find(id);
      if (cached != dequant_cache_.end()) {
        RowToF32(id, cached->second.data());
      }
    }
    // The graph still points at the old geometry; exact fallback until
    // the owner rebuilds.
    if (AnnState* st = ann_.load(std::memory_order_acquire)) st->stale = true;
    return Status::OK();
  }
  size_t id = keys_.size();
  index_.emplace(key, id);
  keys_.push_back(key);
  if (fp32) {
    norms_sq_.push_back(nn::kernels::SumSqF32(vector.data(), vector.size()));
    vectors_.push_back(std::move(vector));
  } else {
    norms_sq_.push_back(WriteQuantRow(id, vector.data()));
  }
  if (AnnState* st = ann_.load(std::memory_order_acquire)) {
    // Streaming path: new keys index as they arrive (row id == index id).
    // The index re-quantizes from fp32, so quantized stores hand it the
    // dequantized row (same values the store itself scores against).
    if (!st->stale) {
      if (fp32) {
        st->index->Add(vectors_.back().data());
      } else {
        scratch_.resize(dim_);
        RowToF32(id, scratch_.data());
        st->index->Add(scratch_.data());
      }
    }
  }
  return Status::OK();
}

const std::vector<float>* EmbeddingStore::Find(const std::string& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return nullptr;
  if (quant_ == nn::kernels::Quant::kFp32) return &vectors_[it->second];
  // Quantized stores have no fp32 rows to point at; dequantize into the
  // per-row cache (node-based map: mapped vectors stay stable across
  // rehash, and Add() refreshes entries in place on overwrite).
  std::lock_guard<std::mutex> lock(dequant_mu_);
  auto [entry, inserted] = dequant_cache_.try_emplace(it->second);
  if (inserted) {
    entry->second.resize(dim_);
    RowToF32(it->second, entry->second.data());
  }
  return &entry->second;
}

void EmbeddingStore::RowToF32(size_t id, float* out) const {
  switch (quant_) {
    case nn::kernels::Quant::kFp32:
      std::copy(vectors_[id].begin(), vectors_[id].end(), out);
      break;
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym:
      nn::kernels::DequantizeI8F32(q8_data_.data() + id * dim_, dim_,
                                   q8_params_[id], out);
      break;
    case nn::kernels::Quant::kBf16:
      nn::kernels::Bf16ToF32(bf16_data_.data() + id * dim_, dim_, out);
      break;
  }
}

double EmbeddingStore::WriteQuantRow(size_t id, const float* v) {
  switch (quant_) {
    case nn::kernels::Quant::kFp32:
      break;  // unreachable: fp32 rows go through vectors_
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym: {
      if (q8_data_.size() < (id + 1) * dim_) {
        q8_data_.resize((id + 1) * dim_);
        q8_params_.resize(id + 1);
        q8_sums_.resize(id + 1);
      }
      nn::kernels::Int8Params p = nn::kernels::ComputeInt8Params(
          v, dim_, quant_ == nn::kernels::Quant::kInt8Sym);
      std::int8_t* row = q8_data_.data() + id * dim_;
      nn::kernels::QuantizeI8F32(v, dim_, p, row);
      q8_params_[id] = p;
      q8_sums_[id] = nn::kernels::SumI8I32(row, dim_);
      break;
    }
    case nn::kernels::Quant::kBf16:
      if (bf16_data_.size() < (id + 1) * dim_) {
        bf16_data_.resize((id + 1) * dim_);
      }
      nn::kernels::F32ToBf16(v, dim_, bf16_data_.data() + id * dim_);
      break;
  }
  // Norms come from the stored (dequantized) representation so ranking
  // and rescoring share the geometry the rows actually encode.
  scratch_.resize(dim_);
  RowToF32(id, scratch_.data());
  return nn::kernels::SumSqF32(scratch_.data(), dim_);
}

double EmbeddingStore::RescoredSim(const float* query, double query_norm,
                                   size_t id,
                                   std::vector<float>& scratch) const {
  if (query_norm <= 0.0 || norms_sq_[id] <= 0.0) return 0.0;
  const float* row;
  if (quant_ == nn::kernels::Quant::kFp32) {
    row = vectors_[id].data();
  } else {
    scratch.resize(dim_);
    RowToF32(id, scratch.data());
    row = scratch.data();
  }
  double dot = nn::kernels::DotF32D(query, row, dim_);
  return dot / (query_norm * std::sqrt(norms_sq_[id]));
}

size_t EmbeddingStore::ResidentBytes() const {
  size_t bytes = norms_sq_.capacity() * sizeof(double);
  if (quant_ == nn::kernels::Quant::kFp32) {
    bytes += vectors_.capacity() * sizeof(std::vector<float>);
    for (const auto& v : vectors_) bytes += v.capacity() * sizeof(float);
  } else {
    bytes += q8_data_.capacity() * sizeof(std::int8_t);
    bytes += q8_params_.capacity() * sizeof(nn::kernels::Int8Params);
    bytes += q8_sums_.capacity() * sizeof(std::int32_t);
    bytes += bf16_data_.capacity() * sizeof(std::uint16_t);
  }
  return bytes;
}

std::vector<Neighbor> EmbeddingStore::ExactNearest(
    const std::vector<float>& query, size_t k,
    const std::vector<size_t>& exclude_ids) const {
  // The query norm is fixed across candidates and candidate norms are
  // cached, so each candidate costs one dot product. A dimension
  // mismatch scores 0, matching CosineSimilarity on unequal sizes.
  double query_norm_sq =
      query.size() == dim_
          ? nn::kernels::SumSqF32(query.data(), query.size())
          : -1.0;
  double query_norm =
      query_norm_sq > 0.0 ? std::sqrt(query_norm_sq) : 0.0;
  size_t n = keys_.size();

  // Quantized stores scan on the quantized rows (the memory win) and
  // re-score a shortlist in fp32 below; the shortlist over-fetch absorbs
  // quantization-induced rank swaps near the top-k boundary. The query
  // is converted once, outside the row loop.
  const bool quantized = quant_ != nn::kernels::Quant::kFp32;
  const bool int8 = nn::kernels::QuantIsInt8(quant_);
  std::vector<std::int8_t> query_q8;
  nn::kernels::Int8Params query_q8_params;
  std::int32_t query_q8_sum = 0;
  std::vector<std::uint16_t> query_bf16;
  if (quantized && query_norm > 0.0) {
    if (int8) {
      query_q8.resize(dim_);
      query_q8_params = nn::kernels::ComputeInt8Params(
          query.data(), dim_, quant_ == nn::kernels::Quant::kInt8Sym);
      nn::kernels::QuantizeI8F32(query.data(), dim_, query_q8_params,
                                 query_q8.data());
      query_q8_sum = nn::kernels::SumI8I32(query_q8.data(), dim_);
    } else {
      query_bf16.resize(dim_);
      nn::kernels::F32ToBf16(query.data(), dim_, query_bf16.data());
    }
  }
  size_t shortlist = quantized ? std::min(n, k + std::max(k, size_t{8})) : k;

  auto scan = [&](size_t begin, size_t end, TopK* top) {
    for (size_t i = begin; i < end; ++i) {
      if (IsExcluded(exclude_ids, i)) continue;
      double sim = 0.0;
      if (query_norm_sq > 0.0 && norms_sq_[i] > 0.0) {
        double dot;
        if (!quantized) {
          dot = nn::kernels::DotF32D(query.data(), vectors_[i].data(), dim_);
        } else if (int8) {
          const std::int8_t* row = q8_data_.data() + i * dim_;
          dot = nn::kernels::DequantDotD(
              nn::kernels::DotI8I32(query_q8.data(), row, dim_),
              query_q8_params, query_q8_sum, q8_params_[i], q8_sums_[i],
              dim_);
        } else {
          dot = nn::kernels::DotBf16D(query_bf16.data(),
                                      bf16_data_.data() + i * dim_, dim_);
        }
        sim = dot / (query_norm * std::sqrt(norms_sq_[i]));
      }
      top->Push(sim, i);
    }
  };

  std::vector<std::pair<double, size_t>> best;
  if (n >= kParallelScanMin && NumThreads() > 1) {
    // Row-block parallel scan: each chunk keeps its own top-k, chunks
    // merge under a lock, and the final selection re-applies the same
    // total order — so the result is identical for any thread count.
    std::mutex mu;
    ParallelFor(0, n, kParallelScanGrain, [&](size_t begin, size_t end) {
      TopK local(shortlist);
      scan(begin, end, &local);
      std::lock_guard<std::mutex> lock(mu);
      best.insert(best.end(), local.heap.begin(), local.heap.end());
    });
  } else {
    TopK top(shortlist);
    scan(0, n, &top);
    best = std::move(top.heap);
  }
  std::sort(best.begin(), best.end(), TopK::Better);
  if (best.size() > shortlist) best.resize(shortlist);
  if (quantized) {
    // Rescoring contract: the shortlist re-ranks on the exact fp32
    // formula over dequantized rows, so returned similarities match
    // what an fp32 store would report for the same keys.
    std::vector<float> scratch;
    for (auto& [sim, id] : best) {
      sim = RescoredSim(query.data(), query_norm, id, scratch);
    }
    std::sort(best.begin(), best.end(), TopK::Better);
  }
  if (best.size() > k) best.resize(k);

  AUTODC_OBS_INC("embedding.nearest.exact");
  std::vector<Neighbor> out;
  out.reserve(best.size());
  for (const auto& [sim, id] : best) {
    out.push_back(Neighbor{keys_[id], sim});
  }
  return out;
}

std::vector<Neighbor> EmbeddingStore::AnnNearest(
    const std::vector<float>& query, size_t k,
    const std::vector<size_t>& exclude_ids) const {
  // Degenerate queries (dim mismatch, zero norm) have no graph
  // geometry to navigate; keep the exact path's semantics for them.
  if (query.size() != dim_) return ExactNearest(query, k, exclude_ids);
  double query_norm_sq = nn::kernels::SumSqF32(query.data(), query.size());
  if (query_norm_sq <= 0.0) return ExactNearest(query, k, exclude_ids);

  const AnnState* st = ann_.load(std::memory_order_acquire);
  // Quantized graphs over-fetch a little so fp32 rescoring can repair
  // rank swaps the quantized distances introduced near the boundary.
  size_t extra = quant_ != nn::kernels::Quant::kFp32 ? 8 : 0;
  std::vector<ann::ScoredId> hits =
      st->index->Search(query.data(), k + exclude_ids.size() + extra);

  // Re-score survivors with the exact path's formula so similarity
  // values agree bit-for-bit with an exact scan returning the same key.
  double query_norm = std::sqrt(query_norm_sq);
  std::vector<float> scratch;
  std::vector<std::pair<double, size_t>> best;
  best.reserve(hits.size());
  for (const ann::ScoredId& hit : hits) {
    if (IsExcluded(exclude_ids, hit.id)) continue;
    best.emplace_back(RescoredSim(query.data(), query_norm, hit.id, scratch),
                      hit.id);
  }
  std::sort(best.begin(), best.end(), TopK::Better);
  if (best.size() > k) best.resize(k);

  AUTODC_OBS_INC("embedding.nearest.ann");
  std::vector<Neighbor> out;
  out.reserve(best.size());
  for (const auto& [sim, id] : best) {
    out.push_back(Neighbor{keys_[id], sim});
  }
  return out;
}

bool EmbeddingStore::UseAnnFor(size_t k, size_t num_excluded) const {
  size_t n = keys_.size();
  if (n == 0 || k == 0) return false;
  // Exact-scan fallback for small result margins: when the caller asks
  // for a sizable fraction of the store, the scan is both faster and
  // exact.
  if ((k + num_excluded) * 4 >= n) return false;
  if (const AnnState* st = ann_.load(std::memory_order_acquire)) {
    return !st->stale;
  }
  // Lazy env-driven build: AUTODC_ANN=1 turns large stores over to the
  // index the first time they are queried.
  if (n < kAnnAutoMinSize || !ann::AnnEnvEnabled()) return false;
  std::lock_guard<std::mutex> lock(AnnBuildMutex());
  if (ann_.load(std::memory_order_acquire) == nullptr) {
    (void)BuildAnn(ann::ConfigFromEnv());
  }
  const AnnState* st = ann_.load(std::memory_order_acquire);
  return st != nullptr && !st->stale;
}

Status EmbeddingStore::BuildAnn(const ann::HnswConfig& config) const {
  if (dim_ == 0) {
    return Status::FailedPrecondition(
        "cannot build ANN index: store dimensionality unknown (empty store "
        "constructed without a dim)");
  }
  auto st = std::make_unique<AnnState>();
  // A quantized store defaults the index to the same precision (an
  // explicit non-fp32 config choice wins). The index re-quantizes from
  // fp32 on insert, so quantized rows are dequantized into a transient
  // dense matrix for the build.
  ann::HnswConfig cfg = config;
  if (cfg.quant == nn::kernels::Quant::kFp32) cfg.quant = quant_;
  st->config = cfg;
  st->index = std::make_unique<ann::HnswIndex>(dim_, cfg);
  size_t n = keys_.size();
  std::vector<const float*> rows;
  rows.reserve(n);
  std::vector<float> dense;
  if (quant_ == nn::kernels::Quant::kFp32) {
    for (const std::vector<float>& v : vectors_) rows.push_back(v.data());
  } else {
    dense.resize(n * dim_);
    for (size_t i = 0; i < n; ++i) {
      RowToF32(i, dense.data() + i * dim_);
      rows.push_back(dense.data() + i * dim_);
    }
  }
  st->index->Build(rows);
  delete ann_.exchange(st.release(), std::memory_order_acq_rel);
  AUTODC_OBS_GAUGE_SET("embedding.store.bytes",
                       static_cast<int64_t>(ResidentBytes()));
  return Status::OK();
}

Status EmbeddingStore::EnableAnn() { return EnableAnn(ann::ConfigFromEnv()); }

Status EmbeddingStore::EnableAnn(const ann::HnswConfig& config) {
  return BuildAnn(config);
}

Status EmbeddingStore::RebuildAnn() {
  const AnnState* st = ann_.load(std::memory_order_acquire);
  if (st == nullptr) {
    return Status::FailedPrecondition(
        "RebuildAnn: no ANN index was ever built for this store (call "
        "EnableAnn first)");
  }
  if (!st->stale) return Status::OK();
  // The stored config is copied out before BuildAnn deletes the old
  // state on publication.
  ann::HnswConfig config = st->config;
  return BuildAnn(config);
}

void EmbeddingStore::DisableAnn() {
  delete ann_.exchange(nullptr, std::memory_order_acq_rel);
}

bool EmbeddingStore::AnnActive() const {
  const AnnState* st = ann_.load(std::memory_order_acquire);
  return st != nullptr && !st->stale;
}

std::vector<Neighbor> EmbeddingStore::NearestToVector(
    const std::vector<float>& query, size_t k,
    const std::vector<std::string>& exclude) const {
  // Resolve exclusions to row ids once, up front; keys not in the store
  // fall away here instead of being probed per candidate.
  std::vector<size_t> exclude_ids;
  exclude_ids.reserve(exclude.size());
  for (const std::string& key : exclude) {
    auto it = index_.find(key);
    if (it != index_.end()) exclude_ids.push_back(it->second);
  }
  std::sort(exclude_ids.begin(), exclude_ids.end());
  exclude_ids.erase(std::unique(exclude_ids.begin(), exclude_ids.end()),
                    exclude_ids.end());
  if (UseAnnFor(k, exclude_ids.size())) {
    return AnnNearest(query, k, exclude_ids);
  }
  return ExactNearest(query, k, exclude_ids);
}

Result<std::vector<Neighbor>> EmbeddingStore::Nearest(const std::string& key,
                                                      size_t k) const {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("no embedding for '" + key + "'");
  }
  if (quant_ == nn::kernels::Quant::kFp32) {
    return NearestToVector(vectors_[it->second], k, {key});
  }
  // A local dequant avoids growing the Find() cache for a transient use.
  std::vector<float> q(dim_);
  RowToF32(it->second, q.data());
  return NearestToVector(q, k, {key});
}

Result<double> EmbeddingStore::Similarity(const std::string& a,
                                          const std::string& b) const {
  auto ia = index_.find(a);
  auto ib = index_.find(b);
  if (ia == index_.end()) {
    return Status::NotFound("no embedding for '" + a + "'");
  }
  if (ib == index_.end()) {
    return Status::NotFound("no embedding for '" + b + "'");
  }
  size_t id_a = ia->second, id_b = ib->second;
  switch (quant_) {
    case nn::kernels::Quant::kFp32:
      return text::CosineSimilarity(vectors_[id_a], vectors_[id_b]);
    case nn::kernels::Quant::kInt8:
    case nn::kernels::Quant::kInt8Sym:
      // Fused quantized cosine: exact integer dot + dequant algebra, no
      // fp32 materialization.
      return static_cast<double>(nn::kernels::CosineI8(
          q8_data_.data() + id_a * dim_, q8_params_[id_a],
          q8_data_.data() + id_b * dim_, q8_params_[id_b], dim_));
    case nn::kernels::Quant::kBf16:
      return static_cast<double>(nn::kernels::CosineBf16(
          bf16_data_.data() + id_a * dim_, bf16_data_.data() + id_b * dim_,
          dim_));
  }
  return 0.0;  // unreachable
}

Result<std::vector<Neighbor>> EmbeddingStore::Analogy(const std::string& a,
                                                      const std::string& b,
                                                      const std::string& c,
                                                      size_t k) const {
  auto ia = index_.find(a);
  auto ib = index_.find(b);
  auto ic = index_.find(c);
  if (ia == index_.end() || ib == index_.end() || ic == index_.end()) {
    return Status::NotFound("analogy term missing from store");
  }
  const float* pa;
  const float* pb;
  const float* pc;
  std::vector<float> ta, tb, tc;
  if (quant_ == nn::kernels::Quant::kFp32) {
    pa = vectors_[ia->second].data();
    pb = vectors_[ib->second].data();
    pc = vectors_[ic->second].data();
  } else {
    ta.resize(dim_);
    tb.resize(dim_);
    tc.resize(dim_);
    RowToF32(ia->second, ta.data());
    RowToF32(ib->second, tb.data());
    RowToF32(ic->second, tc.data());
    pa = ta.data();
    pb = tb.data();
    pc = tc.data();
  }
  std::vector<float> q(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    q[i] = pb[i] - pa[i] + pc[i];
  }
  return NearestToVector(q, k, {a, b, c});
}

void EmbeddingStore::CenterAndNormalize() {
  size_t n = keys_.size();
  if (n == 0 || dim_ == 0) return;
  if (quant_ == nn::kernels::Quant::kFp32) {
    std::vector<double> mean(dim_, 0.0);
    for (const auto& v : vectors_) {
      for (size_t i = 0; i < dim_; ++i) mean[i] += v[i];
    }
    for (double& m : mean) m /= static_cast<double>(vectors_.size());
    for (auto& v : vectors_) {
      double norm = 0.0;
      for (size_t i = 0; i < dim_; ++i) {
        v[i] = static_cast<float>(v[i] - mean[i]);
        norm += static_cast<double>(v[i]) * v[i];
      }
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (size_t i = 0; i < dim_; ++i) {
          v[i] = static_cast<float>(v[i] / norm);
        }
      }
    }
    for (size_t i = 0; i < vectors_.size(); ++i) {
      norms_sq_[i] =
          nn::kernels::SumSqF32(vectors_[i].data(), vectors_[i].size());
    }
  } else {
    // Dequantize everything, run the identical centering math in fp32,
    // and requantize. Each row picks up fresh scale/zero-point for its
    // new range.
    std::vector<float> dense(n * dim_);
    for (size_t i = 0; i < n; ++i) RowToF32(i, dense.data() + i * dim_);
    std::vector<double> mean(dim_, 0.0);
    for (size_t r = 0; r < n; ++r) {
      const float* v = dense.data() + r * dim_;
      for (size_t i = 0; i < dim_; ++i) mean[i] += v[i];
    }
    for (double& m : mean) m /= static_cast<double>(n);
    for (size_t r = 0; r < n; ++r) {
      float* v = dense.data() + r * dim_;
      double norm = 0.0;
      for (size_t i = 0; i < dim_; ++i) {
        v[i] = static_cast<float>(v[i] - mean[i]);
        norm += static_cast<double>(v[i]) * v[i];
      }
      norm = std::sqrt(norm);
      if (norm > 1e-12) {
        for (size_t i = 0; i < dim_; ++i) {
          v[i] = static_cast<float>(v[i] / norm);
        }
      }
      norms_sq_[r] = WriteQuantRow(r, v);
    }
    // Keep pointers handed out by Find() tracking the new geometry.
    std::lock_guard<std::mutex> lock(dequant_mu_);
    for (auto& [id, row] : dequant_cache_) {
      RowToF32(id, row.data());
    }
  }
  if (AnnState* st = ann_.load(std::memory_order_acquire)) st->stale = true;
}

std::vector<float> EmbeddingStore::AverageOf(
    const std::vector<std::string>& keys) const {
  std::vector<float> avg(dim_, 0.0f);
  std::vector<float> row;
  size_t found = 0;
  for (const std::string& key : keys) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    const float* v;
    if (quant_ == nn::kernels::Quant::kFp32) {
      v = vectors_[it->second].data();
    } else {
      row.resize(dim_);
      RowToF32(it->second, row.data());
      v = row.data();
    }
    nn::kernels::AxpyF32(1.0f, v, avg.data(), dim_);
    ++found;
  }
  if (found > 0) {
    for (float& x : avg) x /= static_cast<float>(found);
  }
  return avg;
}

}  // namespace autodc::embedding
